//! The per-model protection check for one critical cycle.
//!
//! A cycle describes a weak-execution *scenario*: a claimed orientation of
//! communication edges. The check builds a constraint graph over the
//! events the operational explorer manipulates and asks whether the
//! scenario's necessary orderings are contradictory:
//!
//! * `exec(a)` — the commit of access `a` (execution order; coherence
//!   order for stores, exactly as in `wmm_litmus::explore`);
//! * `prop(W, t)` — the propagation of store `W` to thread `t` (non-MCA
//!   models only; on multi-copy-atomic models `prop ≡ exec`).
//!
//! Constraint edges are the *necessary* consequences of the scenario plus
//! whatever ordering mechanisms the program supplies. If the constraint
//! graph has a directed cycle, the scenario is impossible — the critical
//! cycle is **protected**. Otherwise it is reported unprotected: for this
//! explorer's models the constraints are tight enough that unprotected
//! cycles are dynamically observable (the differential test in
//! `tests/differential.rs` holds this over the whole litmus suite).
//!
//! Mechanism strengths mirror the explorer's semantics:
//!
//! * **Local** (orders `exec(a) < exec(b)`): model-implied order (SC: all
//!   pairs; TSO: all but store→load; ARM/POWER: same location), an
//!   address/data/control dependency that covers the pair, acquire on
//!   `a`, release on `b`, a covering fence marker, and — `ARMv8` only — the
//!   `RCsc` `stlr; ldar` pair.
//! * **Cumulative** (POWER `lwsync`/`sync` before a store, or a release
//!   store): the store may propagate to a thread only after the stores
//!   its thread knew about have — `prop(s, u) < prop(b, u)`.
//! * **Global** (POWER `sync`): the fence waits until its group-A stores
//!   have propagated *everywhere* — `prop(s, u) < exec(b)`.

use wmm_litmus::ops::{FClass, ModelKind};

use crate::cycles::{CommKind, CriticalCycle};
use crate::graph::{Access, ProgramGraph};

/// Verdict for one cycle.
#[derive(Debug, Clone)]
pub struct CycleCheck {
    /// Whether the scenario is impossible under the model.
    pub protected: bool,
    /// Program-order pairs `(entry, exit)` with no local ordering
    /// mechanism — where a fence or dependency is missing.
    pub uncut: Vec<(usize, usize)>,
}

/// Ordering strength present between a program-order pair. Exposed to the
/// synthesis layer (`crate::synth`), which uses it both to decide which
/// candidate instruments strengthen a pair and to generate lazy
/// constraints when a trial placement fails verification.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct PairCut {
    pub(crate) local: bool,
    pub(crate) cumulative: bool,
    pub(crate) global: bool,
}

impl PairCut {
    /// Does `self` carry any strength bit that `base` lacks?
    pub(crate) fn stronger_than(self, base: PairCut) -> bool {
        (self.local && !base.local)
            || (self.cumulative && !base.cumulative)
            || (self.global && !base.global)
    }
}

/// Does `class` order every role combination of `a` before `b`?
fn covers_pair(class: FClass, a: &Access, b: &Access) -> bool {
    a.roles()
        .iter()
        .all(|&ra| b.roles().iter().all(|&rb| class.covers(ra, rb)))
}

/// Model-implied ("bare") per-thread ordering, mirroring
/// `LitmusTest::ordered`'s model arms.
fn bare_ordered(model: ModelKind, a: &Access, b: &Access) -> bool {
    match model {
        ModelKind::Sc => true,
        // TSO relaxes only pure-store → pure-load at different locations
        // (RMWs are locked operations: fully ordered).
        ModelKind::Tso => !(a.is_store && !a.is_load && b.is_load && !b.is_store && a.loc != b.loc),
        ModelKind::ArmV8 | ModelKind::Power => a.loc == b.loc,
    }
}

pub(crate) fn pair_cut(
    g: &ProgramGraph,
    model: ModelKind,
    a_id: usize,
    b_id: usize,
    skip_fence: Option<usize>,
) -> PairCut {
    let (a, b) = (&g.accesses[a_id], &g.accesses[b_id]);
    let fences: Vec<&crate::graph::FenceNode> = g
        .fences_between(a_id, b_id)
        .into_iter()
        .filter(|&f| Some(f) != skip_fence)
        .map(|f| &g.fences[f])
        .collect();

    let dep_orders = g
        .dep_between(a_id, b_id)
        .is_some_and(|k| k.orders(b.is_store));
    // ARMv8 is RCsc: an acquire load never overtakes an earlier release
    // store (`stlr; ldar` stay ordered) — what lets JDK9 drop the dmb
    // between a volatile store and a following volatile load.
    let rcsc = model == ModelKind::ArmV8 && a.is_store && a.release && b.is_load && b.acquire;

    let local = bare_ordered(model, a, b)
        || (a.is_load && a.acquire)
        || (b.is_store && b.release)
        || rcsc
        || dep_orders
        || fences.iter().any(|f| covers_pair(f.class, a, b));
    let cumulative = b.is_store
        && ((b.release)
            || fences
                .iter()
                .any(|f| matches!(f.class, FClass::Full | FClass::LwSync)));
    let global = fences.iter().any(|f| f.class == FClass::Full);
    PairCut {
        local,
        cumulative,
        global,
    }
}

/// Kahn's algorithm: does the directed graph contain a cycle?
fn has_cycle(n: usize, edges: &[(usize, usize)]) -> bool {
    let mut adj = vec![vec![]; n];
    let mut indeg = vec![0usize; n];
    for &(u, v) in edges {
        adj[u].push(v);
        indeg[v] += 1;
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut removed = 0;
    while let Some(u) = queue.pop() {
        removed += 1;
        for &v in &adj[u] {
            indeg[v] -= 1;
            if indeg[v] == 0 {
                queue.push(v);
            }
        }
    }
    removed < n
}

/// Check one cycle under `model`.
#[must_use]
pub fn check_cycle(g: &ProgramGraph, model: ModelKind, cyc: &CriticalCycle) -> CycleCheck {
    check_cycle_without(g, model, cyc, None)
}

/// Check one cycle with fence `skip_fence` (an index into
/// [`ProgramGraph::fences`]) treated as absent — the redundancy probe.
///
/// # Panics
///
/// Panics if `cyc` references access ids outside `g` — cycles must come
/// from [`critical_cycles`](crate::cycles::critical_cycles) on the same
/// graph.
#[must_use]
pub fn check_cycle_without(
    g: &ProgramGraph,
    model: ModelKind,
    cyc: &CriticalCycle,
    skip_fence: Option<usize>,
) -> CycleCheck {
    let n = cyc.legs.len();
    let mca = model.multi_copy_atomic();
    let threads: Vec<usize> = cyc
        .legs
        .iter()
        .map(|&(e, _)| g.accesses[e].thread)
        .collect();

    // exec nodes: the cycle's distinct accesses.
    let mut nodes: Vec<usize> = vec![];
    for &(e, x) in &cyc.legs {
        nodes.push(e);
        if x != e {
            nodes.push(x);
        }
    }
    let exec = |id: usize| nodes.iter().position(|&a| a == id).expect("cycle access");

    // prop nodes: per cycle store × cycle thread (non-MCA only).
    let mut node_count = nodes.len();
    let mut prop_nodes: Vec<(usize, usize, usize)> = vec![]; // (store, thread, node)
    if !mca {
        for &a in &nodes {
            if g.accesses[a].is_store {
                for &u in &threads {
                    if u != g.accesses[a].thread {
                        prop_nodes.push((a, u, node_count));
                        node_count += 1;
                    }
                }
            }
        }
    }
    let prop = |store: usize, u: usize| -> usize {
        if mca || g.accesses[store].thread == u {
            exec(store)
        } else {
            prop_nodes
                .iter()
                .find(|&&(s, t, _)| s == store && t == u)
                .map(|&(_, _, node)| node)
                .expect("prop node")
        }
    };

    let mut edges: Vec<(usize, usize)> = vec![];
    // A store is visible to a remote thread only after it commits.
    for &(store, u, node) in &prop_nodes {
        let _ = u;
        edges.push((exec(store), node));
    }

    let mut uncut = vec![];
    for i in 0..n {
        let (entry, exit) = cyc.legs[i];
        // Program-order leg.
        if entry != exit {
            let cut = pair_cut(g, model, entry, exit, skip_fence);
            if cut.local {
                edges.push((exec(entry), exec(exit)));
            } else {
                uncut.push((entry, exit));
            }
            if !mca {
                // The store whose visibility the entry's thread "knows":
                // the entry itself, or the store a load entry reads in this
                // scenario (its incoming rf edge's source).
                let prev_exit = cyc.legs[(i + n - 1) % n].1;
                let s = if g.accesses[entry].is_store {
                    entry
                } else {
                    prev_exit
                };
                if cut.cumulative {
                    for &u in &threads {
                        edges.push((prop(s, u), prop(exit, u)));
                    }
                }
                if cut.global {
                    for &u in &threads {
                        edges.push((prop(s, u), exec(exit)));
                    }
                }
            }
        }
        // Communication edge into the next leg.
        let next = cyc.legs[(i + 1) % n].0;
        match cyc.comms[i] {
            // The reader saw the store: it propagated to the reader first.
            CommKind::Rf => edges.push((prop(exit, g.accesses[next].thread), exec(next))),
            // The reader missed the store: it reaches the reader later.
            CommKind::Fr => edges.push((exec(exit), prop(next, g.accesses[exit].thread))),
            // Coherence order is commit order.
            CommKind::Co => edges.push((exec(exit), exec(next))),
        }
    }

    CycleCheck {
        protected: has_cycle(node_count, &edges),
        uncut,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycles::critical_cycles;
    use crate::graph::ProgramGraph;
    use wmm_litmus::suite;
    use ModelKind::{ArmV8, Power, Sc, Tso};

    fn all_protected(entry: &suite::SuiteEntry, model: ModelKind) -> bool {
        let g = ProgramGraph::from_litmus(&entry.test);
        critical_cycles(&g)
            .iter()
            .all(|c| check_cycle(&g, model, c).protected)
    }

    #[test]
    fn sb_protection_per_model() {
        let e = suite::store_buffering();
        assert!(all_protected(&e, Sc));
        assert!(!all_protected(&e, Tso));
        assert!(!all_protected(&e, ArmV8));
        assert!(!all_protected(&e, Power));
        let f = suite::sb_fences();
        for m in [Sc, Tso, ArmV8, Power] {
            assert!(all_protected(&f, m), "{m:?}");
        }
        // lwsync leaves store→load open.
        assert!(!all_protected(&suite::sb_lwsyncs(), Power));
    }

    #[test]
    fn cumulativity_split_on_power() {
        // dmb ishst + addr: sound on MCA ARMv8, unsound on POWER.
        let e = suite::mp_dmbst_addr();
        assert!(all_protected(&e, ArmV8));
        assert!(!all_protected(&e, Power));
        // lwsync is cumulative: sound on POWER too.
        assert!(all_protected(&suite::mp_lwsync_addr(), Power));
    }

    #[test]
    fn iriw_needs_global_strength_on_power() {
        assert!(!all_protected(&suite::iriw_addrs(), Power));
        assert!(!all_protected(&suite::iriw_lwsyncs(), Power));
        assert!(all_protected(&suite::iriw_syncs(), Power));
        assert!(all_protected(&suite::iriw_addrs(), ArmV8));
    }

    #[test]
    fn ctrl_dep_cuts_stores_not_loads() {
        assert!(!all_protected(&suite::mp_dmbst_ctrl(), ArmV8));
        assert!(all_protected(&suite::mp_dmbst_ctrlisb(), ArmV8));
        assert!(all_protected(&suite::lb_deps(), Power));
    }

    #[test]
    fn uncut_pairs_name_the_gap() {
        let g = ProgramGraph::from_litmus(&suite::message_passing().test);
        let cycles = critical_cycles(&g);
        let check = check_cycle(&g, ArmV8, &cycles[0]);
        assert!(!check.protected);
        assert_eq!(check.uncut.len(), 2, "both MP pairs are unordered");
    }
}
