//! Shasha–Snir critical-cycle enumeration.
//!
//! A critical cycle alternates program-order *legs* (at most two accesses
//! per thread, the leg's entry program-before its exit, at different
//! locations) with *communication* edges between conflicting accesses of
//! different threads: write-to-read (`rf`), read-to-write (`fr`) and
//! write-to-write (`co`). Every sequentially inconsistent execution
//! contains one (Shasha & Snir 1988), so a program whose every critical
//! cycle is cut by sufficient fences/dependencies is SC — the property
//! "Don't sit on the fence" (Alglave et al.) checks statically and this
//! module's caller checks per memory model.
//!
//! Programs here are litmus-sized, so a brute-force DFS over leg sequences
//! is exact and fast. Each *orientation* of the communication edges is a
//! distinct cycle (a distinct weak-execution scenario).

use crate::graph::{Access, ProgramGraph};

/// Communication edge kinds between conflicting accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommKind {
    /// Write to read (reads-from): the read observes the write.
    Rf,
    /// Read to write (from-read): the read observed a coherence-earlier
    /// write, so the write reaches the reader's thread only later.
    Fr,
    /// Write to write (coherence): the first write is coherence-earlier.
    Co,
}

impl CommKind {
    /// Short arrow label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CommKind::Rf => "rf",
            CommKind::Fr => "fr",
            CommKind::Co => "co",
        }
    }

    /// All communication kinds possible from `u` to `v`. Pure pairs admit
    /// one kind; RMW endpoints admit several (each a distinct scenario).
    #[must_use]
    pub fn between(u: &Access, v: &Access) -> Vec<CommKind> {
        if u.thread == v.thread || u.loc != v.loc || !u.shared || !v.shared {
            return vec![];
        }
        let mut kinds = vec![];
        if u.is_store && v.is_load {
            kinds.push(CommKind::Rf);
        }
        if u.is_load && v.is_store {
            kinds.push(CommKind::Fr);
        }
        if u.is_store && v.is_store {
            kinds.push(CommKind::Co);
        }
        kinds
    }
}

/// One critical cycle: per-thread legs `(entry, exit)` (access ids;
/// `entry == exit` for single-access legs) and the communication edge
/// leaving each leg's exit into the next leg's entry.
#[derive(Debug, Clone)]
pub struct CriticalCycle {
    /// Legs in cycle order; threads are pairwise distinct.
    pub legs: Vec<(usize, usize)>,
    /// `comms[i]` connects `legs[i].1` to `legs[(i+1) % n].0`.
    pub comms: Vec<CommKind>,
}

impl CriticalCycle {
    /// Human-readable rendering, e.g.
    /// `t0:Wx ->po t0:Wy ->rf t1:Ry ->po t1:Rx ->fr t0:Wx`.
    #[must_use]
    pub fn describe(&self, g: &ProgramGraph) -> String {
        let mut parts = vec![];
        for (i, &(entry, exit)) in self.legs.iter().enumerate() {
            parts.push(g.describe(entry));
            if entry != exit {
                parts.push("->po".into());
                parts.push(g.describe(exit));
            }
            parts.push(format!("->{}", self.comms[i].label()));
        }
        parts.push(g.describe(self.legs[0].0));
        parts.join(" ")
    }
}

/// Enumerate every critical cycle of `g`, once per rotation class (the
/// leg sequence starts at the cycle's lowest-numbered thread).
#[must_use]
pub fn critical_cycles(g: &ProgramGraph) -> Vec<CriticalCycle> {
    let mut out = vec![];
    if g.threads.len() < 2 {
        return out;
    }
    for t0 in 0..g.threads.len() {
        for &e0 in &g.threads[t0] {
            let mut legs = vec![];
            let mut comms = vec![];
            let mut used: u64 = 1 << t0;
            extend(g, e0, e0, &mut legs, &mut comms, &mut used, &mut out);
        }
    }
    out
}

/// Valid exits for a leg entered at `entry`: the entry itself, or a
/// program-later access of the thread at a different location.
fn exits_of(g: &ProgramGraph, entry: usize) -> Vec<usize> {
    let e = &g.accesses[entry];
    g.threads[e.thread]
        .iter()
        .copied()
        .filter(|&x| {
            let a = &g.accesses[x];
            x == entry || (a.pos > e.pos && a.loc != e.loc)
        })
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn extend(
    g: &ProgramGraph,
    e0: usize,
    entry: usize,
    legs: &mut Vec<(usize, usize)>,
    comms: &mut Vec<CommKind>,
    used: &mut u64,
    out: &mut Vec<CriticalCycle>,
) {
    let t0 = g.accesses[e0].thread;
    for exit in exits_of(g, entry) {
        legs.push((entry, exit));
        for (v, kind) in comm_targets(g, exit) {
            let vt = g.accesses[v].thread;
            if v == e0 {
                comms.push(kind);
                if legs.len() >= 2 && !degenerate(legs) {
                    out.push(CriticalCycle {
                        legs: legs.clone(),
                        comms: comms.clone(),
                    });
                }
                comms.pop();
            } else if vt > t0 && *used & (1 << vt) == 0 {
                comms.push(kind);
                *used |= 1 << vt;
                extend(g, e0, v, legs, comms, used, out);
                *used &= !(1 << vt);
                comms.pop();
            }
        }
        legs.pop();
    }
}

/// All `(target access, kind)` communication edges leaving `u`.
fn comm_targets(g: &ProgramGraph, u: usize) -> Vec<(usize, CommKind)> {
    let ua = &g.accesses[u];
    let mut out = vec![];
    for (v, va) in g.accesses.iter().enumerate() {
        for kind in CommKind::between(ua, va) {
            out.push((v, kind));
        }
    }
    out
}

/// A two-leg cycle whose legs are both single accesses runs both its
/// communication edges between the same pair — contradictory by
/// construction (e.g. `rf` one way and `fr` back), never a real scenario.
fn degenerate(legs: &[(usize, usize)]) -> bool {
    legs.len() == 2 && legs[0].0 == legs[0].1 && legs[1].0 == legs[1].1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ProgramGraph;
    use wmm_litmus::suite;

    fn cycles_of(entry: &suite::SuiteEntry) -> (ProgramGraph, Vec<CriticalCycle>) {
        let g = ProgramGraph::from_litmus(&entry.test);
        let c = critical_cycles(&g);
        (g, c)
    }

    #[test]
    fn sb_has_exactly_one_cycle() {
        let (g, c) = cycles_of(&suite::store_buffering());
        assert_eq!(
            c.len(),
            1,
            "{:?}",
            c.iter().map(|x| x.describe(&g)).collect::<Vec<_>>()
        );
        let d = c[0].describe(&g);
        assert!(d.contains("->fr"), "{d}");
        assert!(!d.contains("->rf"), "{d}");
    }

    #[test]
    fn mp_has_exactly_one_cycle() {
        let (g, c) = cycles_of(&suite::message_passing());
        assert_eq!(c.len(), 1);
        let d = c[0].describe(&g);
        assert!(d.contains("->rf") && d.contains("->fr"), "{d}");
    }

    #[test]
    fn corr_and_coww_have_no_critical_cycles() {
        // Same-location legs are uniproc territory: coherence handles them,
        // no fence is ever needed, so no critical cycle exists.
        let (_, c) = cycles_of(&suite::corr());
        assert!(c.is_empty(), "{}", c.len());
        let (_, c) = cycles_of(&suite::coww());
        assert!(c.is_empty());
    }

    #[test]
    fn iriw_cycle_spans_four_threads() {
        let (_, c) = cycles_of(&suite::iriw_addrs());
        assert!(!c.is_empty());
        assert!(c.iter().any(|cy| cy.legs.len() == 4));
        // Rotation dedup: every cycle starts at its lowest thread.
        for cy in &c {
            let (g, _) = cycles_of(&suite::iriw_addrs());
            let t0 = g.accesses[cy.legs[0].0].thread;
            assert!(cy.legs.iter().all(|&(e, _)| g.accesses[e].thread >= t0));
        }
    }

    #[test]
    fn fenced_variants_have_same_cycles_as_bare() {
        // Fences sit between accesses; they do not change the cycle set,
        // only whether cycles are protected.
        let (_, bare) = cycles_of(&suite::store_buffering());
        let (_, fenced) = cycles_of(&suite::sb_fences());
        assert_eq!(bare.len(), fenced.len());
    }
}
