//! Shasha–Snir critical-cycle enumeration.
//!
//! A critical cycle alternates program-order *legs* (at most two accesses
//! per thread, the leg's entry program-before its exit, at different
//! locations) with *communication* edges between conflicting accesses of
//! different threads: write-to-read (`rf`), read-to-write (`fr`) and
//! write-to-write (`co`). Every sequentially inconsistent execution
//! contains one (Shasha & Snir 1988), so a program whose every critical
//! cycle is cut by sufficient fences/dependencies is SC — the property
//! "Don't sit on the fence" (Alglave et al.) checks statically and this
//! module's caller checks per memory model.
//!
//! Programs here are litmus-sized, so a brute-force DFS over leg sequences
//! is exact and fast. Each *orientation* of the communication edges is a
//! distinct cycle (a distinct weak-execution scenario).

use crate::graph::{Access, ProgramGraph};

/// Communication edge kinds between conflicting accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommKind {
    /// Write to read (reads-from): the read observes the write.
    Rf,
    /// Read to write (from-read): the read observed a coherence-earlier
    /// write, so the write reaches the reader's thread only later.
    Fr,
    /// Write to write (coherence): the first write is coherence-earlier.
    Co,
}

impl CommKind {
    /// Stable small-integer rank, used by canonical cycle keys.
    #[must_use]
    pub fn rank(self) -> u8 {
        match self {
            CommKind::Rf => 0,
            CommKind::Fr => 1,
            CommKind::Co => 2,
        }
    }

    /// Short arrow label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CommKind::Rf => "rf",
            CommKind::Fr => "fr",
            CommKind::Co => "co",
        }
    }

    /// All communication kinds possible from `u` to `v`. Pure pairs admit
    /// one kind; RMW endpoints admit several (each a distinct scenario).
    #[must_use]
    pub fn between(u: &Access, v: &Access) -> Vec<CommKind> {
        if u.thread == v.thread || u.loc != v.loc || !u.shared || !v.shared {
            return vec![];
        }
        let mut kinds = vec![];
        if u.is_store && v.is_load {
            kinds.push(CommKind::Rf);
        }
        if u.is_load && v.is_store {
            kinds.push(CommKind::Fr);
        }
        if u.is_store && v.is_store {
            kinds.push(CommKind::Co);
        }
        kinds
    }
}

/// One critical cycle: per-thread legs `(entry, exit)` (access ids;
/// `entry == exit` for single-access legs) and the communication edge
/// leaving each leg's exit into the next leg's entry.
#[derive(Debug, Clone)]
pub struct CriticalCycle {
    /// Legs in cycle order; threads are pairwise distinct.
    pub legs: Vec<(usize, usize)>,
    /// `comms[i]` connects `legs[i].1` to `legs[(i+1) % n].0`.
    pub comms: Vec<CommKind>,
}

impl CriticalCycle {
    /// Canonical rotation key: the lexicographically smallest rotation of
    /// the paired `(entry, exit, comm)` sequence. Two cycles are the same
    /// scenario iff their keys are equal, regardless of which leg the
    /// enumeration happened to start from.
    #[must_use]
    pub fn canonical_key(&self) -> Vec<(usize, usize, u8)> {
        let n = self.legs.len();
        let seq: Vec<(usize, usize, u8)> = (0..n)
            .map(|i| (self.legs[i].0, self.legs[i].1, self.comms[i].rank()))
            .collect();
        let best = (0..n)
            .min_by_key(|&r| (0..n).map(|i| seq[(r + i) % n]).collect::<Vec<_>>())
            .unwrap_or(0);
        (0..n).map(|i| seq[(best + i) % n]).collect()
    }

    /// Rotate the cycle in place onto its canonical rotation (the one whose
    /// `(entry, exit, comm)` sequence is lexicographically smallest). Leg
    /// threads are pairwise distinct, so the minimal rotation is unique and
    /// starts at the cycle's smallest entry access — which, with accesses
    /// numbered thread-major, is the lowest-numbered thread.
    pub fn canonicalize(&mut self) {
        let key = self.canonical_key();
        for (i, &(entry, exit, comm)) in key.iter().enumerate() {
            self.legs[i] = (entry, exit);
            self.comms[i] = match comm {
                0 => CommKind::Rf,
                1 => CommKind::Fr,
                _ => CommKind::Co,
            };
        }
    }

    /// Human-readable rendering, e.g.
    /// `t0:Wx ->po t0:Wy ->rf t1:Ry ->po t1:Rx ->fr t0:Wx`.
    #[must_use]
    pub fn describe(&self, g: &ProgramGraph) -> String {
        let mut parts = vec![];
        for (i, &(entry, exit)) in self.legs.iter().enumerate() {
            parts.push(g.describe(entry));
            if entry != exit {
                parts.push("->po".into());
                parts.push(g.describe(exit));
            }
            parts.push(format!("->{}", self.comms[i].label()));
        }
        parts.push(g.describe(self.legs[0].0));
        parts.join(" ")
    }
}

/// Enumerate every critical cycle of `g`, once per rotation class (the
/// leg sequence starts at the cycle's lowest-numbered thread).
#[must_use]
pub fn critical_cycles(g: &ProgramGraph) -> Vec<CriticalCycle> {
    let mut out = vec![];
    if g.threads.len() < 2 {
        return out;
    }
    for t0 in 0..g.threads.len() {
        for &e0 in &g.threads[t0] {
            let mut legs = vec![];
            let mut comms = vec![];
            let mut used: u64 = 1 << t0;
            extend(g, e0, e0, &mut legs, &mut comms, &mut used, &mut out);
        }
    }
    dedup_cycles(out)
}

/// Canonicalize every cycle onto its minimal rotation and drop
/// rotation-equivalent duplicates, preserving first-occurrence order.
///
/// The DFS in [`critical_cycles`] only ever extends to higher-numbered
/// threads, so it emits each rotation class once — but merged cycle sets
/// (per-component enumeration remapped into a parent graph, or graphs with
/// parallel communication edges folded from several sources) can carry the
/// same cycle under different rotations. This pass makes dedup exact.
#[must_use]
pub fn dedup_cycles(cycles: Vec<CriticalCycle>) -> Vec<CriticalCycle> {
    let mut seen = std::collections::BTreeSet::new();
    let mut out = Vec::with_capacity(cycles.len());
    for mut cyc in cycles {
        cyc.canonicalize();
        if seen.insert(cyc.canonical_key()) {
            out.push(cyc);
        }
    }
    out
}

/// Valid exits for a leg entered at `entry`: the entry itself, or a
/// program-later access of the thread at a different location.
fn exits_of(g: &ProgramGraph, entry: usize) -> Vec<usize> {
    let e = &g.accesses[entry];
    g.threads[e.thread]
        .iter()
        .copied()
        .filter(|&x| {
            let a = &g.accesses[x];
            x == entry || (a.pos > e.pos && a.loc != e.loc)
        })
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn extend(
    g: &ProgramGraph,
    e0: usize,
    entry: usize,
    legs: &mut Vec<(usize, usize)>,
    comms: &mut Vec<CommKind>,
    used: &mut u64,
    out: &mut Vec<CriticalCycle>,
) {
    let t0 = g.accesses[e0].thread;
    for exit in exits_of(g, entry) {
        legs.push((entry, exit));
        for (v, kind) in comm_targets(g, exit) {
            let vt = g.accesses[v].thread;
            if v == e0 {
                comms.push(kind);
                if legs.len() >= 2 && !degenerate(legs) {
                    out.push(CriticalCycle {
                        legs: legs.clone(),
                        comms: comms.clone(),
                    });
                }
                comms.pop();
            } else if vt > t0 && *used & (1 << vt) == 0 {
                comms.push(kind);
                *used |= 1 << vt;
                extend(g, e0, v, legs, comms, used, out);
                *used &= !(1 << vt);
                comms.pop();
            }
        }
        legs.pop();
    }
}

/// All `(target access, kind)` communication edges leaving `u`.
fn comm_targets(g: &ProgramGraph, u: usize) -> Vec<(usize, CommKind)> {
    let ua = &g.accesses[u];
    let mut out = vec![];
    for (v, va) in g.accesses.iter().enumerate() {
        for kind in CommKind::between(ua, va) {
            out.push((v, kind));
        }
    }
    out
}

/// A two-leg cycle whose legs are both single accesses runs both its
/// communication edges between the same pair — contradictory by
/// construction (e.g. `rf` one way and `fr` back), never a real scenario.
fn degenerate(legs: &[(usize, usize)]) -> bool {
    legs.len() == 2 && legs[0].0 == legs[0].1 && legs[1].0 == legs[1].1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ProgramGraph;
    use wmm_litmus::suite;

    fn cycles_of(entry: &suite::SuiteEntry) -> (ProgramGraph, Vec<CriticalCycle>) {
        let g = ProgramGraph::from_litmus(&entry.test);
        let c = critical_cycles(&g);
        (g, c)
    }

    #[test]
    fn sb_has_exactly_one_cycle() {
        let (g, c) = cycles_of(&suite::store_buffering());
        assert_eq!(
            c.len(),
            1,
            "{:?}",
            c.iter().map(|x| x.describe(&g)).collect::<Vec<_>>()
        );
        let d = c[0].describe(&g);
        assert!(d.contains("->fr"), "{d}");
        assert!(!d.contains("->rf"), "{d}");
    }

    #[test]
    fn mp_has_exactly_one_cycle() {
        let (g, c) = cycles_of(&suite::message_passing());
        assert_eq!(c.len(), 1);
        let d = c[0].describe(&g);
        assert!(d.contains("->rf") && d.contains("->fr"), "{d}");
    }

    #[test]
    fn corr_and_coww_have_no_critical_cycles() {
        // Same-location legs are uniproc territory: coherence handles them,
        // no fence is ever needed, so no critical cycle exists.
        let (_, c) = cycles_of(&suite::corr());
        assert!(c.is_empty(), "{}", c.len());
        let (_, c) = cycles_of(&suite::coww());
        assert!(c.is_empty());
    }

    #[test]
    fn iriw_cycle_spans_four_threads() {
        let (_, c) = cycles_of(&suite::iriw_addrs());
        assert!(!c.is_empty());
        assert!(c.iter().any(|cy| cy.legs.len() == 4));
        // Rotation dedup: every cycle starts at its lowest thread.
        for cy in &c {
            let (g, _) = cycles_of(&suite::iriw_addrs());
            let t0 = g.accesses[cy.legs[0].0].thread;
            assert!(cy.legs.iter().all(|&(e, _)| g.accesses[e].thread >= t0));
        }
    }

    #[test]
    fn fenced_variants_have_same_cycles_as_bare() {
        // Fences sit between accesses; they do not change the cycle set,
        // only whether cycles are protected.
        let (_, bare) = cycles_of(&suite::store_buffering());
        let (_, fenced) = cycles_of(&suite::sb_fences());
        assert_eq!(bare.len(), fenced.len());
    }

    use wmm_sim::isa::{AccessOrd, FenceKind, Instr, Loc};

    fn load(loc: u64) -> Instr {
        Instr::Load {
            loc: Loc::SharedRw(loc),
            ord: AccessOrd::Plain,
        }
    }

    fn store(loc: u64) -> Instr {
        Instr::Store {
            loc: Loc::SharedRw(loc),
            ord: AccessOrd::Plain,
        }
    }

    #[test]
    fn single_thread_program_has_no_cycles() {
        // A critical cycle needs at least two threads; a single-thread
        // program short-circuits before any DFS.
        let g = ProgramGraph::from_streams("solo", &[vec![store(0), load(1), store(1)]], &[]);
        assert!(critical_cycles(&g).is_empty());
    }

    #[test]
    fn empty_and_fence_only_streams_have_no_cycles() {
        let g = ProgramGraph::from_streams("empty", &[vec![], vec![]], &[]);
        assert!(critical_cycles(&g).is_empty());

        let g = ProgramGraph::from_streams(
            "fences-only",
            &[
                vec![Instr::Fence(FenceKind::DmbIsh)],
                vec![
                    Instr::Fence(FenceKind::HwSync),
                    Instr::Fence(FenceKind::LwSync),
                ],
            ],
            &[],
        );
        assert!(g.accesses.is_empty());
        assert!(critical_cycles(&g).is_empty());
    }

    #[test]
    fn same_location_pair_in_one_thread_cannot_form_a_leg() {
        // t0: Wx; Wx; Wy   t1: Ry; Rx — the doubled store never pairs with
        // itself (a leg's exit must sit at a different location), but each
        // copy independently anchors cycles through the (Wx, Wy) leg.
        let g = ProgramGraph::from_streams(
            "dup",
            &[vec![store(0), store(0), store(1)], vec![load(1), load(0)]],
            &[],
        );
        let cycles = critical_cycles(&g);
        assert!(!cycles.is_empty());
        for cyc in &cycles {
            for &(entry, exit) in &cyc.legs {
                if entry != exit {
                    assert_ne!(
                        g.accesses[entry].loc,
                        g.accesses[exit].loc,
                        "multi-access leg endpoints must differ in location: {}",
                        cyc.describe(&g)
                    );
                }
            }
        }
        // Both Wx copies (access ids 0 and 1) appear as cycle entries.
        for wx in [0, 1] {
            assert!(
                cycles.iter().any(|c| c.legs.iter().any(|&(e, _)| e == wx)),
                "store copy {wx} should anchor a cycle"
            );
        }
    }

    fn cas(loc: u64) -> Instr {
        Instr::Cas {
            loc: Loc::SharedRw(loc),
            success_prob: 1.0,
        }
    }

    #[test]
    fn parallel_edge_graph_enumerates_each_rotation_class_once() {
        // Two RMWs on the same location admit parallel communication edges
        // (rf, fr and co between the same access pair, each a distinct
        // scenario). Canonical keys must stay pairwise distinct: the same
        // scenario must never appear under two rotations.
        let g = ProgramGraph::from_streams(
            "rmw-parallel",
            &[vec![cas(0), store(1)], vec![load(1), cas(0)]],
            &[],
        );
        let cycles = critical_cycles(&g);
        assert!(!cycles.is_empty());
        let keys: Vec<_> = cycles.iter().map(CriticalCycle::canonical_key).collect();
        let mut deduped = keys.clone();
        deduped.sort();
        deduped.dedup();
        assert_eq!(
            keys.len(),
            deduped.len(),
            "rotation-equivalent duplicates survived: {:?}",
            cycles.iter().map(|c| c.describe(&g)).collect::<Vec<_>>()
        );
        // Every emitted cycle is already in canonical rotation.
        for cyc in &cycles {
            let mut canon = cyc.clone();
            canon.canonicalize();
            assert_eq!(cyc.legs, canon.legs);
            assert_eq!(cyc.comms, canon.comms);
        }
    }

    #[test]
    fn dedup_cycles_collapses_hand_rotated_duplicates() {
        let (_, cycles) = cycles_of(&suite::message_passing());
        let cyc = cycles[0].clone();
        let mut rotated = cyc.clone();
        rotated.legs.rotate_left(1);
        rotated.comms.rotate_left(1);
        assert_ne!(rotated.legs, cyc.legs);
        assert_eq!(rotated.canonical_key(), cyc.canonical_key());
        let merged = dedup_cycles(vec![cyc.clone(), rotated]);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].legs, cyc.legs);
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn every_enumerated_cycle_is_structurally_critical(
            threads in prop::collection::vec(
                prop::collection::vec((0u8..2, 0u8..3), 0..5),
                1..4,
            )
        ) {
            let streams: Vec<Vec<Instr>> = threads
                .iter()
                .map(|ops| {
                    ops.iter()
                        .map(|&(role, loc)| {
                            if role == 0 {
                                load(u64::from(loc))
                            } else {
                                store(u64::from(loc))
                            }
                        })
                        .collect()
                })
                .collect();
            let g = ProgramGraph::from_streams("prop", &streams, &[]);
            for cyc in critical_cycles(&g) {
                prop_assert!(cyc.legs.len() >= 2);
                prop_assert_eq!(cyc.legs.len(), cyc.comms.len());

                // Threads alternate: pairwise distinct, rotation starting
                // at the lowest-numbered thread.
                let ts: Vec<usize> =
                    cyc.legs.iter().map(|&(e, _)| g.accesses[e].thread).collect();
                prop_assert_eq!(ts[0], *ts.iter().min().expect("nonempty"));
                let mut sorted = ts.clone();
                sorted.sort_unstable();
                sorted.dedup();
                prop_assert_eq!(sorted.len(), ts.len());

                for (i, &(entry, exit)) in cyc.legs.iter().enumerate() {
                    let (ea, xa) = (&g.accesses[entry], &g.accesses[exit]);
                    // Per-thread po-adjacent endpoints: same thread, entry
                    // program-before (or equal to) exit, and a genuine leg
                    // spans two locations.
                    prop_assert_eq!(ea.thread, xa.thread);
                    prop_assert!(ea.pos <= xa.pos);
                    if entry != exit {
                        prop_assert!(ea.loc != xa.loc);
                    }
                    // The communication edge into the next leg must be a
                    // valid conflict of the recorded kind.
                    let next = &g.accesses[cyc.legs[(i + 1) % cyc.legs.len()].0];
                    prop_assert!(CommKind::between(xa, next).contains(&cyc.comms[i]));
                }

                // The degenerate two-single-access shape is filtered.
                prop_assert!(!(cyc.legs.len() == 2
                    && cyc.legs[0].0 == cyc.legs[0].1
                    && cyc.legs[1].0 == cyc.legs[1].1));
            }
        }
    }
}
