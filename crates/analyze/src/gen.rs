//! diy-style litmus-test generation: enumerate relaxation cycles per
//! architecture and emit well-formed [`LitmusTest`] programs.
//!
//! Following diy (Alglave & Maranget), a test is built from a *critical
//! cycle*: a sequence of per-thread legs (one or two accesses each)
//! connected by communication edges from the [`CommKind`] vocabulary —
//! write-to-read (`rf`), read-to-write (`fr`), write-to-write (`co`).
//! The generator enumerates every cycle shape up to 4 threads / 8
//! accesses (one leg per thread, locations chained canonically along the
//! cycle), decorates program-order legs with an architecture's ordering
//! vocabulary (fences, dependencies, acquire/release), derives the
//! *interesting* outcome that witnesses the cycle's communication edges,
//! and names each test deterministically.
//!
//! Generation is pure and enumeration-ordered: byte-identical output
//! across reruns and worker counts, which is what lets the `axiom_diff`
//! differential harness pin a generated subset in CI.
//!
//! Outcome derivation: every load carries exactly one conjunct — the
//! value of its `rf` source store, or 0 when the cycle has it reading the
//! initial state ahead of an `fr`-ordered store. Store values are `1..k`
//! per location in the pinned coherence order, and locations written more
//! than once get a final-memory conjunct pinning the co-last store, so
//! the asserted outcome identifies the intended execution as sharply as
//! final state can.

use std::collections::{HashMap, HashSet};

use wmm_litmus::ops::{DepKind, FClass, LOp, LitmusTest};

use crate::cycles::CommKind;

/// Architecture whose ordering vocabulary decorates the cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenArch {
    /// TSO: full fences only.
    Tso,
    /// `ARMv8`: `dmb ish`/`ishst`/`ishld`, dependencies, acquire/release.
    ArmV8,
    /// POWER: `sync`/`lwsync` and dependencies.
    Power,
}

impl GenArch {
    /// Name segment used in generated test names.
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            GenArch::Tso => "tso",
            GenArch::ArmV8 => "arm",
            GenArch::Power => "power",
        }
    }
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Vocabulary source.
    pub arch: GenArch,
    /// Maximum threads (= legs) per cycle, capped at 4.
    pub max_threads: usize,
    /// Deterministic stride-sampled cap on the emitted list (`None` =
    /// everything).
    pub cap: Option<usize>,
}

impl GenConfig {
    /// The standard configuration for an architecture: up to 4 threads /
    /// 8 accesses, uncapped.
    #[must_use]
    pub fn standard(arch: GenArch) -> Self {
        GenConfig {
            arch,
            max_threads: 4,
            cap: None,
        }
    }
}

// --- cycle shapes ----------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Role {
    R,
    W,
}

/// One per-thread leg: a single access, or an entry/exit access pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Leg {
    entry: Role,
    exit: Role,
    double: bool,
}

const LEG_OPTIONS: [Leg; 6] = [
    Leg {
        entry: Role::R,
        exit: Role::R,
        double: false,
    },
    Leg {
        entry: Role::W,
        exit: Role::W,
        double: false,
    },
    Leg {
        entry: Role::R,
        exit: Role::R,
        double: true,
    },
    Leg {
        entry: Role::R,
        exit: Role::W,
        double: true,
    },
    Leg {
        entry: Role::W,
        exit: Role::R,
        double: true,
    },
    Leg {
        entry: Role::W,
        exit: Role::W,
        double: true,
    },
];

fn comm_between(exit: Role, entry: Role) -> Option<CommKind> {
    match (exit, entry) {
        (Role::W, Role::R) => Some(CommKind::Rf),
        (Role::R, Role::W) => Some(CommKind::Fr),
        (Role::W, Role::W) => Some(CommKind::Co),
        (Role::R, Role::R) => None,
    }
}

/// Communication kinds around the cycle, or `None` if a read-to-read
/// adjacency makes the shape invalid.
fn shape_comms(legs: &[Leg]) -> Option<Vec<CommKind>> {
    let n = legs.len();
    (0..n)
        .map(|i| comm_between(legs[i].exit, legs[(i + 1) % n].entry))
        .collect()
}

/// Location of each communication edge: single legs keep their thread on
/// one location, double legs switch to a fresh one. Needs at least two
/// double legs to close the cycle over ≥ 2 locations (Shasha–Snir).
fn shape_locs(legs: &[Leg]) -> Option<Vec<usize>> {
    let n = legs.len();
    let doubles = legs.iter().filter(|l| l.double).count();
    if doubles < 2 {
        return None;
    }
    let d0 = legs.iter().position(|l| l.double).expect("has a double");
    let mut locs = vec![0usize; n];
    let mut current = 0;
    for step in 0..n {
        let j = (d0 + step) % n;
        if step > 0 && legs[j].double {
            current += 1;
        }
        locs[j] = current;
    }
    Some(locs)
}

/// Keep one representative per rotation class: the lexicographically
/// smallest leg sequence.
fn is_canonical_rotation(legs: &[Leg]) -> bool {
    let n = legs.len();
    (1..n).all(|r| {
        let rotated: Vec<Leg> = (0..n).map(|i| legs[(i + r) % n]).collect();
        legs <= rotated.as_slice()
    })
}

// --- leg annotations -------------------------------------------------------

/// Ordering decoration on one (double) leg.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Anno {
    None,
    Fence(FClass),
    Dep(DepKind),
    Acq,
    Rel,
}

impl Anno {
    fn label(self) -> &'static str {
        match self {
            Anno::None => "",
            Anno::Fence(FClass::Full) => "+full",
            Anno::Fence(FClass::LwSync) => "+lwsync",
            Anno::Fence(FClass::StSt) => "+ishst",
            Anno::Fence(FClass::LdLdSt) => "+ishld",
            Anno::Dep(DepKind::Addr) => "+addr",
            Anno::Dep(DepKind::Data) => "+data",
            Anno::Dep(DepKind::Ctrl) => "+ctrl",
            Anno::Dep(DepKind::CtrlIsb) => "+ctrlisb",
            Anno::Acq => "+acq",
            Anno::Rel => "+rel",
        }
    }

    /// Can this annotation decorate `leg`? Dependencies hang off the
    /// entry load (data feeds a stored value only), acquire upgrades the
    /// entry load, release the exit store; every mechanism needs a pair.
    fn valid_on(self, leg: Leg) -> bool {
        if !leg.double {
            return self == Anno::None;
        }
        match self {
            Anno::None | Anno::Fence(_) => true,
            Anno::Dep(k) => leg.entry == Role::R && (k != DepKind::Data || leg.exit == Role::W),
            Anno::Acq => leg.entry == Role::R,
            Anno::Rel => leg.exit == Role::W,
        }
    }
}

fn vocabulary(arch: GenArch) -> Vec<Anno> {
    match arch {
        GenArch::Tso => vec![Anno::None, Anno::Fence(FClass::Full)],
        GenArch::ArmV8 => vec![
            Anno::None,
            Anno::Fence(FClass::Full),
            Anno::Fence(FClass::StSt),
            Anno::Fence(FClass::LdLdSt),
            Anno::Dep(DepKind::Addr),
            Anno::Dep(DepKind::Ctrl),
            Anno::Dep(DepKind::CtrlIsb),
            Anno::Acq,
            Anno::Rel,
        ],
        GenArch::Power => vec![
            Anno::None,
            Anno::Fence(FClass::Full),
            Anno::Fence(FClass::LwSync),
            Anno::Dep(DepKind::Addr),
            Anno::Dep(DepKind::Data),
            Anno::Dep(DepKind::Ctrl),
        ],
    }
}

/// Annotation assignments for one shape. Two-thread shapes get the full
/// cartesian product; wider shapes get the all-bare program, each
/// annotation applied uniformly, and each annotation on exactly one leg —
/// the classic diy decoration set, kept polynomial.
fn assignments(legs: &[Leg], vocab: &[Anno]) -> Vec<Vec<Anno>> {
    let n = legs.len();
    let mut out: Vec<Vec<Anno>> = vec![];
    let mut seen: HashSet<Vec<Anno>> = HashSet::new();
    let mut push = |a: Vec<Anno>, out: &mut Vec<Vec<Anno>>| {
        if seen.insert(a.clone()) {
            out.push(a);
        }
    };
    if n == 2 {
        for &a0 in vocab.iter().filter(|a| a.valid_on(legs[0])) {
            for &a1 in vocab.iter().filter(|a| a.valid_on(legs[1])) {
                push(vec![a0, a1], &mut out);
            }
        }
        return out;
    }
    push(vec![Anno::None; n], &mut out);
    for &a in vocab.iter().skip(1) {
        let uniform: Vec<Anno> = legs
            .iter()
            .map(|&l| if a.valid_on(l) { a } else { Anno::None })
            .collect();
        push(uniform, &mut out);
        for p in 0..n {
            if a.valid_on(legs[p]) {
                let mut single = vec![Anno::None; n];
                single[p] = a;
                push(single, &mut out);
            }
        }
    }
    out
}

// --- emission --------------------------------------------------------------

struct AccessRef {
    thread: usize,
    op: usize,
    is_store: bool,
    loc: usize,
    reg: Option<usize>,
}

/// Deterministic per-location topological order over co-precedence pairs
/// (Kahn, smallest store index first). `None` on contradiction.
fn pin_coherence(stores: &[usize], pairs: &[(usize, usize)]) -> Option<Vec<usize>> {
    let mut indeg: HashMap<usize, usize> = stores.iter().map(|&s| (s, 0)).collect();
    let mut adj: HashMap<usize, Vec<usize>> = HashMap::new();
    for &(a, b) in pairs {
        adj.entry(a).or_default().push(b);
        *indeg.get_mut(&b)? += 1;
    }
    let mut order = vec![];
    let mut ready: Vec<usize> = stores.iter().copied().filter(|s| indeg[s] == 0).collect();
    while !ready.is_empty() {
        ready.sort_unstable();
        let s = ready.remove(0);
        order.push(s);
        for &nxt in adj.get(&s).into_iter().flatten() {
            let d = indeg.get_mut(&nxt).expect("known store");
            *d -= 1;
            if *d == 0 {
                ready.push(nxt);
            }
        }
    }
    (order.len() == stores.len()).then_some(order)
}

#[allow(clippy::too_many_lines)] // linear emission pipeline; splitting obscures the data flow
fn emit(
    arch: GenArch,
    legs: &[Leg],
    comms: &[CommKind],
    locs: &[usize],
    annos: &[Anno],
) -> Option<LitmusTest> {
    let n = legs.len();
    let mut threads: Vec<Vec<LOp>> = vec![vec![]; n];
    let mut store_deps = vec![];
    let mut accesses: Vec<AccessRef> = vec![]; // entry/exit refs per leg, flat
    let mut entry_of = vec![0usize; n];
    let mut exit_of = vec![0usize; n];

    for (t, (&leg, &anno)) in legs.iter().zip(annos).enumerate() {
        let entry_loc = locs[(t + n - 1) % n];
        let exit_loc = locs[t];
        let mut reg = 0usize;
        let mut push_access = |ops: &mut Vec<LOp>,
                               accesses: &mut Vec<AccessRef>,
                               role: Role,
                               loc: usize,
                               acquire: bool,
                               release: bool,
                               dep: Option<(usize, DepKind)>|
         -> usize {
            let op = ops.len();
            match role {
                Role::W => ops.push(LOp::Store {
                    var: loc,
                    val: 0, // patched after coherence pinning
                    release,
                }),
                Role::R => {
                    ops.push(LOp::Load {
                        var: loc,
                        reg,
                        acquire,
                        dep,
                    });
                    reg += 1;
                }
            }
            accesses.push(AccessRef {
                thread: t,
                op,
                is_store: role == Role::W,
                loc,
                reg: (role == Role::R).then(|| reg - 1),
            });
            accesses.len() - 1
        };

        if leg.double {
            let acq = anno == Anno::Acq;
            entry_of[t] = push_access(
                &mut threads[t],
                &mut accesses,
                leg.entry,
                entry_loc,
                acq,
                false,
                None,
            );
            if let Anno::Fence(c) = anno {
                threads[t].push(LOp::Fence(c));
            }
            let rel = anno == Anno::Rel;
            // Dependencies always source from the entry load (op index 0).
            let dep = match anno {
                Anno::Dep(k) if leg.exit == Role::R => Some((0, k)),
                _ => None,
            };
            exit_of[t] = push_access(
                &mut threads[t],
                &mut accesses,
                leg.exit,
                exit_loc,
                false,
                rel,
                dep,
            );
            if let Anno::Dep(k) = anno {
                if leg.exit == Role::W {
                    let store_op = accesses[exit_of[t]].op;
                    store_deps.push((t, store_op, 0, k));
                }
            }
        } else {
            entry_of[t] = push_access(
                &mut threads[t],
                &mut accesses,
                leg.entry,
                exit_loc,
                false,
                false,
                None,
            );
            exit_of[t] = entry_of[t];
        }
    }

    // Communication edges -> rf pairs and co-precedence pairs.
    let num_locs = locs.iter().max().map_or(0, |m| m + 1);
    let mut rf_of: HashMap<usize, usize> = HashMap::new(); // load access -> store access
    let mut fr_pairs: Vec<(usize, usize)> = vec![]; // (load access, store access), cycle order
    let mut co_pairs: Vec<Vec<(usize, usize)>> = vec![vec![]; num_locs];
    for (i, &comm) in comms.iter().enumerate() {
        let from = exit_of[i];
        let to = entry_of[(i + 1) % n];
        match comm {
            CommKind::Rf => {
                rf_of.insert(to, from);
            }
            CommKind::Fr => {
                fr_pairs.push((from, to));
            }
            CommKind::Co => {
                co_pairs[accesses[from].loc].push((from, to));
            }
        }
    }
    // A read with both an rf-in and an fr-out (single read legs) orders its
    // source store coherence-before the fr target.
    for &(load, later) in &fr_pairs {
        if let Some(&src) = rf_of.get(&load) {
            co_pairs[accesses[src].loc].push((src, later));
        }
    }

    // Pin coherence per location; assign values 1..k along it.
    let mut val_of: HashMap<usize, u32> = HashMap::new();
    let mut memory = vec![];
    for (loc, pairs) in co_pairs.iter().enumerate() {
        let stores: Vec<usize> = (0..accesses.len())
            .filter(|&a| accesses[a].is_store && accesses[a].loc == loc)
            .collect();
        let order = pin_coherence(&stores, pairs)?;
        for (i, &s) in order.iter().enumerate() {
            let v = u32::try_from(i + 1).expect("litmus-sized");
            val_of.insert(s, v);
            let a = &accesses[s];
            if let LOp::Store { val, .. } = &mut threads[a.thread][a.op] {
                *val = v;
            }
        }
        if order.len() >= 2 {
            memory.push((loc, val_of[order.last().expect("non-empty")]));
        }
    }

    // Register conjuncts: rf-sourced loads assert the read value, fr-only
    // loads assert the initial 0.
    let mut interesting = vec![];
    for (a, acc) in accesses.iter().enumerate() {
        if acc.is_store {
            continue;
        }
        let reg = acc.reg.expect("loads carry a register");
        let v = rf_of.get(&a).map_or(0, |src| val_of[src]);
        interesting.push((acc.thread, reg, v));
    }

    // Deterministic name: roles+annotations per leg, comm kinds between.
    let mut name = format!("gen/{}/", arch.tag());
    for (i, (&leg, &anno)) in legs.iter().zip(annos).enumerate() {
        if i > 0 {
            name.push(';');
        }
        name.push(match leg.entry {
            Role::R => 'R',
            Role::W => 'W',
        });
        if leg.double {
            name.push(match leg.exit {
                Role::R => 'R',
                Role::W => 'W',
            });
        }
        name.push_str(anno.label());
        name.push('>');
        name.push_str(comms[i].label());
    }

    Some(LitmusTest {
        name,
        threads,
        interesting,
        store_deps,
        memory,
    })
}

// --- driver ----------------------------------------------------------------

/// Enumerate every decorated cycle shape for `cfg`, in a fixed order.
#[must_use]
pub fn generate(cfg: &GenConfig) -> Vec<LitmusTest> {
    let vocab = vocabulary(cfg.arch);
    let mut out = vec![];
    for n in 2..=cfg.max_threads.min(4) {
        // Mixed-radix enumeration over leg options, lexicographic.
        let mut idx = vec![0usize; n];
        loop {
            let legs: Vec<Leg> = idx.iter().map(|&i| LEG_OPTIONS[i]).collect();
            if is_canonical_rotation(&legs) {
                if let (Some(comms), Some(locs)) = (shape_comms(&legs), shape_locs(&legs)) {
                    for annos in assignments(&legs, &vocab) {
                        if let Some(test) = emit(cfg.arch, &legs, &comms, &locs, &annos) {
                            out.push(test);
                        }
                    }
                }
            }
            // Increment.
            let mut k = n;
            loop {
                if k == 0 {
                    break;
                }
                k -= 1;
                idx[k] += 1;
                if idx[k] < LEG_OPTIONS.len() {
                    break;
                }
                idx[k] = 0;
            }
            if idx.iter().all(|&i| i == 0) {
                break;
            }
        }
    }
    if let Some(cap) = cfg.cap {
        out = stride_sample(out, cap);
    }
    out
}

/// Deterministic stride sample of `items` down to at most `cap` entries.
fn stride_sample<T>(items: Vec<T>, cap: usize) -> Vec<T> {
    let len = items.len();
    if cap == 0 || len <= cap {
        return items;
    }
    items
        .into_iter()
        .enumerate()
        .filter(|&(i, _)| i * cap / len < (i + 1) * cap / len)
        .map(|(_, x)| x)
        .collect()
}

/// The full generated corpus: all three architectures' standard
/// configurations, structurally deduplicated (the TSO vocabulary is a
/// subset of the others, so bare shapes would otherwise appear three
/// times).
#[must_use]
pub fn generate_all() -> Vec<LitmusTest> {
    let mut out: Vec<LitmusTest> = vec![];
    let mut seen: HashSet<String> = HashSet::new();
    for arch in [GenArch::Tso, GenArch::ArmV8, GenArch::Power] {
        for test in generate(&GenConfig::standard(arch)) {
            let key = format!("{:?}|{:?}|{:?}", test.threads, test.store_deps, test.memory);
            if seen.insert(key) {
                out.push(test);
            }
        }
    }
    out
}

/// The slice of [`generate_all`] that is tractable for the *operational*
/// explorer, for dual-oracle differential runs.
///
/// The explorer's memoised state space grows with the product of thread
/// count and store count (every store carries a per-thread propagation
/// mask under non-multi-copy-atomic models), and profiling shows a sharp
/// cliff: `threads * stores <= 12` keeps the worst test family under a few
/// seconds across all four models, while the families past the bound run
/// for minutes each. The axiomatic oracle handles the full corpus either
/// way; this filter only bounds what the differential harness feeds to
/// both oracles. The cut retains ≥ 1,000 tests (asserted in this module's
/// tests and re-checked by `axiom_diff`).
#[must_use]
pub fn differential_corpus() -> Vec<LitmusTest> {
    generate_all()
        .into_iter()
        .filter(|t| {
            let stores = t.threads.iter().flatten().filter(|o| o.is_store()).count();
            t.threads.len() * stores <= 12
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycles::critical_cycles;
    use crate::graph::ProgramGraph;
    use wmm_litmus::lint::lint_corpus;

    #[test]
    fn corpus_is_large_lint_clean_and_uniquely_named() {
        let tests = generate_all();
        assert!(
            tests.len() >= 1000,
            "generated corpus too small: {}",
            tests.len()
        );
        let findings = lint_corpus(tests.iter());
        assert!(findings.is_empty(), "lint findings: {findings:?}");
        assert!(
            differential_corpus().len() >= 1000,
            "explorer-tractable slice fell below the acceptance floor"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_all();
        let b = generate_all();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(format!("{x:?}"), format!("{y:?}"));
        }
    }

    #[test]
    fn every_test_contains_a_critical_cycle() {
        // The generated programs ARE critical cycles; the enumerator must
        // find at least one in each (sampled for test-suite speed, stride
        // over the whole corpus).
        let tests = stride_sample(generate_all(), 120);
        for t in &tests {
            let g = ProgramGraph::from_litmus(t);
            assert!(
                !critical_cycles(&g).is_empty(),
                "{}: no critical cycle found",
                t.name
            );
        }
    }

    #[test]
    fn cap_is_a_deterministic_prefix_sample() {
        let full = generate(&GenConfig::standard(GenArch::Tso));
        let capped = generate(&GenConfig {
            cap: Some(50),
            ..GenConfig::standard(GenArch::Tso)
        });
        assert!(capped.len() <= 50);
        let names: HashSet<&str> = full.iter().map(|t| t.name.as_str()).collect();
        for t in &capped {
            assert!(
                names.contains(t.name.as_str()),
                "{} not in full set",
                t.name
            );
        }
    }

    #[test]
    fn fixed_sample_round_trips_through_fence_synth() {
        use crate::synth::{synthesize, CostModel, SynthConfig};
        use wmm_litmus::ops::ModelKind;

        let costs = CostModel::static_table();
        let tests = stride_sample(generate_all(), 40);
        for t in &tests {
            let g = ProgramGraph::from_litmus(t);
            for (arch, model) in [
                (GenArch::ArmV8, ModelKind::ArmV8),
                (GenArch::Power, ModelKind::Power),
            ] {
                let _ = arch;
                // Must not panic; infeasible placements surface as Err.
                let _ = synthesize(&g, SynthConfig::for_model(model), &costs);
            }
        }
    }
}
