//! The memory-access program graph the static analysis runs on.
//!
//! A [`ProgramGraph`] is the shared-memory skeleton of a concurrent
//! program: per-thread sequences of loads/stores/RMWs over interned
//! locations, fence markers sitting *between* accesses, and explicit
//! dependency annotations. Two frontends build it:
//!
//! * [`ProgramGraph::from_litmus`] — from a `wmm-litmus` test, so static
//!   verdicts can be cross-validated against the dynamic explorer;
//! * [`ProgramGraph::from_streams`] — from platform-lowered instruction
//!   streams (the JVM JIT output, kernel macro-site streams), so shipped
//!   fencing strategies get the same treatment.
//!
//! Instruction streams carry no dependency information (`Instr` has no
//! register semantics), so stream frontends pass [`StreamDep`] annotations
//! describing the dependencies the surrounding idiom establishes.

use wmm_litmus::ops::{DepKind, FClass, LOp, LitmusTest};
use wmm_sim::isa::{Instr, Loc};

/// One shared-memory access.
// The four flags are two role bits (load/store, both for RMWs) and the
// ldar/stlr attributes — independent axes, not a disguised state machine.
#[allow(clippy::struct_excessive_bools)]
#[derive(Debug, Clone)]
pub struct Access {
    /// Owning thread.
    pub thread: usize,
    /// Index among the thread's accesses (program-order position).
    pub pos: usize,
    /// Has a load role (loads and RMWs).
    pub is_load: bool,
    /// Has a store role (stores and RMWs).
    pub is_store: bool,
    /// Interned location id (index into [`ProgramGraph::loc_names`]).
    pub loc: usize,
    /// Whether other threads can observe this location.
    pub shared: bool,
    /// Acquire attribute (`ldar`).
    pub acquire: bool,
    /// Release attribute (`stlr`).
    pub release: bool,
}

impl Access {
    /// The store-role alternatives this access can play in a fence-coverage
    /// question: `[true]` for stores, `[false]` for loads, both for RMWs.
    #[must_use]
    pub fn roles(&self) -> Vec<bool> {
        match (self.is_store, self.is_load) {
            (true, true) => vec![true, false],
            (true, false) => vec![true],
            _ => vec![false],
        }
    }

    /// Short label: `W` / `R` / `U` (update) plus the location name.
    #[must_use]
    pub fn label(&self, loc_names: &[String]) -> String {
        let role = match (self.is_store, self.is_load) {
            (true, true) => "U",
            (true, false) => "W",
            _ => "R",
        };
        format!("{role}{}", loc_names[self.loc])
    }
}

/// A fence marker between two accesses of one thread.
#[derive(Debug, Clone)]
pub struct FenceNode {
    /// Owning thread.
    pub thread: usize,
    /// Number of accesses of the thread that precede the fence: the fence
    /// sits between access positions `slot - 1` and `slot`.
    pub slot: usize,
    /// Semantic class.
    pub class: FClass,
    /// Mnemonic for reports (`dmb ish`, `lwsync`, …).
    pub mnemonic: String,
}

/// A dependency annotation for a stream frontend: instruction `from` (a
/// load) orders instruction `to` within `thread`, with litmus semantics.
#[derive(Debug, Clone, Copy)]
pub struct StreamDep {
    /// Thread index.
    pub thread: usize,
    /// Source instruction index (must be a load or RMW).
    pub from: usize,
    /// Dependent instruction index (must be an access).
    pub to: usize,
    /// Dependency kind.
    pub kind: DepKind,
}

/// The program graph.
#[derive(Debug, Clone)]
pub struct ProgramGraph {
    /// Program name (for reports).
    pub name: String,
    /// All accesses; ids index into this vector.
    pub accesses: Vec<Access>,
    /// Access ids per thread, in program order.
    pub threads: Vec<Vec<usize>>,
    /// Fence markers.
    pub fences: Vec<FenceNode>,
    /// Dependencies between same-thread accesses `(from, to, kind)`, by
    /// access id.
    pub deps: Vec<(usize, usize, DepKind)>,
    /// Interned location names.
    pub loc_names: Vec<String>,
}

fn litmus_var_name(v: usize) -> String {
    match v {
        0 => "x".into(),
        1 => "y".into(),
        2 => "z".into(),
        3 => "w".into(),
        n => format!("v{n}"),
    }
}

fn fclass_mnemonic(class: FClass) -> &'static str {
    match class {
        FClass::Full => "dmb ish/sync",
        FClass::LwSync => "lwsync",
        FClass::StSt => "dmb ishst",
        FClass::LdLdSt => "dmb ishld",
    }
}

fn loc_name(loc: Loc) -> String {
    match loc {
        Loc::Private(n) => format!("p{n:x}"),
        Loc::SharedRo(n) => format!("ro{n:x}"),
        Loc::SharedRw(n) => format!("g{n:x}"),
    }
}

impl ProgramGraph {
    /// Build the graph of a litmus test. Variables intern as locations
    /// `x, y, z, w, v4…`; load- and store-side dependencies both carry over.
    pub fn from_litmus(test: &LitmusTest) -> Self {
        let nvars = test.num_vars();
        let mut g = ProgramGraph {
            name: test.name.clone(),
            accesses: vec![],
            threads: vec![],
            fences: vec![],
            deps: vec![],
            loc_names: (0..nvars).map(litmus_var_name).collect(),
        };
        for (t, ops) in test.threads.iter().enumerate() {
            let mut ids: Vec<usize> = vec![];
            let mut op_to_access: Vec<Option<usize>> = vec![None; ops.len()];
            for (j, op) in ops.iter().enumerate() {
                match *op {
                    LOp::Store { var, release, .. } => {
                        let id = g.accesses.len();
                        g.accesses.push(Access {
                            thread: t,
                            pos: ids.len(),
                            is_load: false,
                            is_store: true,
                            loc: var,
                            shared: true,
                            acquire: false,
                            release,
                        });
                        op_to_access[j] = Some(id);
                        ids.push(id);
                    }
                    LOp::Load { var, acquire, .. } => {
                        let id = g.accesses.len();
                        g.accesses.push(Access {
                            thread: t,
                            pos: ids.len(),
                            is_load: true,
                            is_store: false,
                            loc: var,
                            shared: true,
                            acquire,
                            release: false,
                        });
                        op_to_access[j] = Some(id);
                        ids.push(id);
                    }
                    LOp::Fence(class) => g.fences.push(FenceNode {
                        thread: t,
                        slot: ids.len(),
                        class,
                        mnemonic: fclass_mnemonic(class).into(),
                    }),
                }
            }
            for (j, _) in ops.iter().enumerate() {
                if let Some((src, kind)) = test.dep_of(t, j) {
                    if let (Some(from), Some(to)) = (op_to_access[src], op_to_access[j]) {
                        g.deps.push((from, to, kind));
                    }
                }
            }
            g.threads.push(ids);
        }
        g
    }

    /// Parallel composition: the disjoint union of `parts` as one
    /// multi-function program. Threads concatenate in part order and each
    /// part's locations are re-interned under a `f{i}.` prefix, so parts
    /// share no location even when names collide — every critical cycle
    /// of the union lies inside a single part, which is what makes the
    /// whole-program analysis decompose it exactly.
    #[must_use]
    pub fn disjoint_union(name: impl Into<String>, parts: &[&ProgramGraph]) -> Self {
        let mut g = ProgramGraph {
            name: name.into(),
            accesses: vec![],
            threads: vec![],
            fences: vec![],
            deps: vec![],
            loc_names: vec![],
        };
        for (i, part) in parts.iter().enumerate() {
            let access_off = g.accesses.len();
            let thread_off = g.threads.len();
            let loc_off = g.loc_names.len();
            g.loc_names
                .extend(part.loc_names.iter().map(|n| format!("f{i}.{n}")));
            for a in &part.accesses {
                let mut a = a.clone();
                a.thread += thread_off;
                a.loc += loc_off;
                g.accesses.push(a);
            }
            for ids in &part.threads {
                g.threads
                    .push(ids.iter().map(|&id| id + access_off).collect());
            }
            for f in &part.fences {
                let mut f = f.clone();
                f.thread += thread_off;
                g.fences.push(f);
            }
            for &(from, to, kind) in &part.deps {
                g.deps.push((from + access_off, to + access_off, kind));
            }
        }
        g
    }

    /// Build the graph of platform-lowered instruction streams.
    ///
    /// `Load`/`Store` become accesses (with their acquire/release
    /// attributes), `Cas` becomes an RMW access, fences map through
    /// [`FClass::of_fence`] (compiler barriers and bare `isb` carry no
    /// inter-thread ordering and vanish). Private accesses cannot conflict
    /// and are dropped. `deps` indices refer to instruction positions
    /// within each stream.
    pub fn from_streams(
        name: impl Into<String>,
        threads: &[Vec<Instr>],
        deps: &[StreamDep],
    ) -> Self {
        let mut g = ProgramGraph {
            name: name.into(),
            accesses: vec![],
            threads: vec![],
            fences: vec![],
            deps: vec![],
            loc_names: vec![],
        };
        let mut locs: Vec<Loc> = vec![];
        let intern = |locs: &mut Vec<Loc>, names: &mut Vec<String>, l: Loc| -> usize {
            if let Some(i) = locs.iter().position(|&k| k == l) {
                return i;
            }
            locs.push(l);
            names.push(loc_name(l));
            locs.len() - 1
        };
        let mut instr_to_access: Vec<Vec<Option<usize>>> = vec![];
        for (t, instrs) in threads.iter().enumerate() {
            let mut ids: Vec<usize> = vec![];
            let mut map: Vec<Option<usize>> = vec![None; instrs.len()];
            for (j, instr) in instrs.iter().enumerate() {
                let acc = match *instr {
                    Instr::Load { loc, ord } => Some((true, false, loc, ord)),
                    Instr::Store { loc, ord } => Some((false, true, loc, ord)),
                    Instr::Cas { loc, .. } => {
                        Some((true, true, loc, wmm_sim::isa::AccessOrd::Plain))
                    }
                    Instr::Fence(kind) => {
                        if let Some(class) = FClass::of_fence(kind) {
                            g.fences.push(FenceNode {
                                thread: t,
                                slot: ids.len(),
                                class,
                                mnemonic: format!("{kind:?}"),
                            });
                        }
                        None
                    }
                    _ => None,
                };
                if let Some((is_load, is_store, loc, ord)) = acc {
                    if matches!(loc, Loc::Private(_)) {
                        continue;
                    }
                    let id = g.accesses.len();
                    g.accesses.push(Access {
                        thread: t,
                        pos: ids.len(),
                        is_load,
                        is_store,
                        loc: intern(&mut locs, &mut g.loc_names, loc),
                        shared: true,
                        acquire: ord == wmm_sim::isa::AccessOrd::Acquire,
                        release: ord == wmm_sim::isa::AccessOrd::Release,
                    });
                    map[j] = Some(id);
                    ids.push(id);
                }
            }
            g.threads.push(ids);
            instr_to_access.push(map);
        }
        for d in deps {
            if let (Some(from), Some(to)) = (
                instr_to_access[d.thread][d.from],
                instr_to_access[d.thread][d.to],
            ) {
                g.deps.push((from, to, d.kind));
            }
        }
        g
    }

    /// Fences of `a`'s thread lying strictly between accesses `a` and `b`
    /// (both access ids of the same thread, `a` earlier), as indices into
    /// [`ProgramGraph::fences`].
    #[must_use]
    pub fn fences_between(&self, a: usize, b: usize) -> Vec<usize> {
        let (a, b) = (&self.accesses[a], &self.accesses[b]);
        debug_assert_eq!(a.thread, b.thread);
        debug_assert!(a.pos < b.pos);
        self.fences
            .iter()
            .enumerate()
            .filter(|(_, f)| f.thread == a.thread && f.slot > a.pos && f.slot <= b.pos)
            .map(|(i, _)| i)
            .collect()
    }

    /// Dependency from access `a` to access `b`, if annotated.
    #[must_use]
    pub fn dep_between(&self, a: usize, b: usize) -> Option<DepKind> {
        self.deps
            .iter()
            .find(|&&(f, t, _)| f == a && t == b)
            .map(|&(_, _, k)| k)
    }

    /// Human-readable access description, e.g. `t1:Rx`.
    #[must_use]
    pub fn describe(&self, id: usize) -> String {
        let a = &self.accesses[id];
        format!("t{}:{}", a.thread, a.label(&self.loc_names))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmm_litmus::suite;
    use wmm_sim::isa::{AccessOrd, FenceKind};

    #[test]
    fn litmus_mp_graph_shape() {
        let entry = suite::mp_fences();
        let g = ProgramGraph::from_litmus(&entry.test);
        assert_eq!(g.threads.len(), 2);
        assert_eq!(g.accesses.len(), 4);
        assert_eq!(g.fences.len(), 2);
        // The writer's fence sits between its two stores.
        let (a, b) = (g.threads[0][0], g.threads[0][1]);
        assert_eq!(g.fences_between(a, b).len(), 1);
        assert_eq!(g.describe(g.threads[0][0]), "t0:Wx");
        assert_eq!(g.describe(g.threads[1][1]), "t1:Rx");
    }

    #[test]
    fn litmus_deps_carry_over_both_sides() {
        // LB+datas has store-side deps; MP+dmb.st+addr a load-side dep.
        let lb = ProgramGraph::from_litmus(&suite::lb_deps().test);
        assert_eq!(lb.deps.len(), 2);
        let mp = ProgramGraph::from_litmus(&suite::mp_dmbst_addr().test);
        assert_eq!(mp.deps.len(), 1);
        assert_eq!(mp.deps[0].2, DepKind::Addr);
    }

    #[test]
    fn stream_frontend_interns_and_maps_fences() {
        let threads = vec![
            vec![
                Instr::Store {
                    loc: Loc::SharedRw(1),
                    ord: AccessOrd::Plain,
                },
                Instr::Fence(FenceKind::DmbIshSt),
                Instr::Fence(FenceKind::Compiler),
                Instr::Store {
                    loc: Loc::SharedRw(2),
                    ord: AccessOrd::Plain,
                },
            ],
            vec![
                Instr::Load {
                    loc: Loc::SharedRw(2),
                    ord: AccessOrd::Plain,
                },
                Instr::Load {
                    loc: Loc::SharedRw(1),
                    ord: AccessOrd::Plain,
                },
            ],
        ];
        let deps = [StreamDep {
            thread: 1,
            from: 0,
            to: 1,
            kind: DepKind::Addr,
        }];
        let g = ProgramGraph::from_streams("mp-stream", &threads, &deps);
        assert_eq!(g.accesses.len(), 4);
        assert_eq!(g.fences.len(), 1, "compiler barrier has no class");
        assert_eq!(g.fences[0].class, FClass::StSt);
        assert_eq!(g.deps.len(), 1);
        // Locations intern by value: both threads see the same two ids.
        assert_eq!(
            g.accesses[g.threads[0][0]].loc,
            g.accesses[g.threads[1][1]].loc
        );
    }

    #[test]
    fn private_accesses_are_dropped() {
        let threads = vec![vec![
            Instr::Store {
                loc: Loc::Private(7),
                ord: AccessOrd::Plain,
            },
            Instr::Load {
                loc: Loc::SharedRw(1),
                ord: AccessOrd::Plain,
            },
        ]];
        let g = ProgramGraph::from_streams("priv", &threads, &[]);
        assert_eq!(g.accesses.len(), 1);
        assert!(g.accesses[0].is_load);
    }

    #[test]
    fn cas_is_an_rmw() {
        let threads = vec![vec![Instr::Cas {
            loc: Loc::SharedRw(3),
            success_prob: 0.9,
        }]];
        let g = ProgramGraph::from_streams("cas", &threads, &[]);
        assert!(g.accesses[0].is_load && g.accesses[0].is_store);
        assert_eq!(g.accesses[0].roles(), vec![true, false]);
    }

    #[test]
    fn disjoint_union_keeps_parts_separate() {
        use wmm_litmus::suite;
        let sb = ProgramGraph::from_litmus(&suite::store_buffering().test);
        let mp = ProgramGraph::from_litmus(&suite::message_passing().test);
        let u = ProgramGraph::disjoint_union("sb+mp", &[&sb, &mp]);
        assert_eq!(u.threads.len(), 4);
        assert_eq!(u.accesses.len(), sb.accesses.len() + mp.accesses.len());
        // Same variable names in both parts intern as distinct locations.
        assert_eq!(u.loc_names.len(), sb.loc_names.len() + mp.loc_names.len());
        assert!(u.loc_names.iter().any(|n| n == "f0.x"));
        assert!(u.loc_names.iter().any(|n| n == "f1.x"));
        // Access ids, thread ids and positions stay consistent.
        for (t, ids) in u.threads.iter().enumerate() {
            for (pos, &id) in ids.iter().enumerate() {
                assert_eq!(u.accesses[id].thread, t);
                assert_eq!(u.accesses[id].pos, pos);
            }
        }
        // The union has exactly the parts' cycles: one from SB, one from MP.
        assert_eq!(crate::cycles::critical_cycles(&u).len(), 2);
    }
}
