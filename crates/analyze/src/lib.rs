//! Static fence-placement analysis for the wmmbench workspace.
//!
//! The paper ("Benchmarking weak memory models") measures what a fencing
//! strategy *costs*; this crate supplies the complementary static view of
//! whether it is *correct*, following "Don't sit on the fence" (Alglave,
//! Kroening, Nimal, Poetzl): a program needs a fence exactly where a
//! Shasha–Snir critical cycle would otherwise admit a non-SC execution.
//!
//! Pipeline:
//!
//! 1. [`graph::ProgramGraph`] — the memory-access skeleton, built from a
//!    litmus test or from platform-lowered instruction streams;
//! 2. [`cycles::critical_cycles`] — every critical cycle, one per
//!    communication-edge orientation;
//! 3. [`check::check_cycle`] — the per-model protection check (a
//!    constraint graph over `exec`/`prop` events mirroring the
//!    operational explorer's semantics);
//! 4. [`report::analyze`] — whole-program verdict: unprotected cycles as
//!    errors, single-fence-removal-invariant fences as redundancy lints
//!    with Eq. 1 / Eq. 2 savings estimates.
//!
//! The static verdict is cross-validated against the dynamic explorer in
//! `tests/differential.rs`: for every litmus-suite entry and every model,
//! "all cycles protected" must coincide with "the explorer cannot reach
//! the weak outcome".

pub mod check;
pub mod cycles;
pub mod graph;
pub mod report;

pub use check::{check_cycle, check_cycle_without, CycleCheck};
pub use cycles::{critical_cycles, CommKind, CriticalCycle};
pub use graph::{Access, FenceNode, ProgramGraph, StreamDep};
pub use report::{analyze, Analysis, RedundantFence, UnprotectedCycle};
