//! Static fence-placement analysis for the wmmbench workspace.
//!
//! The paper ("Benchmarking weak memory models") measures what a fencing
//! strategy *costs*; this crate supplies the complementary static view of
//! whether it is *correct*, following "Don't sit on the fence" (Alglave,
//! Kroening, Nimal, Poetzl): a program needs a fence exactly where a
//! Shasha–Snir critical cycle would otherwise admit a non-SC execution.
//!
//! Pipeline:
//!
//! 1. [`graph::ProgramGraph`] — the memory-access skeleton, built from a
//!    litmus test or from platform-lowered instruction streams;
//! 2. [`cycles::critical_cycles`] — every critical cycle, one per
//!    communication-edge orientation;
//! 3. [`check::check_cycle`] — the per-model protection check (a
//!    constraint graph over `exec`/`prop` events mirroring the
//!    operational explorer's semantics);
//! 4. [`report::analyze`] — whole-program verdict: unprotected cycles as
//!    errors, single-fence-removal-invariant fences as redundancy lints
//!    with Eq. 1 / Eq. 2 savings estimates.
//!
//! The static verdict is cross-validated against the dynamic explorer in
//! `tests/differential.rs`: for every litmus-suite entry and every model,
//! "all cycles protected" must coincide with "the explorer cannot reach
//! the weak outcome".
//!
//! 5. [`synth::synthesize`] inverts the check: given a bare program and a
//!    model, find the cheapest instrument placement (fences,
//!    acquire/release upgrades, artificial dependencies) protecting every
//!    critical cycle, priced by the paper's Eq. 1/Eq. 2 cost model.
//! 6. [`gen::generate_all`] runs the cycle vocabulary in reverse,
//!    diy-style: enumerate critical-cycle shapes and decorate them with
//!    each architecture's ordering vocabulary, emitting thousands of
//!    well-formed litmus tests for the `axiom_diff` differential harness.

#![warn(clippy::pedantic)]
// Pedantic relaxations, each with a reason:
// - must_use_candidate: the analysis builders are consumed immediately at
//   every call site; annotating them all is churn without a bug class.
// - missing_panics_doc covers `expect`s on internal invariants (interned
//   ids, enumerated cycles) that callers cannot trigger; public functions
//   whose panics are reachable document them individually.
#![allow(clippy::must_use_candidate, clippy::missing_panics_doc)]

pub mod check;
pub mod cycles;
pub mod gen;
pub mod graph;
pub mod report;
pub mod synth;
pub mod wps;

pub use check::{check_cycle, check_cycle_without, CycleCheck};
pub use cycles::{critical_cycles, dedup_cycles, CommKind, CriticalCycle};
pub use gen::{differential_corpus, generate, generate_all, GenArch, GenConfig};
pub use graph::{Access, FenceNode, ProgramGraph, StreamDep};
pub use report::{analyze, Analysis, DowngradableFence, RedundantFence, UnprotectedCycle};
pub use synth::{
    apply_to_graph, apply_to_streams, graph_cost, synthesize, synthesize_cycles, synthesize_with,
    CostModel, Instrument, Placement, SolverOptions, SynthConfig, SynthError, SynthOutcome,
    DEFAULT_NODE_BUDGET,
};
pub use wps::{
    critical_cycles_wps, critical_cycles_wps_metered, synthesize_wps, synthesize_wps_metered,
    CycleCache, WpsConfig, WpsMetrics, WpsReport, WpsTier,
};
