//! Whole-program analysis: protection verdict plus fence lints
//! (redundant fences and over-strong, downgradable ones).

use wmm_litmus::ops::{FClass, ModelKind};
use wmmbench::model::{estimate_cost, predicted_performance};

use crate::check::{check_cycle, check_cycle_without};
use crate::cycles::{critical_cycles, CriticalCycle};
use crate::graph::ProgramGraph;

/// An unprotected critical cycle: an execution the model allows that a
/// fencing strategy presumably meant to forbid.
#[derive(Debug, Clone)]
pub struct UnprotectedCycle {
    /// Rendering of the cycle (`t0:Wx ->po t0:Wy ->rf …`).
    pub cycle: String,
    /// The program-order pairs with no ordering mechanism — where a fence
    /// or dependency is missing, as `(from, to)` descriptions.
    pub missing: Vec<(String, String)>,
}

/// A fence whose removal changes no cycle's verdict under the model.
#[derive(Debug, Clone)]
pub struct RedundantFence {
    /// Owning thread.
    pub thread: usize,
    /// Fence slot (between access positions `slot - 1` and `slot`).
    pub slot: usize,
    /// Mnemonic (`dmb ish`, `lwsync`, …).
    pub mnemonic: String,
    /// Whether the fence lies between some cycle's leg pair at all. A
    /// fence off every cycle is dead weight; one *on* a cycle is covered
    /// by another mechanism (doubled fences flag each other).
    pub on_cycle: bool,
    /// Estimated per-invocation saving (ns) if removed, when the caller
    /// supplied a fence cost — the Eq. 1/Eq. 2 round-trip.
    pub saving_ns: Option<f64>,
    /// Estimated relative speedup (`1/p - 1`) at the given sensitivity.
    pub speedup_frac: Option<f64>,
    /// Set by [`Analysis::with_savings`] when pricing was requested but
    /// failed the finiteness guard (non-finite/non-positive cost, or a
    /// sensitivity outside `(0, 1)`): the lint stands, its price does not.
    pub unpriced: bool,
}

/// A needed fence that is over-strong: reclassifying it to `to_class`
/// (e.g. `dmb ish` → `dmb ishst`, `sync` → `lwsync`) changes no cycle's
/// verdict, so the weaker, cheaper encoding suffices.
#[derive(Debug, Clone)]
pub struct DowngradableFence {
    /// Owning thread.
    pub thread: usize,
    /// Fence slot (between access positions `slot - 1` and `slot`).
    pub slot: usize,
    /// Current mnemonic.
    pub mnemonic: String,
    /// The weakest sufficient class.
    pub to_class: FClass,
    /// Stream-style mnemonic of the replacement on this model
    /// (`DmbIshSt`, `LwSync`, …) — the key pricing cost functions use.
    pub to_mnemonic: String,
    /// Estimated per-invocation saving (ns) of the downgrade: the priced
    /// difference between the current and replacement fence.
    pub saving_ns: Option<f64>,
    /// Estimated relative speedup (`1/p - 1`) at the given sensitivity.
    pub speedup_frac: Option<f64>,
    /// Set when pricing was requested but failed the finiteness guard.
    pub unpriced: bool,
}

/// Full analysis of one program under one model.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Program name.
    pub program: String,
    /// Model checked.
    pub model: ModelKind,
    /// Number of critical cycles found.
    pub cycles: usize,
    /// Cycles the model can realise despite the program's fences.
    pub unprotected: Vec<UnprotectedCycle>,
    /// Fences that cut nothing the rest of the program doesn't already cut.
    pub redundant: Vec<RedundantFence>,
    /// Needed fences a weaker class would serve equally well.
    pub downgrade: Vec<DowngradableFence>,
}

impl Analysis {
    /// No unprotected cycles: every weak-execution scenario is forbidden.
    #[must_use]
    pub fn protected(&self) -> bool {
        self.unprotected.is_empty()
    }

    /// Attach Eq. 1 / Eq. 2 savings estimates to the redundancy and
    /// downgrade lints: `cost_ns(mnemonic)` is the measured per-fence cost
    /// and `k` the workload's fence sensitivity. The predicted saving
    /// round-trips through the performance model (Eq. 1 forward, Eq. 2
    /// back), the inversion the property test in `tests/properties.rs`
    /// guards. A redundant fence saves its whole cost; a downgrade saves
    /// the difference to its replacement.
    ///
    /// Pricing is guarded: a non-finite or non-positive cost, a `k`
    /// outside `(0, 1)`, or a non-finite round-trip result leaves the
    /// lint standing but `unpriced` — NaN must never masquerade as a
    /// savings estimate (the same failure class the regression gate
    /// rejects manifests for).
    #[must_use]
    pub fn with_savings(mut self, k: f64, cost_ns: impl Fn(&str) -> f64) -> Self {
        let price = |a: f64| -> Option<(f64, f64)> {
            if !(a.is_finite() && a > 0.0 && k.is_finite() && k > 0.0 && k < 1.0) {
                return None;
            }
            let p = predicted_performance(k, a);
            let saving = estimate_cost(k, p);
            let speedup = 1.0 / p - 1.0;
            (saving.is_finite() && speedup.is_finite()).then_some((saving, speedup))
        };
        for lint in &mut self.redundant {
            match price(cost_ns(&lint.mnemonic)) {
                Some((saving, speedup)) => {
                    lint.saving_ns = Some(saving);
                    lint.speedup_frac = Some(speedup);
                    lint.unpriced = false;
                }
                None => lint.unpriced = true,
            }
        }
        for lint in &mut self.downgrade {
            let delta = cost_ns(&lint.mnemonic) - cost_ns(&lint.to_mnemonic);
            match price(delta) {
                Some((saving, speedup)) => {
                    lint.saving_ns = Some(saving);
                    lint.speedup_frac = Some(speedup);
                    lint.unpriced = false;
                }
                None => lint.unpriced = true,
            }
        }
        self
    }
}

/// Stream-style mnemonic of a fence class on `model` — the key the
/// binaries' cost functions price by.
fn class_mnemonic(class: FClass, model: ModelKind) -> &'static str {
    match (class, model) {
        (FClass::Full, ModelKind::Power) => "HwSync",
        (FClass::Full, _) => "DmbIsh",
        (FClass::LwSync, _) => "LwSync",
        (FClass::StSt, _) => "DmbIshSt",
        (FClass::LdLdSt, _) => "DmbIshLd",
    }
}

/// Does fence `f` sit between the legs' entry and exit of `cyc`?
fn fence_on_cycle(g: &ProgramGraph, f: usize, cyc: &CriticalCycle) -> bool {
    let fence = &g.fences[f];
    cyc.legs.iter().any(|&(entry, exit)| {
        entry != exit
            && g.accesses[entry].thread == fence.thread
            && g.accesses[entry].pos < fence.slot
            && fence.slot <= g.accesses[exit].pos
    })
}

/// Analyse `g` under `model`: enumerate critical cycles, check each, and
/// probe every fence for redundancy (removal flips no verdict).
#[must_use]
pub fn analyze(g: &ProgramGraph, model: ModelKind) -> Analysis {
    let cycles = critical_cycles(g);
    let verdicts: Vec<_> = cycles.iter().map(|c| check_cycle(g, model, c)).collect();

    let unprotected = cycles
        .iter()
        .zip(&verdicts)
        .filter(|(_, v)| !v.protected)
        .map(|(c, v)| UnprotectedCycle {
            cycle: c.describe(g),
            missing: v
                .uncut
                .iter()
                .map(|&(a, b)| (g.describe(a), g.describe(b)))
                .collect(),
        })
        .collect();

    let mut redundant = vec![];
    let mut redundant_idx = vec![false; g.fences.len()];
    for (f, marked) in redundant_idx.iter_mut().enumerate() {
        let same_verdicts = cycles
            .iter()
            .zip(&verdicts)
            .all(|(c, v)| check_cycle_without(g, model, c, Some(f)).protected == v.protected);
        if same_verdicts {
            *marked = true;
            redundant.push(RedundantFence {
                thread: g.fences[f].thread,
                slot: g.fences[f].slot,
                mnemonic: g.fences[f].mnemonic.clone(),
                on_cycle: cycles.iter().any(|c| fence_on_cycle(g, f, c)),
                saving_ns: None,
                speedup_frac: None,
                unpriced: false,
            });
        }
    }

    // Downgrade probe: a *needed* full barrier re-classed to the weakest
    // class that still preserves every cycle's verdict. Redundant fences
    // are skipped — the lint there is "remove it", not "weaken it".
    let mut downgrade = vec![];
    for (f, &is_redundant) in redundant_idx.iter().enumerate() {
        if is_redundant || g.fences[f].class != FClass::Full {
            continue;
        }
        // Weakest first, so the lint names the cheapest sufficient class.
        let options: &[FClass] = if model == ModelKind::Power {
            &[FClass::LwSync]
        } else {
            &[FClass::StSt, FClass::LdLdSt]
        };
        for &to in options {
            let mut weaker = g.clone();
            weaker.fences[f].class = to;
            let same_verdicts = cycles
                .iter()
                .zip(&verdicts)
                .all(|(c, v)| check_cycle(&weaker, model, c).protected == v.protected);
            if same_verdicts {
                downgrade.push(DowngradableFence {
                    thread: g.fences[f].thread,
                    slot: g.fences[f].slot,
                    mnemonic: g.fences[f].mnemonic.clone(),
                    to_class: to,
                    to_mnemonic: class_mnemonic(to, model).into(),
                    saving_ns: None,
                    speedup_frac: None,
                    unpriced: false,
                });
                break;
            }
        }
    }

    Analysis {
        program: g.name.clone(),
        model,
        cycles: cycles.len(),
        unprotected,
        redundant,
        downgrade,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmm_litmus::suite;
    use ModelKind::{ArmV8, Power, Sc};

    #[test]
    fn fenced_sb_is_protected_with_no_lints() {
        let g = ProgramGraph::from_litmus(&suite::sb_fences().test);
        let a = analyze(&g, ArmV8);
        assert!(a.protected());
        assert!(a.redundant.is_empty(), "{:?}", a.redundant);
    }

    #[test]
    fn bare_mp_reports_the_missing_pairs() {
        let g = ProgramGraph::from_litmus(&suite::message_passing().test);
        let a = analyze(&g, Power);
        assert!(!a.protected());
        assert_eq!(a.unprotected.len(), 1);
        assert_eq!(a.unprotected[0].missing.len(), 2);
    }

    #[test]
    fn fences_are_redundant_under_sc() {
        // SC needs no fences at all: every marker is pure overhead there.
        let g = ProgramGraph::from_litmus(&suite::mp_fences().test);
        let a = analyze(&g, Sc);
        assert!(a.protected());
        assert_eq!(a.redundant.len(), 2);
        assert!(a.redundant.iter().all(|r| r.on_cycle));
    }

    #[test]
    fn savings_round_trip_through_eq2() {
        let g = ProgramGraph::from_litmus(&suite::mp_fences().test);
        let a = analyze(&g, Sc).with_savings(0.05, |_| 17.3);
        for lint in &a.redundant {
            let ns = lint.saving_ns.expect("cost supplied");
            assert!((ns - 17.3).abs() < 1e-6, "{ns}");
            assert!(
                lint.speedup_frac.expect("priced lint has a speedup") > 0.0,
                "redundant fence should predict a positive speedup"
            );
            assert!(!lint.unpriced);
        }
    }

    #[test]
    fn non_finite_costs_flag_the_lint_instead_of_poisoning_it() {
        let g = ProgramGraph::from_litmus(&suite::mp_fences().test);
        // Infinite cost: Eq. 1 would predict p → 0 and Eq. 2 a NaN/∞
        // saving. The guard must leave the lint standing but unpriced.
        for bad in [f64::INFINITY, f64::NAN, -3.0, 0.0] {
            let a = analyze(&g, Sc).with_savings(0.05, |_| bad);
            assert!(!a.redundant.is_empty());
            for lint in &a.redundant {
                assert!(lint.saving_ns.is_none(), "cost {bad} must not price");
                assert!(lint.speedup_frac.is_none());
                assert!(lint.unpriced, "cost {bad} must flag the lint");
            }
        }
        // Invalid sensitivity is just as fatal for pricing.
        for bad_k in [f64::NAN, 0.0, 1.0, 2.0] {
            let a = analyze(&g, Sc).with_savings(bad_k, |_| 17.3);
            assert!(a.redundant.iter().all(|l| l.unpriced), "k={bad_k}");
        }
        // A later valid pricing run clears the flag.
        let a = analyze(&g, Sc)
            .with_savings(0.05, |_| f64::INFINITY)
            .with_savings(0.05, |_| 17.3);
        assert!(a.redundant.iter().all(|l| !l.unpriced));
    }

    #[test]
    fn over_strong_full_fence_is_downgradable() {
        // MP with full fences on ARMv8: the writer side only needs
        // store->store order and the reader side only load->load, so both
        // fences downgrade (to ishst and ishld respectively).
        let g = ProgramGraph::from_litmus(&suite::mp_fences().test);
        let a = analyze(&g, ArmV8);
        assert!(a.protected());
        assert_eq!(a.downgrade.len(), 2, "{:?}", a.downgrade);
        let to: Vec<&str> = a.downgrade.iter().map(|d| d.to_mnemonic.as_str()).collect();
        assert_eq!(to, vec!["DmbIshSt", "DmbIshLd"]);

        // Same program on POWER: sync where lwsync suffices, both sides.
        let a = analyze(&g, Power);
        assert!(a.downgrade.iter().all(|d| d.to_mnemonic == "LwSync"));
        assert_eq!(a.downgrade.len(), 2);
    }

    #[test]
    fn needed_full_strength_is_not_downgradable() {
        // SB needs store->load order: no weaker class suffices, and the
        // downgrade lint must stay silent.
        let g = ProgramGraph::from_litmus(&suite::sb_fences().test);
        for model in [ArmV8, Power] {
            let a = analyze(&g, model);
            assert!(a.protected());
            assert!(a.downgrade.is_empty(), "{model:?}: {:?}", a.downgrade);
        }
    }

    #[test]
    fn downgrade_savings_price_the_difference() {
        let g = ProgramGraph::from_litmus(&suite::mp_fences().test);
        let cost = |m: &str| match m {
            "dmb ish/sync" => 17.0,
            "DmbIshSt" => 2.3,
            "DmbIshLd" => 4.1,
            _ => 0.0,
        };
        let a = analyze(&g, ArmV8).with_savings(0.05, cost);
        let writer = &a.downgrade[0];
        let ns = writer.saving_ns.expect("priced");
        assert!((ns - (17.0 - 2.3)).abs() < 1e-6, "{ns}");
        assert!(!writer.unpriced);
    }
}
