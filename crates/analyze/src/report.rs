//! Whole-program analysis: protection verdict plus redundant-fence lints.

use wmm_litmus::ops::ModelKind;
use wmmbench::model::{estimate_cost, predicted_performance};

use crate::check::{check_cycle, check_cycle_without};
use crate::cycles::{critical_cycles, CriticalCycle};
use crate::graph::ProgramGraph;

/// An unprotected critical cycle: an execution the model allows that a
/// fencing strategy presumably meant to forbid.
#[derive(Debug, Clone)]
pub struct UnprotectedCycle {
    /// Rendering of the cycle (`t0:Wx ->po t0:Wy ->rf …`).
    pub cycle: String,
    /// The program-order pairs with no ordering mechanism — where a fence
    /// or dependency is missing, as `(from, to)` descriptions.
    pub missing: Vec<(String, String)>,
}

/// A fence whose removal changes no cycle's verdict under the model.
#[derive(Debug, Clone)]
pub struct RedundantFence {
    /// Owning thread.
    pub thread: usize,
    /// Fence slot (between access positions `slot - 1` and `slot`).
    pub slot: usize,
    /// Mnemonic (`dmb ish`, `lwsync`, …).
    pub mnemonic: String,
    /// Whether the fence lies between some cycle's leg pair at all. A
    /// fence off every cycle is dead weight; one *on* a cycle is covered
    /// by another mechanism (doubled fences flag each other).
    pub on_cycle: bool,
    /// Estimated per-invocation saving (ns) if removed, when the caller
    /// supplied a fence cost — the Eq. 1/Eq. 2 round-trip.
    pub saving_ns: Option<f64>,
    /// Estimated relative speedup (`1/p - 1`) at the given sensitivity.
    pub speedup_frac: Option<f64>,
}

/// Full analysis of one program under one model.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Program name.
    pub program: String,
    /// Model checked.
    pub model: ModelKind,
    /// Number of critical cycles found.
    pub cycles: usize,
    /// Cycles the model can realise despite the program's fences.
    pub unprotected: Vec<UnprotectedCycle>,
    /// Fences that cut nothing the rest of the program doesn't already cut.
    pub redundant: Vec<RedundantFence>,
}

impl Analysis {
    /// No unprotected cycles: every weak-execution scenario is forbidden.
    #[must_use]
    pub fn protected(&self) -> bool {
        self.unprotected.is_empty()
    }

    /// Attach Eq. 1 / Eq. 2 savings estimates to the redundant-fence lints:
    /// `cost_ns(mnemonic)` is the measured per-fence cost and `k` the
    /// workload's fence sensitivity. The predicted saving round-trips
    /// through the performance model (Eq. 1 forward, Eq. 2 back), the
    /// inversion the property test in `tests/properties.rs` guards.
    #[must_use]
    pub fn with_savings(mut self, k: f64, cost_ns: impl Fn(&str) -> f64) -> Self {
        for lint in &mut self.redundant {
            let a = cost_ns(&lint.mnemonic);
            if a > 0.0 && k > 0.0 && k < 1.0 {
                let p = predicted_performance(k, a);
                lint.saving_ns = Some(estimate_cost(k, p));
                lint.speedup_frac = Some(1.0 / p - 1.0);
            }
        }
        self
    }
}

/// Does fence `f` sit between the legs' entry and exit of `cyc`?
fn fence_on_cycle(g: &ProgramGraph, f: usize, cyc: &CriticalCycle) -> bool {
    let fence = &g.fences[f];
    cyc.legs.iter().any(|&(entry, exit)| {
        entry != exit
            && g.accesses[entry].thread == fence.thread
            && g.accesses[entry].pos < fence.slot
            && fence.slot <= g.accesses[exit].pos
    })
}

/// Analyse `g` under `model`: enumerate critical cycles, check each, and
/// probe every fence for redundancy (removal flips no verdict).
#[must_use]
pub fn analyze(g: &ProgramGraph, model: ModelKind) -> Analysis {
    let cycles = critical_cycles(g);
    let verdicts: Vec<_> = cycles.iter().map(|c| check_cycle(g, model, c)).collect();

    let unprotected = cycles
        .iter()
        .zip(&verdicts)
        .filter(|(_, v)| !v.protected)
        .map(|(c, v)| UnprotectedCycle {
            cycle: c.describe(g),
            missing: v
                .uncut
                .iter()
                .map(|&(a, b)| (g.describe(a), g.describe(b)))
                .collect(),
        })
        .collect();

    let mut redundant = vec![];
    for f in 0..g.fences.len() {
        let same_verdicts = cycles
            .iter()
            .zip(&verdicts)
            .all(|(c, v)| check_cycle_without(g, model, c, Some(f)).protected == v.protected);
        if same_verdicts {
            redundant.push(RedundantFence {
                thread: g.fences[f].thread,
                slot: g.fences[f].slot,
                mnemonic: g.fences[f].mnemonic.clone(),
                on_cycle: cycles.iter().any(|c| fence_on_cycle(g, f, c)),
                saving_ns: None,
                speedup_frac: None,
            });
        }
    }

    Analysis {
        program: g.name.clone(),
        model,
        cycles: cycles.len(),
        unprotected,
        redundant,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmm_litmus::suite;
    use ModelKind::{ArmV8, Power, Sc};

    #[test]
    fn fenced_sb_is_protected_with_no_lints() {
        let g = ProgramGraph::from_litmus(&suite::sb_fences().test);
        let a = analyze(&g, ArmV8);
        assert!(a.protected());
        assert!(a.redundant.is_empty(), "{:?}", a.redundant);
    }

    #[test]
    fn bare_mp_reports_the_missing_pairs() {
        let g = ProgramGraph::from_litmus(&suite::message_passing().test);
        let a = analyze(&g, Power);
        assert!(!a.protected());
        assert_eq!(a.unprotected.len(), 1);
        assert_eq!(a.unprotected[0].missing.len(), 2);
    }

    #[test]
    fn fences_are_redundant_under_sc() {
        // SC needs no fences at all: every marker is pure overhead there.
        let g = ProgramGraph::from_litmus(&suite::mp_fences().test);
        let a = analyze(&g, Sc);
        assert!(a.protected());
        assert_eq!(a.redundant.len(), 2);
        assert!(a.redundant.iter().all(|r| r.on_cycle));
    }

    #[test]
    fn savings_round_trip_through_eq2() {
        let g = ProgramGraph::from_litmus(&suite::mp_fences().test);
        let a = analyze(&g, Sc).with_savings(0.05, |_| 17.3);
        for lint in &a.redundant {
            let ns = lint.saving_ns.expect("cost supplied");
            assert!((ns - 17.3).abs() < 1e-6, "{ns}");
            assert!(lint.speedup_frac.unwrap() > 0.0);
        }
    }
}
