//! Minimal-cost fence synthesis: the inverse of the protection check.
//!
//! Given a program graph and a target model, find the cheapest set of
//! ordering *instruments* — fences, acquire/release upgrades, artificial
//! dependencies — that protects every critical cycle. This is the
//! automatic-insertion direction of Alglave et al.'s "Don't sit on the
//! fence", priced with the paper's Eq. 1/Eq. 2 cost model instead of an
//! abstract instruction count.
//!
//! ## Formulation
//!
//! Protection is decided by [`crate::check`]: a cycle is protected iff its
//! constraint graph is contradictory. Two facts shape the encoding:
//!
//! 1. On multi-copy-atomic models the constraint graph closes **iff every
//!    multi-access program-order leg is locally cut** — comm edges only
//!    run from a leg's exit to the next leg's entry, so the only way
//!    across a leg is its own `exec(entry) < exec(exit)` edge. Local cuts
//!    everywhere are therefore *necessary and sufficient* on SC/TSO/ARMv8.
//! 2. On POWER they are necessary but not sufficient (IRIW needs the
//!    *global* strength of `sync`), and the extra requirement depends on
//!    the interaction of cumulativity edges across threads — awkward to
//!    encode eagerly, cheap to discover lazily.
//!
//! So the solver runs a weighted minimum-hitting-set over constraints
//! "this pair needs one of these candidates", seeded with the local-cut
//! constraints, and **lazily** adds a constraint whenever the exact
//! [`check_cycle`] verdict rejects a trial placement: the new constraint
//! is the set of unchosen candidates that add any strength bit
//! (local/cumulative/global) to some leg of the failing cycle beyond what
//! the trial placement provides. Since per-leg strength is monotone in the
//! instrument set, any feasible superset must contain one of those
//! candidates, and each round strictly excludes the current trial, so the
//! loop terminates.
//!
//! The hitting set itself is solved exactly by branch-and-bound (cycle
//! counts are small), seeded with a greedy upper bound. Cost is summed
//! over *distinct* instruments, so bundles (the `RCsc` `stlr; ldar` pair)
//! share price with their parts. Ties are broken deterministically:
//! among equal-cost solutions the lexicographically smallest instrument
//! key vector wins, and instrument keys rank weaker fence kinds first —
//! which is what lets synthesis rediscover `dmb ishst`/`dmb ishld` even
//! though idle-machine microbenchmarks cannot separate the `dmb` variants
//! (the sim's `micro_timing_cannot_distinguish_dmb_variants` property).

use wmm_litmus::ops::{DepKind, FClass, ModelKind};
use wmm_litmus::rewrite::Reinforce;
use wmm_sim::isa::{AccessOrd, FenceKind, Instr, Loc};
use wmmbench::model::{estimate_cost, predicted_performance};

use crate::check::{check_cycle, pair_cut, PairCut};
use crate::cycles::{critical_cycles, CriticalCycle};
use crate::graph::{FenceNode, ProgramGraph, StreamDep};

/// One synthesized ordering instrument, addressed by access position
/// (the [`crate::graph::Access::pos`] coordinate system, portable across
/// the litmus and stream frontends).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instrument {
    /// A fence of `kind` between access positions `slot - 1` and `slot`.
    Fence {
        /// Thread index.
        thread: usize,
        /// Fence slot (number of preceding accesses).
        slot: usize,
        /// Concrete fence instruction.
        kind: FenceKind,
    },
    /// Upgrade the load at `pos` to acquire (`ldar`).
    Acquire {
        /// Thread index.
        thread: usize,
        /// Access position.
        pos: usize,
    },
    /// Upgrade the store at `pos` to release (`stlr`).
    Release {
        /// Thread index.
        thread: usize,
        /// Access position.
        pos: usize,
    },
    /// An artificial syntactic dependency (load `from_pos` → `to_pos`).
    Dep {
        /// Thread index.
        thread: usize,
        /// Source access position (a load).
        from_pos: usize,
        /// Dependent access position.
        to_pos: usize,
        /// Dependency kind.
        kind: DepKind,
    },
}

/// Deterministic rank of a fence kind: weaker (cheaper under the paper's
/// Eq. 2 costs) kinds first, so cost ties resolve toward the weakest
/// sufficient fence.
fn fence_rank(kind: FenceKind) -> u8 {
    match kind {
        FenceKind::Compiler => 0,
        FenceKind::DmbIshSt => 1,
        FenceKind::DmbIshLd => 2,
        FenceKind::LwSync => 3,
        FenceKind::DmbIsh => 4,
        FenceKind::HwSync => 5,
        FenceKind::Isb => 6,
    }
}

fn dep_rank(kind: DepKind) -> u8 {
    match kind {
        DepKind::Addr => 0,
        DepKind::Data => 1,
        DepKind::Ctrl => 2,
        DepKind::CtrlIsb => 3,
    }
}

impl Instrument {
    /// Total-order key: thread, then position, then instrument tag, then
    /// kind rank. The solver's tie-breaking compares sorted key vectors.
    fn key(&self) -> (usize, usize, u8, usize, u8) {
        match *self {
            Instrument::Fence { thread, slot, kind } => (thread, slot, 0, slot, fence_rank(kind)),
            Instrument::Acquire { thread, pos } => (thread, pos, 1, pos, 0),
            Instrument::Release { thread, pos } => (thread, pos, 2, pos, 0),
            Instrument::Dep {
                thread,
                from_pos,
                to_pos,
                kind,
            } => (thread, from_pos, 3, to_pos, dep_rank(kind)),
        }
    }

    /// Human-readable description, e.g. `t1 slot1: dmb ishld`.
    #[must_use]
    pub fn describe(&self) -> String {
        match *self {
            Instrument::Fence { thread, slot, kind } => {
                format!("t{thread} slot{slot}: {}", kind.mnemonic())
            }
            Instrument::Acquire { thread, pos } => format!("t{thread} acq@{pos}"),
            Instrument::Release { thread, pos } => format!("t{thread} rel@{pos}"),
            Instrument::Dep {
                thread,
                from_pos,
                to_pos,
                kind,
            } => format!("t{thread} dep {kind:?} {from_pos}->{to_pos}"),
        }
    }
}

impl PartialOrd for Instrument {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Instrument {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// Static per-instrument cost table (ns per invocation): the paper's
/// Eq. 2-inferred costs on the ARM/POWER test machines. These are the
/// fallback weights when no measured cost is available or pricing fails
/// the finiteness guard — and deliberately the *default* weights for the
/// `dmb` variants, which idle-machine micro-timing cannot separate.
const STATIC_FENCE_NS: [(FenceKind, f64); 7] = [
    (FenceKind::DmbIsh, 17.0),
    (FenceKind::DmbIshLd, 4.1),
    (FenceKind::DmbIshSt, 2.3),
    (FenceKind::Isb, 24.5),
    (FenceKind::HwSync, 18.9),
    (FenceKind::LwSync, 6.1),
    (FenceKind::Compiler, 0.0),
];
const STATIC_ACQUIRE_NS: f64 = 2.0;
const STATIC_RELEASE_NS: f64 = 2.5;
const STATIC_DEP_NS: f64 = 0.5;

/// Eq. 1/Eq. 2 round-trip pricing with the same finiteness discipline as
/// [`crate::report::Analysis::with_savings`]: a non-finite or non-positive
/// raw cost, a sensitivity outside `(0, 1)`, or a non-finite result falls
/// back to `raw` unchanged.
fn eq_price(k: f64, raw: f64) -> f64 {
    if raw.is_finite() && raw > 0.0 && k.is_finite() && k > 0.0 && k < 1.0 {
        let priced = estimate_cost(k, predicted_performance(k, raw));
        if priced.is_finite() && priced > 0.0 {
            return priced;
        }
    }
    raw
}

/// Instrument weights for the hitting-set objective.
// The shared `_ns` postfix is the unit, not noise — every weight in the
// model is nanoseconds per invocation.
#[allow(clippy::struct_field_names)]
#[derive(Debug, Clone)]
pub struct CostModel {
    fence_ns: [(FenceKind, f64); 7],
    acquire_ns: f64,
    release_ns: f64,
    dep_ns: f64,
}

impl CostModel {
    /// The raw static table.
    #[must_use]
    pub fn static_table() -> Self {
        CostModel {
            fence_ns: STATIC_FENCE_NS,
            acquire_ns: STATIC_ACQUIRE_NS,
            release_ns: STATIC_RELEASE_NS,
            dep_ns: STATIC_DEP_NS,
        }
    }

    /// The static table priced through the Eq. 1/Eq. 2 round trip at
    /// sensitivity `k` (the [`eq_price`] guard falls back to the raw
    /// entry on any non-finite input or result).
    #[must_use]
    pub fn priced(k: f64) -> Self {
        let mut m = CostModel::static_table();
        for (_, ns) in &mut m.fence_ns {
            *ns = eq_price(k, *ns);
        }
        m.acquire_ns = eq_price(k, m.acquire_ns);
        m.release_ns = eq_price(k, m.release_ns);
        m.dep_ns = eq_price(k, m.dep_ns);
        m
    }

    /// Cost of one fence kind.
    #[must_use]
    pub fn fence_ns(&self, kind: FenceKind) -> f64 {
        self.fence_ns
            .iter()
            .find(|&&(k, _)| k == kind)
            .map_or(0.0, |&(_, ns)| ns)
    }

    /// Cost of a *classed* fence under `model`: `Full` prices as the
    /// model's full barrier, the weaker classes as their native encoding.
    #[must_use]
    pub fn class_ns(&self, class: FClass, model: ModelKind) -> f64 {
        let kind = match (class, model) {
            (FClass::Full, ModelKind::Power) => FenceKind::HwSync,
            (FClass::Full, _) => FenceKind::DmbIsh,
            (FClass::LwSync, _) => FenceKind::LwSync,
            (FClass::StSt, _) => FenceKind::DmbIshSt,
            (FClass::LdLdSt, _) => FenceKind::DmbIshLd,
        };
        self.fence_ns(kind)
    }

    /// Cost of one instrument.
    #[must_use]
    pub fn instrument_ns(&self, ins: &Instrument) -> f64 {
        match *ins {
            Instrument::Fence { kind, .. } => self.fence_ns(kind),
            Instrument::Acquire { .. } => self.acquire_ns,
            Instrument::Release { .. } => self.release_ns,
            // A bogus address dependency is an ALU op; ctrl+isb pays the
            // pipeline flush.
            Instrument::Dep { kind, .. } => {
                if kind == DepKind::CtrlIsb {
                    self.fence_ns(FenceKind::Isb)
                } else {
                    self.dep_ns
                }
            }
        }
    }
}

/// Total priced cost (ns) of the ordering instruments already present in
/// `g`: classed fences, acquire/release attributes, and dependency
/// annotations. The yardstick hand-written strategies are compared with.
#[must_use]
pub fn graph_cost(g: &ProgramGraph, model: ModelKind, costs: &CostModel) -> f64 {
    let fences: f64 = g
        .fences
        .iter()
        .map(|f| costs.class_ns(f.class, model))
        .sum();
    let attrs: f64 = g
        .accesses
        .iter()
        .map(|a| {
            f64::from(u8::from(a.acquire)) * costs.acquire_ns
                + f64::from(u8::from(a.release)) * costs.release_ns
        })
        .sum();
    let deps: f64 = g
        .deps
        .iter()
        .map(|&(_, _, k)| {
            if k == DepKind::CtrlIsb {
                costs.fence_ns(FenceKind::Isb)
            } else {
                costs.dep_ns
            }
        })
        .sum();
    fences + attrs + deps
}

/// What the target allows synthesis to place.
#[derive(Debug, Clone, Copy)]
pub struct SynthConfig {
    /// Target model.
    pub model: ModelKind,
    /// Offer acquire/release upgrades (`ldar`/`stlr` exist on the target).
    pub upgrades: bool,
    /// Offer artificial address dependencies.
    pub deps: bool,
}

impl SynthConfig {
    /// The natural instrument set per model: ARM-family targets get
    /// `dmb` fences plus acquire/release upgrades; POWER gets
    /// `lwsync`/`sync` plus address dependencies (no `ldar`/`stlr` in the
    /// ISA).
    #[must_use]
    pub fn for_model(model: ModelKind) -> Self {
        match model {
            ModelKind::Power => SynthConfig {
                model,
                upgrades: false,
                deps: true,
            },
            _ => SynthConfig {
                model,
                upgrades: true,
                deps: false,
            },
        }
    }

    /// Fences only — for targets whose strategy hook can only emit fence
    /// sequences (the kernel barrier macros).
    #[must_use]
    pub fn fences_only(model: ModelKind) -> Self {
        SynthConfig {
            model,
            upgrades: false,
            deps: false,
        }
    }

    /// Fence kinds available on the target, weakest first.
    fn fence_kinds(self) -> &'static [FenceKind] {
        match self.model {
            ModelKind::Power => &[FenceKind::LwSync, FenceKind::HwSync],
            _ => &[FenceKind::DmbIshSt, FenceKind::DmbIshLd, FenceKind::DmbIsh],
        }
    }
}

/// A synthesized placement.
#[derive(Debug, Clone)]
pub struct Placement {
    /// The chosen instruments, sorted by key.
    pub instruments: Vec<Instrument>,
    /// Total priced cost (ns per idiom invocation) of the instruments.
    pub cost_ns: f64,
    /// Hitting-set rounds: 1 when the eager local-cut constraints
    /// sufficed, more when POWER-style lazy constraints were needed,
    /// 0 when the program was already fully protected.
    pub rounds: usize,
}

impl Placement {
    /// The placement as explorer reinforcements (for dynamic validation).
    ///
    /// # Panics
    ///
    /// Panics on a placement holding an unclassed fence (`isb`, compiler
    /// barrier) — synthesis never emits one.
    #[must_use]
    pub fn to_reinforce(&self) -> Vec<Reinforce> {
        self.instruments
            .iter()
            .map(|ins| match *ins {
                Instrument::Fence { thread, slot, kind } => Reinforce::Fence {
                    thread,
                    before: slot,
                    class: FClass::of_fence(kind).expect("synthesized fences are classed"),
                },
                Instrument::Acquire { thread, pos } => Reinforce::Acquire { thread, pos },
                Instrument::Release { thread, pos } => Reinforce::Release { thread, pos },
                Instrument::Dep {
                    thread,
                    from_pos,
                    to_pos,
                    kind,
                } => Reinforce::Dep {
                    thread,
                    from: from_pos,
                    to: to_pos,
                    kind,
                },
            })
            .collect()
    }

    /// One-line description of the placement.
    #[must_use]
    pub fn describe(&self) -> String {
        if self.instruments.is_empty() {
            "(nothing to place)".into()
        } else {
            self.instruments
                .iter()
                .map(Instrument::describe)
                .collect::<Vec<_>>()
                .join("; ")
        }
    }
}

/// Why synthesis failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SynthError {
    /// A critical cycle has no candidate instrument that strengthens it —
    /// the configured instrument set cannot protect this program.
    NoCandidate {
        /// Description of the offending cycle.
        cycle: String,
    },
    /// Lazy constraint generation did not converge within the round
    /// budget (indicates a checker/enumeration mismatch, not an input
    /// problem).
    Diverged {
        /// Rounds executed before giving up.
        rounds: usize,
    },
    /// The exact branch-and-bound exhausted its node budget and the
    /// caller required a proven-minimal placement. Distinguishable from
    /// infeasibility: a feasible cover existed, it just was not proven
    /// optimal within budget.
    Timeout {
        /// Branch-and-bound nodes explored before the budget hit.
        nodes: u64,
    },
}

impl std::fmt::Display for SynthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SynthError::NoCandidate { cycle } => {
                write!(f, "no candidate instrument can protect cycle {cycle}")
            }
            SynthError::Diverged { rounds } => {
                write!(
                    f,
                    "lazy constraint generation did not converge in {rounds} rounds"
                )
            }
            SynthError::Timeout { nodes } => {
                write!(
                    f,
                    "branch-and-bound node budget exhausted after {nodes} nodes"
                )
            }
        }
    }
}

impl std::error::Error for SynthError {}

/// Apply `instruments` to a copy of `g`. Access ids are preserved: fences
/// append as new [`FenceNode`]s (stream-style mnemonics, so pricing and
/// linting treat them like lowered fences), upgrades set the access
/// attribute, dependencies append unless the pair already has one.
///
/// # Panics
///
/// Panics on an unclassed fence kind or an out-of-range access position.
#[must_use]
pub fn apply_to_graph(g: &ProgramGraph, instruments: &[Instrument]) -> ProgramGraph {
    let mut out = g.clone();
    for ins in instruments {
        match *ins {
            Instrument::Fence { thread, slot, kind } => {
                let class = FClass::of_fence(kind).expect("synthesized fences are classed");
                out.fences.push(FenceNode {
                    thread,
                    slot,
                    class,
                    mnemonic: format!("{kind:?}"),
                });
            }
            Instrument::Acquire { thread, pos } => {
                let id = out.threads[thread][pos];
                out.accesses[id].acquire = true;
            }
            Instrument::Release { thread, pos } => {
                let id = out.threads[thread][pos];
                out.accesses[id].release = true;
            }
            Instrument::Dep {
                thread,
                from_pos,
                to_pos,
                kind,
            } => {
                let from = out.threads[thread][from_pos];
                let to = out.threads[thread][to_pos];
                if out.dep_between(from, to).is_none() {
                    out.deps.push((from, to, kind));
                }
            }
        }
    }
    out
}

/// Apply a placement to platform instruction streams — the inverse of
/// [`ProgramGraph::from_streams`]'s access mapping. Fences insert before
/// the shared-access instruction at their slot (appending at the end of
/// the stream when the slot equals the access count), upgrades rewrite
/// the access's ordering attribute, and dependencies come back as
/// [`StreamDep`] annotations against the *rewritten* streams.
///
/// # Panics
///
/// Panics when an instrument addresses a position the streams do not
/// have, or upgrades an instruction of the wrong role.
#[must_use]
pub fn apply_to_streams(
    threads: &[Vec<Instr>],
    instruments: &[Instrument],
) -> (Vec<Vec<Instr>>, Vec<StreamDep>) {
    let mut out: Vec<Vec<Instr>> = threads.to_vec();

    // Shared-access instruction indices per thread, mirroring the
    // from_streams access mapping (private accesses are not accesses).
    let access_idx = |stream: &[Instr]| -> Vec<usize> {
        stream
            .iter()
            .enumerate()
            .filter(|(_, i)| {
                matches!(
                    i,
                    Instr::Load { loc, .. } | Instr::Store { loc, .. } | Instr::Cas { loc, .. }
                    if !matches!(loc, Loc::Private(_))
                )
            })
            .map(|(j, _)| j)
            .collect()
    };

    // Fences first (descending slot, so earlier insertions don't shift
    // later ones); same-slot fences insert in ascending rank order.
    let mut fences: Vec<(usize, usize, FenceKind)> = instruments
        .iter()
        .filter_map(|ins| match *ins {
            Instrument::Fence { thread, slot, kind } => Some((thread, slot, kind)),
            _ => None,
        })
        .collect();
    fences.sort_by_key(|&(t, slot, kind)| (t, std::cmp::Reverse((slot, fence_rank(kind)))));
    for (t, slot, kind) in fences {
        let idx = access_idx(&out[t]);
        let at = if slot == idx.len() {
            out[t].len()
        } else {
            idx[slot]
        };
        out[t].insert(at, Instr::Fence(kind));
    }

    // Upgrades and dependencies against post-insertion indices.
    let maps: Vec<Vec<usize>> = out.iter().map(|s| access_idx(s)).collect();
    let mut deps: Vec<StreamDep> = vec![];
    for ins in instruments {
        match *ins {
            Instrument::Fence { .. } => {}
            Instrument::Acquire { thread, pos } => match &mut out[thread][maps[thread][pos]] {
                Instr::Load { ord, .. } => *ord = AccessOrd::Acquire,
                other => panic!("acquire upgrade on a non-load: {other:?}"),
            },
            Instrument::Release { thread, pos } => match &mut out[thread][maps[thread][pos]] {
                Instr::Store { ord, .. } => *ord = AccessOrd::Release,
                other => panic!("release upgrade on a non-store: {other:?}"),
            },
            Instrument::Dep {
                thread,
                from_pos,
                to_pos,
                kind,
            } => deps.push(StreamDep {
                thread,
                from: maps[thread][from_pos],
                to: maps[thread][to_pos],
                kind,
            }),
        }
    }
    (out, deps)
}

/// Enumerate the candidate bundles that could strengthen the pair
/// `(a_id, b_id)`, validated against the constraint-check semantics: a
/// bundle is a candidate iff applying it changes the pair's [`PairCut`]
/// strength. Returned in canonical order (slots ascending, fence kinds
/// weakest first, then upgrades, the `RCsc` pair, dependencies).
fn pair_candidates(
    g: &ProgramGraph,
    cfg: SynthConfig,
    a_id: usize,
    b_id: usize,
) -> Vec<Vec<Instrument>> {
    let model = cfg.model;
    let base = pair_cut(g, model, a_id, b_id, None);
    let (a, b) = (&g.accesses[a_id], &g.accesses[b_id]);
    let thread = a.thread;

    let mut bundles: Vec<Vec<Instrument>> = vec![];
    for slot in (a.pos + 1)..=b.pos {
        for &kind in cfg.fence_kinds() {
            bundles.push(vec![Instrument::Fence { thread, slot, kind }]);
        }
    }
    if cfg.upgrades {
        if a.is_load && !a.acquire {
            bundles.push(vec![Instrument::Acquire { thread, pos: a.pos }]);
        }
        if b.is_store && !b.release {
            bundles.push(vec![Instrument::Release { thread, pos: b.pos }]);
        }
        // The RCsc stlr;ldar pair: one bundle, shared-priced with its
        // parts when both ends are reused.
        if a.is_store && !a.release && b.is_load && !b.acquire {
            bundles.push(vec![
                Instrument::Release { thread, pos: a.pos },
                Instrument::Acquire { thread, pos: b.pos },
            ]);
        }
    }
    if cfg.deps && a.is_load && g.dep_between(a_id, b_id).is_none() {
        bundles.push(vec![Instrument::Dep {
            thread,
            from_pos: a.pos,
            to_pos: b.pos,
            kind: DepKind::Addr,
        }]);
    }

    bundles
        .into_iter()
        .filter(|bundle| {
            let g2 = apply_to_graph(g, bundle);
            pair_cut(&g2, model, a_id, b_id, None).stronger_than(base)
        })
        .collect()
}

/// The multi-access program-order legs of a cycle.
fn po_legs(cyc: &CriticalCycle) -> Vec<(usize, usize)> {
    cyc.legs.iter().copied().filter(|&(e, x)| e != x).collect()
}

/// Default branch-and-bound node budget: far above anything the litmus
/// suite or the generated corpus needs (the worst in-tree instance
/// explores a few thousand nodes), so [`synthesize`] behaves exactly as
/// the previously unbounded solver on every existing input while still
/// terminating on adversarial ones.
pub const DEFAULT_NODE_BUDGET: u64 = 1 << 22;

/// How to run the hitting-set solve.
#[derive(Debug, Clone, Copy)]
pub struct SolverOptions {
    /// Branch-and-bound node budget (counted once per `branch` entry).
    pub node_budget: u64,
    /// Skip branch-and-bound entirely: take the greedy upper bound as the
    /// solution (the approximate tier). Always feasible, never proven
    /// minimal.
    pub greedy_only: bool,
    /// Reorder bound `k`: per open cycle, only the first `k` multi-access
    /// legs contribute eager constraints. Lazy constraint generation
    /// repairs any cycle a trial placement leaves open, so the result is
    /// still sound — the bound only shrinks the instances handed to the
    /// solver.
    pub reorder_bound: Option<usize>,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            node_budget: DEFAULT_NODE_BUDGET,
            greedy_only: false,
            reorder_bound: None,
        }
    }
}

impl SolverOptions {
    /// The exact tier: full eager constraints, branch-and-bound under
    /// `node_budget` nodes.
    #[must_use]
    pub fn exact(node_budget: u64) -> Self {
        SolverOptions {
            node_budget,
            ..SolverOptions::default()
        }
    }

    /// The reorder-bounded approximate tier: `k` eager legs per cycle,
    /// greedy-UB solve only.
    #[must_use]
    pub fn approx(k: usize) -> Self {
        SolverOptions {
            node_budget: 0,
            greedy_only: true,
            reorder_bound: Some(k),
        }
    }
}

/// What a synthesis run produced and how much trust it carries.
#[derive(Debug, Clone)]
pub enum SynthOutcome {
    /// Proven-minimal placement: branch-and-bound completed within budget
    /// on every round.
    Exact {
        /// The minimal-cost placement.
        placement: Placement,
        /// Total branch-and-bound nodes explored across rounds.
        nodes: u64,
    },
    /// Greedy-tier placement: feasible (every cycle protected) but an
    /// upper bound only.
    Approx {
        /// The feasible placement.
        placement: Placement,
    },
    /// The node budget ran out on some round: the placement is feasible
    /// (validated like any other) but not proven minimal.
    Timeout {
        /// Best feasible placement found.
        placement: Placement,
        /// Nodes explored when the budget hit.
        nodes: u64,
        /// The budget that was exhausted.
        budget: u64,
    },
}

impl SynthOutcome {
    /// The placement, whichever tier produced it.
    #[must_use]
    pub fn placement(&self) -> &Placement {
        match self {
            SynthOutcome::Exact { placement, .. }
            | SynthOutcome::Approx { placement }
            | SynthOutcome::Timeout { placement, .. } => placement,
        }
    }

    /// Consume the outcome, keeping the placement.
    #[must_use]
    pub fn into_placement(self) -> Placement {
        match self {
            SynthOutcome::Exact { placement, .. }
            | SynthOutcome::Approx { placement }
            | SynthOutcome::Timeout { placement, .. } => placement,
        }
    }

    /// Stable tier label for manifests.
    #[must_use]
    pub fn tier(&self) -> &'static str {
        match self {
            SynthOutcome::Exact { .. } => "exact",
            SynthOutcome::Approx { .. } => "approx",
            SynthOutcome::Timeout { .. } => "timeout",
        }
    }

    /// Branch-and-bound nodes explored (0 for the greedy tier).
    #[must_use]
    pub fn nodes(&self) -> u64 {
        match self {
            SynthOutcome::Exact { nodes, .. } | SynthOutcome::Timeout { nodes, .. } => *nodes,
            SynthOutcome::Approx { .. } => 0,
        }
    }
}

/// Exact weighted hitting set by branch-and-bound with a greedy seed.
/// Cost of a solution is the priced sum over its *distinct* instruments.
/// Deterministic: among equal-cost solutions the lexicographically
/// smallest sorted instrument-key vector wins.
struct HittingSet<'a> {
    cands: &'a [Vec<Instrument>],
    constraints: &'a [Vec<usize>],
    costs: &'a CostModel,
    best_cost: f64,
    best_keys: Vec<(usize, usize, u8, usize, u8)>,
    best_chosen: Vec<usize>,
    nodes: u64,
    budget: u64,
    out_of_budget: bool,
}

const EPS: f64 = 1e-9;

impl HittingSet<'_> {
    fn marginal(&self, ci: usize, instrs: &[Instrument]) -> f64 {
        self.cands[ci]
            .iter()
            .filter(|ins| !instrs.contains(ins))
            .map(|ins| self.costs.instrument_ns(ins))
            .sum()
    }

    fn keys_of(instrs: &[Instrument]) -> Vec<(usize, usize, u8, usize, u8)> {
        let mut keys: Vec<_> = instrs.iter().map(Instrument::key).collect();
        keys.sort_unstable();
        keys
    }

    fn offer(&mut self, cost: f64, chosen: &[usize], instrs: &[Instrument]) {
        let keys = Self::keys_of(instrs);
        if cost < self.best_cost - EPS
            || ((cost - self.best_cost).abs() <= EPS && keys < self.best_keys)
        {
            self.best_cost = cost;
            self.best_keys = keys;
            self.best_chosen = chosen.to_vec();
        }
    }

    /// Greedy cover: repeatedly take the candidate with the best marginal
    /// cost per newly hit constraint. Seeds the branch-and-bound bound.
    fn greedy(&mut self) {
        let mut unhit: Vec<usize> = (0..self.constraints.len()).collect();
        let mut chosen: Vec<usize> = vec![];
        let mut instrs: Vec<Instrument> = vec![];
        let mut cost = 0.0;
        while !unhit.is_empty() {
            let mut pick: Option<(f64, usize, usize)> = None; // (score, ci, hits)
            for ci in 0..self.cands.len() {
                let hits = unhit
                    .iter()
                    .filter(|&&c| self.constraints[c].contains(&ci))
                    .count();
                if hits == 0 || chosen.contains(&ci) {
                    continue;
                }
                #[allow(clippy::cast_precision_loss)] // hits is tiny
                let score = self.marginal(ci, &instrs) / hits as f64;
                if pick.is_none_or(|(s, _, _)| score < s - EPS) {
                    pick = Some((score, ci, hits));
                }
            }
            let Some((_, ci, _)) = pick else {
                // A constraint with no candidates: infeasible; leave the
                // bound at infinity and let branch-and-bound report it.
                return;
            };
            cost += self.marginal(ci, &instrs);
            for ins in &self.cands[ci] {
                if !instrs.contains(ins) {
                    instrs.push(*ins);
                }
            }
            chosen.push(ci);
            unhit.retain(|&c| !self.constraints[c].contains(&ci));
        }
        self.offer(cost, &chosen, &instrs);
    }

    fn branch(&mut self, chosen: &mut Vec<usize>, instrs: &mut Vec<Instrument>, cost: f64) {
        // Explicit node budget: without it an adversarial instance keeps
        // the search alive indefinitely; with it the caller gets the best
        // incumbent so far plus a Timeout marker instead of a hang.
        if self.nodes >= self.budget {
            self.out_of_budget = true;
            return;
        }
        self.nodes += 1;
        // Cost-only pruning: suite-scale problems have a handful of
        // constraints, so a nontrivial admissible lower bound is not
        // worth the sharing-aware bookkeeping it would need.
        if cost > self.best_cost + EPS {
            return;
        }
        // Branch on the unhit constraint with the fewest candidates
        // (lowest index on ties).
        let next = self
            .constraints
            .iter()
            .enumerate()
            .filter(|(_, set)| !set.iter().any(|ci| chosen.contains(ci)))
            .min_by_key(|(i, set)| (set.len(), *i));
        let Some((_, set)) = next else {
            self.offer(cost, chosen, instrs);
            return;
        };
        for &ci in set {
            let added: Vec<Instrument> = self.cands[ci]
                .iter()
                .filter(|ins| !instrs.contains(ins))
                .copied()
                .collect();
            let add_cost: f64 = added.iter().map(|i| self.costs.instrument_ns(i)).sum();
            chosen.push(ci);
            instrs.extend(added.iter().copied());
            self.branch(chosen, instrs, cost + add_cost);
            instrs.truncate(instrs.len() - added.len());
            chosen.pop();
        }
    }
}

/// One hitting-set solve: the chosen instruments plus how the search went.
struct SolveStats {
    instruments: Vec<Instrument>,
    nodes: u64,
    timed_out: bool,
}

fn solve_hitting_set(
    cands: &[Vec<Instrument>],
    constraints: &[Vec<usize>],
    costs: &CostModel,
    opts: &SolverOptions,
) -> SolveStats {
    let mut solver = HittingSet {
        cands,
        constraints,
        costs,
        best_cost: f64::INFINITY,
        best_keys: vec![],
        best_chosen: vec![],
        nodes: 0,
        budget: opts.node_budget,
        out_of_budget: false,
    };
    solver.greedy();
    if !opts.greedy_only {
        solver.branch(&mut vec![], &mut vec![], 0.0);
    }
    let mut instruments: Vec<Instrument> = vec![];
    for &ci in &solver.best_chosen {
        for ins in &cands[ci] {
            if !instruments.contains(ins) {
                instruments.push(*ins);
            }
        }
    }
    instruments.sort_unstable();
    SolveStats {
        instruments,
        nodes: solver.nodes,
        timed_out: solver.out_of_budget,
    }
}

/// Synthesize the minimal-cost placement protecting every critical cycle
/// of `g` under `cfg.model`.
///
/// # Errors
///
/// [`SynthError::NoCandidate`] when some unprotected cycle cannot be
/// strengthened by any instrument the configuration allows;
/// [`SynthError::Diverged`] if lazy constraint generation exceeds its
/// round budget (a solver bug, not an input property);
/// [`SynthError::Timeout`] if branch-and-bound exhausts the default node
/// budget (callers of this wrapper require a proven-minimal placement —
/// use [`synthesize_with`] to accept the incumbent instead).
pub fn synthesize(
    g: &ProgramGraph,
    cfg: SynthConfig,
    costs: &CostModel,
) -> Result<Placement, SynthError> {
    match synthesize_with(g, cfg, costs, &SolverOptions::default())? {
        SynthOutcome::Timeout { nodes, .. } => Err(SynthError::Timeout { nodes }),
        outcome => Ok(outcome.into_placement()),
    }
}

/// [`synthesize_cycles`] over `g`'s own (serially enumerated) cycle set.
///
/// # Errors
///
/// As for [`synthesize_cycles`].
pub fn synthesize_with(
    g: &ProgramGraph,
    cfg: SynthConfig,
    costs: &CostModel,
    opts: &SolverOptions,
) -> Result<SynthOutcome, SynthError> {
    synthesize_cycles(g, &critical_cycles(g), cfg, costs, opts)
}

/// Candidate enumeration over every multi-access leg of every open cycle;
/// eager constraints demand a local cut on every uncut leg (necessary
/// under every model — a leg without a local cut contributes no edge that
/// could close the constraint graph across it on the MCA side, and
/// POWER's cumulative/global strengths imply the local one in this
/// checker). The reorder bound `k` limits which legs contribute *eager*
/// constraints; candidates still register for every leg so lazy repair
/// can reach them.
#[allow(clippy::type_complexity)]
fn eager_instance(
    g: &ProgramGraph,
    cfg: SynthConfig,
    open: &[&CriticalCycle],
    opts: &SolverOptions,
) -> Result<(Vec<Vec<Instrument>>, Vec<Vec<usize>>), SynthError> {
    let model = cfg.model;
    let mut cands: Vec<Vec<Instrument>> = vec![];
    let mut constraints: Vec<Vec<usize>> = vec![];
    let register = |cands: &mut Vec<Vec<Instrument>>, bundle: Vec<Instrument>| -> usize {
        cands.iter().position(|c| *c == bundle).unwrap_or_else(|| {
            cands.push(bundle);
            cands.len() - 1
        })
    };
    let eager = opts.reorder_bound.unwrap_or(usize::MAX);
    for cyc in open {
        for (leg_idx, (a_id, b_id)) in po_legs(cyc).into_iter().enumerate() {
            let bundles = pair_candidates(g, cfg, a_id, b_id);
            let ids: Vec<usize> = bundles
                .into_iter()
                .map(|b| register(&mut cands, b))
                .collect();
            if leg_idx < eager && !pair_cut(g, model, a_id, b_id, None).local {
                let locals: Vec<usize> = ids
                    .iter()
                    .copied()
                    .filter(|&ci| {
                        let g2 = apply_to_graph(g, &cands[ci]);
                        pair_cut(&g2, model, a_id, b_id, None).local
                    })
                    .collect();
                if locals.is_empty() {
                    return Err(SynthError::NoCandidate {
                        cycle: describe_cycle(g, cyc),
                    });
                }
                if !constraints.contains(&locals) {
                    constraints.push(locals);
                }
            }
        }
    }
    Ok((cands, constraints))
}

/// Synthesize a placement protecting every cycle in `cycles` (which must
/// be `g`'s complete critical-cycle set — e.g. from the parallel
/// whole-program enumerator) under `cfg.model`, with the solve tier
/// chosen by `opts`.
///
/// # Errors
///
/// [`SynthError::NoCandidate`] and [`SynthError::Diverged`] as for
/// [`synthesize`]; this entry never returns [`SynthError::Timeout`] —
/// budget exhaustion is reported as [`SynthOutcome::Timeout`] with the
/// best feasible incumbent.
pub fn synthesize_cycles(
    g: &ProgramGraph,
    cycles: &[CriticalCycle],
    cfg: SynthConfig,
    costs: &CostModel,
    opts: &SolverOptions,
) -> Result<SynthOutcome, SynthError> {
    const MAX_ROUNDS: usize = 32;
    let model = cfg.model;
    let open: Vec<&CriticalCycle> = cycles
        .iter()
        .filter(|c| !check_cycle(g, model, c).protected)
        .collect();
    if open.is_empty() {
        let placement = Placement {
            instruments: vec![],
            cost_ns: 0.0,
            rounds: 0,
        };
        return Ok(SynthOutcome::Exact {
            placement,
            nodes: 0,
        });
    }

    let (cands, mut constraints) = eager_instance(g, cfg, &open, opts)?;

    let mut nodes_total: u64 = 0;
    let mut timed_out = false;
    for round in 1..=MAX_ROUNDS {
        let solve = solve_hitting_set(&cands, &constraints, costs, opts);
        nodes_total += solve.nodes;
        timed_out |= solve.timed_out;
        let solution = solve.instruments;
        let applied = apply_to_graph(g, &solution);
        let failing: Vec<&&CriticalCycle> = open
            .iter()
            .filter(|c| !check_cycle(&applied, model, c).protected)
            .collect();
        if failing.is_empty() {
            let cost_ns = solution.iter().map(|i| costs.instrument_ns(i)).sum();
            let placement = Placement {
                instruments: solution,
                cost_ns,
                rounds: round,
            };
            return Ok(if opts.greedy_only {
                SynthOutcome::Approx { placement }
            } else if timed_out {
                SynthOutcome::Timeout {
                    placement,
                    nodes: nodes_total,
                    budget: opts.node_budget,
                }
            } else {
                SynthOutcome::Exact {
                    placement,
                    nodes: nodes_total,
                }
            });
        }
        // Lazy constraints: for each failing cycle, the unchosen
        // candidates that add any strength bit to one of its legs beyond
        // the trial placement. Per-leg strength is monotone in the
        // instrument set, so every feasible superset of the trial hits
        // this set; and the trial itself does not, so each round strictly
        // excludes the current solution.
        for cyc in failing {
            let legs = po_legs(cyc);
            let current: Vec<PairCut> = legs
                .iter()
                .map(|&(a, b)| pair_cut(&applied, model, a, b, None))
                .collect();
            let escape: Vec<usize> = (0..cands.len())
                .filter(|&ci| {
                    // Candidates already contained in the trial placement
                    // add nothing beyond `applied`, so they filter out
                    // here naturally — the escape set never contains a
                    // chosen candidate, which is what guarantees each
                    // round strictly excludes the current solution.
                    let g2 = apply_to_graph(&applied, &cands[ci]);
                    legs.iter()
                        .zip(&current)
                        .any(|(&(a, b), cur)| pair_cut(&g2, model, a, b, None).stronger_than(*cur))
                })
                .collect();
            if escape.is_empty() {
                return Err(SynthError::NoCandidate {
                    cycle: describe_cycle(g, cyc),
                });
            }
            if !constraints.contains(&escape) {
                constraints.push(escape);
            }
        }
    }
    Err(SynthError::Diverged { rounds: MAX_ROUNDS })
}

fn describe_cycle(g: &ProgramGraph, cyc: &CriticalCycle) -> String {
    cyc.legs
        .iter()
        .map(|&(e, x)| {
            if e == x {
                g.describe(e)
            } else {
                format!("{}..{}", g.describe(e), g.describe(x))
            }
        })
        .collect::<Vec<_>>()
        .join(" -> ")
}

#[cfg(test)]
// Exact float equality is deliberate here: the empty placement costs
// exactly 0.0 and the fallback path must return table values unchanged.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use wmm_litmus::suite;
    use ModelKind::{ArmV8, Power, Sc, Tso};

    fn synth_litmus(
        entry: &suite::SuiteEntry,
        model: ModelKind,
    ) -> (ProgramGraph, Result<Placement, SynthError>) {
        let g = ProgramGraph::from_litmus(&entry.test);
        let p = synthesize(
            &g,
            SynthConfig::for_model(model),
            &CostModel::static_table(),
        );
        (g, p)
    }

    fn protected(g: &ProgramGraph, model: ModelKind) -> bool {
        critical_cycles(g)
            .iter()
            .all(|c| check_cycle(g, model, c).protected)
    }

    #[test]
    fn already_protected_program_places_nothing() {
        let (_, p) = synth_litmus(&suite::store_buffering(), Sc);
        let p = p.unwrap();
        assert!(p.instruments.is_empty());
        assert_eq!(p.rounds, 0);
        assert_eq!(p.cost_ns, 0.0);
    }

    #[test]
    fn sb_on_armv8_rediscovers_the_rcsc_pair() {
        // JDK9's insight: stlr;ldar is cheaper than dmb between a volatile
        // store and a volatile load. Synthesis finds it from costs alone.
        let (g, p) = synth_litmus(&suite::store_buffering(), ArmV8);
        let p = p.unwrap();
        assert_eq!(
            p.instruments,
            vec![
                Instrument::Release { thread: 0, pos: 0 },
                Instrument::Acquire { thread: 0, pos: 1 },
                Instrument::Release { thread: 1, pos: 0 },
                Instrument::Acquire { thread: 1, pos: 1 },
            ]
        );
        assert!(protected(&apply_to_graph(&g, &p.instruments), ArmV8));
        assert!((p.cost_ns - 2.0 * (STATIC_ACQUIRE_NS + STATIC_RELEASE_NS)).abs() < 1e-9);
    }

    #[test]
    fn sb_on_tso_needs_full_fences() {
        // No RCsc rule under TSO: only a full barrier cuts store->load.
        let (g, p) = synth_litmus(&suite::store_buffering(), Tso);
        let p = p.unwrap();
        assert_eq!(
            p.instruments,
            vec![
                Instrument::Fence {
                    thread: 0,
                    slot: 1,
                    kind: FenceKind::DmbIsh
                },
                Instrument::Fence {
                    thread: 1,
                    slot: 1,
                    kind: FenceKind::DmbIsh
                },
            ]
        );
        assert!(protected(&apply_to_graph(&g, &p.instruments), Tso));
    }

    #[test]
    fn mp_on_power_uses_lwsync_and_an_address_dependency() {
        // The classic cheap POWER strategy: cumulative lwsync on the
        // writer, a bogus address dependency on the reader.
        let (g, p) = synth_litmus(&suite::message_passing(), Power);
        let p = p.unwrap();
        assert_eq!(
            p.instruments,
            vec![
                Instrument::Fence {
                    thread: 0,
                    slot: 1,
                    kind: FenceKind::LwSync
                },
                Instrument::Dep {
                    thread: 1,
                    from_pos: 0,
                    to_pos: 1,
                    kind: DepKind::Addr
                },
            ]
        );
        assert!(protected(&apply_to_graph(&g, &p.instruments), Power));
    }

    #[test]
    fn mp_on_armv8_prefers_ishst_and_acquire() {
        let (g, p) = synth_litmus(&suite::message_passing(), ArmV8);
        let p = p.unwrap();
        assert_eq!(
            p.instruments,
            vec![
                Instrument::Fence {
                    thread: 0,
                    slot: 1,
                    kind: FenceKind::DmbIshSt
                },
                Instrument::Acquire { thread: 1, pos: 0 },
            ]
        );
        assert!(protected(&apply_to_graph(&g, &p.instruments), ArmV8));
    }

    #[test]
    fn iriw_on_power_forces_global_syncs_via_lazy_constraints() {
        // iriw_lwsyncs: every pair is locally cut, yet the cycle is
        // observable — only the lazy rounds can discover that both
        // readers need the global strength of sync.
        let (g, p) = synth_litmus(&suite::iriw_lwsyncs(), Power);
        let p = p.unwrap();
        assert!(p.rounds > 1, "must have needed lazy constraints");
        assert_eq!(
            p.instruments,
            vec![
                Instrument::Fence {
                    thread: 2,
                    slot: 1,
                    kind: FenceKind::HwSync
                },
                Instrument::Fence {
                    thread: 3,
                    slot: 1,
                    kind: FenceKind::HwSync
                },
            ]
        );
        assert!(protected(&apply_to_graph(&g, &p.instruments), Power));
    }

    #[test]
    fn fences_only_config_never_places_upgrades_or_deps() {
        let g = ProgramGraph::from_litmus(&suite::message_passing().test);
        let p = synthesize(
            &g,
            SynthConfig::fences_only(ArmV8),
            &CostModel::static_table(),
        )
        .unwrap();
        assert!(p
            .instruments
            .iter()
            .all(|i| matches!(i, Instrument::Fence { .. })));
        assert!(protected(&apply_to_graph(&g, &p.instruments), ArmV8));
    }

    #[test]
    fn synthesis_is_deterministic() {
        for entry in suite::full_suite() {
            for model in [Sc, Tso, ArmV8, Power] {
                let g = ProgramGraph::from_litmus(&entry.test);
                let cfg = SynthConfig::for_model(model);
                let costs = CostModel::priced(0.0087);
                let a = synthesize(&g, cfg, &costs).unwrap();
                let b = synthesize(&g, cfg, &costs).unwrap();
                assert_eq!(
                    a.instruments, b.instruments,
                    "{}/{model:?}",
                    entry.test.name
                );
                assert!((a.cost_ns - b.cost_ns).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn apply_to_streams_round_trips_through_from_streams() {
        // Applying a placement to streams then re-deriving the graph must
        // agree with applying it to the graph directly.
        let threads = vec![
            vec![
                Instr::Store {
                    loc: Loc::SharedRw(1),
                    ord: AccessOrd::Plain,
                },
                Instr::Nop,
                Instr::Store {
                    loc: Loc::SharedRw(2),
                    ord: AccessOrd::Plain,
                },
            ],
            vec![
                Instr::Load {
                    loc: Loc::SharedRw(2),
                    ord: AccessOrd::Plain,
                },
                Instr::Load {
                    loc: Loc::SharedRw(1),
                    ord: AccessOrd::Plain,
                },
            ],
        ];
        let placement = [
            Instrument::Fence {
                thread: 0,
                slot: 1,
                kind: FenceKind::DmbIshSt,
            },
            Instrument::Acquire { thread: 1, pos: 0 },
            Instrument::Dep {
                thread: 1,
                from_pos: 0,
                to_pos: 1,
                kind: DepKind::Addr,
            },
        ];
        let (streams, deps) = apply_to_streams(&threads, &placement);
        // The fence landed between the stores, after the Nop.
        assert_eq!(streams[0][2], Instr::Fence(FenceKind::DmbIshSt));
        let via_streams = ProgramGraph::from_streams("x", &streams, &deps);
        let direct = apply_to_graph(&ProgramGraph::from_streams("x", &threads, &[]), &placement);
        for model in [Sc, Tso, ArmV8, Power] {
            assert_eq!(protected(&via_streams, model), protected(&direct, model));
        }
    }

    #[test]
    fn trailing_slot_appends_to_the_stream() {
        let threads = vec![vec![Instr::Store {
            loc: Loc::SharedRw(1),
            ord: AccessOrd::Plain,
        }]];
        let (streams, _) = apply_to_streams(
            &threads,
            &[Instrument::Fence {
                thread: 0,
                slot: 1,
                kind: FenceKind::DmbIsh,
            }],
        );
        assert_eq!(streams[0].len(), 2);
        assert_eq!(streams[0][1], Instr::Fence(FenceKind::DmbIsh));
    }

    #[test]
    fn cost_model_pricing_guards_non_finite_sensitivity() {
        // Eq. 1/Eq. 2 round-trip is the identity for valid k; invalid k
        // falls back to the raw table instead of poisoning weights.
        let sane = CostModel::priced(0.0087);
        assert!((sane.fence_ns(FenceKind::DmbIsh) - 17.0).abs() < 1e-6);
        for bad in [f64::NAN, 0.0, 1.0, 1.5, -0.2] {
            let m = CostModel::priced(bad);
            assert_eq!(m.fence_ns(FenceKind::LwSync), 6.1, "k={bad}");
        }
    }

    #[test]
    fn graph_cost_prices_hand_strategies() {
        let costs = CostModel::static_table();
        let mp = ProgramGraph::from_litmus(&suite::mp_fences().test);
        // Two Full fences: dmb ish on ARM, sync on POWER.
        assert!((graph_cost(&mp, ArmV8, &costs) - 34.0).abs() < 1e-9);
        assert!((graph_cost(&mp, Power, &costs) - 37.8).abs() < 1e-9);
        let rel_acq = ProgramGraph::from_litmus(&suite::mp_rel_acq().test);
        assert!((graph_cost(&rel_acq, ArmV8, &costs) - 4.5).abs() < 1e-9);
    }
}
