//! Whole-program fence synthesis (WPS).
//!
//! The per-shape pipeline ([`crate::synth`]) enumerates critical cycles
//! and solves one hitting-set instance per program, serially. That is
//! exact and fast for litmus-sized inputs, but a *whole program* — a
//! stitched multi-operation hot path, or a bundle of generated tests
//! composed in parallel — is bigger on both axes. This module scales the
//! same analysis along the structure of the input:
//!
//! 1. **Decomposition.** Threads that never touch a common shared
//!    location cannot appear on the same critical cycle (every
//!    communication edge joins conflicting accesses). The connected
//!    components of the thread/location conflict graph therefore
//!    partition the cycle set exactly — each component is an independent
//!    enumeration subproblem.
//! 2. **Parallel, incremental enumeration.** Per-component enumeration
//!    runs as content-addressed tasks through the `wmm-harness` job seam
//!    ([`wmm_harness::run_cached_tasks`]): results merge in component
//!    order, so the output is byte-identical at any worker count, and a
//!    component's cycle set is cached under a hash of its *access
//!    skeleton* — fences and dependencies do not change which cycles
//!    exist, only whether they are protected, so fenced variants and
//!    repeated shapes (the same test appearing in many bundles) reuse
//!    each other's enumeration.
//! 3. **Tiered solving.** Instances with at most
//!    [`WpsConfig::exact_leg_cap`] distinct reorderable legs get the
//!    exact branch-and-bound (under an explicit node budget) as the
//!    gated oracle; every instance also gets the reorder-bounded greedy
//!    tier ([`SolverOptions::approx`]), and where both ran the report
//!    carries the priced optimality gap.

use std::sync::Arc;

use wmm_harness::{resolve_threads, run_cached_tasks, Fnv128, TaskCache};
use wmm_obs::{Class, Counter, Histogram, MetricsRegistry};

use crate::check::check_cycle;
use crate::cycles::{critical_cycles, dedup_cycles, CriticalCycle};
use crate::graph::ProgramGraph;
use crate::synth::{
    synthesize_cycles, CostModel, Placement, SolverOptions, SynthConfig, SynthError, SynthOutcome,
};

/// Content-addressed store of per-component cycle sets, keyed by the
/// component's access skeleton and holding cycles in component-local
/// access ids (so a hit remaps into any parent graph with the same
/// skeleton).
pub type CycleCache = TaskCache<Vec<CriticalCycle>>;

/// Knobs for the whole-program pipeline.
#[derive(Debug, Clone, Copy)]
pub struct WpsConfig {
    /// Worker threads for enumeration (`None`: `WMM_THREADS` or the
    /// machine's available parallelism).
    pub threads: Option<usize>,
    /// Reorder bound `k` for the approximate tier: eager constraints per
    /// cycle come from at most `k` multi-access legs.
    pub reorder_bound: usize,
    /// Instances with at most this many distinct reorderable legs also
    /// run the exact branch-and-bound oracle.
    pub exact_leg_cap: usize,
    /// Node budget for the exact tier.
    pub node_budget: u64,
}

impl Default for WpsConfig {
    fn default() -> Self {
        WpsConfig {
            threads: None,
            reorder_bound: 2,
            exact_leg_cap: 30,
            node_budget: crate::synth::DEFAULT_NODE_BUDGET,
        }
    }
}

/// Which tier produced the placement a [`WpsReport`] carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WpsTier {
    /// Proven minimal by complete branch-and-bound.
    Exact,
    /// Greedy reorder-bounded tier (instance above the exact cap).
    Approx,
    /// Exact tier attempted but the node budget ran out; the placement
    /// is the feasible incumbent.
    Timeout,
}

impl WpsTier {
    /// Stable label for manifests.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            WpsTier::Exact => "exact",
            WpsTier::Approx => "approx",
            WpsTier::Timeout => "timeout",
        }
    }
}

/// Everything a whole-program synthesis run reports.
#[derive(Debug, Clone)]
pub struct WpsReport {
    /// The placement to apply (from the tier in `tier`).
    pub placement: Placement,
    /// Which tier produced `placement`.
    pub tier: WpsTier,
    /// Conflict components of the program (including cycle-free ones).
    pub components: usize,
    /// Critical cycles enumerated.
    pub cycles: usize,
    /// Cycles unprotected before synthesis.
    pub open_cycles: usize,
    /// Distinct reorderable (multi-access) legs across open cycles — the
    /// instance-size measure the exact cap is checked against.
    pub legs: usize,
    /// Branch-and-bound nodes explored by the exact tier (0 if not run).
    pub nodes: u64,
    /// Exact-oracle cost, when the exact tier completed.
    pub exact_cost_ns: Option<f64>,
    /// Approximate-tier cost (always computed).
    pub approx_cost_ns: f64,
    /// Priced optimality gap `approx / exact` when both tiers completed
    /// (1.0 = greedy matched the optimum).
    pub gap: Option<f64>,
}

/// Registered metric handles for the WPS pipeline (`wps.*`).
///
/// Every metric here is [`Class::Structural`]: components, cycle and leg
/// counts, solver nodes, tier outcomes and priced gaps are all pure
/// functions of the analysed program, recorded on the calling thread after
/// the deterministic merge — so the structural snapshot of a WPS campaign
/// is byte-identical at any worker count.
pub struct WpsMetrics {
    components: Arc<Counter>,
    component_size: Arc<Histogram>,
    cycles_enumerated: Arc<Counter>,
    open_cycles: Arc<Counter>,
    legs: Arc<Counter>,
    solver_nodes: Arc<Counter>,
    tier_exact: Arc<Counter>,
    tier_approx: Arc<Counter>,
    tier_timeout: Arc<Counter>,
    gap: Arc<Histogram>,
}

impl WpsMetrics {
    /// Register the `wps.*` metrics in `registry` and return the handles.
    pub fn register(registry: &MetricsRegistry) -> Self {
        WpsMetrics {
            components: registry.counter("wps.components", Class::Structural),
            component_size: registry.histogram(
                "wps.component_size",
                Class::Structural,
                &[2.0, 4.0, 8.0, 16.0],
            ),
            cycles_enumerated: registry.counter("wps.cycles_enumerated", Class::Structural),
            open_cycles: registry.counter("wps.open_cycles", Class::Structural),
            legs: registry.counter("wps.legs", Class::Structural),
            solver_nodes: registry.counter("wps.solver.nodes", Class::Structural),
            tier_exact: registry.counter("wps.tier.exact", Class::Structural),
            tier_approx: registry.counter("wps.tier.approx", Class::Structural),
            tier_timeout: registry.counter("wps.tier.timeout", Class::Structural),
            gap: registry.histogram("wps.gap", Class::Structural, &[1.0, 1.01, 1.05, 1.25, 2.0]),
        }
    }

    fn record_components(&self, comps: &[Vec<usize>]) {
        self.components.add(comps.len() as u64);
        for c in comps {
            #[allow(clippy::cast_precision_loss)] // components hold ≤ threads
            self.component_size.observe(c.len() as f64);
        }
    }

    fn record_report(&self, report: &WpsReport) {
        self.open_cycles.add(report.open_cycles as u64);
        self.legs.add(report.legs as u64);
        self.solver_nodes.add(report.nodes);
        match report.tier {
            WpsTier::Exact => self.tier_exact.inc(),
            WpsTier::Approx => self.tier_approx.inc(),
            WpsTier::Timeout => self.tier_timeout.inc(),
        }
        if let Some(gap) = report.gap {
            self.gap.observe(gap);
        }
    }
}

/// Partition thread indices into conflict components: two threads share a
/// component iff they (transitively) access a common shared location.
/// Components list threads ascending and are ordered by lowest thread.
#[must_use]
pub fn conflict_components(g: &ProgramGraph) -> Vec<Vec<usize>> {
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    let n = g.threads.len();
    let mut parent: Vec<usize> = (0..n).collect();
    let mut owner: Vec<Option<usize>> = vec![None; g.loc_names.len()];
    for (t, ids) in g.threads.iter().enumerate() {
        for &id in ids {
            let a = &g.accesses[id];
            if !a.shared {
                continue;
            }
            if let Some(o) = owner[a.loc] {
                let (ra, rb) = (find(&mut parent, o), find(&mut parent, t));
                parent[ra.max(rb)] = ra.min(rb);
            } else {
                owner[a.loc] = Some(t);
            }
        }
    }
    let mut comps: Vec<Vec<usize>> = vec![];
    let mut root_of: Vec<Option<usize>> = vec![None; n];
    for t in 0..n {
        let r = find(&mut parent, t);
        if let Some(c) = root_of[r] {
            comps[c].push(t);
        } else {
            root_of[r] = Some(comps.len());
            comps.push(vec![t]);
        }
    }
    comps
}

/// Content key of a component: a hash of its access skeleton — per thread
/// (ascending), in program order, each access's roles, sharedness and
/// first-occurrence-interned location. Fences, dependencies and
/// acquire/release attributes are deliberately excluded: they never
/// change which critical cycles exist, only whether they are protected,
/// so skeleton-equal components share one cached enumeration.
#[must_use]
pub fn component_key(g: &ProgramGraph, threads: &[usize]) -> u128 {
    let mut h = Fnv128::new();
    let mut locs: Vec<usize> = vec![];
    h.u64(threads.len() as u64);
    for &t in threads {
        h.u64(0xF00D_F00D);
        h.u64(g.threads[t].len() as u64);
        for &id in &g.threads[t] {
            let a = &g.accesses[id];
            let local = locs.iter().position(|&l| l == a.loc).unwrap_or_else(|| {
                locs.push(a.loc);
                locs.len() - 1
            });
            h.u64(u64::from(a.is_load) | u64::from(a.is_store) << 1 | u64::from(a.shared) << 2);
            h.u64(local as u64);
        }
    }
    h.finish()
}

/// The component as a standalone graph (threads/locations renumbered in
/// first-occurrence order, fences and deps dropped — enumeration ignores
/// them) plus the local-to-parent access id map.
fn component_graph(g: &ProgramGraph, threads: &[usize]) -> (ProgramGraph, Vec<usize>) {
    let mut sub = ProgramGraph {
        name: String::new(),
        accesses: vec![],
        threads: vec![],
        fences: vec![],
        deps: vec![],
        loc_names: vec![],
    };
    let mut to_parent: Vec<usize> = vec![];
    let mut locs: Vec<usize> = vec![];
    for (local_t, &t) in threads.iter().enumerate() {
        let mut ids: Vec<usize> = vec![];
        for &id in &g.threads[t] {
            let a = &g.accesses[id];
            let local_loc = locs.iter().position(|&l| l == a.loc).unwrap_or_else(|| {
                locs.push(a.loc);
                sub.loc_names.push(g.loc_names[a.loc].clone());
                locs.len() - 1
            });
            let local_id = sub.accesses.len();
            sub.accesses.push(crate::graph::Access {
                thread: local_t,
                pos: ids.len(),
                loc: local_loc,
                ..a.clone()
            });
            to_parent.push(id);
            ids.push(local_id);
        }
        sub.threads.push(ids);
    }
    (sub, to_parent)
}

/// Whole-program critical-cycle enumeration: decompose into conflict
/// components, enumerate each as a content-addressed parallel task, and
/// merge in component order. The result equals [`critical_cycles`] on the
/// same graph (as canonical-key sets *and* as an ordered sequence after
/// both sides' dedup) and is byte-identical at any worker count.
#[must_use]
pub fn critical_cycles_wps(
    g: &ProgramGraph,
    threads: Option<usize>,
    cache: Option<&CycleCache>,
) -> Vec<CriticalCycle> {
    let workers = resolve_threads(threads);
    let comps: Vec<Vec<usize>> = conflict_components(g)
        .into_iter()
        .filter(|c| c.len() >= 2)
        .collect();
    let local_sets = run_cached_tasks(
        &comps,
        workers,
        cache,
        |comp| component_key(g, comp),
        |comp| critical_cycles(&component_graph(g, comp).0),
    );
    let mut merged: Vec<CriticalCycle> = vec![];
    for (comp, local) in comps.iter().zip(local_sets) {
        let (_, to_parent) = component_graph(g, comp);
        for mut cyc in local {
            for leg in &mut cyc.legs {
                *leg = (to_parent[leg.0], to_parent[leg.1]);
            }
            merged.push(cyc);
        }
    }
    dedup_cycles(merged)
}

/// [`critical_cycles_wps`], recording the decomposition and cycle counts
/// into `metrics` when one is supplied. The returned cycle set is
/// identical either way — the metered variant exists so instrumented
/// campaigns keep the uninstrumented function's signature untouched.
#[must_use]
pub fn critical_cycles_wps_metered(
    g: &ProgramGraph,
    threads: Option<usize>,
    cache: Option<&CycleCache>,
    metrics: Option<&WpsMetrics>,
) -> Vec<CriticalCycle> {
    let cycles = critical_cycles_wps(g, threads, cache);
    if let Some(m) = metrics {
        m.record_components(&conflict_components(g));
        m.cycles_enumerated.add(cycles.len() as u64);
    }
    cycles
}

/// Tiered whole-program synthesis over the parallel-enumerated cycle set.
///
/// Every instance runs the reorder-bounded greedy tier; instances whose
/// open cycles span at most [`WpsConfig::exact_leg_cap`] distinct
/// reorderable legs also run the exact branch-and-bound oracle (under
/// [`WpsConfig::node_budget`] nodes) and the report prices the gap
/// between the tiers. The returned placement comes from the strongest
/// tier that completed: exact when it ran to optimality, its feasible
/// incumbent on timeout, greedy otherwise.
///
/// # Errors
///
/// [`SynthError`] as for [`crate::synthesize`] (no-candidate cycles or
/// lazy-constraint divergence); never `Timeout` — budget exhaustion is
/// reported via [`WpsTier::Timeout`].
pub fn synthesize_wps(
    g: &ProgramGraph,
    cfg: SynthConfig,
    costs: &CostModel,
    wps: &WpsConfig,
    cache: Option<&CycleCache>,
) -> Result<WpsReport, SynthError> {
    let components = conflict_components(g).len();
    let cycles = critical_cycles_wps(g, wps.threads, cache);
    let open: Vec<&CriticalCycle> = cycles
        .iter()
        .filter(|c| !check_cycle(g, cfg.model, c).protected)
        .collect();
    let mut legs: Vec<(usize, usize)> = open
        .iter()
        .flat_map(|c| c.legs.iter().copied().filter(|&(e, x)| e != x))
        .collect();
    legs.sort_unstable();
    legs.dedup();

    let approx = synthesize_cycles(
        g,
        &cycles,
        cfg,
        costs,
        &SolverOptions::approx(wps.reorder_bound),
    )?
    .into_placement();
    let mut report = WpsReport {
        placement: approx.clone(),
        tier: WpsTier::Approx,
        components,
        cycles: cycles.len(),
        open_cycles: open.len(),
        legs: legs.len(),
        nodes: 0,
        exact_cost_ns: None,
        approx_cost_ns: approx.cost_ns,
        gap: None,
    };
    if legs.len() > wps.exact_leg_cap {
        return Ok(report);
    }
    let outcome = synthesize_cycles(
        g,
        &cycles,
        cfg,
        costs,
        &SolverOptions::exact(wps.node_budget),
    )?;
    apply_exact_tier(&mut report, outcome);
    Ok(report)
}

/// [`synthesize_wps`], recording the full report — decomposition, cycle,
/// open-cycle and leg counts, solver nodes, tier outcome and priced gap —
/// into `metrics` when one is supplied.
///
/// # Errors
///
/// As for [`synthesize_wps`].
pub fn synthesize_wps_metered(
    g: &ProgramGraph,
    cfg: SynthConfig,
    costs: &CostModel,
    wps: &WpsConfig,
    cache: Option<&CycleCache>,
    metrics: Option<&WpsMetrics>,
) -> Result<WpsReport, SynthError> {
    let report = synthesize_wps(g, cfg, costs, wps, cache)?;
    if let Some(m) = metrics {
        m.record_components(&conflict_components(g));
        m.cycles_enumerated.add(report.cycles as u64);
        m.record_report(&report);
    }
    Ok(report)
}

/// Fold the exact oracle's outcome into a report seeded with the approx
/// tier, pricing the optimality gap when the oracle completed.
fn apply_exact_tier(report: &mut WpsReport, outcome: SynthOutcome) {
    match outcome {
        SynthOutcome::Exact { placement, nodes } => {
            debug_assert!(
                report.approx_cost_ns >= placement.cost_ns - 1e-9,
                "approx tier beat the exact oracle: {} < {}",
                report.approx_cost_ns,
                placement.cost_ns
            );
            report.gap = Some(if placement.cost_ns > 1e-9 {
                report.approx_cost_ns / placement.cost_ns
            } else {
                1.0
            });
            report.exact_cost_ns = Some(placement.cost_ns);
            report.nodes = nodes;
            report.placement = placement;
            report.tier = WpsTier::Exact;
        }
        SynthOutcome::Timeout {
            placement, nodes, ..
        } => {
            report.nodes = nodes;
            report.placement = placement;
            report.tier = WpsTier::Timeout;
        }
        SynthOutcome::Approx { .. } => unreachable!("exact options never produce the greedy tier"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{apply_to_graph, synthesize};
    use wmm_litmus::ops::ModelKind;
    use wmm_litmus::suite;

    fn graph_of(entry: &suite::SuiteEntry) -> ProgramGraph {
        ProgramGraph::from_litmus(&entry.test)
    }

    fn canon_keys(cycles: &[CriticalCycle]) -> Vec<Vec<(usize, usize, u8)>> {
        let mut keys: Vec<_> = cycles.iter().map(CriticalCycle::canonical_key).collect();
        keys.sort();
        keys
    }

    #[test]
    fn union_of_independent_tests_decomposes_per_part() {
        let sb = graph_of(&suite::store_buffering());
        let mp = graph_of(&suite::message_passing());
        let u = ProgramGraph::disjoint_union("sb+mp", &[&sb, &mp]);
        let comps = conflict_components(&u);
        assert_eq!(comps, vec![vec![0, 1], vec![2, 3]]);
    }

    #[test]
    fn sequentially_stitched_threads_stay_one_component() {
        // Threads sharing any location chain into one component.
        let g = graph_of(&suite::iriw_addrs());
        assert_eq!(conflict_components(&g).len(), 1);
    }

    #[test]
    fn wps_enumeration_matches_serial_on_suite_and_unions() {
        let entries = [
            suite::store_buffering(),
            suite::message_passing(),
            suite::iriw_addrs(),
            suite::sb_fences(),
        ];
        let graphs: Vec<ProgramGraph> = entries.iter().map(graph_of).collect();
        let union = ProgramGraph::disjoint_union("all", &graphs.iter().collect::<Vec<_>>());
        for g in graphs.iter().chain([&union]) {
            let serial = critical_cycles(g);
            for workers in [1, 2, 4] {
                let wps = critical_cycles_wps(g, Some(workers), None);
                assert_eq!(
                    format!("{serial:?}"),
                    format!("{wps:?}"),
                    "worker count changed the cycle set of {}",
                    g.name
                );
            }
        }
    }

    #[test]
    fn skeleton_cache_reuses_repeated_and_fenced_shapes() {
        let sb = graph_of(&suite::store_buffering());
        let fenced = graph_of(&suite::sb_fences());
        // Same skeleton: fences don't enter the key.
        assert_eq!(component_key(&sb, &[0, 1]), component_key(&fenced, &[0, 1]));
        let cache = CycleCache::in_memory();
        let u = ProgramGraph::disjoint_union("sb x3", &[&sb, &fenced, &sb]);
        let cycles = critical_cycles_wps(&u, Some(2), Some(&cache));
        assert_eq!(cycles.len(), 3);
        // Three skeleton-equal components: one enumeration, fanned out.
        assert_eq!(cache.len(), 1);
        let again = critical_cycles_wps(&u, Some(4), Some(&cache));
        assert_eq!(format!("{cycles:?}"), format!("{again:?}"));
        assert_eq!(cache.hits(), 3);
    }

    #[test]
    fn wps_exact_tier_matches_plain_synthesis() {
        let costs = CostModel::static_table();
        for entry in [suite::store_buffering(), suite::message_passing()] {
            let g = graph_of(&entry);
            for model in [ModelKind::Tso, ModelKind::ArmV8, ModelKind::Power] {
                let cfg = SynthConfig::for_model(model);
                let plain = synthesize(&g, cfg, &costs).expect("plain");
                let report =
                    synthesize_wps(&g, cfg, &costs, &WpsConfig::default(), None).expect("wps");
                assert_eq!(report.tier, WpsTier::Exact);
                assert_eq!(
                    format!("{:?}", plain.instruments),
                    format!("{:?}", report.placement.instruments)
                );
                let gap = report.gap.expect("both tiers ran");
                assert!(gap >= 1.0 - 1e-9, "gap {gap}");
                // The approx tier is feasible on its own.
                let approx_ok = report.approx_cost_ns >= report.placement.cost_ns - 1e-9;
                assert!(approx_ok);
            }
        }
    }

    #[test]
    fn wps_fences_a_multi_test_union_and_revalidates() {
        let parts = [
            graph_of(&suite::store_buffering()),
            graph_of(&suite::message_passing()),
            graph_of(&suite::iriw_addrs()),
        ];
        let u = ProgramGraph::disjoint_union("bundle", &parts.iter().collect::<Vec<_>>());
        let costs = CostModel::static_table();
        let cfg = SynthConfig::for_model(ModelKind::ArmV8);
        let report =
            synthesize_wps(&u, cfg, &costs, &WpsConfig::default(), None).expect("bundle synth");
        assert!(report.open_cycles > 0);
        let applied = apply_to_graph(&u, &report.placement.instruments);
        let after = critical_cycles_wps(&applied, Some(2), None);
        assert!(after
            .iter()
            .all(|c| check_cycle(&applied, ModelKind::ArmV8, c).protected));
        // Canonical cycle sets agree before/after (fences change nothing).
        assert_eq!(canon_keys(&critical_cycles(&u)), canon_keys(&after));
    }

    #[test]
    fn approx_tier_above_cap_still_protects_everything() {
        let parts: Vec<ProgramGraph> = (0..4)
            .map(|_| graph_of(&suite::store_buffering()))
            .collect();
        let u = ProgramGraph::disjoint_union("sb x4", &parts.iter().collect::<Vec<_>>());
        let costs = CostModel::static_table();
        let cfg = SynthConfig::for_model(ModelKind::ArmV8);
        let wps = WpsConfig {
            exact_leg_cap: 4, // force the approx tier
            ..WpsConfig::default()
        };
        let report = synthesize_wps(&u, cfg, &costs, &wps, None).expect("approx synth");
        assert_eq!(report.tier, WpsTier::Approx);
        assert!(report.gap.is_none());
        let applied = apply_to_graph(&u, &report.placement.instruments);
        for cyc in critical_cycles(&applied) {
            assert!(check_cycle(&applied, ModelKind::ArmV8, &cyc).protected);
        }
    }

    #[test]
    fn metered_variants_record_structural_wps_metrics() {
        let parts = [
            graph_of(&suite::store_buffering()),
            graph_of(&suite::message_passing()),
        ];
        let u = ProgramGraph::disjoint_union("pair", &parts.iter().collect::<Vec<_>>());
        let costs = CostModel::static_table();
        let cfg = SynthConfig::for_model(ModelKind::ArmV8);

        let reg = MetricsRegistry::new();
        let metrics = WpsMetrics::register(&reg);
        let plain = critical_cycles_wps(&u, Some(2), None);
        let metered = critical_cycles_wps_metered(&u, Some(2), None, Some(&metrics));
        assert_eq!(format!("{plain:?}"), format!("{metered:?}"));
        let snap = reg.snapshot();
        assert_eq!(snap.counter("wps.components"), Some(2));
        assert_eq!(
            snap.counter("wps.cycles_enumerated"),
            Some(plain.len() as u64)
        );

        let report =
            synthesize_wps_metered(&u, cfg, &costs, &WpsConfig::default(), None, Some(&metrics))
                .expect("synth");
        let snap = reg.snapshot();
        assert_eq!(snap.counter("wps.tier.exact"), Some(1));
        assert_eq!(
            snap.counter("wps.open_cycles"),
            Some(report.open_cycles as u64)
        );
        assert_eq!(snap.counter("wps.legs"), Some(report.legs as u64));
        assert!(snap.counter("wps.solver.nodes").unwrap_or(0) > 0);
        // Everything the WPS pipeline records is structural, and the
        // counts are worker-count independent by the merge contract.
        assert_eq!(
            snap.structural().entries.len(),
            snap.entries.len(),
            "wps metrics are all structural"
        );
    }

    #[test]
    fn zero_budget_exact_tier_reports_timeout_with_feasible_incumbent() {
        let g = graph_of(&suite::store_buffering());
        let costs = CostModel::static_table();
        let cfg = SynthConfig::for_model(ModelKind::ArmV8);
        let wps = WpsConfig {
            node_budget: 0,
            ..WpsConfig::default()
        };
        let report = synthesize_wps(&g, cfg, &costs, &wps, None).expect("synth");
        assert_eq!(report.tier, WpsTier::Timeout);
        assert!(report.exact_cost_ns.is_none());
        let applied = apply_to_graph(&g, &report.placement.instruments);
        for cyc in critical_cycles(&applied) {
            assert!(check_cycle(&applied, ModelKind::ArmV8, &cyc).protected);
        }
    }
}
