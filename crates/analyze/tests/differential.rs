//! Differential validation: the static protection verdict must agree with
//! the dynamic explorer over the entire litmus suite, for every model —
//! "all critical cycles protected" ⇔ "the explorer cannot reach the weak
//! outcome". Plus end-to-end strategy checks: a seeded known-buggy JVM
//! strategy is caught, shipped strategies pass, and the redundant-fence
//! lint fires on the defensive JDK8 ARM lowering.

use wmm_analyze::{analyze, check_cycle, critical_cycles, ProgramGraph};
use wmm_jvm::barrier::Composite;
use wmm_jvm::jit::{lower, JavaOp, JitConfig};
use wmm_jvm::strategy::arm_jdk8_barriers;
use wmm_kernel::publish::rbd_publish;
use wmm_kernel::rbd::RbdStrategy;
use wmm_litmus::explore::explore;
use wmm_litmus::ops::ModelKind;
use wmm_litmus::suite::full_suite;
use wmm_sim::arch::Arch;
use wmm_sim::isa::{FenceKind, Instr, Loc};
use wmmbench::image::flatten_streams;

const MODELS: [ModelKind; 4] = [
    ModelKind::Sc,
    ModelKind::Tso,
    ModelKind::ArmV8,
    ModelKind::Power,
];

/// The core cross-validation: static ⇔ dynamic for every suite entry under
/// every model (not just the models with recorded expectations).
#[test]
fn static_verdict_agrees_with_explorer_across_the_suite() {
    let mut rows = 0;
    for entry in full_suite() {
        let g = ProgramGraph::from_litmus(&entry.test);
        let cycles = critical_cycles(&g);
        for model in MODELS {
            let protected = cycles.iter().all(|c| check_cycle(&g, model, c).protected);
            let observed = explore(&entry.test, model)
                .allows_with_memory(&entry.test.interesting, &entry.test.memory);
            assert_eq!(
                protected, !observed,
                "{} under {model:?}: static protected={protected} but explorer \
                 observes weak outcome={observed}",
                entry.test.name
            );
            rows += 1;
        }
    }
    assert!(rows >= 120, "differential should span the suite: {rows}");
}

// --- JVM strategies over lowered volatile idioms --------------------------

/// Dekker-style mutual exclusion via volatile fields: the store→load
/// ordering volatiles guarantee. The classic shape a too-weak volatile
/// barrier breaks.
fn volatile_sb() -> Vec<Vec<JavaOp>> {
    let (x, y) = (Loc::SharedRw(1), Loc::SharedRw(2));
    vec![
        vec![JavaOp::VolatileStore(x), JavaOp::VolatileLoad(y)],
        vec![JavaOp::VolatileStore(y), JavaOp::VolatileLoad(x)],
    ]
}

#[test]
fn shipped_jdk8_arm_strategy_protects_volatile_sb() {
    let segs = lower(&volatile_sb(), &JitConfig::jdk8(Arch::ArmV8));
    let streams = flatten_streams(&segs, &arm_jdk8_barriers());
    let g = ProgramGraph::from_streams("jvm/volatile-SB/jdk8-arm", &streams, &[]);
    let a = analyze(&g, ModelKind::ArmV8);
    assert!(a.cycles > 0);
    assert!(a.protected(), "{:?}", a.unprotected);
}

#[test]
fn seeded_buggy_strategy_is_caught() {
    // Known-buggy: lower the full Volatile barrier to dmb ishst, which
    // cannot order a volatile store before a later volatile load.
    let buggy = arm_jdk8_barriers()
        .with_override(
            Composite::Volatile.combined(),
            vec![Instr::Fence(FenceKind::DmbIshSt)],
        )
        .named("jdk8-arm+volatile=dmb.ishst (seeded bug)");
    let segs = lower(&volatile_sb(), &JitConfig::jdk8(Arch::ArmV8));
    let streams = flatten_streams(&segs, &buggy);
    let g = ProgramGraph::from_streams("jvm/volatile-SB/seeded-bug", &streams, &[]);
    let a = analyze(&g, ModelKind::ArmV8);
    assert!(
        !a.protected(),
        "the missing store→load fence must be caught"
    );
    assert!(
        a.unprotected.iter().any(|u| !u.missing.is_empty()),
        "the report should name the unordered pair"
    );
}

#[test]
fn jdk9_arm_ldar_stlr_needs_no_barriers() {
    // JDK9 on ARMv8 emits stlr/ldar and *no* dmb at all; RCsc
    // release/acquire keeps even Dekker correct.
    let segs = lower(&volatile_sb(), &JitConfig::jdk9(Arch::ArmV8));
    let streams = flatten_streams(&segs, &arm_jdk8_barriers());
    let g = ProgramGraph::from_streams("jvm/volatile-SB/jdk9-arm", &streams, &[]);
    assert!(g.fences.is_empty(), "no barrier sites in JDK9 ARM mode");
    let a = analyze(&g, ModelKind::ArmV8);
    assert!(a.cycles > 0);
    assert!(a.protected(), "{:?}", a.unprotected);
}

#[test]
fn redundant_fence_lint_fires_on_defensive_jdk8_arm_lowering() {
    // JDK8 ARM brackets every volatile access with full dmbs: adjacent
    // accesses end up double-fenced, and the leading/trailing barriers sit
    // on no cycle at all. Every one of those is individually removable.
    let segs = lower(&volatile_sb(), &JitConfig::jdk8(Arch::ArmV8));
    let streams = flatten_streams(&segs, &arm_jdk8_barriers());
    let g = ProgramGraph::from_streams("jvm/volatile-SB/jdk8-arm", &streams, &[]);
    let a = analyze(&g, ModelKind::ArmV8).with_savings(0.05, |_| 17.3);
    assert!(a.protected());
    // Doubled dmbs between the store and the load: flagged, on a cycle.
    assert!(
        a.redundant.iter().any(|r| r.on_cycle),
        "doubled barriers should lint: {:?}",
        a.redundant
    );
    // Barriers before the first / after the last access: off every cycle.
    assert!(
        a.redundant.iter().any(|r| !r.on_cycle),
        "leading/trailing barriers should lint: {:?}",
        a.redundant
    );
    for lint in &a.redundant {
        assert!(lint.saving_ns.is_some(), "savings attached via Eq. 2");
    }
}

// --- kernel read_barrier_depends strategies -------------------------------
//
// The publication idiom itself now lives in `wmm_kernel::publish` (shared
// with the fence_lint and fence_synth binaries); these tests consume it.

#[test]
fn rbd_strategies_split_exactly_as_the_paper_says() {
    // §4.3.1 / Fig. 10: the base case and a bare control dependency do not
    // order the dependent load; ctrl+isb, dmb ishld, dmb ish and la/sr do.
    let expect_protected = |w: RbdStrategy| !matches!(w, RbdStrategy::BaseCase | RbdStrategy::Ctrl);
    for which in RbdStrategy::ALL {
        let (streams, deps) = rbd_publish(which);
        let g = ProgramGraph::from_streams(
            format!("kernel/rbd-publish/{}", which.label()),
            &streams,
            &deps,
        );
        let a = analyze(&g, ModelKind::ArmV8);
        assert!(a.cycles > 0, "{}", which.label());
        assert_eq!(
            a.protected(),
            expect_protected(which),
            "rbd={} verdict mismatch: {:?}",
            which.label(),
            a.unprotected
        );
    }
}

#[test]
fn lasr_over_annotation_is_linted_redundant() {
    // la/sr adds dmb ishld/ishst to every READ_ONCE/WRITE_ONCE on top of
    // a read_barrier_depends that is already a dmb ishld — several of
    // those fences are individually removable.
    let (streams, deps) = rbd_publish(RbdStrategy::LaSr);
    let g = ProgramGraph::from_streams("kernel/rbd-publish/la-sr", &streams, &deps);
    let a = analyze(&g, ModelKind::ArmV8);
    assert!(a.protected());
    assert!(
        !a.redundant.is_empty(),
        "over-annotation should lint: {:?}",
        a.redundant
    );
}
