//! Differential validation of fence synthesis: for every litmus program in
//! the suite × every model, the synthesized placement must pass **both**
//! validators —
//!
//! * static: re-running the analyzer on the instrumented graph reports
//!   zero unprotected critical cycles;
//! * dynamic: the operational explorer can no longer reach the weak
//!   outcome on the litmus test reinforced with the same placement.
//!
//! This is the acceptance criterion of the synthesis layer: the static
//! candidate/constraint machinery and the operational models must agree
//! on every placement the solver emits, not just on hand strategies.

use wmm_analyze::{analyze, apply_to_graph, synthesize, CostModel, ProgramGraph, SynthConfig};
use wmm_litmus::explore::explore;
use wmm_litmus::ops::ModelKind;
use wmm_litmus::suite::full_suite;

const MODELS: [ModelKind; 4] = [
    ModelKind::Sc,
    ModelKind::Tso,
    ModelKind::ArmV8,
    ModelKind::Power,
];

fn assert_placement_valid_suite_wide(cfg_for: impl Fn(ModelKind) -> SynthConfig, tag: &str) {
    let costs = CostModel::priced(0.0087);
    let mut rows = 0usize;
    for entry in full_suite() {
        let g = ProgramGraph::from_litmus(&entry.test);
        for model in MODELS {
            let p = synthesize(&g, cfg_for(model), &costs).unwrap_or_else(|e| {
                panic!(
                    "{tag}: {}/{model:?}: synthesis failed: {e}",
                    entry.test.name
                )
            });

            let after = analyze(&apply_to_graph(&g, &p.instruments), model);
            assert!(
                after.protected(),
                "{tag}: {}/{model:?}: static validator rejects [{}]: {} unprotected cycles",
                entry.test.name,
                p.describe(),
                after.unprotected.len(),
            );

            let reinforced = entry.test.reinforced(&p.to_reinforce());
            let weak_reachable = explore(&reinforced, model)
                .allows_with_memory(&reinforced.interesting, &reinforced.memory);
            assert!(
                !weak_reachable,
                "{tag}: {}/{model:?}: explorer still reaches the weak outcome despite [{}]",
                entry.test.name,
                p.describe(),
            );
            rows += 1;
        }
    }
    // 30 shapes × 4 models; keep an explicit floor so suite growth cannot
    // silently shrink coverage.
    assert!(rows >= 120, "{tag}: only {rows} placements validated");
}

#[test]
fn synthesized_placements_pass_both_validators() {
    assert_placement_valid_suite_wide(SynthConfig::for_model, "for_model");
}

#[test]
fn fence_only_placements_pass_both_validators() {
    // The kernel backend can only realize plain fences; the restricted
    // candidate space must still produce doubly-valid placements.
    assert_placement_valid_suite_wide(SynthConfig::fences_only, "fences_only");
}

#[test]
fn synthesis_is_deterministic_across_repeats() {
    let costs = CostModel::priced(0.0087);
    for entry in full_suite() {
        let g = ProgramGraph::from_litmus(&entry.test);
        for model in MODELS {
            let a = synthesize(&g, SynthConfig::for_model(model), &costs).unwrap();
            let b = synthesize(&g, SynthConfig::for_model(model), &costs).unwrap();
            assert_eq!(
                a.instruments, b.instruments,
                "{}/{model:?}: unstable placement",
                entry.test.name
            );
            assert_eq!(a.cost_ns.to_bits(), b.cost_ns.to_bits());
        }
    }
}
