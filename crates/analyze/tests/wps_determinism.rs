//! Property-based determinism of the whole-program solver tiers.
//!
//! The WPS contract is that nothing observable depends on scheduling:
//! enumeration runs as parallel cached tasks but merges in component
//! order, and both solver tiers (exact branch-and-bound, reorder-bounded
//! greedy) are deterministic given the cycle set. These properties drive
//! generated-corpus subproblems — parallel compositions of corpus tests,
//! the same shape `fence_synth_wps` bundles at scale — through the
//! pipeline at several worker counts and on repeated runs, and require
//! byte-identical results (debug formatting covers every field, including
//! floating-point costs bit-for-bit).

use std::sync::OnceLock;

use proptest::prelude::*;
use wmm_analyze::{
    critical_cycles_wps, differential_corpus, synthesize_cycles, synthesize_wps, CostModel,
    CycleCache, ProgramGraph, SolverOptions, SynthConfig, WpsConfig,
};
use wmm_litmus::ops::ModelKind;
use wmm_litmus::LitmusTest;

/// The generated corpus, built once (generation itself is deterministic —
/// asserted in the generator's own tests).
fn corpus() -> &'static [LitmusTest] {
    static CORPUS: OnceLock<Vec<LitmusTest>> = OnceLock::new();
    CORPUS.get_or_init(differential_corpus)
}

/// A corpus subproblem: the parallel composition of the tests at `picks`
/// (indices taken modulo the corpus length).
fn subproblem(picks: &[u16]) -> ProgramGraph {
    let corpus = corpus();
    let parts: Vec<ProgramGraph> = picks
        .iter()
        .map(|&i| ProgramGraph::from_litmus(&corpus[i as usize % corpus.len()]))
        .collect();
    ProgramGraph::disjoint_union("prop-bundle", &parts.iter().collect::<Vec<_>>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Parallel enumeration is independent of worker count and cache
    /// state, as an ordered sequence.
    #[test]
    fn enumeration_is_schedule_independent(
        picks in prop::collection::vec(0u16..2048, 1..6)
    ) {
        let g = subproblem(&picks);
        let baseline = format!("{:?}", critical_cycles_wps(&g, Some(1), None));
        for workers in [2usize, 4] {
            let cache = CycleCache::in_memory();
            let warm = critical_cycles_wps(&g, Some(workers), Some(&cache));
            prop_assert_eq!(&baseline, &format!("{warm:?}"));
            // Cache-hit path returns the same bytes as the miss path.
            let hit = critical_cycles_wps(&g, Some(workers), Some(&cache));
            prop_assert_eq!(&baseline, &format!("{hit:?}"));
        }
    }

    /// Both solver tiers return byte-identical placements across worker
    /// counts and reruns on the same subproblem.
    #[test]
    fn solver_tiers_are_deterministic(
        picks in prop::collection::vec(0u16..2048, 1..5)
    ) {
        let g = subproblem(&picks);
        let costs = CostModel::static_table();
        let cfg = SynthConfig::for_model(ModelKind::ArmV8);
        let cycles = critical_cycles_wps(&g, Some(1), None);

        for opts in [SolverOptions::exact(1 << 20), SolverOptions::approx(2)] {
            let first = format!("{:?}", synthesize_cycles(&g, &cycles, cfg, &costs, &opts));
            let again = format!("{:?}", synthesize_cycles(&g, &cycles, cfg, &costs, &opts));
            prop_assert_eq!(&first, &again);
        }

        let report = |workers: usize| {
            let wps = WpsConfig { threads: Some(workers), ..WpsConfig::default() };
            format!("{:?}", synthesize_wps(&g, cfg, &costs, &wps, None))
        };
        let baseline = report(1);
        prop_assert_eq!(&baseline, &report(2));
        prop_assert_eq!(&baseline, &report(4));
        prop_assert_eq!(&baseline, &report(1));
    }
}
