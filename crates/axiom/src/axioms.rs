//! The relational axioms, cat-style.
//!
//! A candidate execution (a [`Witness`]) is **consistent** under a model
//! iff four acyclicity axioms hold. The names follow "Herding cats"
//! (Alglave et al.); the relations are instantiated from the explorer's
//! own vocabulary so both oracles share one definition of every ordering
//! mechanism:
//!
//! * **sc-per-location** — `acyclic(po-loc ∪ rf ∪ fr ∪ co)` per variable:
//!   coherence. Purely relational, model-independent.
//! * **no-thin-air** — `acyclic(ppo ∪ rf)`: values cannot justify
//!   themselves. `ppo` is exactly [`LitmusTest::ordered`], i.e. SC orders
//!   everything, TSO all but store→load, ARM/POWER same-location pairs,
//!   fences, acquire/release (incl. the `ARMv8` `RCsc` pair), and
//!   dependencies.
//! * **propagation** — POWER only: `acyclic(co ∪ prop)` where `prop`
//!   carries the cumulativity of `lwsync`/`sync`/release (a store may
//!   reach a thread only after the stores its thread had seen before the
//!   barrier) and the global strength of `sync` (everything the fencing
//!   thread knew has propagated everywhere before execution continues).
//!   Vacuous on multi-copy-atomic models.
//! * **observation** — the decisive check: the *join* of all of the above
//!   over both event kinds the operational explorer manipulates,
//!   `exec(a)` (commit order; coherence order for stores) and
//!   `prop(W, t)` (per-thread visibility of a store, POWER only; on MCA
//!   models `prop ≡ exec`). A witness's rf edge means the store reached
//!   the reader first (`prop(W, t_r) < exec(R)`); its derived fr edges
//!   mean every co-later store reached the reader *after* it read
//!   (`exec(R) < prop(W', t_r)`). If the join is acyclic the candidate
//!   is realisable by the machine; if cyclic it is forbidden.
//!
//! The first three are each *necessary* (the differential suite holds
//! them against the explorer over every generated program), but only the
//! join is precise — they are reported as named diagnostics when they are
//! the earliest axiom to fail.

use wmm_litmus::ops::{FClass, LOp, ModelKind};

use crate::events::EventGraph;
use crate::witness::Witness;

/// The named axioms, in diagnostic order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axiom {
    /// Per-location coherence: `acyclic(po-loc ∪ rf ∪ fr ∪ co)`.
    ScPerLocation,
    /// `acyclic(ppo ∪ rf)` — no out-of-thin-air values.
    NoThinAir,
    /// POWER store-propagation consistency: `acyclic(co ∪ prop)`.
    Propagation,
    /// The full exec/prop join — the model-precise consistency check.
    Observation,
}

impl Axiom {
    /// Short label for reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Axiom::ScPerLocation => "sc-per-location",
            Axiom::NoThinAir => "no-thin-air",
            Axiom::Propagation => "propagation",
            Axiom::Observation => "observation",
        }
    }
}

/// Verdict on one candidate execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Verdict {
    /// Is the candidate consistent (every axiom acyclic)?
    pub allowed: bool,
    /// The first axiom violated, when forbidden.
    pub violated: Option<Axiom>,
}

/// Kahn's algorithm: does the directed graph contain a cycle?
fn has_cycle(n: usize, edges: &[(usize, usize)]) -> bool {
    let mut adj = vec![vec![]; n];
    let mut indeg = vec![0usize; n];
    for &(u, v) in edges {
        adj[u].push(v);
        indeg[v] += 1;
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut removed = 0;
    while let Some(u) = queue.pop() {
        removed += 1;
        for &v in &adj[u] {
            indeg[v] -= 1;
            if indeg[v] == 0 {
                queue.push(v);
            }
        }
    }
    removed < n
}

/// All relation edges of one candidate, split by axiom membership.
struct Relations {
    /// Total node count (exec events + prop nodes).
    nodes: usize,
    /// `ppo` over exec nodes.
    ppo: Vec<(usize, usize)>,
    /// rf as direct exec→exec edges (for no-thin-air).
    rf_direct: Vec<(usize, usize)>,
    /// rf/fr through prop nodes (for observation).
    comm: Vec<(usize, usize)>,
    /// co over exec nodes.
    co: Vec<(usize, usize)>,
    /// Commit-before-propagate skeleton + cumulative + global edges.
    prop: Vec<(usize, usize)>,
}

/// Map `(store event, observing thread)` to its graph node.
struct PropMap {
    mca: bool,
    /// `(store, thread, node)` rows, non-MCA only.
    rows: Vec<(usize, usize, usize)>,
}

impl PropMap {
    fn node(&self, g: &EventGraph, store: usize, u: usize) -> usize {
        if self.mca || g.events[store].thread == u {
            store
        } else {
            self.rows
                .iter()
                .find(|&&(s, t, _)| s == store && t == u)
                .map(|&(_, _, n)| n)
                .expect("prop node")
        }
    }
}

/// The witness-level "touched store" of an access op: the store it wrote,
/// or the store it read (`None` when it read the initial state).
fn touched(g: &EventGraph, w: &Witness, ev: usize) -> Option<usize> {
    if g.events[ev].is_store {
        Some(ev)
    } else {
        let slot = g.loads.iter().position(|&l| l == ev).expect("load slot");
        w.rf[slot]
    }
}

#[allow(clippy::too_many_lines)] // one block per relation; the split IS the structure
fn build_relations(g: &EventGraph, model: ModelKind, w: &Witness) -> Relations {
    let mca = model.multi_copy_atomic();
    let nthreads = g.test.threads.len();
    let nev = g.events.len();

    // Event id per (thread, op) for barrier scans.
    let mut ev_at: Vec<Vec<Option<usize>>> = g
        .test
        .threads
        .iter()
        .map(|ops| vec![None; ops.len()])
        .collect();
    for (id, e) in g.events.iter().enumerate() {
        ev_at[e.thread][e.op] = Some(id);
    }

    // prop nodes.
    let mut nodes = nev;
    let mut rows = vec![];
    if !mca {
        for (id, e) in g.events.iter().enumerate() {
            if e.is_store {
                for u in 0..nthreads {
                    if u != e.thread {
                        rows.push((id, u, nodes));
                        nodes += 1;
                    }
                }
            }
        }
    }
    let pm = PropMap { mca, rows };

    // ppo: the explorer's own per-thread ordering relation.
    let mut ppo = vec![];
    for a in 0..nev {
        for b in 0..nev {
            let (ea, eb) = (&g.events[a], &g.events[b]);
            if ea.thread == eb.thread
                && ea.op < eb.op
                && g.test.ordered(model, ea.thread, ea.op, eb.op)
            {
                ppo.push((a, b));
            }
        }
    }

    // rf and fr. Given co, "reads the coherence-latest visible store"
    // decomposes exactly: the read store reached the reader first, every
    // co-later same-loc store only after the read.
    let mut rf_direct = vec![];
    let mut comm = vec![];
    for (slot, &r) in g.loads.iter().enumerate() {
        let reader = g.events[r].thread;
        let co_order = &w.co[g.events[r].loc];
        match w.rf[slot] {
            Some(src) => {
                rf_direct.push((src, r));
                comm.push((pm.node(g, src, reader), r));
                let pos = co_order
                    .iter()
                    .position(|&s| s == src)
                    .expect("rf source in co");
                for &later in &co_order[pos + 1..] {
                    comm.push((r, pm.node(g, later, reader)));
                }
            }
            None => {
                // Initial-state read: no same-loc store had reached the
                // reader yet.
                for &s in co_order {
                    comm.push((r, pm.node(g, s, reader)));
                }
            }
        }
    }

    // co: commit order restricted per location.
    let mut co = vec![];
    for order in &w.co {
        for pair in order.windows(2) {
            co.push((pair[0], pair[1]));
        }
    }

    // Propagation edges (POWER only).
    let mut prop = vec![];
    if !mca {
        // A store is visible to a remote thread only after it commits.
        for &(store, u, node) in &pm.rows {
            let _ = u;
            prop.push((store, node));
        }
        for (id, e) in g.events.iter().enumerate() {
            if !e.is_store {
                continue;
            }
            // Cumulativity: everything the storing thread had seen before
            // its latest lwsync/sync (or, for a release store, before the
            // store itself) must reach a thread before the store does.
            // The barrier orders all those accesses before the store, so
            // the group is static — exactly the explorer's prereq set.
            let release = matches!(
                g.test.threads[e.thread][e.op],
                LOp::Store { release: true, .. }
            );
            let boundary = if release {
                Some(e.op)
            } else {
                (0..e.op).rev().find(|&i| {
                    matches!(
                        g.test.threads[e.thread][i],
                        LOp::Fence(FClass::Full | FClass::LwSync)
                    )
                })
            };
            if let Some(b) = boundary {
                for i in 0..b {
                    let Some(prev) = ev_at[e.thread].get(i).copied().flatten() else {
                        continue;
                    };
                    if let Some(s) = touched(g, w, prev) {
                        for u in 0..nthreads {
                            prop.push((pm.node(g, s, u), pm.node(g, id, u)));
                        }
                    }
                }
            }
        }
        // sync's global strength: the fence blocks until its group-A
        // stores have propagated everywhere, and everything po-after the
        // fence executes after it.
        for (t, ops) in g.test.threads.iter().enumerate() {
            for (k, op) in ops.iter().enumerate() {
                if !matches!(op, LOp::Fence(FClass::Full)) {
                    continue;
                }
                let group_a: Vec<usize> = (0..k)
                    .filter_map(|i| ev_at[t][i])
                    .filter_map(|prev| touched(g, w, prev))
                    .collect();
                for c in ops.iter().enumerate().skip(k + 1).filter_map(|(m, o)| {
                    if o.is_access() {
                        ev_at[t][m]
                    } else {
                        None
                    }
                }) {
                    for &s in &group_a {
                        for u in 0..nthreads {
                            prop.push((pm.node(g, s, u), c));
                        }
                    }
                }
            }
        }
    }

    Relations {
        nodes,
        ppo,
        rf_direct,
        comm,
        co,
        prop,
    }
}

/// Per-location coherence: `acyclic(po-loc ∪ rf ∪ fr ∪ co)` over the
/// events of each variable, with rf/fr as direct event edges — the purely
/// relational uniproc check, independent of propagation timing.
fn sc_per_location(g: &EventGraph, w: &Witness) -> bool {
    let nev = g.events.len();
    let mut edges = vec![];
    // po-loc.
    for a in 0..nev {
        for b in 0..nev {
            let (ea, eb) = (&g.events[a], &g.events[b]);
            if ea.thread == eb.thread && ea.op < eb.op && ea.loc == eb.loc {
                edges.push((a, b));
            }
        }
    }
    for (slot, &r) in g.loads.iter().enumerate() {
        let co_order = &w.co[g.events[r].loc];
        match w.rf[slot] {
            Some(src) => {
                edges.push((src, r));
                let pos = co_order
                    .iter()
                    .position(|&s| s == src)
                    .expect("rf source in co");
                for &later in &co_order[pos + 1..] {
                    edges.push((r, later));
                }
            }
            None => {
                for &s in co_order {
                    edges.push((r, s));
                }
            }
        }
    }
    for order in &w.co {
        for pair in order.windows(2) {
            edges.push((pair[0], pair[1]));
        }
    }
    !has_cycle(nev, &edges)
}

/// Decide one candidate execution under `model`.
#[must_use]
pub fn check_witness(g: &EventGraph, model: ModelKind, w: &Witness) -> Verdict {
    let rel = build_relations(g, model, w);
    let nev = g.events.len();

    // Diagnostic axioms first, decisive join last.
    if !sc_per_location(g, w) {
        return Verdict {
            allowed: false,
            violated: Some(Axiom::ScPerLocation),
        };
    }
    let thin: Vec<(usize, usize)> = rel
        .ppo
        .iter()
        .chain(rel.rf_direct.iter())
        .copied()
        .collect();
    if has_cycle(nev, &thin) {
        return Verdict {
            allowed: false,
            violated: Some(Axiom::NoThinAir),
        };
    }
    let prop_join: Vec<(usize, usize)> = rel.co.iter().chain(rel.prop.iter()).copied().collect();
    if has_cycle(rel.nodes, &prop_join) {
        return Verdict {
            allowed: false,
            violated: Some(Axiom::Propagation),
        };
    }
    let full: Vec<(usize, usize)> = rel
        .ppo
        .iter()
        .chain(rel.comm.iter())
        .chain(rel.co.iter())
        .chain(rel.prop.iter())
        .copied()
        .collect();
    if has_cycle(rel.nodes, &full) {
        return Verdict {
            allowed: false,
            violated: Some(Axiom::Observation),
        };
    }
    Verdict {
        allowed: true,
        violated: None,
    }
}
