//! The axiomatic oracle's outcome enumeration: every consistent candidate
//! execution folded into a final-state set with the same shape as the
//! operational explorer's [`wmm_litmus::OutcomeSet`], so the two oracles
//! compare exactly (set equality, not just per-assertion agreement).

use std::collections::BTreeSet;

use wmm_litmus::ops::{LitmusTest, ModelKind, Outcome};

use crate::axioms::{check_witness, Axiom};
use crate::events::EventGraph;
use crate::witness::witnesses;

/// The axiomatically-allowed final states of a test under one model.
#[derive(Debug, Clone)]
pub struct AxOutcomeSet {
    /// Final `(registers, memory)` pairs of every consistent candidate —
    /// ordered, so comparison and iteration are deterministic.
    pub finals: BTreeSet<(Vec<Vec<u32>>, Vec<u32>)>,
    /// Candidate executions enumerated.
    pub candidates: usize,
    /// Candidates that passed every axiom.
    pub consistent: usize,
    /// How often each axiom was the first to reject a candidate, in
    /// [`Axiom`] diagnostic order.
    pub rejected_by: [usize; 4],
}

impl AxOutcomeSet {
    /// Is the conjunctive register assertion reachable?
    #[must_use]
    pub fn allows(&self, outcome: &Outcome) -> bool {
        self.finals
            .iter()
            .any(|(f, _)| outcome.iter().all(|&(t, r, v)| f[t][r] == v))
    }

    /// Is the combined register + final-memory assertion reachable?
    #[must_use]
    pub fn allows_with_memory(&self, outcome: &Outcome, memory: &[(usize, u32)]) -> bool {
        self.finals.iter().any(|(regs, mem)| {
            outcome.iter().all(|&(t, r, v)| regs[t][r] == v)
                && memory
                    .iter()
                    .all(|&(var, v)| mem.get(var).copied().unwrap_or(0) == v)
        })
    }

    /// Number of distinct final states.
    #[must_use]
    pub fn len(&self) -> usize {
        self.finals.len()
    }

    /// True when no candidate was consistent (cannot happen for
    /// well-formed tests — the SC-like serial execution always is).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.finals.is_empty()
    }
}

/// Enumerate candidates, check axioms, fold consistent finals.
#[must_use]
pub fn axiomatic_outcomes(test: &LitmusTest, model: ModelKind) -> AxOutcomeSet {
    let g = EventGraph::new(test);
    let mut finals = BTreeSet::new();
    let mut candidates = 0;
    let mut consistent = 0;
    let mut rejected_by = [0usize; 4];
    for w in witnesses(&g) {
        candidates += 1;
        let verdict = check_witness(&g, model, &w);
        if verdict.allowed {
            consistent += 1;
            finals.insert((w.final_registers(&g), w.final_memory(&g)));
        } else {
            let idx = match verdict.violated.expect("forbidden names an axiom") {
                Axiom::ScPerLocation => 0,
                Axiom::NoThinAir => 1,
                Axiom::Propagation => 2,
                Axiom::Observation => 3,
            };
            rejected_by[idx] += 1;
        }
    }
    AxOutcomeSet {
        finals,
        candidates,
        consistent,
        rejected_by,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmm_litmus::suite;
    use ModelKind::{ArmV8, Power, Sc, Tso};

    #[test]
    fn sb_allow_forbid_matches_the_textbook() {
        let sb = suite::store_buffering().test;
        assert!(!axiomatic_outcomes(&sb, Sc).allows(&sb.interesting));
        assert!(axiomatic_outcomes(&sb, Tso).allows(&sb.interesting));
        assert!(axiomatic_outcomes(&sb, ArmV8).allows(&sb.interesting));
        assert!(axiomatic_outcomes(&sb, Power).allows(&sb.interesting));
    }

    #[test]
    fn corr_forbidden_everywhere_by_sc_per_location() {
        let t = suite::corr().test;
        for model in [Sc, Tso, ArmV8, Power] {
            let out = axiomatic_outcomes(&t, model);
            assert!(!out.allows(&t.interesting), "{model:?}");
            assert!(out.rejected_by[0] > 0, "coherence must do the rejecting");
        }
    }

    #[test]
    fn iriw_splits_on_multi_copy_atomicity() {
        let t = suite::iriw_addrs().test;
        assert!(axiomatic_outcomes(&t, Power).allows(&t.interesting));
        assert!(!axiomatic_outcomes(&t, ArmV8).allows(&t.interesting));
        let s = suite::iriw_syncs().test;
        assert!(!axiomatic_outcomes(&s, Power).allows(&s.interesting));
    }
}
