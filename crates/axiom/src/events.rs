//! Memory-event extraction: the accesses of a [`LitmusTest`] as flat,
//! indexable events, with the per-location store groups candidate
//! executions are built over.

use wmm_litmus::ops::{LOp, LitmusTest};

/// One memory access event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Thread index.
    pub thread: usize,
    /// Op index within the thread (the index [`LitmusTest::ordered`]
    /// speaks about).
    pub op: usize,
    /// Is this a store?
    pub is_store: bool,
    /// Variable accessed.
    pub loc: usize,
    /// Value written (stores; 0 for loads).
    pub val: u32,
    /// Destination register (loads).
    pub reg: Option<usize>,
}

/// The event view of a litmus test: every access as an [`Event`], plus the
/// indices needed to enumerate candidate executions — loads in a fixed
/// order and stores grouped per location.
#[derive(Debug)]
pub struct EventGraph<'t> {
    /// The underlying test (ppo queries go through
    /// [`LitmusTest::ordered`], so the axiomatic per-thread order is the
    /// explorer's by construction).
    pub test: &'t LitmusTest,
    /// All access events, in `(thread, op)` order.
    pub events: Vec<Event>,
    /// Event ids of loads, in `(thread, op)` order — the rf-choice slots.
    pub loads: Vec<usize>,
    /// Event ids of stores per location — the co-permutation groups.
    pub stores_by_loc: Vec<Vec<usize>>,
    /// Number of variables (mirrors [`LitmusTest::num_vars`]).
    pub num_vars: usize,
    /// Register-file widths per thread, mirroring the explorer's layout
    /// (max load register + 1).
    pub reg_widths: Vec<usize>,
}

impl<'t> EventGraph<'t> {
    /// Extract the events of `test`.
    #[must_use]
    pub fn new(test: &'t LitmusTest) -> Self {
        let num_vars = test.num_vars();
        let mut events = vec![];
        let mut loads = vec![];
        let mut stores_by_loc = vec![vec![]; num_vars];
        let mut reg_widths = vec![];
        for (t, ops) in test.threads.iter().enumerate() {
            let mut width = 0;
            for (j, op) in ops.iter().enumerate() {
                match *op {
                    LOp::Store { var, val, .. } => {
                        stores_by_loc[var].push(events.len());
                        events.push(Event {
                            thread: t,
                            op: j,
                            is_store: true,
                            loc: var,
                            val,
                            reg: None,
                        });
                    }
                    LOp::Load { var, reg, .. } => {
                        width = width.max(reg + 1);
                        loads.push(events.len());
                        events.push(Event {
                            thread: t,
                            op: j,
                            is_store: false,
                            loc: var,
                            val: 0,
                            reg: Some(reg),
                        });
                    }
                    LOp::Fence(_) => {}
                }
            }
            reg_widths.push(width);
        }
        EventGraph {
            test,
            events,
            loads,
            stores_by_loc,
            num_vars,
            reg_widths,
        }
    }

    /// Same-location stores as `ev` (including itself if a store).
    #[must_use]
    pub fn co_group(&self, ev: usize) -> &[usize] {
        &self.stores_by_loc[self.events[ev].loc]
    }

    /// Short `t0:Wx`-style description of an event, for diagnostics.
    #[must_use]
    pub fn describe(&self, ev: usize) -> String {
        let e = &self.events[ev];
        let kind = if e.is_store { 'W' } else { 'R' };
        let loc = match e.loc {
            0 => "x".to_string(),
            1 => "y".to_string(),
            2 => "z".to_string(),
            3 => "w".to_string(),
            n => format!("v{n}"),
        };
        format!("t{}:{kind}{loc}", e.thread)
    }
}
