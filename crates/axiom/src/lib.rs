//! # wmm-axiom
//!
//! An **axiomatic second oracle** for the litmus semantics: candidate
//! executions enumerated directly from the program text and judged by
//! relational acyclicity axioms, cat-style ("Herding cats", Alglave et
//! al.) — no machine, no interleavings.
//!
//! The operational explorer in [`wmm_litmus`] *simulates*: it walks every
//! scheduling and propagation order. This crate *solves*: it enumerates
//! every candidate `(rf, co)` communication witness ([`witness`]), derives
//! `fr` and the final state from the witness alone, and asks whether the
//! witness is consistent under a model via four axioms ([`axioms`]):
//! sc-per-location, no-thin-air, propagation and observation. The model
//! vocabulary — fence strengths, dependencies, acquire/release and the
//! `ARMv8` `RCsc` rule — is shared with the explorer through
//! [`wmm_litmus::LitmusTest::ordered`], and POWER's cumulativity mirrors
//! the prerequisite sets of `wmm_litmus::explore`; the axiom instantiation
//! itself follows the exec/prop constraint graphs of `wmm_analyze::check`.
//!
//! Because the final-state fold has the same shape as the explorer's
//! [`wmm_litmus::OutcomeSet`], the two oracles are compared by **set
//! equality** over all reachable `(registers, memory)` states — a much
//! stronger differential than agreeing on one assertion. The `axiom_diff`
//! binary in `wmm-bench` runs that comparison over the hand suite plus
//! thousands of generated programs under all four models.
//!
//! ```
//! use wmm_axiom::axiomatic_outcomes;
//! use wmm_litmus::{explore, suite, ModelKind};
//!
//! let sb = suite::store_buffering().test;
//! let ax = axiomatic_outcomes(&sb, ModelKind::Tso);
//! let op = explore(&sb, ModelKind::Tso);
//! assert_eq!(ax.finals, op.canonical()); // identical reachable sets
//! assert!(ax.allows(&sb.interesting)); // TSO allows SB's weak outcome
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::pedantic)]
#![allow(clippy::must_use_candidate, clippy::missing_panics_doc)]

pub mod axioms;
pub mod events;
pub mod witness;

mod enumerate;

pub use axioms::{check_witness, Axiom, Verdict};
pub use enumerate::{axiomatic_outcomes, AxOutcomeSet};
pub use events::{Event, EventGraph};
pub use witness::{witnesses, Witness};
