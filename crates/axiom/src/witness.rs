//! Candidate-execution enumeration.
//!
//! A *witness* fixes the communication relations of one candidate
//! execution: for every load, the store it reads from (or the initial
//! state), and for every location, a total coherence order over its
//! stores. The from-read relation is derived (`fr = rf⁻¹ ; co`), so a
//! witness determines every final register and memory value without any
//! machine: the axioms in [`crate::axioms`] then decide whether the
//! candidate is consistent under a model.
//!
//! Enumeration is exhaustive and deterministic: rf choices iterate
//! initial-state first then stores in event order, per load in
//! `(thread, op)` order; coherence orders iterate permutations in
//! lexicographic index order. Candidate counts are the product of
//! `(1 + same-loc stores)` over loads times `k!` per location with `k`
//! stores — litmus-sized tests stay well under a few thousand.

use crate::events::EventGraph;

/// One candidate execution's communication choices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    /// Per load slot (index into [`EventGraph::loads`]): the event id of
    /// the store read, or `None` for the initial state.
    pub rf: Vec<Option<usize>>,
    /// Per location: its stores (event ids) in coherence order.
    pub co: Vec<Vec<usize>>,
}

impl Witness {
    /// The final value of each variable: the co-last store's value, 0 for
    /// never-written variables.
    #[must_use]
    pub fn final_memory(&self, g: &EventGraph) -> Vec<u32> {
        let mut mem = vec![0u32; g.num_vars];
        for (loc, order) in self.co.iter().enumerate() {
            if let Some(&last) = order.last() {
                mem[loc] = g.events[last].val;
            }
        }
        mem
    }

    /// The final register files, mirroring the explorer's layout: one vec
    /// per thread sized to the largest load register, loads from the
    /// initial state read 0.
    #[must_use]
    pub fn final_registers(&self, g: &EventGraph) -> Vec<Vec<u32>> {
        let mut regs: Vec<Vec<u32>> = g.reg_widths.iter().map(|&w| vec![0u32; w]).collect();
        for (slot, &load) in g.loads.iter().enumerate() {
            let e = &g.events[load];
            let val = self.rf[slot].map_or(0, |w| g.events[w].val);
            regs[e.thread][e.reg.expect("load has a register")] = val;
        }
        regs
    }
}

/// Lexicographic permutation enumeration over `items` (by index order).
fn permutations(items: &[usize]) -> Vec<Vec<usize>> {
    if items.is_empty() {
        return vec![vec![]];
    }
    let mut out = vec![];
    for (i, &head) in items.iter().enumerate() {
        let rest: Vec<usize> = items
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, &x)| x)
            .collect();
        for mut tail in permutations(&rest) {
            let mut perm = vec![head];
            perm.append(&mut tail);
            out.push(perm);
        }
    }
    out
}

/// Enumerate every candidate execution of `g`, deterministically.
#[must_use]
pub fn witnesses(g: &EventGraph) -> Vec<Witness> {
    // rf choices per load slot: init first, then same-loc stores in event
    // order.
    let rf_choices: Vec<Vec<Option<usize>>> = g
        .loads
        .iter()
        .map(|&l| {
            let mut c: Vec<Option<usize>> = vec![None];
            c.extend(g.co_group(l).iter().map(|&w| Some(w)));
            c
        })
        .collect();
    // co orders per location.
    let co_choices: Vec<Vec<Vec<usize>>> = g
        .stores_by_loc
        .iter()
        .map(|stores| permutations(stores))
        .collect();

    let mut out = vec![];
    let mut rf = vec![None; g.loads.len()];
    let mut co: Vec<Vec<usize>> = vec![vec![]; g.num_vars];
    enumerate_rf(&rf_choices, 0, &mut rf, &co_choices, &mut co, &mut out);
    out
}

fn enumerate_rf(
    rf_choices: &[Vec<Option<usize>>],
    slot: usize,
    rf: &mut Vec<Option<usize>>,
    co_choices: &[Vec<Vec<usize>>],
    co: &mut Vec<Vec<usize>>,
    out: &mut Vec<Witness>,
) {
    if slot == rf_choices.len() {
        enumerate_co(co_choices, 0, rf, co, out);
        return;
    }
    for &choice in &rf_choices[slot] {
        rf[slot] = choice;
        enumerate_rf(rf_choices, slot + 1, rf, co_choices, co, out);
    }
}

fn enumerate_co(
    co_choices: &[Vec<Vec<usize>>],
    loc: usize,
    rf: &[Option<usize>],
    co: &mut Vec<Vec<usize>>,
    out: &mut Vec<Witness>,
) {
    if loc == co_choices.len() {
        out.push(Witness {
            rf: rf.to_vec(),
            co: co.clone(),
        });
        return;
    }
    for order in &co_choices[loc] {
        co[loc].clone_from(order);
        enumerate_co(co_choices, loc + 1, rf, co, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmm_litmus::suite;

    #[test]
    fn witness_count_is_the_product_of_choices() {
        // SB: 2 loads × (1 init + 1 store each) = 4 rf choices; one store
        // per location so co is trivial.
        let sb = suite::store_buffering().test;
        let g = EventGraph::new(&sb);
        assert_eq!(witnesses(&g).len(), 4);

        // 2+2W: no loads, two stores on each of two locations = 2! × 2!.
        let w22 = suite::two_plus_two_w().test;
        let g = EventGraph::new(&w22);
        assert_eq!(witnesses(&g).len(), 4);
    }

    #[test]
    fn enumeration_is_deterministic() {
        let t = suite::message_passing().test;
        let g = EventGraph::new(&t);
        assert_eq!(witnesses(&g), witnesses(&g));
    }
}
