//! Differential: the axiomatic oracle against the operational explorer.
//!
//! The strongest form — exact equality of the reachable final-state sets —
//! over every hand-suite shape under every model, plus per-assertion
//! agreement (which equality subsumes, asserted separately so a failure
//! names the weaker property too).

use wmm_axiom::axiomatic_outcomes;
use wmm_litmus::suite::full_suite;
use wmm_litmus::{ExploreCache, ModelKind};

const MODELS: [ModelKind; 4] = [
    ModelKind::Sc,
    ModelKind::Tso,
    ModelKind::ArmV8,
    ModelKind::Power,
];

#[test]
fn finals_sets_identical_on_the_hand_suite() {
    let mut cache = ExploreCache::new();
    for entry in full_suite() {
        for model in MODELS {
            let op = cache.outcomes(&entry.test, model);
            let ax = axiomatic_outcomes(&entry.test, model);
            assert_eq!(
                ax.finals,
                op.canonical(),
                "{} under {}: axiomatic and operational final-state sets differ",
                entry.test.name,
                model.label()
            );
        }
    }
}

#[test]
fn interesting_outcome_verdicts_agree_on_the_hand_suite() {
    let mut cache = ExploreCache::new();
    for entry in full_suite() {
        for model in MODELS {
            let op = cache
                .outcomes(&entry.test, model)
                .allows_with_memory(&entry.test.interesting, &entry.test.memory);
            let ax = axiomatic_outcomes(&entry.test, model)
                .allows_with_memory(&entry.test.interesting, &entry.test.memory);
            assert_eq!(
                ax,
                op,
                "{} under {}: axiomatic allows={ax}, explorer allows={op}",
                entry.test.name,
                model.label()
            );
        }
    }
}

#[test]
fn suite_expectations_hold_axiomatically() {
    // The hand-recorded per-model expectations are a third voice: the
    // axiomatic oracle must reproduce them without consulting the explorer.
    for entry in full_suite() {
        for &(model, expected) in &entry.expect {
            let ax = axiomatic_outcomes(&entry.test, model)
                .allows_with_memory(&entry.test.interesting, &entry.test.memory);
            assert_eq!(
                ax,
                expected,
                "{} under {}: expectation says allowed={expected}",
                entry.test.name,
                model.label()
            );
        }
    }
}
