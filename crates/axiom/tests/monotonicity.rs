//! Model-strength monotonicity over the *generated* corpus, as a property
//! test: on the plain + fence + dependency fragment (no acquire/release —
//! PR 2 established that `ARMv8`'s RCsc rule makes the models incomparable
//! once release/acquire pairs appear), the reachable final-state sets must
//! nest along the strength order:
//!
//! - `finals(Sc) ⊆ finals(Tso)`
//! - `finals(Sc) ⊆ finals(ArmV8) ⊆ finals(Power)`
//!
//! (TSO vs `ARMv8` stay unordered either way: TSO's implicit store
//! atomicity and `ARMv8`'s reordering freedom cut across each other.)
//!
//! Checked on the axiomatic oracle for every sampled test and
//! cross-checked on the operational explorer for a smaller deterministic
//! stride — both oracles must exhibit the same nesting.

use std::collections::BTreeSet;

use proptest::prelude::*;
use wmm_axiom::axiomatic_outcomes;
use wmm_litmus::ops::{LOp, LitmusTest, ModelKind};
use wmm_litmus::ExploreCache;

/// Plain + fence + dependency fragment: no acquire loads, no release
/// stores. Generated once — proptest re-enters per case.
fn plain_fragment() -> &'static [LitmusTest] {
    static FRAGMENT: std::sync::OnceLock<Vec<LitmusTest>> = std::sync::OnceLock::new();
    FRAGMENT.get_or_init(|| {
        wmm_analyze::differential_corpus()
            .into_iter()
            .filter(|t| {
                t.threads.iter().flatten().all(|op| match *op {
                    LOp::Store { release, .. } => !release,
                    LOp::Load { acquire, .. } => !acquire,
                    LOp::Fence(_) => true,
                })
            })
            .collect()
    })
}

type Finals = BTreeSet<(Vec<Vec<u32>>, Vec<u32>)>;

fn assert_nested(name: &str, weak_label: &str, strong: &Finals, weak: &Finals) {
    assert!(
        strong.is_subset(weak),
        "{name}: a final state reachable under the stronger model vanished under {weak_label}"
    );
}

fn check_nesting(test: &LitmusTest, mut finals_of: impl FnMut(ModelKind) -> Finals) {
    let sc = finals_of(ModelKind::Sc);
    let tso = finals_of(ModelKind::Tso);
    let arm = finals_of(ModelKind::ArmV8);
    let power = finals_of(ModelKind::Power);
    assert_nested(&test.name, "TSO", &sc, &tso);
    assert_nested(&test.name, "ARMv8", &sc, &arm);
    assert_nested(&test.name, "POWER", &arm, &power);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Axiomatic oracle: strength nesting on a property-sampled test.
    #[test]
    fn axiomatic_finals_nest_by_model_strength(idx in 0usize..10_000) {
        let corpus = plain_fragment();
        let test = &corpus[idx % corpus.len()];
        check_nesting(test, |m| axiomatic_outcomes(test, m).finals);
    }
}

/// Operational explorer: same nesting on a fixed deterministic stride of
/// the 2–3-thread slice. The explorer pays per interleaving, not per
/// witness, so the 4-thread tests are left to `axiom_diff`, whose
/// finals-set equality check transfers the axiomatic nesting result to
/// the operational oracle wholesale.
#[test]
fn operational_finals_nest_by_model_strength() {
    let corpus: Vec<&LitmusTest> = plain_fragment()
        .iter()
        .filter(|t| t.threads.len() <= 3)
        .collect();
    let mut cache = ExploreCache::new();
    for test in corpus.iter().step_by(corpus.len().div_ceil(48)) {
        check_nesting(test, |m| cache.outcomes(test, m).canonical());
    }
}
