//! Ablation benchmark for the design choices DESIGN.md calls out: how much
//! of the simulated cost structure comes from each fidelity mechanism.
//! Each variant disables one mechanism of the ARMv8 spec and reruns the
//! spark workload; comparing the groups shows which phenomena carry the
//! paper's effects (store-buffer drains, fence shadows, coherence costs,
//! out-of-order hiding).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use wmm_jvm::jit::JitConfig;
use wmm_sim::arch::{armv8_xgene1, Arch, ArchSpec};
use wmm_sim::Machine;
use wmm_workloads::dacapo::{profile, DacapoBench};
use wmmbench::image::{compute_envelope, Injection, SiteRewriter};
use wmmbench::runner::BenchSpec;
use wmmbench::strategy::FencingStrategy;

fn variants() -> Vec<(&'static str, ArchSpec)> {
    let base = armv8_xgene1();
    let mut no_sbuf = base.clone();
    no_sbuf.sb_drain_local = 0.0;
    no_sbuf.sb_drain_remote = 0.0;
    let mut no_shadow = base.clone();
    no_shadow.fence_shadow_instrs = 0.0;
    let mut no_coherence = base.clone();
    no_coherence.coherence_transfer = no_coherence.l1_hit;
    no_coherence.invalidate = 0.0;
    let mut no_ooo = base.clone();
    no_ooo.ooo_hide_frac = 0.0;
    vec![
        ("full_model", base),
        ("no_store_buffer_cost", no_sbuf),
        ("no_fence_shadow", no_shadow),
        ("no_coherence_cost", no_coherence),
        ("no_ooo_hiding", no_ooo),
    ]
}

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simfidelity");
    let strategy = wmm_bench::jvm_base_strategy(Arch::ArmV8);
    let env = compute_envelope(
        &wmm_jvm::barrier::all_site_combinations(),
        &[&strategy as &dyn FencingStrategy<_>],
        3,
    );
    let rw = SiteRewriter::new(&strategy, Injection::None, env);
    let bench = DacapoBench::new(
        profile("spark").unwrap(),
        JitConfig::jdk8(Arch::ArmV8),
        0.25,
    );
    let image = bench.image(1);
    let program = rw.link(&image);
    for (name, spec) in variants() {
        let machine = Machine::new(spec);
        // Report the *simulated* wall time alongside measuring host time.
        let wall = machine.run(&program, &image.ctx, 7).wall_ns;
        eprintln!("{name}: simulated wall = {wall:.0} ns");
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| black_box(machine.run(&program, &image.ctx, 7)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
