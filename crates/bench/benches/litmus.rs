//! Criterion benchmarks of the operational-model explorer: state-space
//! sizes vary hugely between MCA models (small) and the POWER propagation
//! model (large), and between two-thread and four-thread shapes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use wmm_litmus::suite;
use wmm_litmus::{explore, ModelKind};

fn bench_explore(c: &mut Criterion) {
    let mut group = c.benchmark_group("litmus_explore");
    let cases = [
        ("SB", suite::store_buffering()),
        ("MP+lwsync+addr", suite::mp_lwsync_addr()),
        ("IRIW+addrs", suite::iriw_addrs()),
    ];
    for model in [ModelKind::Sc, ModelKind::ArmV8, ModelKind::Power] {
        for (name, entry) in &cases {
            group.bench_function(BenchmarkId::new(model.label(), *name), |b| {
                b.iter(|| black_box(explore(&entry.test, model)))
            });
        }
    }
    group.finish();
}

fn bench_full_suite(c: &mut Criterion) {
    c.bench_function("litmus_full_suite", |b| {
        b.iter(|| black_box(suite::run_full_suite()))
    });
}

criterion_group!(benches, bench_explore, bench_full_suite);
criterion_main!(benches);
