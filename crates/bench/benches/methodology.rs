//! Criterion benchmarks of the methodology pipeline: cost-function
//! calibration, model fitting, a full sensitivity sweep and a ranking
//! matrix — the machinery behind every figure of the paper.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use wmm_bench::ExpConfig;
use wmm_sim::arch::Arch;
use wmmbench::costfn::Calibration;
use wmmbench::model::{fit_sensitivity, predicted_performance};
use wmmbench::runner::RunConfig;

fn bench_fit(c: &mut Criterion) {
    let k = 0.00885;
    let samples: Vec<(f64, f64)> = (0..12)
        .map(|e| {
            let a = (1u64 << e) as f64;
            (
                a,
                predicted_performance(k, a) * (1.0 + 0.002 * (e as f64).sin()),
            )
        })
        .collect();
    c.bench_function("fit_sensitivity_12pts", |b| {
        b.iter(|| black_box(fit_sensitivity(black_box(&samples))))
    });
}

fn bench_calibration(c: &mut Criterion) {
    let m = wmm_bench::machine(Arch::ArmV8);
    c.bench_function("costfn_calibration_2e10", |b| {
        b.iter(|| black_box(Calibration::measure(&m, true, 10)))
    });
}

fn bench_full_sweep(c: &mut Criterion) {
    // One complete Fig. 5-style sweep (reduced protocol) on one benchmark.
    let cfg = ExpConfig {
        scale: 0.15,
        run: RunConfig {
            samples: 2,
            warmups: 1,
            base_seed: 1,
        },
    };
    c.bench_function("fig5_single_arch_sweep", |b| {
        b.iter(|| black_box(wmm_bench::fig5_openjdk_sweeps(Arch::ArmV8, cfg)))
    });
}

fn bench_ranking(c: &mut Criterion) {
    let cfg = ExpConfig {
        scale: 0.1,
        run: RunConfig {
            samples: 2,
            warmups: 0,
            base_seed: 1,
        },
    };
    c.bench_function("linux_ranking_matrix", |b| {
        b.iter(|| black_box(wmm_bench::linux_ranking(cfg)))
    });
}

criterion_group!(
    benches,
    bench_fit,
    bench_calibration,
    bench_full_sweep,
    bench_ranking
);
criterion_main!(benches);
