//! Criterion benchmarks of the timing simulator itself: how fast the
//! substrate executes the paper's workloads, and the micro-costs of each
//! fence kind (the simulated analogue of the §4.2.1 microbenchmarks).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use wmm_jvm::jit::JitConfig;
use wmm_sim::arch::{armv8_xgene1, power7, Arch};
use wmm_sim::isa::{FenceKind, Instr};
use wmm_sim::{Machine, WorkloadCtx};
use wmm_workloads::dacapo::{profile, DacapoBench};
use wmmbench::image::{compute_envelope, Injection, SiteRewriter};
use wmmbench::runner::BenchSpec;
use wmmbench::strategy::FencingStrategy;

fn bench_machine_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("machine_run");
    for arch in [Arch::ArmV8, Arch::Power7] {
        let machine = Machine::new(match arch {
            Arch::ArmV8 => armv8_xgene1(),
            Arch::Power7 => power7(),
        });
        let strategy = wmm_bench::jvm_base_strategy(arch);
        let env = compute_envelope(
            &wmm_jvm::barrier::all_site_combinations(),
            &[&strategy as &dyn FencingStrategy<_>],
            5,
        );
        let rw = SiteRewriter::new(&strategy, Injection::None, env);
        let bench = DacapoBench::new(profile("spark").unwrap(), JitConfig::jdk8(arch), 0.3);
        let image = bench.image(1);
        let program = rw.link(&image);
        group.bench_function(BenchmarkId::new("spark", arch.label()), |b| {
            b.iter(|| black_box(machine.run(&program, &image.ctx, 7)))
        });
    }
    group.finish();
}

fn bench_fence_micro(c: &mut Criterion) {
    let mut group = c.benchmark_group("fence_micro");
    let arm = Machine::new(armv8_xgene1());
    let pow = Machine::new(power7());
    for (label, m, kind) in [
        ("arm_dmb_ish", &arm, FenceKind::DmbIsh),
        ("arm_dmb_ishld", &arm, FenceKind::DmbIshLd),
        ("arm_dmb_ishst", &arm, FenceKind::DmbIshSt),
        ("power_lwsync", &pow, FenceKind::LwSync),
        ("power_sync", &pow, FenceKind::HwSync),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| black_box(m.time_sequence_ns(&[Instr::Fence(kind)], 500, 1)))
        });
    }
    group.finish();
}

fn bench_contention(c: &mut Criterion) {
    // Coherence-directory pressure: all cores hammering one line vs spread.
    let machine = Machine::new(armv8_xgene1());
    let mk = |spread: u64| {
        let threads: Vec<Vec<Instr>> = (0..8u64)
            .map(|t| {
                (0..200)
                    .map(|i| Instr::Store {
                        loc: wmm_sim::isa::Loc::SharedRw((t * spread + i % spread.max(1)) % 64),
                        ord: wmm_sim::isa::AccessOrd::Plain,
                    })
                    .collect()
            })
            .collect();
        wmm_sim::Program::new(threads)
    };
    let mut group = c.benchmark_group("contention");
    for (label, spread) in [("shared_line", 1u64), ("spread_lines", 8)] {
        let prog = mk(spread);
        group.bench_function(label, |b| {
            b.iter(|| black_box(machine.run(&prog, &WorkloadCtx::default(), 3)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_machine_run,
    bench_fence_micro,
    bench_contention
);
criterion_main!(benches);
