//! axiom_diff — dual-oracle differential over the generated litmus corpus.
//!
//! Two independent deciders exist for "which final states can this litmus
//! test reach under this model": the operational explorer
//! (`wmm_litmus::explore`, every interleaving and propagation order) and
//! the axiomatic checker (`wmm_axiom`, every communication witness judged
//! by relational axioms). This binary runs **both** over the 30-shape hand
//! suite plus the diy-style generated corpus
//! (`wmm_analyze::gen::differential_corpus`, ≥ 1,000 tests up to 4
//! threads / 8 accesses) under all four models, and hard-fails on any
//! disagreement — not just on a single assertion, but on **exact equality
//! of the reachable final-state sets**.
//!
//! Sections, one run manifest (`results/runs/axiom_diff.json`):
//!
//! 1. **Lint** — the well-formedness lint over the hand suite and the
//!    *entire* generated corpus (not just the differential slice): any
//!    finding is an error.
//! 2. **Differential** — per test: the axiomatic allowed-mask over the
//!    four models (bit 0 = SC … bit 3 = POWER, from the test's own
//!    interesting outcome + memory pin) and an agreement flag (finals-set
//!    equality under all four models). Tests run in parallel via the
//!    deterministic keyed scheduler; the manifest is byte-identical
//!    across `--threads` values because results are re-keyed into
//!    submission order and every cell is an exact count.
//!
//! Disagreement policy: any finals-set mismatch, any lint finding, or a
//! differential corpus below 1,000 tests (full mode) exits non-zero, so
//! CI can gate on the binary itself; `bench_gate` then guards the quick
//! manifest against drift. `--quick` runs the full hand suite plus a
//! pinned 1-in-8 stride of the generated corpus.

use std::process::ExitCode;

use wmm_analyze::gen::differential_corpus;
use wmm_axiom::{axiomatic_outcomes, Axiom};
use wmm_bench::{cli_flag, cli_threads, runs_dir};
use wmm_harness::{resolve_threads, run_keyed, RunManifest};
use wmm_litmus::explore::explore;
use wmm_litmus::lint::lint_corpus;
use wmm_litmus::ops::{LitmusTest, ModelKind};
use wmm_litmus::suite::full_suite;

const MODELS: [ModelKind; 4] = [
    ModelKind::Sc,
    ModelKind::Tso,
    ModelKind::ArmV8,
    ModelKind::Power,
];

/// One test's dual-oracle verdict, produced on a worker.
struct DiffRow {
    name: String,
    /// Axiomatic allowed-mask: bit i set iff MODELS\[i\] allows the
    /// test's interesting outcome (with its memory pin).
    ax_mask: u32,
    /// Finals-set equality between the oracles under every model.
    agree: bool,
    /// First-rejecting-axiom tallies summed over the four models.
    rejected_by: [usize; 4],
    /// Human-readable mismatch reports (empty when `agree`).
    mismatches: Vec<String>,
}

fn diff_one(test: &LitmusTest) -> DiffRow {
    let mut ax_mask = 0u32;
    let mut rejected_by = [0usize; 4];
    let mut mismatches = vec![];
    for (i, model) in MODELS.into_iter().enumerate() {
        let ax = axiomatic_outcomes(test, model);
        let op = explore(test, model);
        if ax.allows_with_memory(&test.interesting, &test.memory) {
            ax_mask |= 1 << i;
        }
        for (slot, n) in rejected_by.iter_mut().zip(ax.rejected_by) {
            *slot += n;
        }
        let op_finals = op.canonical();
        if ax.finals != op_finals {
            let only_ax = ax.finals.difference(&op_finals).count();
            let only_op = op_finals.difference(&ax.finals).count();
            mismatches.push(format!(
                "{} under {}: axiomatic {} finals vs operational {} \
                 ({only_ax} axiomatic-only, {only_op} operational-only)",
                test.name,
                model.label(),
                ax.finals.len(),
                op_finals.len(),
            ));
        }
    }
    DiffRow {
        name: test.name.clone(),
        ax_mask,
        agree: mismatches.is_empty(),
        rejected_by,
        mismatches,
    }
}

fn lint_section(
    manifest: &mut RunManifest,
    errors: &mut Vec<String>,
    hand: &[LitmusTest],
    generated: &[LitmusTest],
) {
    println!("== well-formedness lint ==");
    for (label, corpus) in [("hand", hand), ("generated", generated)] {
        let findings = lint_corpus(corpus.iter());
        println!(
            "  {label}: {} tests, {} findings",
            corpus.len(),
            findings.len()
        );
        manifest.push_cell(format!("lint/{label}/tests"), corpus.len() as f64);
        manifest.push_cell(format!("lint/{label}/issues"), findings.len() as f64);
        for (name, issue) in findings {
            errors.push(format!("lint: {name}: {issue}"));
        }
    }
}

fn main() -> ExitCode {
    let quick = cli_flag("--quick");
    let threads = resolve_threads(cli_threads());
    println!(
        "axiom_diff — axiomatic vs operational oracle differential{}",
        if quick { " (quick)" } else { "" }
    );
    let mut manifest = RunManifest::new("axiom_diff", "oracle");
    let mut errors: Vec<String> = vec![];

    let hand: Vec<LitmusTest> = full_suite().into_iter().map(|e| e.test).collect();
    let generated_all = wmm_analyze::generate_all();
    lint_section(&mut manifest, &mut errors, &hand, &generated_all);
    drop(generated_all);

    let corpus = differential_corpus();
    if !quick && corpus.len() < 1000 {
        errors.push(format!(
            "differential corpus has {} tests, below the 1,000-test floor",
            corpus.len()
        ));
    }
    // Quick mode: the pinned subset is a fixed 1-in-8 stride — a property
    // of the deterministic generation order, not of this process.
    let generated: Vec<LitmusTest> = if quick {
        corpus.iter().step_by(8).cloned().collect()
    } else {
        corpus
    };
    let mut tests = hand;
    tests.extend(generated);

    println!(
        "== differential: {} tests x {} models on {} worker(s) ==",
        tests.len(),
        MODELS.len(),
        threads
    );
    let rows = run_keyed(&tests, threads, diff_one);

    let mut agree = 0usize;
    let mut allowed = [0usize; 4];
    let mut rejected_by = [0usize; 4];
    for row in &rows {
        manifest.push_cell(format!("diff/{}/ax_mask", row.name), f64::from(row.ax_mask));
        manifest.push_cell(format!("diff/{}/agree", row.name), f64::from(row.agree));
        agree += usize::from(row.agree);
        for (i, slot) in allowed.iter_mut().enumerate() {
            *slot += usize::from(row.ax_mask & (1 << i) != 0);
        }
        for (slot, n) in rejected_by.iter_mut().zip(row.rejected_by) {
            *slot += n;
        }
        errors.extend(row.mismatches.iter().cloned());
    }
    println!(
        "  {agree}/{} tests: finals-set equality under all models",
        rows.len()
    );
    for (i, model) in MODELS.into_iter().enumerate() {
        println!(
            "  {:>6}: {} tests allow their outcome",
            model.label(),
            allowed[i]
        );
    }

    manifest.push_cell("summary/tests", rows.len() as f64);
    manifest.push_cell("summary/agree", agree as f64);
    for (i, model) in MODELS.into_iter().enumerate() {
        manifest.push_cell(
            format!("summary/allowed/{}", model.label()),
            allowed[i] as f64,
        );
    }
    for (i, axiom) in [
        Axiom::ScPerLocation,
        Axiom::NoThinAir,
        Axiom::Propagation,
        Axiom::Observation,
    ]
    .into_iter()
    .enumerate()
    {
        manifest.push_cell(
            format!("summary/rejected/{}", axiom.label()),
            rejected_by[i] as f64,
        );
    }

    let path = manifest.write(runs_dir()).expect("write manifest");
    println!("wrote {}", path.display());

    if errors.is_empty() {
        println!("axiom_diff: OK — the oracles agree exactly");
        ExitCode::SUCCESS
    } else {
        for e in errors.iter().take(40) {
            eprintln!("axiom_diff ERROR: {e}");
        }
        if errors.len() > 40 {
            eprintln!("axiom_diff: ... and {} more", errors.len() - 40);
        }
        ExitCode::FAILURE
    }
}
