//! Conclusion extension: cost-function IR nodes at JIT optimisation sites.
//!
//! "An obvious extension … is to explore the annotation of code paths
//! related to compiler optimisations. … This could be accomplished by
//! adding a dedicated cost function IR node which is added to code paths
//! where a given optimisation occurs or would occur."
//!
//! This binary sweeps a cost function through each optimisation pass's
//! (virtual) sites on the spark workload: the fitted sensitivity measures
//! how much runtime the code touched by that optimisation class controls —
//! i.e. the upper bound on what implementing or improving the pass could
//! buy.

use wmm_bench::{cli_config, machine, results_dir};
use wmm_jvm::jit::JitConfig;
use wmm_jvm::optsites::{JvmPath, OptAwareStrategy, OptPass};
use wmm_sim::arch::Arch;
use wmm_workloads::dacapo::{profile, DacapoBench, OptAnnotatedBench};
use wmmbench::costfn::Calibration;
use wmmbench::image::compute_envelope;
use wmmbench::report::Table;
use wmmbench::runner::BenchSpec;
use wmmbench::sensitivity::{pow2_targets, sweep, SweepTarget};
use wmmbench::strategy::FencingStrategy;

fn main() {
    let cfg = cli_config();
    let arch = Arch::ArmV8;
    let m = machine(arch);
    let inner = wmm_bench::jvm_base_strategy(arch);
    let strategy = OptAwareStrategy::new(&inner);
    let bench = OptAnnotatedBench(DacapoBench::new(
        profile("spark").expect("spark"),
        JitConfig::jdk8(arch),
        cfg.scale,
    ));
    let cal = Calibration::measure(&m, false, 12);
    let paths = bench.image(1).paths();
    let env = compute_envelope(&paths, &[&strategy as &dyn FencingStrategy<JvmPath>], 3);

    println!("Extension — sensitivity of spark (ARM) to JIT optimisation sites");
    let mut t = Table::new(&["opt pass", "k", "k_err_pct", "sites/image"]);
    let counts = bench.image(1).site_counts();
    for pass in OptPass::ALL {
        let result = sweep(
            &m,
            &bench,
            &strategy,
            SweepTarget::Path(JvmPath::Opt(pass)),
            &cal,
            &pow2_targets(0, 8),
            env.clone(),
            cfg.run,
        );
        let (k, err) = result
            .fit
            .map(|f| (f.k, f.relative_error() * 100.0))
            .unwrap_or((f64::NAN, f64::NAN));
        let n = counts.get(&JvmPath::Opt(pass)).copied().unwrap_or(0);
        println!("  {:<26} k={k:.5} ±{err:.0}%  ({n} sites)", pass.name());
        t.row(vec![
            pass.name().to_string(),
            format!("{k:.5}"),
            format!("{err:.0}"),
            n.to_string(),
        ]);
    }
    println!();
    println!("Interpretation: the fitted k bounds the whole-program effect of speeding");
    println!("up or slowing down the code each pass touches — the same reasoning the");
    println!("paper applies to barrier code paths, now applied to optimisation sites.");
    let path = results_dir().join("ext_jit_optsites.csv");
    t.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
}
