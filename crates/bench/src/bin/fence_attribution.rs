//! Fence-cost attribution: the simulator's observed stall cycles per fence
//! execution, printed next to the Eq. 2 inferred cost for the Fig. 5 ARMv8
//! and Fig. 9 kernel campaigns.
//!
//! The methodology's central promise (§3) is that a fitted sensitivity `k`
//! turns any measured performance ratio into an equivalent ns-per-invocation
//! cost. The telemetry seam makes that auditable end-to-end: every fence the
//! simulator executes records its stall cycles, so the same fencing change
//! can be costed two independent ways —
//!
//! * **observed**: attributed stall cycles / fence executions, straight from
//!   the `ExecStats` flowing through `run_batch_stats`;
//! * **Eq. 2**: `estimate_cost(k, p)` from the measured ratio `p` and the
//!   benchmark's sweep-fitted `k`.
//!
//! The two agree within 2× on every reported row; `--strict` (used in CI)
//! exits non-zero if any row disagrees by more.
//!
//! Flags: `--quick` (reduced protocol), `--threads N`, `--progress`,
//! `--trace <path>` (Chrome-trace timeline), `--strict`. The result cache
//! is always in-memory: attribution needs freshly simulated statistics, so
//! a pre-populated disk cache would leave nothing to observe.
//!
//! Each per-kind row is also broken down per *site* (stable
//! `t{thread}:{path}#{occ}` names from the observability layer), so a
//! disagreement can be localised to the code path that caused it.
//!
//! Writes `results/runs/fence_attribution.json` (schema v3, telemetry
//! included) for the `bench_gate` regression gate.

use wmm_bench::{
    cli_config, cli_flag, cli_threads, cli_trace, fig5_arm_fence_attribution,
    fig9_fence_attribution, runs_dir, AttributionReport,
};
use wmm_harness::{ParallelExecutor, RunManifest, SimCache};
use wmmbench::report::Table;

fn main() {
    let cfg = cli_config();
    let exec = ParallelExecutor::new(cli_threads())
        .with_progress(cli_flag("--progress"))
        .with_trace(cli_trace().is_some())
        .with_cache(SimCache::in_memory());

    println!("Fence attribution — observed stall cycles vs Eq. 2 inferred cost");
    let fig5 = fig5_arm_fence_attribution(cfg, &exec);
    let fig9 = fig9_fence_attribution(cfg, &exec);

    let mut table = Table::new(&[
        "campaign",
        "benchmark",
        "fence",
        "k",
        "rel_perf",
        "fences",
        "observed_ns",
        "eq2_ns",
        "agree",
    ]);
    let mut manifest = RunManifest::new("fence_attribution", "arm");
    let mut worst: f64 = 1.0;
    for report in [&fig5, &fig9] {
        for (label, fit) in &report.fits {
            manifest.push_fit(label, fit);
        }
        for r in &report.rows {
            let agree = r.agreement();
            worst = worst.max(agree);
            table.row(vec![
                r.campaign.to_string(),
                r.bench.clone(),
                r.fence.to_string(),
                format!("{:.5}", r.k),
                format!("{:.4}", r.rel_perf),
                r.fence_execs.to_string(),
                format!("{:.2}", r.observed_ns),
                format!("{:.2}", r.eq2_ns),
                format!("{agree:.2}x"),
            ]);
            let stem = format!("{}/{}/{}", r.campaign, r.bench, r.fence);
            if r.observed_ns.is_finite() && r.eq2_ns.is_finite() {
                manifest.push_cell(format!("{stem}/observed_ns"), r.observed_ns);
                manifest.push_cell(format!("{stem}/eq2_ns"), r.eq2_ns);
            }
        }
    }
    println!("{}", table.markdown());

    // Per-site drill-down (tentpole of the observability layer): the same
    // observed-vs-Eq.2 comparison, but at individual sites instead of
    // per-kind aggregates. Shown for the heaviest sites; not gated — the
    // per-kind rows above are the gated contract, and the per-site fold is
    // cross-checked against them by `wmm_profile --strict`.
    let mut site_rows: Vec<_> = [&fig5, &fig9]
        .iter()
        .flat_map(|r| r.site_rows.iter())
        .collect();
    site_rows.sort_by(|a, b| {
        (b.fences as f64 * b.observed_ns)
            .partial_cmp(&(a.fences as f64 * a.observed_ns))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.site.cmp(&b.site))
    });
    let mut site_table = Table::new(&[
        "campaign",
        "benchmark",
        "site",
        "fence",
        "fences",
        "observed_ns",
        "eq2_ns",
    ]);
    for r in site_rows.iter().take(12) {
        site_table.row(vec![
            r.campaign.to_string(),
            r.bench.clone(),
            r.site.clone(),
            r.fence.to_string(),
            r.fences.to_string(),
            format!("{:.2}", r.observed_ns),
            format!("{:.2}", r.eq2_ns),
        ]);
    }
    println!(
        "Per-site observed cost vs Eq. 2 (top 12 of {} sites by total stall):",
        site_rows.len()
    );
    println!("{}", site_table.markdown());

    let count = |r: &AttributionReport| r.rows.len();
    println!(
        "{} rows ({} fig5-arm, {} fig9-kernel); worst observed-vs-Eq.2 agreement {worst:.2}x",
        count(&fig5) + count(&fig9),
        count(&fig5),
        count(&fig9)
    );
    let pass = worst <= 2.0;
    println!(
        "agreement threshold 2.00x: {}",
        if pass { "PASS" } else { "FAIL" }
    );

    manifest.telemetry = Some(exec.telemetry());
    let manifest_path = manifest.write(runs_dir()).expect("write manifest");
    println!("wrote {}", manifest_path.display());
    if let Some(path) = cli_trace() {
        exec.write_trace(&path).expect("write trace");
        println!("wrote {}", path.display());
    }
    println!("[wmm-harness] {}", exec.summary());
    if !pass && cli_flag("--strict") {
        std::process::exit(1);
    }
}
