//! fence_lint — static fence-placement audit for every shipped strategy.
//!
//! Four sections, one run manifest (`results/runs/fence_lint.json`):
//!
//! 1. **Litmus differential** — for every suite program and every model,
//!    the static verdict (all Shasha–Snir critical cycles protected) must
//!    agree with the dynamic explorer (weak outcome unreachable).
//! 2. **JVM volatile idioms** — Dekker (SB) and message passing (MP)
//!    through the JIT lowering under the JDK8/JDK9 tables, analysed under
//!    the matching model. Shipped tables must protect both idioms; a
//!    seeded known-buggy table (full `Volatile` barrier weakened to
//!    `dmb ishst`) must be *caught*; the defensive JDK8 ARM lowering must
//!    draw redundant-fence lints with Eq. 2 savings estimates.
//! 3. **Kernel `read_barrier_depends`** — the RCU-style publication idiom
//!    under all six Fig. 10 strategies: `base case` and `ctrl` must be
//!    flagged unprotected, the other four protected, and the
//!    over-annotating `la/sr` must draw redundant lints.
//! 4. **Dstruct reclamation schemes** — the hazard-publication/scan and
//!    epoch idioms under all four schemes: only `hp-dmb` statically
//!    protects the HP race and only `ebr` the epoch race; `hp-asym` is
//!    *expected* unprotected (its reader ordering is a process-wide
//!    membarrier outside the per-thread fence model) and `nr` is the
//!    unsafe baseline.
//!
//! Exit is non-zero on any differential disagreement, any unexpected
//! protection verdict, a missed seeded bug, or a missing expected lint —
//! so CI can gate on it; `bench_gate` then guards the manifest against
//! drift. The stream-ingestion path (pricing, printing, manifest rows,
//! verdict checks) is shared with `fence_synth` via `wmm_bench::streams`.

use std::process::ExitCode;

use wmm_analyze::{check_cycle, critical_cycles, Analysis, ProgramGraph};
use wmm_bench::streams::{audit_streams, MODELS};
use wmm_bench::{machine, runs_dir, volatile_mp_idiom, volatile_sb_idiom};
use wmm_dstruct::{ebr_reclaim_idiom, hp_reclaim_idiom, scheme_strategies};
use wmm_harness::RunManifest;
use wmm_jvm::barrier::Composite;
use wmm_jvm::jit::{lower, JavaOp, JitConfig};
use wmm_jvm::strategy::{arm_jdk8_barriers, power_jdk9, JvmStrategy};
use wmm_kernel::publish::rbd_publish;
use wmm_kernel::rbd::RbdStrategy;
use wmm_litmus::explore::explore;
use wmm_litmus::ops::ModelKind;
use wmm_litmus::suite::full_suite;
use wmm_sim::arch::Arch;
use wmm_sim::isa::{FenceKind, Instr};
use wmmbench::image::flatten_streams;
use wmmbench::strategy::FencingStrategy;

// --- section 1: litmus differential ---------------------------------------

fn litmus_section(manifest: &mut RunManifest, errors: &mut Vec<String>) {
    println!("== litmus differential (static vs explorer) ==");
    let mut agree = 0usize;
    let mut total = 0usize;
    for entry in full_suite() {
        let g = ProgramGraph::from_litmus(&entry.test);
        let cycles = critical_cycles(&g);
        for model in MODELS {
            let protected = cycles.iter().all(|c| check_cycle(&g, model, c).protected);
            let observed = explore(&entry.test, model)
                .allows_with_memory(&entry.test.interesting, &entry.test.memory);
            let ok = protected != observed;
            total += 1;
            agree += usize::from(ok);
            let label = format!("litmus/{}/{}", entry.test.name, model.label());
            manifest.push_cell(format!("{label}/protected"), f64::from(protected));
            manifest.push_cell(format!("{label}/agree"), f64::from(ok));
            if !ok {
                errors.push(format!(
                    "differential disagreement: {} under {}: static protected={} \
                     but explorer observes={}",
                    entry.test.name,
                    model.label(),
                    protected,
                    observed
                ));
            }
        }
    }
    println!("  {agree}/{total} program×model rows agree");
}

// --- section 2: JVM volatile idioms ---------------------------------------

#[allow(clippy::too_many_arguments)]
fn jvm_analysis(
    manifest: &mut RunManifest,
    errors: &mut Vec<String>,
    label: &str,
    idiom: &[Vec<JavaOp>],
    cfg: &JitConfig,
    strategy: &JvmStrategy,
    model: ModelKind,
    arch: Arch,
    expect_protected: bool,
) -> Analysis {
    let streams = flatten_streams(&lower(idiom, cfg), strategy);
    let mach = machine(arch);
    audit_streams(
        manifest,
        errors,
        label,
        &streams,
        &[],
        model,
        &mach,
        expect_protected,
    )
}

fn jvm_section(manifest: &mut RunManifest, errors: &mut Vec<String>) {
    println!("== JVM volatile idioms ==");
    let tables: [(&str, JitConfig, JvmStrategy, ModelKind, Arch); 3] = [
        (
            "jdk8-arm",
            JitConfig::jdk8(Arch::ArmV8),
            arm_jdk8_barriers(),
            ModelKind::ArmV8,
            Arch::ArmV8,
        ),
        (
            "jdk9-arm",
            JitConfig::jdk9(Arch::ArmV8),
            arm_jdk8_barriers(),
            ModelKind::ArmV8,
            Arch::ArmV8,
        ),
        (
            "jdk9-power",
            JitConfig::jdk9(Arch::Power7),
            power_jdk9(),
            ModelKind::Power,
            Arch::Power7,
        ),
    ];
    let idioms: [(&str, Vec<Vec<JavaOp>>); 2] = [
        ("volatile-SB", volatile_sb_idiom()),
        ("volatile-MP", volatile_mp_idiom()),
    ];

    for (table, cfg, strategy, model, arch) in &tables {
        for (idiom_name, idiom) in &idioms {
            let label = format!("jvm/{table}/{idiom_name}");
            // Shipped tables must protect both idioms.
            let a = jvm_analysis(
                manifest, errors, &label, idiom, cfg, strategy, *model, *arch, true,
            );
            // The defensive JDK8 writer brackets the MP publish store with
            // full dmbs where a store-store barrier suffices: the downgrade
            // lint must spot it.
            if *table == "jdk8-arm"
                && *idiom_name == "volatile-MP"
                && !a.downgrade.iter().any(|d| d.to_mnemonic == "DmbIshSt")
            {
                errors.push(
                    "expected a DmbIshSt downgrade on the JDK8 ARM volatile-MP writer".into(),
                );
            }
        }
    }

    // The defensive JDK8 ARM lowering double-fences adjacent volatiles:
    // the lint must fire (this is the redundancy demonstration).
    let a = jvm_analysis(
        manifest,
        errors,
        "jvm/jdk8-arm/volatile-SB/defensive",
        &volatile_sb_idiom(),
        &JitConfig::jdk8(Arch::ArmV8),
        &arm_jdk8_barriers(),
        ModelKind::ArmV8,
        Arch::ArmV8,
        true,
    );
    if a.redundant.is_empty() {
        errors.push("expected redundant-fence lints on the defensive JDK8 ARM lowering".into());
    }

    // Seeded known-buggy table: Volatile weakened to dmb ishst. The
    // analyzer MUST flag it — this guards the detector itself.
    let buggy = arm_jdk8_barriers()
        .with_override(
            Composite::Volatile.combined(),
            vec![Instr::Fence(FenceKind::DmbIshSt)],
        )
        .named("jdk8-arm+volatile=dmb.ishst (seeded bug)");
    let a = jvm_analysis(
        manifest,
        errors,
        "jvm/seeded-bug/volatile-SB",
        &volatile_sb_idiom(),
        &JitConfig::jdk8(Arch::ArmV8),
        &buggy,
        ModelKind::ArmV8,
        Arch::ArmV8,
        false,
    );
    println!(
        "  jvm/seeded-bug/volatile-SB: {} unprotected (expected > 0)",
        a.unprotected.len()
    );
}

// --- section 3: kernel read_barrier_depends -------------------------------
// The RCU-style publication idiom itself lives in `wmm_kernel::publish`,
// shared with the differential tests and the fence_synth binary.

fn kernel_section(manifest: &mut RunManifest, errors: &mut Vec<String>) {
    println!("== kernel read_barrier_depends strategies (Fig. 10) ==");
    let mach = machine(Arch::ArmV8);
    for which in RbdStrategy::ALL {
        let (streams, deps) = rbd_publish(which);
        let tag = which.label().replace([' ', '/'], "-");
        let label = format!("kernel/rbd={tag}");
        // §4.3.1: the base case and a bare control dependency do not order
        // the dependent load; the other four strategies do.
        let expect_protected = !matches!(which, RbdStrategy::BaseCase | RbdStrategy::Ctrl);
        let a = audit_streams(
            manifest,
            errors,
            &label,
            &streams,
            &deps,
            ModelKind::ArmV8,
            &mach,
            expect_protected,
        );
        if which == RbdStrategy::LaSr && a.redundant.is_empty() {
            errors.push("expected redundant-fence lints on the la/sr over-annotation".into());
        }
        // The full-dmb reader barrier only needs to order load→load: the
        // downgrade lint must propose dmb ishld.
        if which == RbdStrategy::DmbIsh && !a.downgrade.iter().any(|d| d.to_mnemonic == "DmbIshLd")
        {
            errors.push("expected a DmbIshLd downgrade on the rbd=dmb ish reader".into());
        }
    }
}

// --- section 4: dstruct reclamation schemes --------------------------------
// The hazard/epoch idioms live in `wmm_dstruct::retire`, shared with the
// crate's own differential tests and fence_synth's dstruct section.

fn dstruct_section(manifest: &mut RunManifest, errors: &mut Vec<String>) {
    println!("== dstruct reclamation schemes (HP + epoch races) ==");
    let mach = machine(Arch::ArmV8);
    for s in scheme_strategies() {
        // The hazard race (publish hazard vs scan): only the per-protect
        // dmb closes it statically. hp-asym is deliberately unprotected
        // here — its reader ordering is a process-wide membarrier the
        // per-thread fence model cannot see (the documented blind spot
        // both oracles agree on).
        let (streams, deps) = hp_reclaim_idiom(&s);
        audit_streams(
            manifest,
            errors,
            &format!("dstruct/hp={}", s.name()),
            &streams,
            &deps,
            ModelKind::ArmV8,
            &mach,
            s.name() == "hp-dmb",
        );
        // The epoch race (announce epoch vs advance): only EBR's boundary
        // fences close it.
        let (streams, deps) = ebr_reclaim_idiom(&s);
        audit_streams(
            manifest,
            errors,
            &format!("dstruct/epoch={}", s.name()),
            &streams,
            &deps,
            ModelKind::ArmV8,
            &mach,
            s.name() == "ebr",
        );
    }
}

fn main() -> ExitCode {
    println!("fence_lint — static fence-placement audit");
    let mut manifest = RunManifest::new("fence_lint", "static");
    let mut errors: Vec<String> = vec![];

    litmus_section(&mut manifest, &mut errors);
    jvm_section(&mut manifest, &mut errors);
    kernel_section(&mut manifest, &mut errors);
    dstruct_section(&mut manifest, &mut errors);

    let path = manifest.write(runs_dir()).expect("write manifest");
    println!("wrote {}", path.display());

    if errors.is_empty() {
        println!("fence_lint: OK");
        ExitCode::SUCCESS
    } else {
        for e in &errors {
            eprintln!("fence_lint ERROR: {e}");
        }
        ExitCode::FAILURE
    }
}
