//! fence_lint — static fence-placement audit for every shipped strategy.
//!
//! Three sections, one run manifest (`results/runs/fence_lint.json`):
//!
//! 1. **Litmus differential** — for every suite program and every model,
//!    the static verdict (all Shasha–Snir critical cycles protected) must
//!    agree with the dynamic explorer (weak outcome unreachable).
//! 2. **JVM volatile idioms** — Dekker (SB) and message passing (MP)
//!    through the JIT lowering under the JDK8/JDK9 tables, analysed under
//!    the matching model. Shipped tables must protect both idioms; a
//!    seeded known-buggy table (full `Volatile` barrier weakened to
//!    `dmb ishst`) must be *caught*; the defensive JDK8 ARM lowering must
//!    draw redundant-fence lints with Eq. 2 savings estimates.
//! 3. **Kernel `read_barrier_depends`** — the RCU-style publication idiom
//!    under all six Fig. 10 strategies: `base case` and `ctrl` must be
//!    flagged unprotected, the other four protected, and the
//!    over-annotating `la/sr` must draw redundant lints.
//!
//! Exit is non-zero on any differential disagreement, any unprotected
//! cycle in a shipped strategy, a missed seeded bug, or a missing
//! expected lint — so CI can gate on it; `bench_gate` then guards the
//! manifest against drift.

use std::process::ExitCode;

use wmm_analyze::{analyze, check_cycle, critical_cycles, Analysis, ProgramGraph};
use wmm_bench::{machine, runs_dir, volatile_mp_idiom, volatile_sb_idiom};
use wmm_harness::RunManifest;
use wmm_jvm::barrier::Composite;
use wmm_jvm::jit::{lower, JavaOp, JitConfig};
use wmm_jvm::strategy::{arm_jdk8_barriers, power_jdk9, JvmStrategy};
use wmm_kernel::publish::rbd_publish;
use wmm_kernel::rbd::RbdStrategy;
use wmm_litmus::explore::explore;
use wmm_litmus::ops::ModelKind;
use wmm_litmus::suite::full_suite;
use wmm_sim::arch::Arch;
use wmm_sim::isa::{FenceKind, Instr};
use wmm_sim::machine::Machine;
use wmmbench::image::flatten_streams;

/// Nominal fence sensitivity used to price redundant fences (spark on
/// ARMv8, the paper's most barrier-sensitive workload — Fig. 5).
const NOMINAL_K: f64 = 0.0087;

const MODELS: [ModelKind; 4] = [
    ModelKind::Sc,
    ModelKind::Tso,
    ModelKind::ArmV8,
    ModelKind::Power,
];

fn push_analysis(m: &mut RunManifest, label: &str, a: &Analysis) {
    m.push_cell(format!("{label}/cycles"), a.cycles as f64);
    m.push_cell(format!("{label}/unprotected"), a.unprotected.len() as f64);
    m.push_cell(format!("{label}/redundant"), a.redundant.len() as f64);
    m.push_cell(format!("{label}/downgrade"), a.downgrade.len() as f64);
}

fn print_unprotected(a: &Analysis) {
    for u in &a.unprotected {
        println!("    UNPROTECTED {}", u.cycle);
        for (from, to) in &u.missing {
            println!("      missing ordering: {from} -> {to}");
        }
    }
}

fn print_redundant(a: &Analysis) {
    for r in &a.redundant {
        let place = if r.on_cycle {
            "covered elsewhere"
        } else {
            "on no cycle"
        };
        let saving = r
            .saving_ns
            .map(|ns| format!(", est. saving {ns:.1} ns/invocation"))
            .unwrap_or_default();
        println!(
            "    redundant fence: {} at t{} slot {} ({place}{saving})",
            r.mnemonic, r.thread, r.slot
        );
    }
}

fn print_downgrade(a: &Analysis) {
    for d in &a.downgrade {
        let saving = d
            .saving_ns
            .map(|ns| format!(", est. saving {ns:.1} ns/invocation"))
            .unwrap_or_else(|| ", unpriced".into());
        println!(
            "    over-strong fence: {} at t{} slot {} suffices as {}{saving}",
            d.mnemonic, d.thread, d.slot, d.to_mnemonic
        );
    }
}

/// Per-fence cost (ns) on `mach`, keyed by the stream mnemonic.
fn fence_cost(mach: &Machine) -> impl Fn(&str) -> f64 + '_ {
    |mnemonic: &str| {
        let kind = match mnemonic {
            "DmbIsh" => Some(FenceKind::DmbIsh),
            "DmbIshLd" => Some(FenceKind::DmbIshLd),
            "DmbIshSt" => Some(FenceKind::DmbIshSt),
            "Isb" => Some(FenceKind::Isb),
            "HwSync" => Some(FenceKind::HwSync),
            "LwSync" => Some(FenceKind::LwSync),
            _ => None,
        };
        kind.map_or(0.0, |k| mach.time_sequence_ns(&[Instr::Fence(k)], 2000, 7))
    }
}

// --- section 1: litmus differential ---------------------------------------

fn litmus_section(manifest: &mut RunManifest, errors: &mut Vec<String>) {
    println!("== litmus differential (static vs explorer) ==");
    let mut agree = 0usize;
    let mut total = 0usize;
    for entry in full_suite() {
        let g = ProgramGraph::from_litmus(&entry.test);
        let cycles = critical_cycles(&g);
        for model in MODELS {
            let protected = cycles.iter().all(|c| check_cycle(&g, model, c).protected);
            let observed = explore(&entry.test, model)
                .allows_with_memory(&entry.test.interesting, &entry.test.memory);
            let ok = protected != observed;
            total += 1;
            agree += usize::from(ok);
            let label = format!("litmus/{}/{}", entry.test.name, model.label());
            manifest.push_cell(format!("{label}/protected"), f64::from(protected));
            manifest.push_cell(format!("{label}/agree"), f64::from(ok));
            if !ok {
                errors.push(format!(
                    "differential disagreement: {} under {}: static protected={} \
                     but explorer observes={}",
                    entry.test.name,
                    model.label(),
                    protected,
                    observed
                ));
            }
        }
    }
    println!("  {agree}/{total} program×model rows agree");
}

// --- section 2: JVM volatile idioms ---------------------------------------

fn jvm_analysis(
    name: &str,
    idiom: &[Vec<JavaOp>],
    cfg: &JitConfig,
    strategy: &JvmStrategy,
    model: ModelKind,
    arch: Arch,
) -> Analysis {
    let streams = flatten_streams(&lower(idiom, cfg), strategy);
    let g = ProgramGraph::from_streams(name, &streams, &[]);
    let mach = machine(arch);
    analyze(&g, model).with_savings(NOMINAL_K, fence_cost(&mach))
}

fn jvm_section(manifest: &mut RunManifest, errors: &mut Vec<String>) {
    println!("== JVM volatile idioms ==");
    let tables: [(&str, JitConfig, JvmStrategy, ModelKind, Arch); 3] = [
        (
            "jdk8-arm",
            JitConfig::jdk8(Arch::ArmV8),
            arm_jdk8_barriers(),
            ModelKind::ArmV8,
            Arch::ArmV8,
        ),
        (
            "jdk9-arm",
            JitConfig::jdk9(Arch::ArmV8),
            arm_jdk8_barriers(),
            ModelKind::ArmV8,
            Arch::ArmV8,
        ),
        (
            "jdk9-power",
            JitConfig::jdk9(Arch::Power7),
            power_jdk9(),
            ModelKind::Power,
            Arch::Power7,
        ),
    ];
    let idioms: [(&str, Vec<Vec<JavaOp>>); 2] = [
        ("volatile-SB", volatile_sb_idiom()),
        ("volatile-MP", volatile_mp_idiom()),
    ];

    for (table, cfg, strategy, model, arch) in &tables {
        for (idiom_name, idiom) in &idioms {
            let label = format!("jvm/{table}/{idiom_name}");
            let a = jvm_analysis(&label, idiom, cfg, strategy, *model, *arch);
            println!(
                "  {label}: {} cycles, {} unprotected, {} redundant",
                a.cycles,
                a.unprotected.len(),
                a.redundant.len()
            );
            print_unprotected(&a);
            print_redundant(&a);
            print_downgrade(&a);
            push_analysis(manifest, &label, &a);
            if !a.protected() {
                errors.push(format!(
                    "shipped JVM table {table} leaves {idiom_name} unprotected"
                ));
            }
            // The defensive JDK8 writer brackets the MP publish store with
            // full dmbs where a store-store barrier suffices: the downgrade
            // lint must spot it.
            if *table == "jdk8-arm"
                && *idiom_name == "volatile-MP"
                && !a.downgrade.iter().any(|d| d.to_mnemonic == "DmbIshSt")
            {
                errors.push(
                    "expected a DmbIshSt downgrade on the JDK8 ARM volatile-MP writer".into(),
                );
            }
        }
    }

    // The defensive JDK8 ARM lowering double-fences adjacent volatiles:
    // the lint must fire (this is the redundancy demonstration).
    let a = jvm_analysis(
        "jvm/jdk8-arm/volatile-SB",
        &volatile_sb_idiom(),
        &JitConfig::jdk8(Arch::ArmV8),
        &arm_jdk8_barriers(),
        ModelKind::ArmV8,
        Arch::ArmV8,
    );
    if a.redundant.is_empty() {
        errors.push("expected redundant-fence lints on the defensive JDK8 ARM lowering".into());
    }

    // Seeded known-buggy table: Volatile weakened to dmb ishst. The
    // analyzer MUST flag it — this guards the detector itself.
    let buggy = arm_jdk8_barriers()
        .with_override(
            Composite::Volatile.combined(),
            vec![Instr::Fence(FenceKind::DmbIshSt)],
        )
        .named("jdk8-arm+volatile=dmb.ishst (seeded bug)");
    let a = jvm_analysis(
        "jvm/seeded-bug/volatile-SB",
        &volatile_sb_idiom(),
        &JitConfig::jdk8(Arch::ArmV8),
        &buggy,
        ModelKind::ArmV8,
        Arch::ArmV8,
    );
    println!(
        "  jvm/seeded-bug/volatile-SB: {} unprotected (expected > 0)",
        a.unprotected.len()
    );
    print_unprotected(&a);
    push_analysis(manifest, "jvm/seeded-bug/volatile-SB", &a);
    if a.protected() {
        errors.push("seeded buggy JVM strategy was NOT caught".into());
    }
}

// --- section 3: kernel read_barrier_depends -------------------------------
// The RCU-style publication idiom itself lives in `wmm_kernel::publish`,
// shared with the differential tests and the fence_synth binary.

fn kernel_section(manifest: &mut RunManifest, errors: &mut Vec<String>) {
    println!("== kernel read_barrier_depends strategies (Fig. 10) ==");
    let mach = machine(Arch::ArmV8);
    for which in RbdStrategy::ALL {
        let (streams, deps) = rbd_publish(which);
        let tag = which.label().replace([' ', '/'], "-");
        let label = format!("kernel/rbd={tag}");
        let g = ProgramGraph::from_streams(label.clone(), &streams, &deps);
        let a = analyze(&g, ModelKind::ArmV8).with_savings(NOMINAL_K, fence_cost(&mach));
        println!(
            "  {label}: {} cycles, {} unprotected, {} redundant",
            a.cycles,
            a.unprotected.len(),
            a.redundant.len()
        );
        print_unprotected(&a);
        print_redundant(&a);
        print_downgrade(&a);
        push_analysis(manifest, &label, &a);

        // §4.3.1: the base case and a bare control dependency do not order
        // the dependent load; the other four strategies do.
        let expect_protected = !matches!(which, RbdStrategy::BaseCase | RbdStrategy::Ctrl);
        if a.protected() != expect_protected {
            errors.push(format!(
                "rbd={}: expected protected={expect_protected}, got {}",
                which.label(),
                a.protected()
            ));
        }
        if which == RbdStrategy::LaSr && a.redundant.is_empty() {
            errors.push("expected redundant-fence lints on the la/sr over-annotation".into());
        }
        // The full-dmb reader barrier only needs to order load→load: the
        // downgrade lint must propose dmb ishld.
        if which == RbdStrategy::DmbIsh && !a.downgrade.iter().any(|d| d.to_mnemonic == "DmbIshLd")
        {
            errors.push("expected a DmbIshLd downgrade on the rbd=dmb ish reader".into());
        }
    }
}

fn main() -> ExitCode {
    println!("fence_lint — static fence-placement audit");
    let mut manifest = RunManifest::new("fence_lint", "static");
    let mut errors: Vec<String> = vec![];

    litmus_section(&mut manifest, &mut errors);
    jvm_section(&mut manifest, &mut errors);
    kernel_section(&mut manifest, &mut errors);

    let path = manifest.write(runs_dir()).expect("write manifest");
    println!("wrote {}", path.display());

    if errors.is_empty() {
        println!("fence_lint: OK");
        ExitCode::SUCCESS
    } else {
        for e in &errors {
            eprintln!("fence_lint ERROR: {e}");
        }
        ExitCode::FAILURE
    }
}
