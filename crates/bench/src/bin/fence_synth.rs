//! fence_synth — minimal-cost automatic fence insertion with differential
//! and priced validation.
//!
//! Where `fence_lint` audits hand-written fencing strategies, this binary
//! *derives* them: for every critical cycle of a bare program it
//! enumerates the candidate instruments that would protect it (fences,
//! acquire/release upgrades, artificial dependencies), solves a weighted
//! minimum hitting set priced by the paper's Eq. 1/Eq. 2 cost model, and
//! validates each synthesized placement twice —
//!
//! * **statically**: re-running the analyzer on the instrumented program
//!   must report zero unprotected cycles;
//! * **dynamically**: the operational explorer must no longer reach the
//!   weak outcome on the reinforced litmus shape.
//!
//! Five sections, one run manifest (`results/runs/fence_synth.json`):
//!
//! 1. **Litmus suite** — every suite program × every model, both
//!    validators on every placement.
//! 2. **Kernel `read_barrier_depends`** — synthesis on the bare RCU-style
//!    publication idiom, re-lowered through kernel macro sites and
//!    compared against all six hand strategies of Fig. 10 (synthesis must
//!    cost no more than the best protected hand strategy).
//! 3. **Dstruct reclamation** — synthesis on the bare hazard-pointer
//!    publication/scan idiom (the Treiber-pop protect skeleton) and the
//!    bare epoch idiom, re-lowered through the dstruct reclamation sites
//!    and raced against the four scheme lowerings.
//! 4. **JVM volatile idioms** — synthesis on the bare JIT lowering of the
//!    Dekker (SB) and message-passing (MP) idioms, compared against the
//!    JDK8 barrier and JDK9 `ldar`/`stlr` lowerings on ARM and the JDK9
//!    lowering on POWER.
//! 5. **Seam-measured micro costs** — per-fence ns through the `Executor`
//!    seam, recorded as a cross-check next to the static cost table (the
//!    table, not the measurement, prices synthesis: §4.2.1 shows micro
//!    timing cannot separate the `dmb` variants).
//!
//! Everything here is static or fixed-seed, so the manifest's canonical
//! content is bit-identical across runs and `--threads` worker counts;
//! `--quick` is accepted for CI symmetry and changes nothing. Exit is
//! non-zero on any failed validator, synthesis error, or hand strategy
//! beating synthesis — `bench_gate` then guards the manifest. The
//! stream-ingestion skeleton (synthesize → dual-validate → hand race) is
//! `wmm_bench::streams::synth_stream_case`, shared with `fence_lint`.

use std::process::ExitCode;

use wmm_analyze::{
    analyze, apply_to_graph, graph_cost, synthesize, CostModel, ProgramGraph, SynthConfig,
};
use wmm_bench::streams::{
    explorer_rejects_weak, synth_stream_case, StreamCase, COST_EPS, MODELS, NOMINAL_K,
};
use wmm_bench::{cli_threads, runs_dir, seam_fence_costs, volatile_mp_idiom, volatile_sb_idiom};
use wmm_dstruct::{
    bare_reclaim, ebr_reclaim_idiom, hp_reclaim_idiom, nr_strategy, scheme_strategies,
    strategy_from_placement as dstruct_from_placement, DSite,
};
use wmm_harness::{ParallelExecutor, RunManifest, SimCache};
use wmm_jvm::jit::{lower, JavaOp, JitConfig};
use wmm_jvm::strategy::{arm_jdk8_barriers, null_barriers, power_jdk9, with_placement};
use wmm_kernel::publish::{bare_publish, publish_idiom, rbd_publish, strategy_from_placement};
use wmm_kernel::rbd::RbdStrategy;
use wmm_litmus::ops::ModelKind;
use wmm_litmus::suite::{self, full_suite};
use wmm_litmus::LitmusTest;
use wmm_sim::arch::Arch;
use wmmbench::image::flatten_streams;
use wmmbench::strategy::FencingStrategy;

// --- section 1: litmus suite ----------------------------------------------

fn litmus_section(manifest: &mut RunManifest, errors: &mut Vec<String>, costs: &CostModel) {
    println!("== litmus suite synthesis (static + dynamic validation) ==");
    let mut programs = 0usize;
    let mut rows = 0usize;
    let mut placed = 0usize;
    for entry in full_suite() {
        programs += 1;
        let g = ProgramGraph::from_litmus(&entry.test);
        for model in MODELS {
            let label = format!("synth/litmus/{}/{}", entry.test.name, model.label());
            match synthesize(&g, SynthConfig::for_model(model), costs) {
                Ok(p) => {
                    let static_ok = analyze(&apply_to_graph(&g, &p.instruments), model).protected();
                    let dynamic_ok = explorer_rejects_weak(&entry.test, &p, model);
                    manifest.push_cell(format!("{label}/cost_ns"), p.cost_ns);
                    manifest.push_cell(format!("{label}/instruments"), p.instruments.len() as f64);
                    manifest
                        .push_cell(format!("{label}/valid"), f64::from(static_ok && dynamic_ok));
                    rows += 1;
                    placed += usize::from(!p.instruments.is_empty());
                    if !static_ok {
                        errors.push(format!("{label}: unprotected cycles after synthesis"));
                    }
                    if !dynamic_ok {
                        errors.push(format!(
                            "{label}: explorer reaches the weak outcome despite [{}]",
                            p.describe()
                        ));
                    }
                }
                Err(e) => {
                    manifest.push_cell(format!("{label}/valid"), 0.0);
                    errors.push(format!("{label}: synthesis failed: {e}"));
                }
            }
        }
    }
    println!(
        "  {rows} program×model placements over {programs} programs; \
         {placed} non-empty, all validated twice"
    );
}

// --- section 2: kernel read_barrier_depends --------------------------------

fn rbd_section(manifest: &mut RunManifest, errors: &mut Vec<String>, costs: &CostModel) {
    println!("== kernel rbd publication idiom (Fig. 10 strategy space) ==");
    let case = StreamCase {
        label: "synth/rbd".into(),
        graph: "kernel/rbd-publish".into(),
        model: ModelKind::ArmV8,
        bare: bare_publish(),
        // Fences only: kernel macro sites are pure instruction sequences,
        // so upgrades/dependencies have no site to live in.
        fences_only: true,
        // Message passing has the same access skeleton as the publication
        // idiom.
        litmus: suite::message_passing().test,
        relower: Box::new(|ins| strategy_from_placement(ins).map(|s| publish_idiom(&s, None))),
        hands: RbdStrategy::ALL
            .iter()
            .map(|which| {
                let (streams, sdeps) = rbd_publish(*which);
                let tag = which.label().replace([' ', '/'], "-");
                (tag.clone(), format!("kernel/rbd={tag}"), streams, sdeps)
            })
            .collect(),
    };
    synth_stream_case(&case, manifest, errors, costs);
}

// --- section 3: dstruct reclamation ----------------------------------------

fn dstruct_section(manifest: &mut RunManifest, errors: &mut Vec<String>, costs: &CostModel) {
    println!("== dstruct hazard-pointer reclamation (Treiber protect skeleton) ==");
    // Both reclamation races are SB-shaped (announce vs scan), so the
    // store-buffering litmus is the dynamic validation shape for each.
    let hp_case = StreamCase {
        label: "synth/dstruct/hp".into(),
        graph: "dstruct/hp-reclaim".into(),
        model: ModelKind::ArmV8,
        bare: bare_reclaim(),
        // Reclamation sites are pure instruction sequences, like kernel
        // macros: fences only.
        fences_only: true,
        litmus: suite::store_buffering().test,
        relower: Box::new(|ins| dstruct_from_placement(ins).map(|s| hp_reclaim_idiom(&s))),
        hands: scheme_strategies()
            .iter()
            .map(|s| {
                let (streams, sdeps) = hp_reclaim_idiom(s);
                let tag = s.name().to_string();
                (tag.clone(), format!("dstruct/hp={tag}"), streams, sdeps)
            })
            .collect(),
    };
    synth_stream_case(&hp_case, manifest, errors, costs);

    println!("== dstruct epoch reclamation (announce/advance skeleton) ==");
    let epoch_case = StreamCase {
        label: "synth/dstruct/epoch".into(),
        graph: "dstruct/epoch-reclaim".into(),
        model: ModelKind::ArmV8,
        bare: bare_reclaim(),
        fences_only: true,
        litmus: suite::store_buffering().test,
        // The placement lands on the reader/reclaimer slots; re-home it on
        // the epoch sites and re-lower the epoch idiom.
        relower: Box::new(|ins| {
            dstruct_from_placement(ins).map(|s| {
                let e = nr_strategy()
                    .with(DSite::EpochEnter, s.lower(&DSite::HpProtect))
                    .with(DSite::EpochAdvance, s.lower(&DSite::HpScan))
                    .named("epoch=synth");
                ebr_reclaim_idiom(&e)
            })
        }),
        hands: scheme_strategies()
            .iter()
            .map(|s| {
                let (streams, sdeps) = ebr_reclaim_idiom(s);
                let tag = s.name().to_string();
                (tag.clone(), format!("dstruct/epoch={tag}"), streams, sdeps)
            })
            .collect(),
    };
    synth_stream_case(&epoch_case, manifest, errors, costs);
}

// --- section 4: JVM volatile idioms ----------------------------------------

struct JvmCase {
    name: &'static str,
    idiom: Vec<Vec<JavaOp>>,
    /// The litmus shape matching the idiom's bare access skeleton, for
    /// dynamic validation.
    litmus: LitmusTest,
    model: ModelKind,
    /// Barriers-mode config whose null-strategy flattening is the bare
    /// program.
    bare_cfg: JitConfig,
    /// Hand lowerings to compare against: `(tag, streams)`.
    hands: Vec<(&'static str, Vec<Vec<wmm_sim::isa::Instr>>)>,
}

fn jvm_cases() -> Vec<JvmCase> {
    let mut cases = vec![];
    for (idiom_name, idiom) in [
        ("volatile-SB", volatile_sb_idiom()),
        ("volatile-MP", volatile_mp_idiom()),
    ] {
        let litmus = if idiom_name == "volatile-SB" {
            suite::store_buffering().test
        } else {
            suite::message_passing().test
        };
        cases.push(JvmCase {
            name: if idiom_name == "volatile-SB" {
                "arm/volatile-SB"
            } else {
                "arm/volatile-MP"
            },
            idiom: idiom.clone(),
            litmus: litmus.clone(),
            model: ModelKind::ArmV8,
            bare_cfg: JitConfig::jdk8(Arch::ArmV8),
            hands: vec![
                (
                    "jdk8",
                    flatten_streams(
                        &lower(&idiom, &JitConfig::jdk8(Arch::ArmV8)),
                        &arm_jdk8_barriers(),
                    ),
                ),
                (
                    "jdk9",
                    flatten_streams(
                        &lower(&idiom, &JitConfig::jdk9(Arch::ArmV8)),
                        &arm_jdk8_barriers(),
                    ),
                ),
            ],
        });
        cases.push(JvmCase {
            name: if idiom_name == "volatile-SB" {
                "power/volatile-SB"
            } else {
                "power/volatile-MP"
            },
            idiom: idiom.clone(),
            litmus,
            model: ModelKind::Power,
            bare_cfg: JitConfig::jdk8(Arch::Power7),
            hands: vec![(
                "jdk9",
                flatten_streams(
                    &lower(&idiom, &JitConfig::jdk9(Arch::Power7)),
                    &power_jdk9(),
                ),
            )],
        });
    }
    cases
}

fn jvm_section(manifest: &mut RunManifest, errors: &mut Vec<String>, costs: &CostModel) {
    println!("== JVM volatile lowerings ==");
    for case in jvm_cases() {
        // The JVM platform re-lowers through JIT op streams rather than
        // raw instruction streams, so it keeps its own re-lowering step
        // and borrows only the shared validators and pricing.
        let label = format!("synth/jvm/{}", case.name);
        let bare = flatten_streams(&lower(&case.idiom, &case.bare_cfg), &null_barriers());
        let g = ProgramGraph::from_streams(format!("jvm/{}/bare", case.name), &bare, &[]);
        let p = match synthesize(&g, SynthConfig::for_model(case.model), costs) {
            Ok(p) => p,
            Err(e) => {
                errors.push(format!("{label}: synthesis failed: {e}"));
                continue;
            }
        };
        println!("  {}: {} ({:.1} ns)", case.name, p.describe(), p.cost_ns);
        manifest.push_cell(format!("{label}/cost_ns"), p.cost_ns);
        manifest.push_cell(format!("{label}/instruments"), p.instruments.len() as f64);

        // Static validation through the platform hook: re-impose the
        // placement on the bare lowering and re-analyze.
        let (streams, sdeps) = with_placement(&case.idiom, &case.bare_cfg, &p.instruments);
        let g2 = ProgramGraph::from_streams(format!("jvm/{}/synth", case.name), &streams, &sdeps);
        let static_ok = analyze(&g2, case.model).protected();
        let dynamic_ok = explorer_rejects_weak(&case.litmus, &p, case.model);
        manifest.push_cell(format!("{label}/valid"), f64::from(static_ok && dynamic_ok));
        if !static_ok {
            errors.push(format!("{label}: unprotected after re-imposing placement"));
        }
        if !dynamic_ok {
            errors.push(format!("{label}: explorer reaches the weak outcome"));
        }

        // Hand comparison: JDK lowerings of the same idiom.
        let mut best_hand = f64::INFINITY;
        for (tag, hand_streams) in &case.hands {
            let gh =
                ProgramGraph::from_streams(format!("jvm/{}/{tag}", case.name), hand_streams, &[]);
            let protected = analyze(&gh, case.model).protected();
            let cost = graph_cost(&gh, case.model, costs);
            println!(
                "  hand {}/{tag}: {cost:.1} ns, {}",
                case.name,
                if protected {
                    "protected"
                } else {
                    "UNPROTECTED"
                }
            );
            manifest.push_cell(format!("{label}/hand/{tag}/cost_ns"), cost);
            manifest.push_cell(
                format!("{label}/hand/{tag}/protected"),
                f64::from(protected),
            );
            if protected {
                best_hand = best_hand.min(cost);
            }
        }
        manifest.push_cell(format!("{label}/best_hand_cost_ns"), best_hand);
        if p.cost_ns > best_hand + COST_EPS {
            errors.push(format!(
                "{label}: synthesized cost {:.3} ns exceeds best hand lowering {best_hand:.3} ns",
                p.cost_ns
            ));
        }
    }
}

// --- section 5: seam-measured micro costs ----------------------------------

fn micro_section(manifest: &mut RunManifest, exec: &ParallelExecutor, costs: &CostModel) {
    println!("== seam-measured fence costs (cross-check, not solver weights) ==");
    for (arch_tag, arch) in [("arm", Arch::ArmV8), ("power", Arch::Power7)] {
        for (kind, measured) in seam_fence_costs(exec, arch) {
            let table = costs.fence_ns(kind);
            println!("  {arch_tag} {kind:?}: measured {measured:.1} ns, cost table {table:.1} ns");
            manifest.push_cell(format!("synth/micro/{arch_tag}/{kind:?}_ns"), measured);
        }
    }
}

fn main() -> ExitCode {
    println!("fence_synth — minimal-cost fence insertion with differential validation");
    // --quick is accepted (CI invokes every campaign with it) but synthesis
    // is static and the micro reps are fixed, so it changes nothing.
    let exec = ParallelExecutor::new(cli_threads()).with_cache(SimCache::in_memory());
    let costs = CostModel::priced(NOMINAL_K);
    let mut manifest = RunManifest::new("fence_synth", "static");
    let mut errors: Vec<String> = vec![];

    litmus_section(&mut manifest, &mut errors, &costs);
    rbd_section(&mut manifest, &mut errors, &costs);
    dstruct_section(&mut manifest, &mut errors, &costs);
    jvm_section(&mut manifest, &mut errors, &costs);
    micro_section(&mut manifest, &exec, &costs);

    let path = manifest.write(runs_dir()).expect("write manifest");
    println!("wrote {}", path.display());

    if errors.is_empty() {
        println!("fence_synth: OK");
        ExitCode::SUCCESS
    } else {
        for e in &errors {
            eprintln!("fence_synth ERROR: {e}");
        }
        ExitCode::FAILURE
    }
}
