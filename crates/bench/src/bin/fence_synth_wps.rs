//! fence_synth_wps — whole-program fence synthesis over stitched
//! multi-operation programs and concatenated generated-test bundles.
//!
//! Where `fence_synth` solves one litmus-sized instance at a time, this
//! binary drives `wmm_analyze::wps`: conflict-component decomposition,
//! parallel content-addressed cycle enumeration through the harness job
//! seam, and the two-tier solver (exact branch-and-bound oracle under a
//! node budget on instances with at most 30 reorderable legs, the
//! reorder-bounded greedy tier on everything, priced optimality gap where
//! both ran). Three sections, one manifest
//! (`results/runs/fence_synth_wps.json`):
//!
//! 1. **Stitched dstruct hot paths** — Treiber push+pop and Harris-Michael
//!    insert+delete+search as single multi-operation graphs. Each
//!    placement is validated statically (re-analysis reports zero
//!    unprotected cycles) and dynamically (the part of the placement
//!    inside the reclamation-race windows, replayed onto the
//!    use-after-retire litmus, makes the explorer reject the weak
//!    outcome).
//! 2. **Generated bundles** — ≥ 128 tests from the differential corpus
//!    packed into parallel-composition bundles of at most 16 threads / 64
//!    accesses. Static validation per bundle; dynamic validation per
//!    constituent test: the bundle placement is sliced back onto each
//!    part, and both oracles — operational explorer and axiomatic checker
//!    — must reject the weak outcome *and* agree on the full finals set
//!    of the reinforced test.
//! 3. **Determinism** — the whole analysis pass (enumeration, tiering,
//!    pricing, every manifest cell it emits) is recomputed at a different
//!    worker count with a fresh cycle cache; the canonical cell content
//!    must be byte-identical.
//!
//! Any failed validator, oracle disagreement, bundle shortfall or
//! determinism mismatch exits non-zero; `bench_gate` then guards the
//! manifest against `results/baselines/fence_synth_wps.json`. `--quick`
//! is accepted for CI symmetry and changes nothing — the run is static.

use std::process::ExitCode;

use wmm_analyze::{
    analyze, apply_to_graph, synthesize_wps, CostModel, CycleCache, Placement, SynthConfig,
    WpsConfig, WpsReport, WpsTier,
};
use wmm_axiom::axiomatic_outcomes;
use wmm_bench::streams::NOMINAL_K;
use wmm_bench::wps::{make_bundles, slice_placement, Bundle, MIN_BUNDLED_TESTS, WPS_MODEL};
use wmm_bench::{cli_threads, runs_dir};
use wmm_dstruct::{use_after_retire, StitchedProgram};
use wmm_harness::{resolve_threads, RunManifest};
use wmm_litmus::explore::explore;

/// Synthesis model for every instance (see [`WPS_MODEL`]).
const MODEL: wmm_litmus::ops::ModelKind = WPS_MODEL;

/// Stable numeric code for a tier, for manifest cells.
fn tier_code(tier: WpsTier) -> f64 {
    match tier {
        WpsTier::Exact => 0.0,
        WpsTier::Approx => 1.0,
        WpsTier::Timeout => 2.0,
    }
}

/// Push one instance's deterministic analysis cells.
fn push_report_cells(manifest: &mut RunManifest, label: &str, r: &WpsReport, static_ok: bool) {
    manifest.push_cell(format!("{label}/cost_ns"), r.placement.cost_ns);
    manifest.push_cell(
        format!("{label}/instruments"),
        r.placement.instruments.len() as f64,
    );
    manifest.push_cell(format!("{label}/tier"), tier_code(r.tier));
    manifest.push_cell(format!("{label}/components"), r.components as f64);
    manifest.push_cell(format!("{label}/cycles"), r.cycles as f64);
    manifest.push_cell(format!("{label}/open_cycles"), r.open_cycles as f64);
    manifest.push_cell(format!("{label}/legs"), r.legs as f64);
    manifest.push_cell(format!("{label}/nodes"), r.nodes as f64);
    manifest.push_cell(format!("{label}/approx_cost_ns"), r.approx_cost_ns);
    if let Some(exact) = r.exact_cost_ns {
        manifest.push_cell(format!("{label}/exact_cost_ns"), exact);
    }
    if let Some(gap) = r.gap {
        manifest.push_cell(format!("{label}/gap"), gap);
    }
    manifest.push_cell(format!("{label}/static_valid"), f64::from(static_ok));
}

/// Everything the worker-parameterized analysis pass produces: the
/// deterministic manifest cells plus the placements the (worker-count
/// independent) dynamic validators consume.
struct AnalysisPass {
    manifest: RunManifest,
    errors: Vec<String>,
    stitched: Vec<(StitchedProgram, WpsReport)>,
    /// Each bundle with its gated report plus, for stress bundles, the
    /// forced greedy-tier report.
    bundles: Vec<(Bundle, WpsReport, Option<WpsReport>)>,
}

/// Run the full static pipeline at one worker count: stitched programs,
/// then bundles, sharing one skeleton cache. Emits only deterministic
/// cells so two passes at different worker counts must agree byte-for-byte.
fn analysis_pass(threads: Option<usize>, costs: &CostModel) -> AnalysisPass {
    let wps = WpsConfig {
        threads,
        ..WpsConfig::default()
    };
    let cache = CycleCache::in_memory();
    let mut manifest = RunManifest::new("fence_synth_wps", "static");
    let mut errors: Vec<String> = vec![];
    let mut stitched = vec![];
    let mut bundles = vec![];

    for prog in StitchedProgram::all() {
        let label = format!("wps/dstruct/{}", prog.name);
        let g = prog.graph();
        // Reclamation sites are pure instruction sequences (kernel-macro
        // style), so the stitched tier synthesizes fences only.
        match synthesize_wps(
            &g,
            SynthConfig::fences_only(MODEL),
            costs,
            &wps,
            Some(&cache),
        ) {
            Ok(r) => {
                let static_ok =
                    analyze(&apply_to_graph(&g, &r.placement.instruments), MODEL).protected();
                push_report_cells(&mut manifest, &label, &r, static_ok);
                if !static_ok {
                    errors.push(format!("{label}: unprotected cycles after synthesis"));
                }
                stitched.push((prog, r));
            }
            Err(e) => errors.push(format!("{label}: synthesis failed: {e}")),
        }
    }

    for bundle in make_bundles(MIN_BUNDLED_TESTS) {
        let label = format!("wps/gen/{}", bundle.label);
        match synthesize_wps(
            &bundle.graph,
            SynthConfig::for_model(MODEL),
            costs,
            &wps,
            Some(&cache),
        ) {
            Ok(r) => {
                let static_ok = analyze(
                    &apply_to_graph(&bundle.graph, &r.placement.instruments),
                    MODEL,
                )
                .protected();
                push_report_cells(&mut manifest, &label, &r, static_ok);
                manifest.push_cell(format!("{label}/tests"), bundle.parts.len() as f64);
                if !static_ok {
                    errors.push(format!("{label}: unprotected cycles after synthesis"));
                }
                // Stress bundles also ship the greedy tier's own
                // placement: a zero leg cap skips the oracle, so the
                // reorder-bounded tier is what gets validated.
                let forced = if bundle.stress {
                    let fwps = WpsConfig {
                        exact_leg_cap: 0,
                        ..wps
                    };
                    match synthesize_wps(
                        &bundle.graph,
                        SynthConfig::for_model(MODEL),
                        costs,
                        &fwps,
                        Some(&cache),
                    ) {
                        Ok(fr) => {
                            let flabel = format!("{label}/approx_tier");
                            let fstatic = analyze(
                                &apply_to_graph(&bundle.graph, &fr.placement.instruments),
                                MODEL,
                            )
                            .protected();
                            push_report_cells(&mut manifest, &flabel, &fr, fstatic);
                            if fr.tier != WpsTier::Approx {
                                errors.push(format!(
                                    "{flabel}: forced greedy solve reported the {} tier",
                                    fr.tier.label()
                                ));
                            }
                            if !fstatic {
                                errors.push(format!("{flabel}: unprotected cycles"));
                            }
                            Some(fr)
                        }
                        Err(e) => {
                            errors.push(format!("{label}: forced greedy solve failed: {e}"));
                            None
                        }
                    }
                } else {
                    None
                };
                bundles.push((bundle, r, forced));
            }
            Err(e) => errors.push(format!("{label}: synthesis failed: {e}")),
        }
    }

    let packed: usize = bundles.iter().map(|(b, _, _)| b.parts.len()).sum();
    manifest.push_cell("wps/gen/tests_total", packed as f64);
    manifest.push_cell("wps/gen/bundles", bundles.len() as f64);
    manifest.push_cell("wps/cache/entries", cache.len() as f64);
    manifest.push_cell("wps/cache/hits", cache.hits() as f64);
    if packed < MIN_BUNDLED_TESTS {
        errors.push(format!(
            "only {packed} generated tests bundled (need >= {MIN_BUNDLED_TESTS})"
        ));
    }
    AnalysisPass {
        manifest,
        errors,
        stitched,
        bundles,
    }
}

/// Dynamic validation of the stitched placements: replay each placement's
/// reclamation-window slice onto the use-after-retire litmus; the
/// explorer must reject the weak outcome.
fn validate_stitched(pass: &mut AnalysisPass) {
    let stitched = std::mem::take(&mut pass.stitched);
    for (prog, r) in &stitched {
        let label = format!("wps/dstruct/{}", prog.name);
        let items = prog.hazard_race_reinforcement(&r.placement.instruments);
        let reinforced = use_after_retire().reinforced(&items);
        let weak = explore(&reinforced, MODEL)
            .allows_with_memory(&reinforced.interesting, &reinforced.memory);
        pass.manifest
            .push_cell(format!("{label}/dynamic_valid"), f64::from(!weak));
        if weak {
            pass.errors.push(format!(
                "{label}: reclamation race still reachable under the synthesized placement"
            ));
        }
        println!(
            "  {}: {} tier, {:.1} ns, {} instruments, {} cycles, dynamic {}",
            prog.name,
            r.tier.label(),
            r.placement.cost_ns,
            r.placement.instruments.len(),
            r.cycles,
            if weak { "FAIL" } else { "ok" },
        );
    }
    pass.stitched = stitched;
}

/// Dynamic validation of the bundle placements, per constituent: slice
/// the placement back onto each part and require the explorer to reject
/// the weak outcome **and** the axiomatic oracle to agree with it on the
/// reinforced test's full finals set.
fn validate_bundles(pass: &mut AnalysisPass) {
    let bundles = std::mem::take(&mut pass.bundles);
    let (mut parts, mut weak_fails, mut oracle_splits) = (0usize, 0usize, 0usize);
    for (bundle, r, forced) in &bundles {
        let gated = format!("wps/gen/{}", bundle.label);
        let placements: Vec<(String, &Placement)> = std::iter::once((gated.clone(), &r.placement))
            .chain(
                forced
                    .iter()
                    .map(|fr| (format!("{gated}/approx_tier"), &fr.placement)),
            )
            .collect();
        for (label, placement) in placements {
            let mut ok = true;
            for (test, off) in &bundle.parts {
                parts += 1;
                let sliced = slice_placement(placement, *off, test.threads.len());
                let reinforced = test.reinforced(&sliced.to_reinforce());
                let op = explore(&reinforced, MODEL);
                let ax = axiomatic_outcomes(&reinforced, MODEL);
                let op_weak = op.allows_with_memory(&reinforced.interesting, &reinforced.memory);
                let ax_weak = ax.allows_with_memory(&reinforced.interesting, &reinforced.memory);
                if op_weak || ax_weak {
                    weak_fails += 1;
                    ok = false;
                    pass.errors.push(format!(
                        "{label}/{}: weak outcome reachable after synthesis \
                         (op {op_weak}, ax {ax_weak})",
                        test.name
                    ));
                }
                if ax.finals != op.canonical() {
                    oracle_splits += 1;
                    ok = false;
                    pass.errors.push(format!(
                        "{label}/{}: oracles disagree on the reinforced finals set",
                        test.name
                    ));
                }
            }
            pass.manifest
                .push_cell(format!("{label}/dynamic_valid"), f64::from(ok));
        }
    }
    pass.manifest
        .push_cell("wps/gen/parts_validated", parts as f64);
    println!(
        "  {parts} constituent tests dual-oracle validated; \
         {weak_fails} weak-outcome failures, {oracle_splits} oracle splits"
    );
    pass.bundles = bundles;
}

fn main() -> ExitCode {
    println!("fence_synth_wps — whole-program synthesis (decompose / enumerate / tier)");
    let costs = CostModel::priced(NOMINAL_K);

    println!("== analysis pass (stitched dstruct + generated bundles) ==");
    let mut pass = analysis_pass(cli_threads(), &costs);
    let exact = pass
        .bundles
        .iter()
        .map(|(_, r, _)| r)
        .chain(pass.stitched.iter().map(|(_, r)| r))
        .filter(|r| r.tier == WpsTier::Exact)
        .count();
    let forced = pass.bundles.iter().filter(|(_, _, f)| f.is_some()).count();
    let total = pass.bundles.len() + pass.stitched.len();
    println!(
        "  {total} gated instances ({} bundles): {exact} exact-tier with priced gap; \
         {forced} stress bundles also ship a forced greedy-tier placement",
        pass.bundles.len(),
    );

    println!("== determinism (re-analysis at a different worker count) ==");
    let workers = resolve_threads(cli_threads());
    let alternate = if workers == 1 { 2 } else { 1 };
    let replay = analysis_pass(Some(alternate), &costs);
    let identical = pass.manifest.canonical_json().to_string_pretty()
        == replay.manifest.canonical_json().to_string_pretty();
    println!(
        "  {workers} vs {alternate} workers: manifests {}",
        if identical {
            "byte-identical"
        } else {
            "DIVERGED"
        }
    );
    if !identical {
        pass.errors.push(format!(
            "analysis manifest differs between {workers} and {alternate} workers"
        ));
    }

    println!("== dynamic validation (explorer + axiomatic oracle) ==");
    validate_stitched(&mut pass);
    validate_bundles(&mut pass);
    pass.manifest
        .push_cell("wps/determinism/manifest_identical", f64::from(identical));

    let path = pass.manifest.write(runs_dir()).expect("write manifest");
    println!("wrote {}", path.display());

    if pass.errors.is_empty() {
        println!("fence_synth_wps: OK");
        ExitCode::SUCCESS
    } else {
        for e in &pass.errors {
            eprintln!("fence_synth_wps ERROR: {e}");
        }
        ExitCode::FAILURE
    }
}
