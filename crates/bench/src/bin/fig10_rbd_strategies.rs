//! Fig. 10: relative performance of the six `read_barrier_depends` fencing
//! strategies across the six kernel benchmarks, against the nop-padded base
//! case. `isb` is "unreasonable due to its effect on the processor
//! pipeline"; `dmb ishld`/`dmb ish` are the best-case ordering scenarios.

use wmm_bench::{cli_config, fig10_rbd_strategies, results_dir};
use wmmbench::report::Table;

fn main() {
    let cfg = cli_config();
    println!("Fig. 10 — rbd fencing strategies, relative performance (%)");
    let results = fig10_rbd_strategies(cfg);
    let bench_names: Vec<String> = results[0].1.iter().map(|d| d.bench.clone()).collect();

    let mut headers: Vec<&str> = vec!["strategy"];
    let names_ref: Vec<&str> = bench_names.iter().map(|s| s.as_str()).collect();
    headers.extend(names_ref);
    let mut t = Table::new(&headers);
    for (s, deltas) in &results {
        let mut row = vec![s.label().to_string()];
        row.extend(
            deltas
                .iter()
                .map(|d| format!("{:+.1}", d.cmp.percent_change())),
        );
        t.row(row);
    }
    println!("{}", t.markdown());
    println!("paper shape: ctrl+isb drops several percent everywhere (pipeline flush);");
    println!("osm_stack shows a small but significant drop of up to 1%; netperf trends");
    println!("are identical for TCP and UDP with UDP more subdued and stable; dmb ishld");
    println!("and dmb ish have almost identical peaks but dmb ish does more work in many cases.");
    let path = results_dir().join("fig10_rbd_strategies.csv");
    t.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
}
