//! Fig. 1: an example of fitting the sensitivity model to a cost-function
//! sweep. The paper's example fits k = 0.00277 ± 2.5% over cost sizes up to
//! 2^14; we sweep h2 on ARM, whose sensitivity sits in the same band.

use wmm_bench::{cli_config, fig1_example_fit, results_dir};
use wmmbench::report::{ascii_sweep, Table};

fn main() {
    let cfg = cli_config();
    let result = fig1_example_fit(cfg);

    println!("Fig. 1 — example sensitivity fit (h2, ARM, all barriers)");
    println!("paper example: k = 0.00277 ±2.5%");
    match &result.fit {
        Some(f) => println!("measured:      {} (R² = {:.4})", f.display(), f.r_squared),
        None => println!("measured:      fit did not converge"),
    }
    println!();
    println!("{}", ascii_sweep(&result, 40));

    let mut t = Table::new(&["cost_ns", "rel_perf", "rel_min", "rel_max"]);
    for p in &result.points {
        t.row(vec![
            format!("{:.2}", p.actual_ns),
            format!("{:.5}", p.rel_perf),
            format!("{:.5}", p.rel_min),
            format!("{:.5}", p.rel_max),
        ]);
    }
    let path = results_dir().join("fig1_fit.csv");
    t.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
}
