//! Fig. 4: time taken to execute the cost functions vs loop count, for the
//! three variants: arm (with stack spill), arm-nostack (OpenJDK's scratch
//! register), power. Shows the sub-linear small-N region and the linear
//! large-N slopes (~1 cycle/iteration: 0.42 ns on ARM, 0.27 ns on POWER).

use wmm_bench::{fig4_costfn_calibration, results_dir};
use wmmbench::report::Table;

fn main() {
    let cals = fig4_costfn_calibration();

    println!("Fig. 4 — cost function execution time (ns) vs loop count N");
    print!("{:>8}", "N");
    for (label, _) in &cals {
        print!("{label:>14}");
    }
    println!();
    let npoints = cals[0].1.points.len();
    for i in 0..npoints {
        print!("{:>8}", cals[0].1.points[i].0);
        for (_, cal) in &cals {
            print!("{:>14.2}", cal.points[i].1);
        }
        println!();
    }

    // Large-N slope check against the paper's cycle rates.
    println!();
    for (label, cal) in &cals {
        let n = cal.points.len();
        let (n0, t0) = cal.points[n - 2];
        let (n1, t1) = cal.points[n - 1];
        let slope = (t1 - t0) / (n1 - n0) as f64;
        println!("{label:<14} large-N slope: {slope:.3} ns/iter");
    }

    let mut t = Table::new(&["n", "arm_ns", "arm_nostack_ns", "power_ns"]);
    for i in 0..npoints {
        t.row(vec![
            format!("{}", cals[0].1.points[i].0),
            format!("{:.3}", cals[0].1.points[i].1),
            format!("{:.3}", cals[1].1.points[i].1),
            format!("{:.3}", cals[2].1.points[i].1),
        ]);
    }
    let path = results_dir().join("fig4_costfn.csv");
    t.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
}
