//! Fig. 5: OpenJDK — impact of increasing cost-function size when injected
//! into all memory barriers, for the eight concurrent-DaCapo/spark
//! benchmarks on both architectures, with fitted sensitivities.
//!
//! Runs through the wmm-harness parallel executor (`--threads N`,
//! `--cache`, `--progress`, `--trace <path>`) and writes a schema-versioned
//! run manifest to `results/runs/fig5_openjdk_sweep.json` for the
//! `bench_gate` regression gate. Output is bit-identical regardless of
//! worker count.

use wmm_bench::{
    cli_config, cli_executor, cli_trace, fig5_openjdk_sweeps_with, results_dir, runs_dir,
};
use wmm_harness::RunManifest;
use wmm_sim::arch::Arch;
use wmmbench::report::Table;

const PAPER: [(&str, f64, f64); 8] = [
    ("h2", 0.00339, 0.00251),
    ("lusearch", 0.00213, 0.00118),
    ("spark", 0.00870, 0.01227),
    ("sunflow", 0.00187, 0.00164),
    ("tomcat", 0.00250, 0.00397),
    ("tradebeans", 0.00262, 0.00385),
    ("tradesoap", 0.00238, 0.00314),
    ("xalan", 0.00606, 0.00152),
];

fn main() {
    let cfg = cli_config();
    let exec = cli_executor();
    println!("Fig. 5 — OpenJDK all-barrier sensitivity sweeps");
    let mut table = Table::new(&[
        "benchmark",
        "arch",
        "k",
        "k_err_pct",
        "k_paper",
        "stability",
    ]);
    let mut csv = Table::new(&[
        "benchmark",
        "arch",
        "cost_ns",
        "rel_perf",
        "rel_min",
        "rel_max",
    ]);
    let mut manifest = RunManifest::new("fig5_openjdk_sweep", "arm+power");
    for arch in [Arch::ArmV8, Arch::Power7] {
        for s in fig5_openjdk_sweeps_with(arch, cfg, &exec) {
            let paper = PAPER
                .iter()
                .find(|(n, _, _)| *n == s.benchmark)
                .map(|(_, a, p)| if arch == Arch::ArmV8 { *a } else { *p })
                .unwrap_or(f64::NAN);
            let (k, err) = s
                .fit
                .as_ref()
                .map(|f| (f.k, f.relative_error() * 100.0))
                .unwrap_or((f64::NAN, f64::NAN));
            table.row(vec![
                s.benchmark.clone(),
                arch.label().to_string(),
                format!("{k:.5}"),
                format!("{err:.0}"),
                format!("{paper:.5}"),
                format!("{:.3}", s.mean_error_width()),
            ]);
            if let Some(fit) = &s.fit {
                manifest.push_fit(format!("{}/{}", s.benchmark, arch.label()), fit);
            }
            for p in &s.points {
                csv.row(vec![
                    s.benchmark.clone(),
                    arch.label().to_string(),
                    format!("{:.2}", p.actual_ns),
                    format!("{:.5}", p.rel_perf),
                    format!("{:.5}", p.rel_min),
                    format!("{:.5}", p.rel_max),
                ]);
                // Label by the requested target: neighbouring small targets
                // can calibrate to the same actual ns, and the gate rejects
                // duplicate labels.
                manifest.push_cell(
                    format!("{}/{}/t={:.0}", s.benchmark, arch.label(), p.target_ns),
                    p.rel_perf,
                );
            }
        }
    }
    println!("{}", table.markdown());
    println!("Paper shape: spark is most sensitive on both architectures; xalan is");
    println!("second on ARM but unstable on POWER (largest stability value).");
    let path = results_dir().join("fig5_openjdk.csv");
    csv.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());

    manifest.telemetry = Some(exec.telemetry());
    let manifest_path = manifest.write(runs_dir()).expect("write manifest");
    println!("wrote {}", manifest_path.display());
    if let Some(path) = cli_trace() {
        exec.write_trace(&path).expect("write trace");
        println!("wrote {}", path.display());
    }
    println!("[wmm-harness] {}", exec.summary());
}
