//! Fig. 6: performance impact on the spark benchmark of the cost function
//! injected into each *elemental* memory barrier in turn, on both
//! architectures. StoreStore dominates on both; the ARM implementation's
//! defensiveness shows as high LoadLoad/LoadStore sensitivity, while POWER
//! relies on StoreStore/StoreLoad.

use wmm_bench::{cli_config, fig6_spark_elementals, results_dir};
use wmm_sim::arch::Arch;
use wmmbench::report::Table;

const PAPER_ARM: [(&str, f64); 4] = [
    ("LoadLoad", 0.00580),
    ("LoadStore", 0.00592),
    ("StoreLoad", 0.00507),
    ("StoreStore", 0.00885),
];
const PAPER_POWER: [(&str, f64); 4] = [
    ("LoadLoad", 0.00102),
    ("LoadStore", 0.00743),
    ("StoreLoad", 0.00093),
    ("StoreStore", 0.01333),
];

fn main() {
    let cfg = cli_config();
    println!("Fig. 6 — spark sensitivity per elemental barrier");
    let mut table = Table::new(&["arch", "barrier", "k", "k_paper"]);
    let mut csv = Table::new(&["arch", "barrier", "cost_ns", "rel_perf"]);
    for (arch, paper) in [(Arch::ArmV8, PAPER_ARM), (Arch::Power7, PAPER_POWER)] {
        for (e, s) in fig6_spark_elementals(arch, cfg) {
            let p = paper
                .iter()
                .find(|(n, _)| *n == e.name())
                .map(|(_, k)| *k)
                .unwrap_or(f64::NAN);
            let k = s.fit.as_ref().map(|f| f.k).unwrap_or(f64::NAN);
            table.row(vec![
                arch.label().to_string(),
                e.name().to_string(),
                format!("{k:.5}"),
                format!("{p:.5}"),
            ]);
            for pt in &s.points {
                csv.row(vec![
                    arch.label().to_string(),
                    e.name().to_string(),
                    format!("{:.2}", pt.actual_ns),
                    format!("{:.5}", pt.rel_perf),
                ]);
            }
        }
    }
    println!("{}", table.markdown());
    let path = results_dir().join("fig6_spark_elementals.csv");
    csv.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
}
