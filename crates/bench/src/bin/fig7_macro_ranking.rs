//! Fig. 7: sum of relative performance for all benchmarks, aggregated per
//! memory-model macro (1024-iteration cost function injected into each macro
//! in turn). Lower sum = bigger impact. The paper finds `smp_mb`,
//! `read_once` and `read_barrier_depends` have the most impact.
//!
//! Runs through the wmm-harness parallel executor (`--threads N`,
//! `--cache`, `--progress`, `--trace <path>`) and writes a run manifest to
//! `results/runs/fig7_macro_ranking.json` for the `bench_gate` regression
//! gate. Output is bit-identical regardless of worker count.

use wmm_bench::{cli_config, cli_executor, cli_trace, linux_ranking_with, results_dir, runs_dir};
use wmm_harness::RunManifest;
use wmmbench::report::Table;

fn main() {
    let cfg = cli_config();
    let exec = cli_executor();
    let m = linux_ranking_with(cfg, &exec);
    println!(
        "Fig. 7 — Linux macro impact ranking ({} data points)",
        m.data_points()
    );
    let mut manifest = RunManifest::new("fig7_macro_ranking", "arm");
    for (pi, mac) in m.paths.iter().enumerate() {
        for (bi, bench) in m.benchmarks.iter().enumerate() {
            manifest.push_cell(format!("{}/{bench}", mac.name()), m.rel_perf[pi][bi]);
        }
    }
    let mut t = Table::new(&["macro", "sum_rel_perf"]);
    for (mac, sum) in m.by_path_impact() {
        println!("  {:<24} {sum:6.2}", mac.name());
        t.row(vec![mac.name().to_string(), format!("{sum:.3}")]);
    }
    println!();
    println!("paper: smp_mb, read_once and read_barrier_depends have the most impact;");
    println!("the mandatory mb/rmb/wmb barriers the least.");
    let path = results_dir().join("fig7_macro_ranking.csv");
    t.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());

    manifest.telemetry = Some(exec.telemetry());
    let manifest_path = manifest.write(runs_dir()).expect("write manifest");
    println!("wrote {}", manifest_path.display());
    if let Some(path) = cli_trace() {
        exec.write_trace(&path).expect("write trace");
        println!("wrote {}", path.display());
    }
    println!("[wmm-harness] {}", exec.summary());
}
