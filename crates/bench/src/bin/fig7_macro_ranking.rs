//! Fig. 7: sum of relative performance for all benchmarks, aggregated per
//! memory-model macro (1024-iteration cost function injected into each macro
//! in turn). Lower sum = bigger impact. The paper finds `smp_mb`,
//! `read_once` and `read_barrier_depends` have the most impact.

use wmm_bench::{cli_config, linux_ranking, results_dir};
use wmmbench::report::Table;

fn main() {
    let cfg = cli_config();
    let m = linux_ranking(cfg);
    println!(
        "Fig. 7 — Linux macro impact ranking ({} data points)",
        m.data_points()
    );
    let mut t = Table::new(&["macro", "sum_rel_perf"]);
    for (mac, sum) in m.by_path_impact() {
        println!("  {:<24} {sum:6.2}", mac.name());
        t.row(vec![mac.name().to_string(), format!("{sum:.3}")]);
    }
    println!();
    println!("paper: smp_mb, read_once and read_barrier_depends have the most impact;");
    println!("the mandatory mb/rmb/wmb barriers the least.");
    let path = results_dir().join("fig7_macro_ranking.csv");
    t.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
}
