//! Fig. 8: sum of relative performance aggregated across all macro
//! modifications, per benchmark. The microbenchmarks (netperf, lmbench,
//! ebizzy) are most sensitive; the JVM benchmarks (h2, spark) are almost
//! completely insensitive to kernel macros — they "rely heavily on the JVM
//! to coordinate their concurrency and thus have very few interactions with
//! the kernel."

use wmm_bench::{cli_config, linux_ranking, results_dir};
use wmmbench::report::Table;

const PAPER_ORDER: [&str; 9] = [
    "netperf_tcp",
    "lmbench",
    "netperf_udp",
    "ebizzy",
    "xalan",
    "osm_stack",
    "osm_tiles",
    "kernel_compile",
    "spark",
];

fn main() {
    let cfg = cli_config();
    let m = linux_ranking(cfg);
    println!("Fig. 8 — Linux benchmark sensitivity ranking");
    let mut t = Table::new(&["benchmark", "sum_rel_perf", "paper_rank"]);
    for (b, sum) in m.by_benchmark_sensitivity() {
        let rank = PAPER_ORDER
            .iter()
            .position(|n| *n == b)
            .map(|i| (i + 1).to_string())
            .unwrap_or_else(|| "10/11 (h2 last)".to_string());
        println!("  {b:<16} {sum:6.2}   (paper rank {rank})");
        t.row(vec![b, format!("{sum:.3}"), rank]);
    }
    println!();
    println!("paper order: netperf_tcp, lmbench, netperf_udp, ebizzy, xalan,");
    println!("osm_stack (avg), osm_stack (max), osm_tiles, kernel_compile, spark, h2");
    let path = results_dir().join("fig8_bench_ranking.csv");
    t.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
}
