//! Fig. 9: sensitivity analysis of the six most interesting kernel
//! benchmarks with respect to the `read_barrier_depends` code path.
//!
//! Runs through the wmm-harness parallel executor (`--threads N`,
//! `--cache`, `--progress`, `--trace <path>`) and writes a run manifest to
//! `results/runs/fig9_rbd_sensitivity.json` for the `bench_gate`
//! regression gate. Output is bit-identical regardless of worker count.

use wmm_bench::{cli_config, cli_executor, cli_trace, fig9_rbd_sweeps_with, results_dir, runs_dir};
use wmm_harness::RunManifest;
use wmmbench::report::{ascii_sweep, Table};

const PAPER: [(&str, f64); 6] = [
    ("ebizzy", 0.00106),
    ("xalan", 0.00038),
    ("netperf_udp", 0.00943),
    ("osm_stack", 0.00019),
    ("lmbench", 0.00525),
    ("netperf_tcp", 0.00355),
];

fn main() {
    let cfg = cli_config();
    let exec = cli_executor();
    println!("Fig. 9 — read_barrier_depends sensitivity");
    let sweeps = fig9_rbd_sweeps_with(cfg, &exec);
    let mut t = Table::new(&["benchmark", "k", "k_err_pct", "k_paper"]);
    let mut csv = Table::new(&["benchmark", "cost_ns", "rel_perf", "rel_min", "rel_max"]);
    let mut manifest = RunManifest::new("fig9_rbd_sensitivity", "arm");
    for s in &sweeps {
        let paper = PAPER
            .iter()
            .find(|(n, _)| *n == s.benchmark)
            .map(|(_, k)| *k)
            .unwrap_or(f64::NAN);
        let (k, err) = s
            .fit
            .as_ref()
            .map(|f| (f.k, f.relative_error() * 100.0))
            .unwrap_or((f64::NAN, f64::NAN));
        t.row(vec![
            s.benchmark.clone(),
            format!("{k:.5}"),
            format!("{err:.0}"),
            format!("{paper:.5}"),
        ]);
        if let Some(fit) = &s.fit {
            manifest.push_fit(&s.benchmark, fit);
        }
        for p in &s.points {
            csv.row(vec![
                s.benchmark.clone(),
                format!("{:.2}", p.actual_ns),
                format!("{:.5}", p.rel_perf),
                format!("{:.5}", p.rel_min),
                format!("{:.5}", p.rel_max),
            ]);
            // Label by the requested target, not the calibrated actual:
            // neighbouring small targets can calibrate to the same actual
            // ns and the gate rejects duplicate labels.
            manifest.push_cell(format!("{}/t={:.0}", s.benchmark, p.target_ns), p.rel_perf);
        }
    }
    println!("{}", t.markdown());
    for s in &sweeps {
        println!("{}", ascii_sweep(s, 40));
    }
    println!("paper shape: netperf_udp most sensitive, lmbench next, the real-world");
    println!("applications (osm_stack, xalan) very low; netperf_tcp sensitive but unstable.");
    let path = results_dir().join("fig9_rbd.csv");
    csv.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());

    manifest.telemetry = Some(exec.telemetry());
    let manifest_path = manifest.write(runs_dir()).expect("write manifest");
    println!("wrote {}", manifest_path.display());
    if let Some(path) = cli_trace() {
        exec.write_trace(&path).expect("write trace");
        println!("wrote {}", path.display());
    }
    println!("[wmm-harness] {}", exec.summary());
}
