//! fig_dstruct — the data-structure reclamation campaign: hazard-protect
//! sensitivity sweeps plus the NR/EBR/HP-dmb/HP-asym scheme ranking on the
//! Treiber-stack and Harris-Michael-list workloads.
//!
//! Runs through the wmm-harness parallel executor (`--threads N`,
//! `--cache`, `--progress`, `--trace <path>`) and writes a run manifest to
//! `results/runs/fig_dstruct.json` for the `bench_gate` regression gate.
//! Output is bit-identical regardless of worker count.
//!
//! Exit is non-zero if the headline result does not hold: on the
//! protect-dense workloads the per-protect scheme (`hp-dmb`) must lose to
//! at least one amortising scheme (`ebr` or `hp-asym`) — that is the
//! Eq. 1 prediction the platform exists to demonstrate (frequent cheap
//! sites beat rare expensive ones only until the per-site fence dominates).

use std::process::ExitCode;

use wmm_bench::{
    cli_config, cli_executor, cli_trace, fig_dstruct_manifest_with, results_dir, runs_dir,
};
use wmmbench::report::{ascii_sweep, Table};

fn main() -> ExitCode {
    let cfg = cli_config();
    let exec = cli_executor();
    println!("fig_dstruct — lock-free reclamation schemes under the methodology");
    let (mut manifest, sweeps, ranking) = fig_dstruct_manifest_with(cfg, &exec);

    let mut t = Table::new(&["benchmark", "k(hp_protect)", "k_err_pct"]);
    let mut csv = Table::new(&["benchmark", "cost_ns", "rel_perf", "rel_min", "rel_max"]);
    for s in &sweeps {
        let (k, err) = s
            .fit
            .as_ref()
            .map(|f| (f.k, f.relative_error() * 100.0))
            .unwrap_or((f64::NAN, f64::NAN));
        t.row(vec![
            s.benchmark.clone(),
            format!("{k:.5}"),
            format!("{err:.0}"),
        ]);
        for p in &s.points {
            csv.row(vec![
                s.benchmark.clone(),
                format!("{:.2}", p.actual_ns),
                format!("{:.5}", p.rel_perf),
                format!("{:.5}", p.rel_min),
                format!("{:.5}", p.rel_max),
            ]);
        }
    }
    println!("{}", t.markdown());
    for s in &sweeps {
        println!("{}", ascii_sweep(s, 40));
    }

    let mut rank = Table::new(&["scheme", "benchmark", "rel vs nr", "min", "max"]);
    for (scheme, deltas) in &ranking {
        for d in deltas {
            rank.row(vec![
                scheme.clone(),
                d.bench.clone(),
                format!("{:.4}", d.cmp.ratio),
                format!("{:.4}", d.cmp.min),
                format!("{:.4}", d.cmp.max),
            ]);
        }
    }
    println!("{}", rank.markdown());
    println!("ratio < 1 = slower than the unsafe no-reclamation baseline;");
    println!("expected order on traversal-heavy workloads: nr > hp-asym, ebr > hp-dmb.");

    let path = results_dir().join("fig_dstruct.csv");
    csv.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());

    manifest.telemetry = Some(exec.telemetry());
    let manifest_path = manifest.write(runs_dir()).expect("write manifest");
    println!("wrote {}", manifest_path.display());
    if let Some(path) = cli_trace() {
        exec.write_trace(&path).expect("write trace");
        println!("wrote {}", path.display());
    }
    println!("[wmm-harness] {}", exec.summary());

    // The acceptance check: somewhere in the suite an amortising scheme
    // must beat the per-protect fence.
    let ratio = |scheme: &str, bench: &str| {
        ranking
            .iter()
            .find(|(s, _)| s == scheme)
            .and_then(|(_, ds)| ds.iter().find(|d| d.bench == bench))
            .map(|d| d.cmp.ratio)
            .unwrap_or(f64::NAN)
    };
    let benches: Vec<String> = ranking
        .first()
        .map(|(_, ds)| ds.iter().map(|d| d.bench.clone()).collect())
        .unwrap_or_default();
    let amortising_wins = benches.iter().any(|b| {
        let dmb = ratio("hp-dmb", b);
        ratio("hp-asym", b) > dmb || ratio("ebr", b) > dmb
    });
    if amortising_wins {
        println!("fig_dstruct: OK (an amortising scheme beats hp-dmb)");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "fig_dstruct ERROR: hp-dmb beats both amortising schemes on every benchmark \
             — the reclamation trade-off collapsed"
        );
        ExitCode::FAILURE
    }
}
