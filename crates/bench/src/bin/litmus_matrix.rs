//! Validation artefact: run the full litmus suite under every memory model
//! and print the expected-vs-observed allow/forbid matrix. This is the
//! semantic ground truth behind the fence kinds the timing model prices.

use wmm_litmus::suite::run_full_suite;
use wmmbench::report::Table;

fn main() {
    println!("Litmus validation matrix (operational model, exhaustive DFS)");
    let rows = run_full_suite();
    let mut t = Table::new(&["test", "model", "expected", "observed", "ok"]);
    let mut failures = 0;
    for (name, model, expected, observed) in &rows {
        let fmt = |b: bool| if b { "allowed" } else { "forbidden" };
        if expected != observed {
            failures += 1;
        }
        t.row(vec![
            name.clone(),
            model.label().to_string(),
            fmt(*expected).to_string(),
            fmt(*observed).to_string(),
            if expected == observed { "✓" } else { "✗" }.to_string(),
        ]);
    }
    println!("{}", t.markdown());
    println!("{} checks, {} failures", rows.len(), failures);
    let path = wmm_bench::results_dir().join("litmus_matrix.csv");
    t.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
    if failures > 0 {
        std::process::exit(1);
    }
}
