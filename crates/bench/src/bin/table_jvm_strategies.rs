//! §4.2.1 in-text results: nop-injection overhead, the StoreStore
//! single-barrier modifications with their Eq. 2 cost estimates, the
//! sync/lwsync microbenchmarks, JDK9 load-acquire/store-release vs JDK8
//! barriers, and the DMB-elimination locking patch.

use wmm_bench::{
    cli_config, fence_microbenchmarks, jvm_nop_overhead, lasr_vs_barriers,
    locking_patch_experiment, results_dir, storestore_experiment,
};
use wmm_sim::arch::Arch;
use wmmbench::report::Table;

fn main() {
    let cfg = cli_config();
    let mut out = Table::new(&["experiment", "measured", "paper"]);

    println!("§4.2.1 — OpenJDK fencing-strategy experiments\n");

    println!("-- fence microbenchmarks --");
    for (l, ns) in fence_microbenchmarks() {
        println!("  {l:<16} {ns:5.1} ns");
        out.row(vec![
            format!("micro {l}"),
            format!("{ns:.1} ns"),
            match l.as_str() {
                "power sync" => "18.9 ns".into(),
                "power lwsync" => "6.1 ns".into(),
                _ => "indistinguishable".into(),
            },
        ]);
    }
    println!("  (paper: sync 18.9 ns, lwsync 6.1 ns; dmb variants indistinguishable)\n");

    println!("-- nop injection into every elemental barrier --");
    for arch in [Arch::ArmV8, Arch::Power7] {
        let rows = jvm_nop_overhead(arch, cfg);
        let mean = rows.iter().map(|r| r.cmp.percent_change()).sum::<f64>() / rows.len() as f64;
        let worst = rows
            .iter()
            .min_by(|a, b| a.cmp.ratio.partial_cmp(&b.cmp.ratio).unwrap())
            .unwrap();
        println!(
            "  {}: mean {mean:+.1}%, worst {} {:+.1}%",
            arch.label(),
            worst.bench,
            worst.cmp.percent_change()
        );
        out.row(vec![
            format!("nop overhead {}", arch.label()),
            format!("mean {mean:+.1}%"),
            if arch == Arch::ArmV8 {
                "mean -1.9%, peak -4.5% (h2)".into()
            } else {
                "mean -0.7%".into()
            },
        ]);
    }
    println!("  (paper: ARM mean -1.9% peak 4.5% h2; POWER mean -0.7%)\n");

    println!("-- StoreStore modification on spark --");
    for arch in [Arch::ArmV8, Arch::Power7] {
        let (cmp, k, a) = storestore_experiment(arch, cfg);
        let (mod_name, paper) = match arch {
            Arch::ArmV8 => ("dmb ishst -> dmb ish", "-0.7%, a = 1.8 ns"),
            Arch::Power7 => ("lwsync -> sync", "-12.5%, a = 11.7 ns"),
        };
        println!(
            "  {} ({mod_name}): {:+.1}%  k={k:.5}  a={:.1} ns   (paper {paper})",
            arch.label(),
            cmp.percent_change(),
            a.unwrap_or(f64::NAN),
        );
        out.row(vec![
            format!("StoreStore {}", arch.label()),
            format!(
                "{:+.1}%, a = {:.1} ns",
                cmp.percent_change(),
                a.unwrap_or(f64::NAN)
            ),
            paper.into(),
        ]);
    }
    println!();

    println!("-- JDK9 ld.acq/st.rel vs JDK8 barriers (ARM) --");
    for d in lasr_vs_barriers(cfg) {
        let sig = if d.cmp.significant() {
            ""
        } else {
            " (not significant)"
        };
        println!("  {:<11} {:+.1}%{sig}", d.bench, d.cmp.percent_change());
    }
    println!("  (paper: xalan +2.9, sunflow +3.0, h2 -0.3, spark -0.5, tomcat -1.7, rest n.s.;");
    println!("   net balance favours load-acquire/store-release)\n");

    println!("-- DMB-elimination locking patch on spark (ARM) --");
    for (mode, cmp) in locking_patch_experiment(cfg) {
        println!("  with {mode:<9} {:+.1}%", cmp.percent_change());
        out.row(vec![
            format!("locking patch ({mode})"),
            format!("{:+.1}%", cmp.percent_change()),
            if mode == "la/sr" {
                "+2.9%".into()
            } else {
                "-1%".into()
            },
        ]);
    }
    println!("  (paper: +2.9% with la/sr, -1% with barriers)");

    let path = results_dir().join("table_jvm_strategies.csv");
    out.write_csv(&path).expect("write csv");
    println!("\nwrote {}", path.display());
}
