//! §4.3: the nop-padded base-case kernel vs the truly unmodified kernel.
//! The paper observes a mean 1.9% drop with the largest (6.6%) in netperf;
//! all further kernel measurements are made against the padded kernel.

use wmm_bench::{cli_config, kernel_nop_overhead, results_dir};
use wmmbench::report::Table;

fn main() {
    let cfg = cli_config();
    println!("§4.3 — kernel nop-padding overhead vs unmodified kernel");
    let rows = kernel_nop_overhead(cfg);
    let mut t = Table::new(&["benchmark", "rel_perf_pct"]);
    for d in &rows {
        println!("  {:<16} {:+.1}%", d.bench, d.cmp.percent_change());
        t.row(vec![
            d.bench.clone(),
            format!("{:+.2}", d.cmp.percent_change()),
        ]);
    }
    let mean: f64 = rows.iter().map(|r| r.cmp.percent_change()).sum::<f64>() / rows.len() as f64;
    println!("  mean {mean:+.1}%   (paper: mean -1.9%, worst netperf -6.6%)");
    let path = results_dir().join("table_kernel_nop.csv");
    t.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
}
