//! §4.3.1: equivalent per-invocation cost `a` (Eq. 2) of each rbd strategy,
//! from the lmbench microbenchmark suite vs the mean of the other
//! benchmarks. The headline divergences: `ctrl` looks cheap in vitro but
//! costs more in vivo (branch-predictor pressure), while `dmb ishld` looks
//! expensive in vitro but is nearly free in vivo (quiet load queues) — "the
//! dmb ishld results support it having complex behaviour, and not simply
//! mapping to dmb ish." `ctrl+isb` is the same everywhere.

use wmm_bench::{cli_config, rbd_cost_estimates, results_dir};
use wmmbench::report::Table;

fn main() {
    let cfg = cli_config();
    println!("§4.3.1 — rbd strategy cost estimates (Eq. 2), ns per invocation");
    let paper = [
        ("ctrl", 4.6, 10.1),
        ("ctrl+isb", 24.5, 24.5),
        ("dmb ishld", 10.7, 1.8),
        ("dmb ish", 11.0, 10.7),
        ("la/sr", 21.7, 15.9),
    ];
    let mut t = Table::new(&[
        "strategy",
        "a_lmbench",
        "a_others",
        "paper_lmbench",
        "paper_others",
    ]);
    for (s, a_lm, a_others) in rbd_cost_estimates(cfg) {
        let (p_lm, p_ot) = paper
            .iter()
            .find(|(n, _, _)| *n == s.label())
            .map(|(_, a, b)| (*a, *b))
            .unwrap_or((f64::NAN, f64::NAN));
        t.row(vec![
            s.label().to_string(),
            format!("{a_lm:.1}"),
            format!("{a_others:.1}"),
            format!("{p_lm:.1}"),
            format!("{p_ot:.1}"),
        ]);
    }
    println!("{}", t.markdown());
    println!("key shapes: ctrl micro << macro; dmb ishld micro >> macro; ctrl+isb equal.");
    let path = results_dir().join("table_rbd_costs.csv");
    t.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
}
