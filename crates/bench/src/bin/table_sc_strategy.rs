//! §5 extension: the SC-preserving fencing strategy on the kernel suite —
//! every memory-model macro lowered to a full `dmb ish`, including the
//! `READ_ONCE`/`WRITE_ONCE` annotations. The paper relates its results to
//! Marino et al.'s SC-preserving compiler: a 34% maximum slowdown on x86,
//! with a 3.8% mean the paper judges "unlikely to be replicated" on weaker
//! architectures.

use wmm_bench::{cli_config, results_dir, sc_strategy_experiment};
use wmmbench::report::Table;

fn main() {
    let cfg = cli_config();
    println!("§5 — SC-preserving fencing strategy on the ARMv8 kernel");
    let rows = sc_strategy_experiment(cfg);
    let mut t = Table::new(&["benchmark", "rel_perf_pct"]);
    for d in &rows {
        println!("  {:<16} {:+.1}%", d.bench, d.cmp.percent_change());
        t.row(vec![
            d.bench.clone(),
            format!("{:+.2}", d.cmp.percent_change()),
        ]);
    }
    let mean: f64 = rows.iter().map(|r| r.cmp.percent_change()).sum::<f64>() / rows.len() as f64;
    let worst = rows
        .iter()
        .map(|r| r.cmp.percent_change())
        .fold(f64::INFINITY, f64::min);
    println!("  mean {mean:+.1}%, worst {worst:+.1}%");
    println!();
    println!("Marino et al. (x86/TSO): max slowdown 34%, mean 3.8%. The paper: ARM may");
    println!("fit within the 34% bound, but the 3.8% mean 'is unlikely to be replicated'.");
    let path = results_dir().join("table_sc_strategy.csv");
    t.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
}
