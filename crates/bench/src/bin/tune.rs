//! Calibration harness: prints measured sensitivities next to the paper's
//! published values, for tuning workload profiles. Not a paper artefact —
//! use the `fig*` binaries for those.

use wmm_bench::{fig5_openjdk_sweeps, fig6_spark_elementals, fig9_rbd_sweeps, ExpConfig};
use wmm_sim::arch::Arch;

fn main() {
    let cfg = if std::env::args().any(|a| a == "--full") {
        ExpConfig::full()
    } else {
        ExpConfig {
            scale: 0.5,
            run: wmmbench::runner::RunConfig {
                samples: 4,
                warmups: 1,
                base_seed: 0x1CEB00DA,
            },
        }
    };

    let paper_fig5 = [
        ("h2", 0.00339, 0.00251),
        ("lusearch", 0.00213, 0.00118),
        ("spark", 0.00870, 0.01227),
        ("sunflow", 0.00187, 0.00164),
        ("tomcat", 0.00250, 0.00397),
        ("tradebeans", 0.00262, 0.00385),
        ("tradesoap", 0.00238, 0.00314),
        ("xalan", 0.00606, 0.00152),
    ];

    println!("== Fig. 5: all-barrier sensitivity (measured vs paper) ==");
    for arch in [Arch::ArmV8, Arch::Power7] {
        println!("-- {} --", arch.label());
        let sweeps = fig5_openjdk_sweeps(arch, cfg);
        for s in sweeps {
            let paper = paper_fig5
                .iter()
                .find(|(n, _, _)| *n == s.benchmark)
                .map(|(_, a, p)| if arch == Arch::ArmV8 { *a } else { *p })
                .unwrap_or(f64::NAN);
            match &s.fit {
                Some(f) => println!(
                    "  {:<11} k={:.5} (paper {:.5})  ±{:.0}%  err-width {:.3}",
                    s.benchmark,
                    f.k,
                    paper,
                    f.relative_error() * 100.0,
                    s.mean_error_width()
                ),
                None => println!("  {:<11} fit failed (paper {:.5})", s.benchmark, paper),
            }
        }
    }

    println!("== Fig. 6: spark per-elemental (measured vs paper) ==");
    let paper_fig6_arm = [0.00580, 0.00592, 0.00507, 0.00885];
    let paper_fig6_pow = [0.00102, 0.00743, 0.00093, 0.01333];
    for (arch, paper) in [
        (Arch::ArmV8, paper_fig6_arm),
        (Arch::Power7, paper_fig6_pow),
    ] {
        println!("-- {} --", arch.label());
        for ((e, s), p) in fig6_spark_elementals(arch, cfg).iter().zip(paper) {
            match &s.fit {
                Some(f) => println!("  {:<10} k={:.5} (paper {:.5})", e.name(), f.k, p),
                None => println!("  {:<10} fit failed (paper {:.5})", e.name(), p),
            }
        }
    }

    println!("== Fig. 9: rbd sensitivity (measured vs paper) ==");
    let paper_fig9 = [
        ("ebizzy", 0.00106),
        ("xalan", 0.00038),
        ("netperf_udp", 0.00943),
        ("osm_stack", 0.00019),
        ("lmbench", 0.00525),
        ("netperf_tcp", 0.00355),
    ];
    for s in fig9_rbd_sweeps(cfg) {
        let paper = paper_fig9
            .iter()
            .find(|(n, _)| *n == s.benchmark)
            .map(|(_, k)| *k)
            .unwrap_or(f64::NAN);
        match &s.fit {
            Some(f) => println!(
                "  {:<12} k={:.5} (paper {:.5})  ±{:.0}%",
                s.benchmark,
                f.k,
                paper,
                f.relative_error() * 100.0
            ),
            None => println!("  {:<12} fit failed (paper {:.5})", s.benchmark, paper),
        }
    }
}
