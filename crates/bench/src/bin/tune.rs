//! Calibration harness: prints measured values next to the paper's
//! published numbers, for tuning workload profiles. Not a paper artefact —
//! use the `fig*` binaries for those.
//!
//! Modes (positional argument):
//!
//! - `sweeps` (default): the Fig. 5/6/9 sensitivity fits.
//! - `intext`: the §4.2.1/§4.3.1 in-text experiments and Fig. 7/8/10 shapes.
//! - `all`: both.
//!
//! `--full` switches from the reduced tuning protocol to the paper's full
//! sampling protocol.

use wmm_bench::*;
use wmm_sim::arch::Arch;

fn sweeps(cfg: ExpConfig) {
    let paper_fig5 = [
        ("h2", 0.00339, 0.00251),
        ("lusearch", 0.00213, 0.00118),
        ("spark", 0.00870, 0.01227),
        ("sunflow", 0.00187, 0.00164),
        ("tomcat", 0.00250, 0.00397),
        ("tradebeans", 0.00262, 0.00385),
        ("tradesoap", 0.00238, 0.00314),
        ("xalan", 0.00606, 0.00152),
    ];

    println!("== Fig. 5: all-barrier sensitivity (measured vs paper) ==");
    for arch in [Arch::ArmV8, Arch::Power7] {
        println!("-- {} --", arch.label());
        let sweeps = fig5_openjdk_sweeps(arch, cfg);
        for s in sweeps {
            let paper = paper_fig5
                .iter()
                .find(|(n, _, _)| *n == s.benchmark)
                .map(|(_, a, p)| if arch == Arch::ArmV8 { *a } else { *p })
                .unwrap_or(f64::NAN);
            match &s.fit {
                Some(f) => println!(
                    "  {:<11} k={:.5} (paper {:.5})  ±{:.0}%  err-width {:.3}",
                    s.benchmark,
                    f.k,
                    paper,
                    f.relative_error() * 100.0,
                    s.mean_error_width()
                ),
                None => println!("  {:<11} fit failed (paper {:.5})", s.benchmark, paper),
            }
        }
    }

    println!("== Fig. 6: spark per-elemental (measured vs paper) ==");
    let paper_fig6_arm = [0.00580, 0.00592, 0.00507, 0.00885];
    let paper_fig6_pow = [0.00102, 0.00743, 0.00093, 0.01333];
    for (arch, paper) in [
        (Arch::ArmV8, paper_fig6_arm),
        (Arch::Power7, paper_fig6_pow),
    ] {
        println!("-- {} --", arch.label());
        for ((e, s), p) in fig6_spark_elementals(arch, cfg).iter().zip(paper) {
            match &s.fit {
                Some(f) => println!("  {:<10} k={:.5} (paper {:.5})", e.name(), f.k, p),
                None => println!("  {:<10} fit failed (paper {:.5})", e.name(), p),
            }
        }
    }

    println!("== Fig. 9: rbd sensitivity (measured vs paper) ==");
    let paper_fig9 = [
        ("ebizzy", 0.00106),
        ("xalan", 0.00038),
        ("netperf_udp", 0.00943),
        ("osm_stack", 0.00019),
        ("lmbench", 0.00525),
        ("netperf_tcp", 0.00355),
    ];
    for s in fig9_rbd_sweeps(cfg) {
        let paper = paper_fig9
            .iter()
            .find(|(n, _)| *n == s.benchmark)
            .map(|(_, k)| *k)
            .unwrap_or(f64::NAN);
        match &s.fit {
            Some(f) => println!(
                "  {:<12} k={:.5} (paper {:.5})  ±{:.0}%",
                s.benchmark,
                f.k,
                paper,
                f.relative_error() * 100.0
            ),
            None => println!("  {:<12} fit failed (paper {:.5})", s.benchmark, paper),
        }
    }
}

fn intext(cfg: ExpConfig) {
    println!("== fence microbenchmarks ==");
    for (l, ns) in fence_microbenchmarks() {
        println!("  {l:<14} {ns:6.1} ns");
    }

    println!("== StoreStore experiments (spark) ==");
    for arch in [Arch::ArmV8, Arch::Power7] {
        let (cmp, k, a) = storestore_experiment(arch, cfg);
        println!(
            "  {}: rel perf {:.5} ({:+.1}%)  k={:.5}  a={:.1} ns   (paper: arm -0.7%/1.8ns, power -12.5%/11.7ns)",
            arch.label(),
            cmp.ratio,
            cmp.percent_change(),
            k,
            a.unwrap_or(f64::NAN)
        );
    }

    println!("== nop overhead (JVM) ==");
    for arch in [Arch::ArmV8, Arch::Power7] {
        let rows = jvm_nop_overhead(arch, cfg);
        let mean: f64 =
            rows.iter().map(|r| r.cmp.percent_change()).sum::<f64>() / rows.len() as f64;
        let worst = rows
            .iter()
            .min_by(|a, b| a.cmp.ratio.partial_cmp(&b.cmp.ratio).unwrap())
            .unwrap();
        println!(
            "  {}: mean {:+.1}% worst {} {:+.1}%   (paper: arm mean -1.9% peak h2 -4.5%; power mean -0.7%)",
            arch.label(),
            mean,
            worst.bench,
            worst.cmp.percent_change()
        );
    }

    println!("== la/sr vs barriers (ARM) ==");
    for d in lasr_vs_barriers(cfg) {
        println!("  {:<11} {:+.1}%", d.bench, d.cmp.percent_change());
    }
    println!("  (paper: xalan +2.9 sunflow +3.0 h2 -0.3 spark -0.5 tomcat -1.7, rest ~0)");

    println!("== locking patch (spark, ARM) ==");
    for (mode, cmp) in locking_patch_experiment(cfg) {
        println!(
            "  {mode:<9} {:+.1}%   (paper: la/sr +2.9%, barriers -1%)",
            cmp.percent_change()
        );
    }

    println!("== kernel nop overhead ==");
    let rows = kernel_nop_overhead(cfg);
    let mean: f64 = rows.iter().map(|r| r.cmp.percent_change()).sum::<f64>() / rows.len() as f64;
    for d in &rows {
        println!("  {:<14} {:+.1}%", d.bench, d.cmp.percent_change());
    }
    println!("  mean {mean:+.1}%   (paper: mean -1.9%, worst netperf -6.6%)");

    println!("== Fig 10: rbd strategies (rel perf %) ==");
    for (s, deltas) in fig10_rbd_strategies(cfg) {
        print!("  {:<10}", s.label());
        for d in &deltas {
            print!(" {}:{:+.1}%", d.bench, d.cmp.percent_change());
        }
        println!();
    }

    println!("== rbd cost estimates (a, ns) ==");
    println!("  paper: ctrl 4.6/10.1  ctrl+isb 24.5/24.5  ishld 10.7/1.8  ish 11.0/10.7  la-sr 21.7/15.9");
    for (s, a_lm, a_others) in rbd_cost_estimates(cfg) {
        println!(
            "  {:<10} lmbench {a_lm:6.1}  others {a_others:6.1}",
            s.label()
        );
    }

    println!("== Fig 7/8 rankings ==");
    let m = linux_ranking(cfg);
    println!("  data points: {}", m.data_points());
    println!("  by macro impact (worst first):");
    for (mac, sum) in m.by_path_impact().iter().take(5) {
        println!("    {:<22} {sum:.2}", mac.name());
    }
    println!("  by benchmark sensitivity (most first):");
    for (b, sum) in m.by_benchmark_sensitivity() {
        println!("    {b:<14} {sum:.2}");
    }
}

fn main() {
    let cfg = if cli_flag("--full") {
        ExpConfig::full()
    } else {
        ExpConfig {
            scale: 0.5,
            run: wmmbench::runner::RunConfig {
                samples: 4,
                warmups: 1,
                base_seed: 0x1CEB00DA,
            },
        }
    };

    let mode = std::env::args()
        .nth(1)
        .filter(|a| !a.starts_with("--"))
        .unwrap_or_else(|| "sweeps".to_string());
    match mode.as_str() {
        "sweeps" => sweeps(cfg),
        "intext" => intext(cfg),
        "all" => {
            sweeps(cfg);
            intext(cfg);
        }
        other => {
            eprintln!("unknown mode `{other}`; expected sweeps|intext|all");
            std::process::exit(2);
        }
    }
}
