//! Second calibration harness: in-text experiments (§4.2.1, §4.3.1) and
//! Fig. 10 shapes vs paper values.

use wmm_bench::*;
use wmm_sim::arch::Arch;

fn main() {
    let cfg = ExpConfig {
        scale: 0.5,
        run: wmmbench::runner::RunConfig {
            samples: 4,
            warmups: 1,
            base_seed: 0x1CEB00DA,
        },
    };

    println!("== fence microbenchmarks ==");
    for (l, ns) in fence_microbenchmarks() {
        println!("  {l:<14} {ns:6.1} ns");
    }

    println!("== StoreStore experiments (spark) ==");
    for arch in [Arch::ArmV8, Arch::Power7] {
        let (cmp, k, a) = storestore_experiment(arch, cfg);
        println!(
            "  {}: rel perf {:.5} ({:+.1}%)  k={:.5}  a={:.1} ns   (paper: arm -0.7%/1.8ns, power -12.5%/11.7ns)",
            arch.label(),
            cmp.ratio,
            cmp.percent_change(),
            k,
            a.unwrap_or(f64::NAN)
        );
    }

    println!("== nop overhead (JVM) ==");
    for arch in [Arch::ArmV8, Arch::Power7] {
        let rows = jvm_nop_overhead(arch, cfg);
        let mean: f64 =
            rows.iter().map(|r| r.cmp.percent_change()).sum::<f64>() / rows.len() as f64;
        let worst = rows
            .iter()
            .min_by(|a, b| a.cmp.ratio.partial_cmp(&b.cmp.ratio).unwrap())
            .unwrap();
        println!(
            "  {}: mean {:+.1}% worst {} {:+.1}%   (paper: arm mean -1.9% peak h2 -4.5%; power mean -0.7%)",
            arch.label(),
            mean,
            worst.bench,
            worst.cmp.percent_change()
        );
    }

    println!("== la/sr vs barriers (ARM) ==");
    for d in lasr_vs_barriers(cfg) {
        println!("  {:<11} {:+.1}%", d.bench, d.cmp.percent_change());
    }
    println!("  (paper: xalan +2.9 sunflow +3.0 h2 -0.3 spark -0.5 tomcat -1.7, rest ~0)");

    println!("== locking patch (spark, ARM) ==");
    for (mode, cmp) in locking_patch_experiment(cfg) {
        println!("  {mode:<9} {:+.1}%   (paper: la/sr +2.9%, barriers -1%)", cmp.percent_change());
    }

    println!("== kernel nop overhead ==");
    let rows = kernel_nop_overhead(cfg);
    let mean: f64 = rows.iter().map(|r| r.cmp.percent_change()).sum::<f64>() / rows.len() as f64;
    for d in &rows {
        println!("  {:<14} {:+.1}%", d.bench, d.cmp.percent_change());
    }
    println!("  mean {mean:+.1}%   (paper: mean -1.9%, worst netperf -6.6%)");

    println!("== Fig 10: rbd strategies (rel perf %) ==");
    for (s, deltas) in fig10_rbd_strategies(cfg) {
        print!("  {:<10}", s.label());
        for d in &deltas {
            print!(" {}:{:+.1}%", d.bench, d.cmp.percent_change());
        }
        println!();
    }

    println!("== rbd cost estimates (a, ns) ==");
    println!("  paper: ctrl 4.6/10.1  ctrl+isb 24.5/24.5  ishld 10.7/1.8  ish 11.0/10.7  la-sr 21.7/15.9");
    for (s, a_lm, a_others) in rbd_cost_estimates(cfg) {
        println!("  {:<10} lmbench {a_lm:6.1}  others {a_others:6.1}", s.label());
    }

    println!("== Fig 7/8 rankings ==");
    let m = linux_ranking(cfg);
    println!("  data points: {}", m.data_points());
    println!("  by macro impact (worst first):");
    for (mac, sum) in m.by_path_impact().iter().take(5) {
        println!("    {:<22} {sum:.2}", mac.name());
    }
    println!("  by benchmark sensitivity (most first):");
    for (b, sum) in m.by_benchmark_sensitivity() {
        println!("    {b:<14} {sum:.2}");
    }
}
