//! Conclusion extension: the turnkey evaluation system. One command takes a
//! (machine, benchmark, strategy) triple and runs the complete methodology:
//! calibrate, discover code paths, sweep each, fit, classify usability, and
//! rank — "potentially yielding a turnkey evaluation system".
//!
//! Runs through the wmm-harness parallel executor (`--threads N`,
//! `--cache`, `--progress`) and writes a run manifest to
//! `results/runs/turnkey_netperf_udp.json` alongside the JSON report.

use wmm_bench::{cli_config, cli_executor, machine, results_dir, runs_dir};
use wmm_harness::RunManifest;
use wmm_kernel::macros::default_arm_strategy;
use wmm_sim::arch::Arch;
use wmm_workloads::kernel::{kernel_profile, KernelBench};
use wmmbench::report::write_json;
use wmmbench::turnkey::{evaluate_with, Usability};

fn main() {
    let cfg = cli_config();
    let exec = cli_executor();
    let m = machine(Arch::ArmV8);
    let strategy = default_arm_strategy();
    let bench = KernelBench::new(kernel_profile("netperf_udp").expect("exists"), cfg.scale);

    println!("Turnkey evaluation: netperf_udp on the default ARMv8 kernel strategy\n");
    let report = evaluate_with(
        &m,
        &bench,
        &strategy,
        true,
        9,
        Usability::default(),
        cfg.run,
        &exec,
    );
    println!(
        "{:<24} {:>10} {:>12} {:>12} {:>8}",
        "code path", "sites", "k", "instability", "usable"
    );
    let mut manifest = RunManifest::new("turnkey_netperf_udp", "arm");
    for p in &report.paths {
        let k = p.fit.as_ref().map(|f| f.k).unwrap_or(f64::NAN);
        println!(
            "{:<24} {:>10} {:>12.5} {:>12.3} {:>8}",
            p.path,
            p.invocations,
            k,
            p.instability,
            if p.usable { "yes" } else { "no" }
        );
        if let Some(fit) = &p.fit {
            manifest.push_fit(&p.path, fit);
        }
        manifest.push_cell(format!("{}/instability", p.path), p.instability);
    }
    if let Some(hot) = report.hottest_usable() {
        println!(
            "\nrecommendation: optimisation effort should start at `{}` — the most\nsensitive code path this benchmark can reliably evaluate.",
            hot.path
        );
    }
    let path = results_dir().join("turnkey_netperf_udp.json");
    write_json(&path, &report).expect("write json");
    println!("wrote {}", path.display());

    manifest.telemetry = Some(exec.telemetry());
    let manifest_path = manifest.write(runs_dir()).expect("write manifest");
    println!("wrote {}", manifest_path.display());
    println!("[wmm-harness] {}", exec.summary());
}
