//! `wmm_bench` — end-to-end simulator throughput benchmark and perf gate.
//!
//! Measures the wall time of full cold-cache experiment campaigns (the
//! fig. 5 OpenJDK sweeps on both architectures), reporting per-campaign
//! p50/p95/p99 iteration times and best-iteration throughput in jobs per
//! second, plus a determinism checksum over the scientific results of every
//! iteration. The committed report at `BENCH_wmm.json` records the perf
//! trajectory; `--gate` re-measures and fails on structural drift (wrong
//! mode, job counts, or — most importantly — results checksum) or on
//! throughput outside a tolerance factor of the committed numbers.
//!
//! ```text
//! wmm_bench [--quick|--full] [--iters N] [--warmup N] [--threads N]
//!           [--out PATH]                 write a fresh report (default BENCH_wmm.json)
//!           [--reference PATH --ref-label S]
//!                                        embed a prior build's report as the reference
//!           [--emit-from PATH]           skip measuring; re-emit PATH (for attaching
//!                                        a reference to an existing report)
//!           [--gate PATH [--tol F]]      measure and compare against PATH (default tol 3.0)
//!           [--overhead-tol F]           ceiling on the metrics-layer slowdown checked
//!                                        when gating (fraction, default 0.02)
//! ```
//!
//! When gating, the observability overhead check also runs: the
//! metrics-enabled `fig5_arm_obs` campaign must keep at least
//! `1 - overhead_tol` of the bare `fig5_arm` campaign's throughput and
//! reproduce its results checksum exactly.
//!
//! Exit status: 0 on success / gate pass, 1 on gate failure, 2 on usage or
//! I/O errors.
use std::process::ExitCode;

use wmm_bench::perf::{
    attach_reference, gate, overhead_check, report_json, run_campaigns, BenchOptions, Reference,
    BENCH_FILE, OVERHEAD_TOL,
};
use wmmbench::json::Json;

fn usage() -> ExitCode {
    eprintln!(
        "usage: wmm_bench [--quick|--full] [--iters N] [--warmup N] [--threads N] \
         [--out PATH] [--reference PATH --ref-label S] [--emit-from PATH] \
         [--gate PATH [--tol F]] [--overhead-tol F]"
    );
    ExitCode::from(2)
}

fn load_json(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let mut opts = BenchOptions::new(true);
    let mut out = BENCH_FILE.to_string();
    let mut gate_path: Option<String> = None;
    let mut reference: Option<String> = None;
    let mut ref_label = "reference".to_string();
    let mut emit_from: Option<String> = None;
    let mut tol = 3.0;
    let mut overhead_tol = OVERHEAD_TOL;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| args.next().ok_or_else(|| format!("{what} needs a value"));
        match arg.as_str() {
            "--quick" => opts = BenchOptions::new(true),
            "--full" => opts = BenchOptions::new(false),
            "--iters" => match value("--iters").map(|v| v.parse()) {
                Ok(Ok(n)) => opts.iters = n,
                _ => return usage(),
            },
            "--warmup" => match value("--warmup").map(|v| v.parse()) {
                Ok(Ok(n)) => opts.warmup = n,
                _ => return usage(),
            },
            "--threads" => match value("--threads").map(|v| v.parse()) {
                Ok(Ok(n)) => opts.threads = Some(n),
                _ => return usage(),
            },
            "--tol" => match value("--tol").map(|v| v.parse()) {
                Ok(Ok(t)) => tol = t,
                _ => return usage(),
            },
            "--overhead-tol" => match value("--overhead-tol").map(|v| v.parse()) {
                Ok(Ok(t)) => overhead_tol = t,
                _ => return usage(),
            },
            "--out" => match value("--out") {
                Ok(p) => out = p,
                Err(_) => return usage(),
            },
            "--gate" => match value("--gate") {
                Ok(p) => gate_path = Some(p),
                Err(_) => return usage(),
            },
            "--reference" => match value("--reference") {
                Ok(p) => reference = Some(p),
                Err(_) => return usage(),
            },
            "--ref-label" => match value("--ref-label") {
                Ok(s) => ref_label = s,
                Err(_) => return usage(),
            },
            "--emit-from" => match value("--emit-from") {
                Ok(p) => emit_from = Some(p),
                Err(_) => return usage(),
            },
            _ => return usage(),
        }
    }

    // Re-emit mode: no measurement, just attach/refresh the reference.
    if let Some(src) = emit_from {
        let mut report = match load_json(&src) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("wmm_bench: {e}");
                return ExitCode::from(2);
            }
        };
        if let Some(ref_path) = reference {
            let attached = load_json(&ref_path)
                .and_then(|r| Reference::from_report(&r, &ref_label))
                .and_then(|r| attach_reference(&mut report, &r));
            if let Err(e) = attached {
                eprintln!("wmm_bench: {e}");
                return ExitCode::from(2);
            }
        }
        if let Err(e) = std::fs::write(&out, report.to_string_pretty() + "\n") {
            eprintln!("wmm_bench: {out}: {e}");
            return ExitCode::from(2);
        }
        println!("wmm_bench: wrote {out}");
        return ExitCode::SUCCESS;
    }

    let campaigns = run_campaigns(&opts, |line| eprintln!("[wmm_bench] {line}"));

    if let Some(path) = gate_path {
        let committed = match load_json(&path) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("wmm_bench: {e}");
                return ExitCode::from(2);
            }
        };
        let mut violations = gate(&committed, &opts, &campaigns, tol);
        violations.extend(overhead_check(&campaigns, overhead_tol));
        for c in &campaigns {
            println!(
                "wmm_bench: {}: best {:.1} ms, {:.1} jobs/s (p50 {:.1} ms)",
                c.name,
                c.best_ms(),
                c.jobs_per_sec_best(),
                c.percentile_ms(50.0)
            );
        }
        return if violations.is_empty() {
            println!("wmm_bench: PASS — within tolerance {tol:.1} of {path}");
            ExitCode::SUCCESS
        } else {
            for v in &violations {
                eprintln!("wmm_bench: FAIL — {v}");
            }
            ExitCode::from(1)
        };
    }

    let mut report = report_json(&opts, &campaigns);
    if let Some(ref_path) = reference {
        let attached = load_json(&ref_path)
            .and_then(|r| Reference::from_report(&r, &ref_label))
            .and_then(|r| attach_reference(&mut report, &r));
        if let Err(e) = attached {
            eprintln!("wmm_bench: {e}");
            return ExitCode::from(2);
        }
    }
    if let Err(e) = std::fs::write(&out, report.to_string_pretty() + "\n") {
        eprintln!("wmm_bench: {out}: {e}");
        return ExitCode::from(2);
    }
    for c in &campaigns {
        println!(
            "wmm_bench: {}: best {:.1} ms, {:.1} jobs/s (p50 {:.1} ms, p99 {:.1} ms)",
            c.name,
            c.best_ms(),
            c.jobs_per_sec_best(),
            c.percentile_ms(50.0),
            c.percentile_ms(99.0)
        );
    }
    println!("wmm_bench: wrote {out}");
    ExitCode::SUCCESS
}
