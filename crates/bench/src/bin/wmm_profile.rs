//! `wmm_profile` — per-site stall profiles of whole campaigns.
//!
//! Runs a campaign with per-site observability enabled (every measurement
//! batch goes through `Machine::run_sited`), folds the stall records into
//! a per-site profile keyed by stable site names, and reports where the
//! cycles went: fence-kind stall, store-buffer stall, exposed memory time,
//! residual compute.
//!
//! The per-site fold is cross-checked against the per-kind telemetry the
//! attribution campaigns gate: for every `(benchmark, fence kind)` cell,
//! summing per-site fence stall-ns over sites of the kind must reproduce
//! the `ExecStats` per-kind total (exact fence counts, cycles within float
//! reassociation). `--strict` (used in CI) exits non-zero on any
//! disagreement.
//!
//! Flags: `--campaign <id>` (one of `fig5-arm`, `fig9-kernel`, `jdk8-arm`,
//! `jdk9-arm`; default `fig5-arm`), `--quick`, `--threads N`,
//! `--progress`, `--strict`, `--flame <path>` (collapsed-stack export for
//! `flamegraph.pl`), `--trace <path>` (instruction-granular Chrome trace
//! of one exemplar run).
//!
//! Writes `results/runs/wmm_profile-<campaign>.json` (schema v3, per-site
//! telemetry included) for the `bench_gate` regression gate.

use wmm_bench::profiling::{kind_checks, profile_campaign, PROFILE_CAMPAIGNS};
use wmm_bench::{cli_config, cli_flag, cli_threads, runs_dir};
use wmm_harness::{
    instruction_trace_events, write_chrome_trace, ParallelExecutor, RunManifest, SimCache,
};
use wmmbench::report::Table;

/// The value following `name` on the command line, if present.
fn cli_opt(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let cfg = cli_config();
    let campaign = cli_opt("--campaign").unwrap_or_else(|| "fig5-arm".to_string());
    let exec = ParallelExecutor::new(cli_threads())
        .with_progress(cli_flag("--progress"))
        .with_cache(SimCache::in_memory());

    let Some(cp) = profile_campaign(&campaign, cfg, &exec) else {
        eprintln!("unknown campaign `{campaign}`; expected one of {PROFILE_CAMPAIGNS:?}");
        std::process::exit(2);
    };
    println!(
        "Per-site stall profile — campaign {}, {} benchmarks",
        cp.campaign,
        cp.benches.len()
    );

    let merged = cp.merged();
    let ns = |cycles: f64| cycles * cp.ns_per_cycle;

    // Top sites by total cycles (the merged profile iterates name-ordered;
    // re-rank by weight for display).
    let mut ranked: Vec<(&String, &wmm_obs::SiteProfile)> = merged.sites.iter().collect();
    ranked.sort_by(|a, b| {
        b.1.total_cycles
            .partial_cmp(&a.1.total_cycles)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.0.cmp(b.0))
    });
    let mut table = Table::new(&[
        "site",
        "fence",
        "fences",
        "fence_ns",
        "sb_ns",
        "mem_ns",
        "compute_ns",
        "total_ns",
    ]);
    for (name, sp) in ranked.iter().take(15) {
        table.row(vec![
            (*name).clone(),
            sp.fence.map_or("-", |k| k.mnemonic()).to_string(),
            sp.fences.to_string(),
            format!("{:.0}", ns(sp.fence_cycles)),
            format!("{:.0}", ns(sp.sb_stall_cycles)),
            format!("{:.0}", ns(sp.mem_cycles)),
            format!("{:.0}", ns(sp.compute_cycles())),
            format!("{:.0}", ns(sp.total_cycles)),
        ]);
    }
    println!("{}", table.markdown());
    println!(
        "{} sites, {:.0} ns total ({:.0} ns in fences)",
        merged.sites.len(),
        ns(merged.total_cycles()),
        ns(merged.sites.values().map(|s| s.fence_cycles).sum::<f64>()),
    );

    // Per-kind cross-check: the per-site fold must reproduce the per-kind
    // telemetry totals the attribution campaigns gate.
    let checks = kind_checks(&cp);
    let mut check_table = Table::new(&[
        "benchmark",
        "fence",
        "fences",
        "site_ns",
        "kind_ns",
        "rel_err",
        "ok",
    ]);
    let mut all_pass = true;
    for c in &checks {
        all_pass &= c.pass();
        check_table.row(vec![
            c.bench.clone(),
            c.kind.mnemonic().to_string(),
            c.site_fences.to_string(),
            format!("{:.2}", ns(c.site_cycles)),
            format!("{:.2}", ns(c.kind_cycles)),
            format!("{:.1e}", c.rel_err()),
            if c.pass() { "yes" } else { "NO" }.to_string(),
        ]);
    }
    println!("{}", check_table.markdown());
    println!(
        "per-site vs per-kind cross-check over {} cells: {}",
        checks.len(),
        if all_pass { "PASS" } else { "FAIL" }
    );

    if let Some(path) = cli_opt("--flame") {
        std::fs::write(&path, wmm_obs::collapsed_stacks(&merged)).expect("write flamegraph");
        println!("wrote {path} (collapsed stacks; feed to flamegraph.pl)");
    }
    if let Some(path) = cli_opt("--trace") {
        let Some((stalls, map)) = cp.benches.first().and_then(|b| b.batch.exemplar.clone()) else {
            eprintln!("no exemplar run captured; nothing to trace");
            std::process::exit(2);
        };
        let bench = cp.benches[0].bench.clone();
        let events = instruction_trace_events(&stalls, cp.ns_per_cycle, |t, i| {
            match map.name(t as usize, i as usize) {
                Some(n) => format!("{bench}/{n}"),
                None => format!("{bench}/t{t}:#{i}"),
            }
        });
        write_chrome_trace(&path, &events).expect("write trace");
        println!("wrote {path} ({} instruction events)", events.len());
    }

    let mut manifest = RunManifest::new(format!("wmm_profile-{}", cp.campaign), cp.arch);
    for b in &cp.benches {
        manifest.push_cell(format!("{}/wall_ns", b.bench), b.batch.mean_wall_ns());
        manifest.push_cell(
            format!("{}/sites", b.bench),
            b.batch.profile.sites.len() as f64,
        );
    }
    for c in &checks {
        let stem = format!("{}/{}", c.bench, c.kind.mnemonic());
        manifest.push_cell(format!("{stem}/site_fence_ns"), ns(c.site_cycles));
        manifest.push_cell(format!("{stem}/kind_fence_ns"), ns(c.kind_cycles));
    }
    let mut telemetry = exec.telemetry();
    telemetry.sites = Some(cp.site_records());
    manifest.telemetry = Some(telemetry);
    let manifest_path = manifest.write(runs_dir()).expect("write manifest");
    println!("wrote {}", manifest_path.display());
    println!("[wmm-harness] {}", exec.summary());
    if !all_pass && cli_flag("--strict") {
        std::process::exit(1);
    }
}
