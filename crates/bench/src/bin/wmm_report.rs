//! `wmm_report` — one observed campaign run, reported every way at once.
//!
//! Runs a profile campaign with the full observability stack attached (the
//! `wmm-obs` metrics registry on the executor and simulation cache, a span
//! log around the run's phases, a metered WPS solver stage) and emits:
//!
//! * a markdown run report on stdout (campaign summary, structural and
//!   observational metrics, hottest sites, cache traffic, cross-check
//!   verdict) — or to a file via `--md`;
//! * `results/runs/wmm_report.json` — a schema-versioned manifest whose
//!   cells pin every structural metric, gated in CI by `bench_gate`
//!   against `results/baselines/wmm_report.json`;
//! * optional exporter outputs: `--prom <path>` (Prometheus text
//!   exposition), `--metrics-json <path>` (the snapshot as JSON),
//!   `--trace <path>` (Chrome trace merging the span timeline with the
//!   executor's batch/job events).
//!
//! Flags: `--campaign <id>` (default `fig5-arm`), `--quick`,
//! `--threads N`, `--wps-tests N` (`0` skips the solver stage),
//! `--strict` (exit non-zero if the per-kind cross-check fails).
//!
//! Exit status: 0 on success, 1 on `--strict` cross-check failure, 2 on
//! usage or I/O errors.

use wmm_bench::profiling::PROFILE_CAMPAIGNS;
use wmm_bench::report::{checks_pass, collect_report, manifest, markdown, ReportOptions};
use wmm_bench::{cli_config, cli_flag, cli_threads, runs_dir};
use wmm_harness::{merge_chronological, span_trace_events, write_chrome_trace};
use wmmbench::json::ToJson;

/// The value following `name` on the command line, if present.
fn cli_opt(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let trace_path = cli_opt("--trace");
    let opts = ReportOptions {
        campaign: cli_opt("--campaign").unwrap_or_else(|| "fig5-arm".to_string()),
        cfg: cli_config(),
        threads: cli_threads(),
        wps_min_tests: cli_opt("--wps-tests")
            .and_then(|v| v.parse().ok())
            .unwrap_or(16),
        trace: trace_path.is_some(),
    };

    let Some(report) = collect_report(&opts) else {
        eprintln!(
            "unknown campaign `{}`; expected one of {PROFILE_CAMPAIGNS:?}",
            opts.campaign
        );
        std::process::exit(2);
    };

    let md = markdown(&report);
    match cli_opt("--md") {
        Some(path) => {
            std::fs::write(&path, &md).expect("write markdown report");
            println!("wrote {path}");
        }
        None => print!("{md}"),
    }

    if let Some(path) = cli_opt("--prom") {
        std::fs::write(&path, report.snapshot.to_prometheus()).expect("write prometheus export");
        println!("wrote {path} ({} metrics)", report.snapshot.entries.len());
    }
    if let Some(path) = cli_opt("--metrics-json") {
        std::fs::write(&path, report.snapshot.to_json().to_string_pretty() + "\n")
            .expect("write metrics json");
        println!("wrote {path}");
    }
    if let Some(path) = trace_path {
        let spans = span_trace_events(&report.spans);
        let events = merge_chronological(&[&spans, &report.trace]);
        write_chrome_trace(&path, &events).expect("write chrome trace");
        println!("wrote {path} ({} events)", events.len());
    }

    let manifest_path = manifest(&report).write(runs_dir()).expect("write manifest");
    println!("wrote {}", manifest_path.display());

    if !checks_pass(&report) && cli_flag("--strict") {
        std::process::exit(1);
    }
}
