//! `wmm_tracediff` — attribute a campaign-level time delta to the sites
//! whose stall profile changed.
//!
//! Two modes:
//!
//! * **Builtin comparison** (default): profiles the §4.2.1 JDK8-barriers
//!   and JDK9-`ldar`/`stlr` DaCapo campaigns under the same `ARMv8`
//!   strategy and diffs them site by site. The JIT labels every volatile
//!   access (`vol.ld`/`vol.st`) in both modes, so the same access joins on
//!   the same row across JITs: the diff shows the `dmb` barrier sites of
//!   the JDK8 image disappearing and the acquire/release surcharge
//!   appearing on the access rows, with only scheduling noise left on the
//!   pooled `:code` rows.
//! * **Dstruct comparison** (`--campaign dstruct`): profiles the
//!   lock-free data-structure suite under `hp-dmb` (a `dmb ish` per
//!   hazard protect) and `hp-asym` (reader-free scheme) and diffs them.
//!   The images are identical — only the fences lowered at the
//!   reclamation sites move — so the attribution metric here is the
//!   *fence-stall share*: the fraction of the absolute per-site
//!   fence-stall delta carried by the `HpProtect` rows whose fences the
//!   asymmetric scheme removed.
//! * **Manifest mode** (`--base <m.json> --test <m.json>`): diffs the
//!   per-site telemetry of two run manifests written by `wmm_profile`
//!   (schema v3 with `telemetry.sites`), reporting deltas in cycles.
//!
//! The attribution quality metric is the *barrier-site share*: the
//! fraction of the total absolute per-site delta carried by non-`:code`
//! rows. For the builtin JDK8→JDK9 comparison this is the share of the
//! delta attributed to volatile-access (and monitor/CAS barrier) sites;
//! `--strict` (used in CI) exits non-zero below 0.90 (the dstruct
//! comparison gates its fence-stall share at the same threshold).
//!
//! Flags: `--quick`, `--threads N`, `--progress`, `--top N` (rows printed,
//! default 10), `--strict`, `--campaign dstruct`, `--base`/`--test`
//! (manifest mode).
//!
//! Builtin mode writes `results/runs/wmm_tracediff.json` (and the dstruct
//! comparison `results/runs/wmm_tracediff-dstruct.json`) for the
//! `bench_gate` regression gate.

use wmm_bench::profiling::{profile_campaign, profile_from_records};
use wmm_bench::{cli_config, cli_flag, cli_threads, runs_dir};
use wmm_harness::{ParallelExecutor, RunManifest, SimCache};
use wmm_obs::{Profile, ProfileDiff};
use wmmbench::image::SiteMap;
use wmmbench::report::Table;

/// The value following `name` on the command line, if present.
fn cli_opt(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Print the top-N rows of a diff, values through `fmt` (ns or cycles).
fn print_diff(diff: &ProfileDiff, top: usize, unit: &str, scale: f64) {
    let mut table = Table::new(&[
        "site",
        &format!("base_{unit}"),
        &format!("test_{unit}"),
        &format!("delta_{unit}"),
        &format!("fence_d_{unit}"),
        &format!("sb_d_{unit}"),
        &format!("mem_d_{unit}"),
    ]);
    for r in diff.top(top) {
        table.row(vec![
            r.name.clone(),
            format!("{:.0}", r.base_cycles * scale),
            format!("{:.0}", r.test_cycles * scale),
            format!("{:+.0}", r.delta_cycles * scale),
            format!("{:+.0}", r.fence_delta * scale),
            format!("{:+.0}", r.sb_delta * scale),
            format!("{:+.0}", r.mem_delta * scale),
        ]);
    }
    println!("{}", table.markdown());
}

/// Load the per-site profile out of a `wmm_profile` manifest.
fn manifest_profile(path: &str) -> Profile {
    let manifest = RunManifest::load(path).unwrap_or_else(|e| {
        eprintln!("cannot load manifest `{path}`: {e}");
        std::process::exit(2);
    });
    let Some(sites) = manifest.telemetry.and_then(|t| t.sites) else {
        eprintln!("manifest `{path}` carries no per-site telemetry (run wmm_profile)");
        std::process::exit(2);
    };
    profile_from_records(&sites)
}

fn main() {
    let top: usize = cli_opt("--top").and_then(|v| v.parse().ok()).unwrap_or(10);
    let strict = cli_flag("--strict");

    // Manifest mode: diff two files, report in cycles, no manifest output.
    if let (Some(base), Some(test)) = (cli_opt("--base"), cli_opt("--test")) {
        println!("Per-site diff — {base} → {test}");
        let diff = manifest_profile(&base).diff(&manifest_profile(&test));
        print_diff(&diff, top, "cyc", 1.0);
        let share = diff.share(|r| !SiteMap::is_code(&r.name));
        println!(
            "total delta {:+.0} cycles ({:.0} absolute); barrier-site share {:.1}%",
            diff.total_delta(),
            diff.abs_delta(),
            100.0 * share
        );
        if strict && share < 0.90 {
            std::process::exit(1);
        }
        return;
    }

    let cfg = cli_config();
    let exec = ParallelExecutor::new(cli_threads())
        .with_progress(cli_flag("--progress"))
        .with_cache(SimCache::in_memory());

    // Dstruct comparison: same images, fences move from the hot protect
    // sites (hp-dmb) to the rare scan site (hp-asym).
    if let Some(campaign) = cli_opt("--campaign") {
        if campaign != "dstruct" {
            eprintln!("unknown campaign `{campaign}` (supported: dstruct)");
            std::process::exit(2);
        }
        let base = profile_campaign("dstruct-hp-dmb", cfg, &exec).expect("builtin campaign");
        let test = profile_campaign("dstruct-hp-asym", cfg, &exec).expect("builtin campaign");
        println!(
            "Per-site diff — {} → {} ({} benchmarks)",
            base.campaign,
            test.campaign,
            base.benches.len()
        );
        let diff = base.merged().diff(&test.merged());
        print_diff(&diff, top, "ns", base.ns_per_cycle);

        let wall_delta = test.total_wall_ns() - base.total_wall_ns();
        // Gate on the fence-stall delta: the images are identical across
        // schemes, so the memory-timing ripple on `:code`/`chase` rows is
        // noise — what must move is the fence cost at the protect sites.
        let share = diff.fence_share(|r| r.name.contains(":HpProtect#"));
        println!(
            "wall: {:.0} ns → {:.0} ns ({:+.0} ns); per-site delta {:+.0} ns ({:.0} ns absolute)",
            base.total_wall_ns(),
            test.total_wall_ns(),
            wall_delta,
            diff.total_delta() * base.ns_per_cycle,
            diff.abs_delta() * base.ns_per_cycle,
        );
        let pass = share >= 0.90;
        println!(
            "protect-site share of the fence-stall delta: {:.1}% (threshold 90%): {}",
            100.0 * share,
            if pass { "PASS" } else { "FAIL" }
        );

        let mut manifest = RunManifest::new("wmm_tracediff-dstruct", "arm");
        manifest.push_cell("dstruct-hp-dmb/wall_ns", base.total_wall_ns());
        manifest.push_cell("dstruct-hp-asym/wall_ns", test.total_wall_ns());
        manifest.push_cell("wall_delta_ns", wall_delta);
        manifest.push_cell("protect_fence_share", share);
        manifest.push_cell("abs_delta_cycles", diff.abs_delta());
        for r in diff.top(top) {
            manifest.push_cell(format!("delta_cycles/{}", r.name), r.delta_cycles);
        }
        manifest.telemetry = Some(exec.telemetry());
        let manifest_path = manifest.write(runs_dir()).expect("write manifest");
        println!("wrote {}", manifest_path.display());
        println!("[wmm-harness] {}", exec.summary());
        if strict && !pass {
            std::process::exit(1);
        }
        return;
    }

    let base = profile_campaign("jdk8-arm", cfg, &exec).expect("builtin campaign");
    let test = profile_campaign("jdk9-arm", cfg, &exec).expect("builtin campaign");
    println!(
        "Per-site diff — {} → {} ({} benchmarks)",
        base.campaign,
        test.campaign,
        base.benches.len()
    );

    let diff = base.merged().diff(&test.merged());
    print_diff(&diff, top, "ns", base.ns_per_cycle);

    let wall_delta = test.total_wall_ns() - base.total_wall_ns();
    let share = diff.share(|r| !SiteMap::is_code(&r.name));
    println!(
        "wall: {:.0} ns → {:.0} ns ({:+.0} ns); per-site delta {:+.0} ns ({:.0} ns absolute)",
        base.total_wall_ns(),
        test.total_wall_ns(),
        wall_delta,
        diff.total_delta() * base.ns_per_cycle,
        diff.abs_delta() * base.ns_per_cycle,
    );
    let pass = share >= 0.90;
    println!(
        "barrier-site share of the delta: {:.1}% (threshold 90%): {}",
        100.0 * share,
        if pass { "PASS" } else { "FAIL" }
    );

    let mut manifest = RunManifest::new("wmm_tracediff", "arm");
    manifest.push_cell("jdk8-arm/wall_ns", base.total_wall_ns());
    manifest.push_cell("jdk9-arm/wall_ns", test.total_wall_ns());
    manifest.push_cell("wall_delta_ns", wall_delta);
    manifest.push_cell("site_share", share);
    manifest.push_cell("abs_delta_cycles", diff.abs_delta());
    for r in diff.top(top) {
        manifest.push_cell(format!("delta_cycles/{}", r.name), r.delta_cycles);
    }
    manifest.telemetry = Some(exec.telemetry());
    let manifest_path = manifest.write(runs_dir()).expect("write manifest");
    println!("wrote {}", manifest_path.display());
    println!("[wmm-harness] {}", exec.summary());
    if strict && !pass {
        std::process::exit(1);
    }
}
