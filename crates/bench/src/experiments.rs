//! The experiment drivers. Every figure and in-text table of the paper's
//! evaluation (§4) has a function here; binaries print them, integration
//! tests assert their shapes.

use std::collections::HashMap;
use std::hash::Hash;

use wmm_harness::SimTotals;
use wmm_jvm::barrier::{all_site_combinations, sites_containing, Combined, Elemental};
use wmm_jvm::jit::{JavaOp, JitConfig, VolatileMode};
use wmm_jvm::strategy::{
    arm_jdk8_barriers, arm_storestore_as_full, power_jdk9, power_storestore_as_sync, JvmStrategy,
};
use wmm_kernel::macros::{default_arm_strategy, KMacro};
use wmm_kernel::rbd::{rbd_strategy, RbdStrategy};
use wmm_sim::arch::{armv8_xgene1, power7, Arch};
use wmm_sim::isa::{FenceKind, Instr, Loc};
use wmm_sim::machine::{Program, WorkloadCtx};
use wmm_sim::Machine;
use wmm_stats::Comparison;
use wmm_workloads::dacapo::{dacapo_suite, profile, DacapoBench};
use wmm_workloads::kernel::{kernel_profile, kernel_suite, lmbench_subs, KernelBench};
use wmmbench::costfn::{Calibration, CostFunction};
use wmmbench::exec::{Executor, SerialExecutor, SimJob};
use wmmbench::image::{compute_envelope, Injection, SiteRewriter};
use wmmbench::model::{estimate_cost, SensitivityFit};
use wmmbench::ranking::{ranking_matrix_with, RankingMatrix};
use wmmbench::runner::{
    measure, measure_relative, measure_relative_with, measurement_jobs, BenchSpec, RunConfig,
};
use wmmbench::sensitivity::{pow2_targets, sweep, sweep_with, SweepResult, SweepTarget};
use wmmbench::strategy::{FencingStrategy, FnStrategy};

/// Global experiment configuration: workload scale and sampling protocol.
#[derive(Debug, Clone, Copy)]
pub struct ExpConfig {
    /// Image-size multiplier.
    pub scale: f64,
    /// Sampling protocol.
    pub run: RunConfig,
}

impl ExpConfig {
    /// Full-fidelity configuration (the paper's protocol: ≥6 samples after
    /// 2 warm-ups).
    pub fn full() -> Self {
        ExpConfig {
            scale: 1.0,
            run: RunConfig {
                samples: 6,
                warmups: 2,
                base_seed: 0x1CEB00DA,
            },
        }
    }

    /// Reduced configuration for tests and smoke runs.
    pub fn quick() -> Self {
        ExpConfig {
            scale: 0.25,
            run: RunConfig::quick(),
        }
    }
}

/// Configuration from the command line: `--quick` for the reduced protocol,
/// `--scale <f>` to override the image scale.
pub fn cli_config() -> ExpConfig {
    let args: Vec<String> = std::env::args().collect();
    let mut cfg = if args.iter().any(|a| a == "--quick") {
        ExpConfig::quick()
    } else {
        ExpConfig::full()
    };
    if let Some(i) = args.iter().position(|a| a == "--scale") {
        if let Some(v) = args.get(i + 1).and_then(|s| s.parse::<f64>().ok()) {
            cfg.scale = v;
        }
    }
    cfg
}

/// Worker-thread request from the command line (`--threads N`), if any.
/// `None` defers to `WMM_THREADS` / available parallelism (see
/// `wmm_harness::resolve_threads`).
pub fn cli_threads() -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
}

/// Whether a bare flag (e.g. `--cache`) was passed on the command line.
pub fn cli_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// Chrome-trace output path from the command line (`--trace <path>`), if
/// any. When present, figure binaries enable trace collection on their
/// executor and write the scheduler timeline there on exit.
pub fn cli_trace() -> Option<std::path::PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .map(Into::into)
}

/// The `results/` directory (created if needed).
pub fn results_dir() -> std::path::PathBuf {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// The `results/runs/` directory where campaign manifests are written.
pub fn runs_dir() -> std::path::PathBuf {
    results_dir().join("runs")
}

/// The harness executor configured from the command line: `--threads N`
/// overrides the worker count (else `WMM_THREADS`, else available
/// parallelism), `--progress` enables ETA lines on stderr, and `--cache`
/// persists simulation results under `results/cache/` so a rerun skips
/// already-simulated cells. Without `--cache` an in-memory cache still
/// deduplicates within the process.
pub fn cli_executor() -> wmm_harness::ParallelExecutor {
    let exec = wmm_harness::ParallelExecutor::new(cli_threads())
        .with_progress(cli_flag("--progress"))
        .with_trace(cli_trace().is_some());
    let cache = if cli_flag("--cache") {
        let path = results_dir().join("cache").join("sim.cache");
        match wmm_harness::SimCache::with_disk(&path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("warning: disk cache unavailable ({e}); using in-memory cache");
                wmm_harness::SimCache::in_memory()
            }
        }
    } else {
        wmm_harness::SimCache::in_memory()
    };
    exec.with_cache(cache)
}

/// The machine for an architecture.
pub fn machine(arch: Arch) -> Machine {
    Machine::new(match arch {
        Arch::ArmV8 => armv8_xgene1(),
        Arch::Power7 => power7(),
    })
}

/// The base (unmodified) JVM fencing strategy for an architecture.
pub fn jvm_base_strategy(arch: Arch) -> JvmStrategy {
    match arch {
        Arch::ArmV8 => arm_jdk8_barriers(),
        Arch::Power7 => power_jdk9(),
    }
}

/// Cost function footprint for JVM experiments: the ARMv8 OpenJDK has a
/// scratch register (`x9`), so the stack spill is elided (§4.1, Fig. 2);
/// POWER must spill.
pub fn jvm_costfn_spill(arch: Arch) -> bool {
    arch == Arch::Power7
}

/// Envelope for JVM experiments: covers the base strategy, both StoreStore
/// modifications, and the cost function.
pub fn jvm_envelope(arch: Arch) -> HashMap<Combined, u64> {
    let paths = all_site_combinations();
    let base = jvm_base_strategy(arch);
    let ss_full = arm_storestore_as_full();
    let ss_sync = power_storestore_as_sync();
    let strategies: Vec<&dyn FencingStrategy<Combined>> = vec![&base, &ss_full, &ss_sync];
    let extra = CostFunction {
        iters: 1,
        stack_spill: jvm_costfn_spill(arch),
    }
    .size();
    compute_envelope(&paths, &strategies, extra)
}

/// Envelope for kernel experiments: covers all six rbd strategies plus the
/// (stack-spilling) cost function.
pub fn kernel_envelope() -> HashMap<KMacro, u64> {
    let paths: Vec<KMacro> = KMacro::ALL.to_vec();
    let strategies: Vec<_> = RbdStrategy::ALL.iter().map(|s| rbd_strategy(*s)).collect();
    let refs: Vec<&dyn FencingStrategy<KMacro>> = strategies
        .iter()
        .map(|s| s as &dyn FencingStrategy<KMacro>)
        .collect();
    let extra = CostFunction {
        iters: 1,
        stack_spill: true,
    }
    .size();
    compute_envelope(&paths, &refs, extra)
}

// ---------------------------------------------------------------------------
// Figures 1 and 4: the cost function itself
// ---------------------------------------------------------------------------

/// Fig. 1: an example sensitivity fit over cost sizes up to 2^14, on a
/// stable mid-sensitivity benchmark (the paper's example has k ≈ 0.00277).
pub fn fig1_example_fit(cfg: ExpConfig) -> SweepResult {
    let m = machine(Arch::ArmV8);
    let strategy = jvm_base_strategy(Arch::ArmV8);
    let cal = Calibration::measure(&m, false, 14);
    let bench = DacapoBench::new(
        profile("h2").expect("h2 exists"),
        JitConfig::jdk8(Arch::ArmV8),
        cfg.scale,
    );
    sweep(
        &m,
        &bench,
        &strategy,
        SweepTarget::AllSites,
        &cal,
        &pow2_targets(0, 14),
        jvm_envelope(Arch::ArmV8),
        cfg.run,
    )
}

/// Fig. 4: cost-function execution time vs loop count for the three
/// variants (arm, arm-nostack, power).
pub fn fig4_costfn_calibration() -> Vec<(&'static str, Calibration)> {
    let arm = machine(Arch::ArmV8);
    let pow = machine(Arch::Power7);
    vec![
        ("arm", Calibration::measure(&arm, true, 10)),
        ("arm-nostack", Calibration::measure(&arm, false, 10)),
        ("power", Calibration::measure(&pow, true, 10)),
    ]
}

// ---------------------------------------------------------------------------
// Figures 5 and 6: OpenJDK sweeps
// ---------------------------------------------------------------------------

/// Fig. 5: cost-function sweep injected into *all* memory barriers, for the
/// eight benchmarks on one architecture.
pub fn fig5_openjdk_sweeps(arch: Arch, cfg: ExpConfig) -> Vec<SweepResult> {
    fig5_openjdk_sweeps_with(arch, cfg, &SerialExecutor)
}

/// [`fig5_openjdk_sweeps`] through an explicit executor (the wmm-harness
/// seam): each benchmark's sweep is one batch of independent simulations.
pub fn fig5_openjdk_sweeps_with(
    arch: Arch,
    cfg: ExpConfig,
    exec: &dyn Executor,
) -> Vec<SweepResult> {
    let m = machine(arch);
    let strategy = jvm_base_strategy(arch);
    let cal = Calibration::measure(&m, jvm_costfn_spill(arch), 12);
    let env = jvm_envelope(arch);
    dacapo_suite(JitConfig::jdk8(arch), cfg.scale)
        .iter()
        .map(|bench| {
            sweep_with(
                &m,
                bench,
                &strategy,
                SweepTarget::AllSites,
                &cal,
                &pow2_targets(0, 8),
                env.clone(),
                cfg.run,
                exec,
            )
        })
        .collect()
}

/// Fig. 6: spark's sensitivity to each elemental barrier (injection hits
/// every combined site containing the elemental).
pub fn fig6_spark_elementals(arch: Arch, cfg: ExpConfig) -> Vec<(Elemental, SweepResult)> {
    let m = machine(arch);
    let strategy = jvm_base_strategy(arch);
    let cal = Calibration::measure(&m, jvm_costfn_spill(arch), 12);
    let env = jvm_envelope(arch);
    let bench = DacapoBench::new(
        profile("spark").expect("spark exists"),
        JitConfig::jdk8(arch),
        cfg.scale,
    );
    Elemental::ALL
        .iter()
        .map(|e| {
            let result = sweep(
                &m,
                &bench,
                &strategy,
                SweepTarget::Paths(sites_containing(*e)),
                &cal,
                &pow2_targets(0, 8),
                env.clone(),
                cfg.run,
            );
            (*e, result)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// §4.2.1 in-text experiments
// ---------------------------------------------------------------------------

/// Result of one strategy comparison on one benchmark.
#[derive(Debug, Clone)]
pub struct StrategyDelta {
    /// Benchmark name.
    pub bench: String,
    /// Relative performance (test/base, < 1 = slower).
    pub cmp: Comparison,
}

/// §4.2.1: nop instructions injected into every elemental barrier vs the
/// truly unmodified JVM (mean drop: 1.9% ARM / 0.7% POWER; peak 4.5% on
/// h2-ARM).
pub fn jvm_nop_overhead(arch: Arch, cfg: ExpConfig) -> Vec<StrategyDelta> {
    let m = machine(arch);
    let strategy = jvm_base_strategy(arch);
    // Unmodified: envelope with no padding room. Padded: the standard one.
    let paths = all_site_combinations();
    let tight = compute_envelope(&paths, &[&strategy as &dyn FencingStrategy<Combined>], 0);
    let padded = jvm_envelope(arch);
    let base_rw = SiteRewriter::new(&strategy, Injection::None, tight);
    let pad_rw = SiteRewriter::new(&strategy, Injection::None, padded);
    dacapo_suite(JitConfig::jdk8(arch), cfg.scale)
        .iter()
        .map(|bench| StrategyDelta {
            bench: bench.name().to_string(),
            cmp: measure_relative(&m, bench, &base_rw, &pad_rw, cfg.run),
        })
        .collect()
}

/// §4.2.1: the StoreStore modification on spark — `dmb ishst` → `dmb ish`
/// on ARM (−0.7%), `lwsync` → `sync` on POWER (−12.5%). Returns the
/// comparison plus the Eq. 2 cost estimate computed from the Fig. 6
/// sensitivity.
pub fn storestore_experiment(arch: Arch, cfg: ExpConfig) -> (Comparison, f64, Option<f64>) {
    let m = machine(arch);
    let base = jvm_base_strategy(arch);
    let modified = match arch {
        Arch::ArmV8 => arm_storestore_as_full(),
        Arch::Power7 => power_storestore_as_sync(),
    };
    let env = jvm_envelope(arch);
    let bench = DacapoBench::new(
        profile("spark").expect("spark exists"),
        JitConfig::jdk8(arch),
        cfg.scale,
    );
    let base_rw = SiteRewriter::new(&base, Injection::None, env.clone());
    let mod_rw = SiteRewriter::new(&modified, Injection::None, env.clone());
    let cmp = measure_relative(&m, &bench, &base_rw, &mod_rw, cfg.run);

    // Sensitivity of spark to StoreStore, for the Eq. 2 estimate.
    let cal = Calibration::measure(&m, jvm_costfn_spill(arch), 12);
    let sweep_res = sweep(
        &m,
        &bench,
        &base,
        SweepTarget::Paths(sites_containing(Elemental::StoreStore)),
        &cal,
        &pow2_targets(0, 8),
        env,
        cfg.run,
    );
    let k = sweep_res.fit.as_ref().map(|f| f.k);
    let a = k.map(|k| wmmbench::model::estimate_cost(k, cmp.ratio));
    (cmp, k.unwrap_or(f64::NAN), a)
}

/// §4.2.1: microbenchmarked `sync` and `lwsync` execution times on POWER
/// (paper: 18.9 ns and 6.1 ns) and the indistinguishable `dmb` variants on
/// ARM. Returns `(label, ns)` rows.
pub fn fence_microbenchmarks() -> Vec<(String, f64)> {
    let pow = machine(Arch::Power7);
    let arm = machine(Arch::ArmV8);
    let mut rows = vec![];
    for (label, m, kind) in [
        ("power sync", &pow, FenceKind::HwSync),
        ("power lwsync", &pow, FenceKind::LwSync),
        ("arm dmb ish", &arm, FenceKind::DmbIsh),
        ("arm dmb ishld", &arm, FenceKind::DmbIshLd),
        ("arm dmb ishst", &arm, FenceKind::DmbIshSt),
    ] {
        let ns = m.time_sequence_ns(&[Instr::Fence(kind)], 2000, 7);
        rows.push((label.to_string(), ns));
    }
    rows
}

/// The Dekker-style SB idiom over volatile fields: the store→load ordering
/// volatiles guarantee (shared by the `fence_lint` and `fence_synth`
/// static-analysis binaries).
pub fn volatile_sb_idiom() -> Vec<Vec<JavaOp>> {
    let (x, y) = (Loc::SharedRw(1), Loc::SharedRw(2));
    vec![
        vec![JavaOp::VolatileStore(x), JavaOp::VolatileLoad(y)],
        vec![JavaOp::VolatileStore(y), JavaOp::VolatileLoad(x)],
    ]
}

/// The message-passing idiom: plain data store published by a volatile
/// flag (shared by the `fence_lint` and `fence_synth` binaries).
pub fn volatile_mp_idiom() -> Vec<Vec<JavaOp>> {
    let (data, flag) = (Loc::SharedRw(3), Loc::SharedRw(4));
    vec![
        vec![JavaOp::FieldStore(data), JavaOp::VolatileStore(flag)],
        vec![JavaOp::VolatileLoad(flag), JavaOp::FieldLoad(data)],
    ]
}

/// Measured per-invocation fence costs, driven through the [`Executor`]
/// seam (the same batch path the figure campaigns use) rather than a
/// direct `Machine` call — `fence_synth` records these next to its
/// Eq. 1/Eq. 2-priced static table as a cross-check.
///
/// Repetitions are fixed (not protocol-scaled) so the resulting manifest
/// cells are identical under `--quick` and the full protocol.
pub fn seam_fence_costs(exec: &dyn Executor, arch: Arch) -> Vec<(FenceKind, f64)> {
    const REPS: usize = 2000;
    let m = machine(arch);
    let kinds: &[FenceKind] = match arch {
        Arch::ArmV8 => &[
            FenceKind::DmbIsh,
            FenceKind::DmbIshLd,
            FenceKind::DmbIshSt,
            FenceKind::Isb,
        ],
        Arch::Power7 => &[FenceKind::HwSync, FenceKind::LwSync],
    };
    // The idle-machine context `Machine::time_sequence_ns` uses: §4.2.1's
    // "basic microbenchmarking", with all the blind spots the paper notes.
    let ctx = WorkloadCtx {
        name: "micro".to_string(),
        bp_pressure: 0.0,
        load_pressure: 0.0,
        l1_miss_rate: 0.0,
        dram_frac: 0.0,
        noise_amp: 0.0,
    };
    let jobs: Vec<SimJob> = kinds
        .iter()
        .map(|&k| SimJob {
            machine: &m,
            program: Program::new(vec![vec![Instr::Fence(k); REPS]]),
            ctx: ctx.clone(),
            seed: 7,
            sited: false,
        })
        .collect();
    let times = exec.run_batch(jobs);
    kinds
        .iter()
        .zip(times)
        .map(|(&k, t)| (k, t / REPS as f64))
        .collect()
}

/// §4.2.1: JDK9 load-acquire/store-release vs JDK8 barriers on ARM, per
/// benchmark (paper: xalan +2.9%, sunflow +3.0%, h2 −0.3%, spark −0.5%,
/// tomcat −1.7%; lusearch/tradebeans/tradesoap not significant).
pub fn lasr_vs_barriers(cfg: ExpConfig) -> Vec<StrategyDelta> {
    let m = machine(Arch::ArmV8);
    let strategy = jvm_base_strategy(Arch::ArmV8);
    let env = jvm_envelope(Arch::ArmV8);
    let rw = SiteRewriter::new(&strategy, Injection::None, env);
    let base_suite = dacapo_suite(JitConfig::jdk8(Arch::ArmV8), cfg.scale);
    let lasr_suite = dacapo_suite(JitConfig::jdk9(Arch::ArmV8), cfg.scale);
    base_suite
        .iter()
        .zip(&lasr_suite)
        .map(|(b8, b9)| {
            let base = measure(&m, b8, &rw, cfg.run);
            let test = measure(&m, b9, &rw, cfg.run);
            StrategyDelta {
                bench: b8.name().to_string(),
                cmp: Comparison::of_times(&test.times_ns, &base.times_ns),
            }
        })
        .collect()
}

/// §4.2.1: the pending DMB-elimination locking patch on spark, under both
/// volatile modes (paper: +2.9% with la/sr, −1% with barriers).
pub fn locking_patch_experiment(cfg: ExpConfig) -> Vec<(String, Comparison)> {
    let m = machine(Arch::ArmV8);
    let strategy = jvm_base_strategy(Arch::ArmV8);
    let env = jvm_envelope(Arch::ArmV8);
    let rw = SiteRewriter::new(&strategy, Injection::None, env);
    let spark = profile("spark").expect("spark exists");
    let mut out = vec![];
    for (label, mode) in [
        ("la/sr", VolatileMode::LoadAcquireStoreRelease),
        ("barriers", VolatileMode::Barriers),
    ] {
        let mk = |patched| {
            DacapoBench::new(
                spark.clone(),
                JitConfig {
                    arch: Arch::ArmV8,
                    volatile_mode: mode,
                    locking_patch: patched,
                },
                cfg.scale,
            )
        };
        let base = measure(&m, &mk(false), &rw, cfg.run);
        let test = measure(&m, &mk(true), &rw, cfg.run);
        out.push((
            label.to_string(),
            Comparison::of_times(&test.times_ns, &base.times_ns),
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// §4.3: Linux kernel
// ---------------------------------------------------------------------------

/// Figs. 7 and 8: the (macro × benchmark) ranking matrix with a fixed
/// 1024-iteration cost function.
pub fn linux_ranking(cfg: ExpConfig) -> RankingMatrix<KMacro> {
    linux_ranking_with(cfg, &SerialExecutor)
}

/// [`linux_ranking`] through an explicit executor (the wmm-harness seam):
/// the entire (macro × benchmark) matrix is one batch of independent
/// simulations.
pub fn linux_ranking_with(cfg: ExpConfig, exec: &dyn Executor) -> RankingMatrix<KMacro> {
    let m = machine(Arch::ArmV8);
    let strategy = default_arm_strategy();
    let suite = kernel_suite(cfg.scale);
    let benches: Vec<&dyn BenchSpec<KMacro>> =
        suite.iter().map(|b| b as &dyn BenchSpec<KMacro>).collect();
    let cf = CostFunction {
        iters: 1024,
        stack_spill: true,
    };
    ranking_matrix_with(
        &m,
        &benches,
        &strategy,
        &KMacro::ALL,
        cf,
        kernel_envelope(),
        cfg.run,
        exec,
    )
}

/// §4.3: nop padding vs the unmodified kernel (paper: mean −1.9%, worst
/// −6.6% on netperf).
pub fn kernel_nop_overhead(cfg: ExpConfig) -> Vec<StrategyDelta> {
    let m = machine(Arch::ArmV8);
    let strategy = default_arm_strategy();
    let tight = compute_envelope(
        KMacro::ALL.as_ref(),
        &[&strategy as &dyn FencingStrategy<KMacro>],
        0,
    );
    let base_rw = SiteRewriter::new(&strategy, Injection::None, tight);
    let pad_rw = SiteRewriter::new(&strategy, Injection::None, kernel_envelope());
    kernel_suite(cfg.scale)
        .iter()
        .map(|bench| StrategyDelta {
            bench: bench.name().to_string(),
            cmp: measure_relative(&m, bench, &base_rw, &pad_rw, cfg.run),
        })
        .collect()
}

/// Fig. 9: `read_barrier_depends` sensitivity sweeps on the six most
/// interesting kernel benchmarks.
pub fn fig9_rbd_sweeps(cfg: ExpConfig) -> Vec<SweepResult> {
    fig9_rbd_sweeps_with(cfg, &SerialExecutor)
}

/// [`fig9_rbd_sweeps`] through an explicit executor (the wmm-harness
/// seam): each benchmark's sweep is one batch of independent simulations.
pub fn fig9_rbd_sweeps_with(cfg: ExpConfig, exec: &dyn Executor) -> Vec<SweepResult> {
    let m = machine(Arch::ArmV8);
    let strategy = default_arm_strategy();
    let cal = Calibration::measure(&m, true, 12);
    let env = kernel_envelope();
    [
        "ebizzy",
        "xalan",
        "netperf_udp",
        "osm_stack",
        "lmbench",
        "netperf_tcp",
    ]
    .iter()
    .map(|name| {
        let bench = KernelBench::new(kernel_profile(name).expect("profile exists"), cfg.scale);
        sweep_with(
            &m,
            &bench,
            &strategy,
            SweepTarget::Path(KMacro::ReadBarrierDepends),
            &cal,
            &pow2_targets(0, 9),
            env.clone(),
            cfg.run,
            exec,
        )
    })
    .collect()
}

/// Fig. 10: relative performance of the six rbd fencing strategies on the
/// six benchmarks, against the nop-padded base case.
pub fn fig10_rbd_strategies(cfg: ExpConfig) -> Vec<(RbdStrategy, Vec<StrategyDelta>)> {
    let m = machine(Arch::ArmV8);
    let env = kernel_envelope();
    let base = rbd_strategy(RbdStrategy::BaseCase);
    let base_rw = SiteRewriter::new(&base, Injection::None, env.clone());
    let benches: Vec<KernelBench> = [
        "ebizzy",
        "xalan",
        "netperf_udp",
        "osm_stack",
        "lmbench",
        "netperf_tcp",
    ]
    .iter()
    .map(|n| KernelBench::new(kernel_profile(n).expect("exists"), cfg.scale))
    .collect();
    let bases: Vec<_> = benches
        .iter()
        .map(|b| measure(&m, b, &base_rw, cfg.run))
        .collect();

    RbdStrategy::ALL
        .iter()
        .map(|s| {
            let strat = rbd_strategy(*s);
            let rw = SiteRewriter::new(&strat, Injection::None, env.clone());
            let deltas = benches
                .iter()
                .zip(&bases)
                .map(|(b, base_m)| {
                    let test = measure(&m, b, &rw, cfg.run);
                    StrategyDelta {
                        bench: b.name().to_string(),
                        cmp: Comparison::of_times(&test.times_ns, &base_m.times_ns),
                    }
                })
                .collect();
            (*s, deltas)
        })
        .collect()
}

/// §5 (related work, Marino et al.): an SC-preserving fencing strategy —
/// every kernel macro lowered to a full `dmb ish`, and the `_ONCE`
/// annotations fenced too, approximating what an SC-preserving compiler
/// would emit at shared accesses. The paper conjectures ARM could stay
/// within Marino's 34% maximum slowdown but not replicate their 3.8% x86
/// mean. Returns per-benchmark relative performance vs the default kernel.
pub fn sc_strategy_experiment(cfg: ExpConfig) -> Vec<StrategyDelta> {
    let m = machine(Arch::ArmV8);
    let base = default_arm_strategy();
    let mut sc = default_arm_strategy().named("SC-preserving");
    for mac in KMacro::ALL {
        sc = sc.with(mac, vec![Instr::Fence(FenceKind::DmbIsh)]);
    }
    let env = {
        let paths: Vec<KMacro> = KMacro::ALL.to_vec();
        let strategies: Vec<_> = RbdStrategy::ALL.iter().map(|s| rbd_strategy(*s)).collect();
        let mut refs: Vec<&dyn FencingStrategy<KMacro>> = strategies
            .iter()
            .map(|s| s as &dyn FencingStrategy<KMacro>)
            .collect();
        refs.push(&sc);
        compute_envelope(&paths, &refs, 5)
    };
    let base_rw = SiteRewriter::new(&base, Injection::None, env.clone());
    let sc_rw = SiteRewriter::new(&sc, Injection::None, env);
    kernel_suite(cfg.scale)
        .iter()
        .map(|bench| StrategyDelta {
            bench: bench.name().to_string(),
            cmp: measure_relative(&m, bench, &base_rw, &sc_rw, cfg.run),
        })
        .collect()
}

/// §4.3.1: equivalent per-invocation cost `a` of each rbd strategy,
/// computed via Eq. 2 from (a) the lmbench aggregate and (b) the mean over
/// the other benchmarks. Returns `(strategy, a_lmbench, a_others)` rows.
///
/// Paper values: ctrl 4.6/10.1, ctrl+isb 24.5/24.5, dmb ishld 10.7/1.8,
/// dmb ish 11.0/10.7, la/sr 21.7/15.9 ns — with the ctrl and ishld
/// micro/macro divergences being the headline observations.
pub fn rbd_cost_estimates(cfg: ExpConfig) -> Vec<(RbdStrategy, f64, f64)> {
    let m = machine(Arch::ArmV8);
    let env = kernel_envelope();
    let cal = Calibration::measure(&m, true, 12);
    let base = rbd_strategy(RbdStrategy::BaseCase);

    // Sensitivities to the rbd code path, per benchmark.
    let bench_names = ["ebizzy", "xalan", "netperf_udp", "osm_stack", "netperf_tcp"];
    let mut k_of: HashMap<String, f64> = HashMap::new();
    let mut benches: Vec<KernelBench> = vec![];
    for n in bench_names {
        benches.push(KernelBench::new(
            kernel_profile(n).expect("exists"),
            cfg.scale,
        ));
    }
    let lm_subs = lmbench_subs(cfg.scale);
    let k_for = |bench: &KernelBench| -> Option<f64> {
        let r = sweep(
            &m,
            bench,
            &base,
            SweepTarget::Path(KMacro::ReadBarrierDepends),
            &cal,
            &pow2_targets(0, 9),
            env.clone(),
            cfg.run,
        );
        r.fit.map(|f| f.k)
    };
    for b in &benches {
        if let Some(k) = k_for(b) {
            k_of.insert(b.name().to_string(), k);
        }
    }
    // lmbench: aggregate of the sub-benchmarks (arithmetic mean post
    // comparison, as the paper specifies).
    let lm_ks: Vec<f64> = lm_subs.iter().filter_map(k_for).collect();

    let base_rw = SiteRewriter::new(&base, Injection::None, env.clone());
    let mut rows = vec![];
    for s in [
        RbdStrategy::Ctrl,
        RbdStrategy::CtrlIsb,
        RbdStrategy::DmbIshld,
        RbdStrategy::DmbIsh,
        RbdStrategy::LaSr,
    ] {
        let strat = rbd_strategy(s);
        let rw = SiteRewriter::new(&strat, Injection::None, env.clone());

        // lmbench estimate: mean of per-sub estimates.
        let mut lm_as = vec![];
        for (sub, k) in lm_subs.iter().zip(&lm_ks) {
            let cmp = measure_relative(&m, sub, &base_rw, &rw, cfg.run);
            if *k > 1e-6 {
                lm_as.push(wmmbench::model::estimate_cost(*k, cmp.ratio));
            }
        }
        let a_lm = if lm_as.is_empty() {
            f64::NAN
        } else {
            lm_as.iter().sum::<f64>() / lm_as.len() as f64
        };

        // Other benchmarks.
        let mut other_as = vec![];
        for b in &benches {
            let Some(&k) = k_of.get(b.name()) else {
                continue;
            };
            if k < 1e-5 {
                continue; // too insensitive to invert Eq. 2 meaningfully
            }
            let cmp = measure_relative(&m, b, &base_rw, &rw, cfg.run);
            other_as.push(wmmbench::model::estimate_cost(k, cmp.ratio));
        }
        let a_others = if other_as.is_empty() {
            f64::NAN
        } else {
            other_as.iter().sum::<f64>() / other_as.len() as f64
        };
        rows.push((s, a_lm, a_others));
    }
    rows
}

// ---------------------------------------------------------------------------
// Fence attribution: observed simulator stall cycles vs Eq. 2 inference
// ---------------------------------------------------------------------------

/// One observed-vs-inferred fence cost attribution row: the same fencing
/// change costed two independent ways — the simulator's own per-execution
/// stall cycles (ground truth flowing through the `run_batch_stats` seam)
/// and the Eq. 2 inversion of the measured performance ratio under the
/// benchmark's fitted sensitivity.
#[derive(Debug, Clone)]
pub struct AttributionRow {
    /// Campaign the row belongs to (`"fig5-arm"` or `"fig9-kernel"`).
    pub campaign: &'static str,
    /// Benchmark name.
    pub bench: String,
    /// Fence mnemonic being attributed.
    pub fence: &'static str,
    /// Fitted sensitivity `k` used for the Eq. 2 inversion.
    pub k: f64,
    /// Measured relative performance `p` of the fenced vs unfenced
    /// configuration.
    pub rel_perf: f64,
    /// Fence executions attributed (the differential count).
    pub fence_execs: u64,
    /// Observed ns per invocation: attributed stall cycles / executions,
    /// converted at the core clock.
    pub observed_ns: f64,
    /// Eq. 2 inferred ns per invocation: `estimate_cost(k, p)`.
    pub eq2_ns: f64,
}

impl AttributionRow {
    /// The agreement factor between the two costings: `max(obs/eq2,
    /// eq2/obs)`. 1.0 is perfect; the repository's acceptance bar is 2.0.
    /// Non-positive or non-finite inputs yield infinity.
    pub fn agreement(&self) -> f64 {
        let (a, b) = (self.observed_ns, self.eq2_ns);
        if !a.is_finite() || !b.is_finite() || a <= 0.0 || b <= 0.0 {
            return f64::INFINITY;
        }
        (a / b).max(b / a)
    }
}

/// One per-*site* observed fence cost, the finer-grained companion of an
/// [`AttributionRow`]: the same Eq. 2 per-invocation estimate, set against
/// the stall cycles one specific site's fences actually paid.
#[derive(Debug, Clone)]
pub struct SiteCostRow {
    /// Campaign the row belongs to.
    pub campaign: &'static str,
    /// Benchmark name.
    pub bench: String,
    /// Stable site name (from the sited link's `SiteMap`).
    pub site: String,
    /// Fence mnemonic executed at the site.
    pub fence: &'static str,
    /// Fence executions at this site across the measurement samples.
    pub fences: u64,
    /// Observed ns per invocation at this site.
    pub observed_ns: f64,
    /// The benchmark-level Eq. 2 inferred ns per invocation (one estimate
    /// per benchmark — Eq. 2 sees only the aggregate slowdown).
    pub eq2_ns: f64,
}

/// The attribution rows for one campaign plus the sensitivity fits they
/// were inverted through (for the run manifest).
#[derive(Debug, Clone, Default)]
pub struct AttributionReport {
    /// Per-(benchmark, fence) attribution rows.
    pub rows: Vec<AttributionRow>,
    /// Per-site observed costs backing the rows, where the campaign runs
    /// sited batches (fig5-arm does; fig9's differential design compares
    /// two strategies whose site sets differ, so it stays per-kind).
    pub site_rows: Vec<SiteCostRow>,
    /// `(label, fit)` pairs, one per benchmark whose fit converged.
    pub fits: Vec<(String, SensitivityFit)>,
}

/// Run one measurement batch through the stats seam: sample wall times
/// (warm-ups dropped) plus the simulation totals aggregated over the
/// freshly simulated sample jobs. Totals cover only jobs the executor
/// actually simulated — batches answered from a result cache contribute
/// times but no stats, which is why attribution batches run *before* any
/// sweep that would seed the cache with the same cells.
fn batch_with_stats<P: Clone + Eq + Hash>(
    m: &Machine,
    bench: &dyn BenchSpec<P>,
    rw: &SiteRewriter<'_, P>,
    cfg: RunConfig,
    exec: &dyn Executor,
) -> (Vec<f64>, SimTotals) {
    let (jobs, _) = measurement_jobs(m, bench, rw, cfg);
    let outcomes = exec.run_batch_stats(jobs);
    let samples = &outcomes[cfg.warmups..];
    let times: Vec<f64> = samples.iter().map(|o| o.wall_ns).collect();
    let mut totals = SimTotals::default();
    for o in samples {
        if let Some(s) = &o.stats {
            totals.merge_stats(s);
        }
    }
    (times, totals)
}

/// Fig. 5 ARM campaign attribution: for each DaCapo benchmark, measure a
/// fence-free JVM against one that emits a single `dmb ish` per barrier
/// site, so per-site and per-fence costs coincide. The benchmark's
/// sensitivity `k` comes from an all-sites cost-function sweep over the
/// same fence-free baseline; Eq. 2 then converts the measured ratio into
/// an inferred ns-per-invocation to set against the simulator's observed
/// stall cycles per `dmb ish`.
pub fn fig5_arm_fence_attribution(cfg: ExpConfig, exec: &dyn Executor) -> AttributionReport {
    let m = machine(Arch::ArmV8);
    let spec = m.spec().clone();
    let nofence = FnStrategy::new("no-fence", |_: &Combined| vec![]);
    let dmb = FnStrategy::new("dmb-per-site", |_: &Combined| {
        vec![Instr::Fence(FenceKind::DmbIsh)]
    });
    let env = jvm_envelope(Arch::ArmV8);
    let cal = Calibration::measure(&m, jvm_costfn_spill(Arch::ArmV8), 12);
    let mut report = AttributionReport::default();
    for bench in dacapo_suite(JitConfig::jdk8(Arch::ArmV8), cfg.scale) {
        let base_rw = SiteRewriter::new(&nofence, Injection::None, env.clone());
        let test_rw = SiteRewriter::new(&dmb, Injection::None, env.clone());
        // Attribution batches first: their stats must be freshly simulated,
        // and the sweep below then reuses the base cells from cache. The
        // test side runs sited so the per-kind totals can also be reported
        // per site; its times and totals are bit-identical to the unsited
        // batch (the probe only observes values the executor computed).
        let (base_t, base_s) = batch_with_stats(&m, &bench, &base_rw, cfg.run, exec);
        let test_b = crate::profiling::batch_with_profile(&m, &bench, &test_rw, cfg.run, exec);
        let (test_t, test_s) = (test_b.times, test_b.totals);
        let cmp = Comparison::of_times(&test_t, &base_t);
        let s = sweep_with(
            &m,
            &bench,
            &nofence,
            SweepTarget::AllSites,
            &cal,
            &pow2_targets(0, 8),
            env.clone(),
            cfg.run,
            exec,
        );
        let Some(fit) = s.fit else { continue };
        let execs = *test_s
            .counters
            .fence_counts
            .get(&FenceKind::DmbIsh)
            .unwrap_or(&0);
        if execs == 0 || fit.k < 1e-5 {
            continue; // no fences ran, or too insensitive to invert Eq. 2
        }
        // A full barrier's observed cost is its own stall cycles plus the
        // store-buffer stalls it induces downstream (drains serialize the
        // buffer, so pressure the baseline absorbed for free now shows up
        // as stalls). Eq. 2 sees total slowdown, so the observed side must
        // count the same effects.
        let stall = test_s
            .counters
            .fence_cycles
            .get(&FenceKind::DmbIsh)
            .unwrap_or(&0.0)
            + (test_s.sb_stall_cycles - base_s.sb_stall_cycles);
        let eq2_ns = estimate_cost(fit.k, cmp.ratio);
        report.rows.push(AttributionRow {
            campaign: "fig5-arm",
            bench: bench.name().to_string(),
            fence: FenceKind::DmbIsh.mnemonic(),
            k: fit.k,
            rel_perf: cmp.ratio,
            fence_execs: execs,
            observed_ns: spec.ns(stall) / execs as f64,
            eq2_ns,
        });
        // The per-site decomposition of the same observed cost: each
        // site's own stall cycles per execution (the sb-drain surcharge
        // above is a whole-run differential and has no per-site split).
        for (site, sp) in &test_b.profile.sites {
            if sp.fences == 0 {
                continue;
            }
            report.site_rows.push(SiteCostRow {
                campaign: "fig5-arm",
                bench: bench.name().to_string(),
                site: site.clone(),
                fence: FenceKind::DmbIsh.mnemonic(),
                fences: sp.fences,
                observed_ns: spec.ns(sp.fence_cycles) / sp.fences as f64,
                eq2_ns,
            });
        }
        report
            .fits
            .push((format!("fig5-arm/{}", bench.name()), fit));
    }
    report
}

/// Fig. 9 kernel campaign attribution: per-kind *differential* costing of
/// the fence-based `read_barrier_depends` strategies against the base-case
/// kernel. Both kernels emit the default fences everywhere else, so
/// subtracting the base run's per-kind stall cycles and counts isolates
/// exactly the fences the strategy added at rbd sites. The sensitivity `k`
/// comes from the benchmark's rbd-path sweep (Fig. 9), mirroring how the
/// paper's §4.3.1 Eq. 2 estimates are produced.
pub fn fig9_fence_attribution(cfg: ExpConfig, exec: &dyn Executor) -> AttributionReport {
    let m = machine(Arch::ArmV8);
    let spec = m.spec().clone();
    let env = kernel_envelope();
    let cal = Calibration::measure(&m, true, 12);
    let base = rbd_strategy(RbdStrategy::BaseCase);
    let base_rw = SiteRewriter::new(&base, Injection::None, env.clone());
    // The strategies whose rbd sequence is a hardware fence, with the kind
    // the differential attributes (ctrl has no fence; la/sr also refences
    // the _ONCE macros, so its delta is not a single-kind attribution).
    let cases = [
        (RbdStrategy::DmbIshld, FenceKind::DmbIshLd),
        (RbdStrategy::DmbIsh, FenceKind::DmbIsh),
        (RbdStrategy::CtrlIsb, FenceKind::Isb),
    ];
    let mut report = AttributionReport::default();
    for name in ["ebizzy", "netperf_udp", "lmbench", "netperf_tcp"] {
        let bench = KernelBench::new(kernel_profile(name).expect("profile exists"), cfg.scale);
        // Differential batches first (fresh stats), sweep afterwards.
        let (base_t, base_s) = batch_with_stats(&m, &bench, &base_rw, cfg.run, exec);
        let mut measured = Vec::with_capacity(cases.len());
        for (s, kind) in cases {
            let strat = rbd_strategy(s);
            let rw = SiteRewriter::new(&strat, Injection::None, env.clone());
            let (test_t, test_s) = batch_with_stats(&m, &bench, &rw, cfg.run, exec);
            measured.push((s, kind, Comparison::of_times(&test_t, &base_t), test_s));
        }
        let sweep_res = sweep_with(
            &m,
            &bench,
            &base,
            SweepTarget::Path(KMacro::ReadBarrierDepends),
            &cal,
            &pow2_targets(0, 9),
            env.clone(),
            cfg.run,
            exec,
        );
        let Some(fit) = sweep_res.fit else { continue };
        // The paper's §3 usability rule of thumb, applied to attribution: a
        // benchmark whose rbd sensitivity is comparatively low (ebizzy sits
        // at k ≈ 0.001, 3–9x below the network/lmbench kernels) leaves the
        // Eq. 2 inversion dominated by measurement noise in `p`, so its
        // inferred cost is not a meaningful cross-check. Same reasoning as
        // `SensitivityFit::usable`.
        if !fit.usable(2e-3, 0.5) {
            continue; // too insensitive for a stable Eq. 2 inversion
        }
        for (_, kind, cmp, test_s) in &measured {
            let base_execs = *base_s.counters.fence_counts.get(kind).unwrap_or(&0);
            let test_execs = *test_s.counters.fence_counts.get(kind).unwrap_or(&0);
            if test_execs <= base_execs {
                continue; // strategy added no fences of this kind
            }
            let execs = test_execs - base_execs;
            // Attribute the *whole* extra stall the strategy caused: the
            // per-kind delta isolates the rbd-site fences themselves, the
            // remaining fence kinds' delta captures pipeline knock-on at
            // the fences both kernels share, and the store-buffer delta
            // captures induced drain pressure. Eq. 2 infers from the total
            // slowdown, so observed must sum the same effects.
            let stall = (test_s.total_fence_stall_cycles() - base_s.total_fence_stall_cycles())
                + (test_s.sb_stall_cycles - base_s.sb_stall_cycles);
            report.rows.push(AttributionRow {
                campaign: "fig9-kernel",
                bench: bench.name().to_string(),
                fence: kind.mnemonic(),
                k: fit.k,
                rel_perf: cmp.ratio,
                fence_execs: execs,
                observed_ns: spec.ns(stall) / execs as f64,
                eq2_ns: estimate_cost(fit.k, cmp.ratio),
            });
        }
        report
            .fits
            .push((format!("fig9-kernel/{}", bench.name()), fit));
    }
    report
}

// ---------------------------------------------------------------------------
// The dstruct campaign: reclamation-scheme sensitivity and ranking
// ---------------------------------------------------------------------------

/// Envelope for dstruct experiments: covers all four reclamation-scheme
/// strategies plus the (stack-spilling) cost function, so NR/EBR/HP images
/// are size-identical and the comparison is fence cost alone.
pub fn dstruct_envelope() -> HashMap<wmm_dstruct::DSite, u64> {
    let paths: Vec<wmm_dstruct::DSite> = wmm_dstruct::DSite::ALL.to_vec();
    let strategies = wmm_dstruct::scheme_strategies();
    let refs: Vec<&dyn FencingStrategy<wmm_dstruct::DSite>> = strategies
        .iter()
        .map(|s| s as &dyn FencingStrategy<wmm_dstruct::DSite>)
        .collect();
    let extra = CostFunction {
        iters: 1,
        stack_spill: true,
    }
    .size();
    compute_envelope(&paths, &refs, extra)
}

/// fig_dstruct part 1: sensitivity of each data-structure benchmark to the
/// hazard-protect code path (the hottest reclamation site) under the
/// classic `hp-dmb` scheme.
pub fn fig_dstruct_sweeps_with(cfg: ExpConfig, exec: &dyn Executor) -> Vec<SweepResult> {
    let m = machine(Arch::ArmV8);
    let strategy = wmm_dstruct::hp_dmb_strategy();
    let cal = Calibration::measure(&m, true, 12);
    let env = dstruct_envelope();
    wmm_dstruct::dstruct_suite(cfg.scale)
        .iter()
        .map(|bench| {
            sweep_with(
                &m,
                bench,
                &strategy,
                SweepTarget::Path(wmm_dstruct::DSite::HpProtect),
                &cal,
                &pow2_targets(0, 8),
                env.clone(),
                cfg.run,
                exec,
            )
        })
        .collect()
}

/// fig_dstruct part 2: each reclamation scheme's relative performance
/// against the NR (no reclamation) baseline on every benchmark. Ratio < 1
/// means the scheme is slower than the unsafe baseline; the interesting
/// order is among the safe schemes — on protect-dense workloads `hp-dmb`
/// must lose to the amortising (`ebr`) and asymmetric (`hp-asym`) schemes.
pub fn dstruct_ranking_with(cfg: ExpConfig, exec: &dyn Executor) -> SchemeRanking {
    let m = machine(Arch::ArmV8);
    let env = dstruct_envelope();
    let base = wmm_dstruct::nr_strategy();
    let base_rw = SiteRewriter::new(&base, Injection::None, env.clone());
    let suite = wmm_dstruct::dstruct_suite(cfg.scale);
    wmm_dstruct::scheme_strategies()
        .iter()
        .filter(|s| s.name() != "nr")
        .map(|scheme| {
            let rw = SiteRewriter::new(scheme, Injection::None, env.clone());
            let deltas = suite
                .iter()
                .map(|bench| StrategyDelta {
                    bench: bench.name().to_string(),
                    cmp: measure_relative_with(&m, bench, &base_rw, &rw, cfg.run, exec),
                })
                .collect();
            (scheme.name().to_string(), deltas)
        })
        .collect()
}

/// Per-scheme ranking rows: `(scheme_name, per-benchmark deltas vs nr)`.
pub type SchemeRanking = Vec<(String, Vec<StrategyDelta>)>;

/// The whole fig_dstruct campaign — protect-path sweeps plus the scheme
/// ranking — folded into one schema-gated manifest. Shared by the
/// `fig_dstruct` binary and the determinism tests so both see byte-for-byte
/// the same canonical content.
pub fn fig_dstruct_manifest_with(
    cfg: ExpConfig,
    exec: &dyn Executor,
) -> (wmm_harness::RunManifest, Vec<SweepResult>, SchemeRanking) {
    let mut manifest = wmm_harness::RunManifest::new("fig_dstruct", "arm");
    let sweeps = fig_dstruct_sweeps_with(cfg, exec);
    for s in &sweeps {
        if let Some(fit) = &s.fit {
            manifest.push_fit(&s.benchmark, fit);
        }
        for p in &s.points {
            // Label by the requested target, not the calibrated actual:
            // neighbouring small targets can calibrate to the same actual
            // ns and the gate rejects duplicate labels.
            manifest.push_cell(format!("{}/t={:.0}", s.benchmark, p.target_ns), p.rel_perf);
        }
    }
    let ranking = dstruct_ranking_with(cfg, exec);
    for (scheme, deltas) in &ranking {
        for d in deltas {
            manifest.push_cell(format!("rank/{}/{scheme}", d.bench), d.cmp.ratio);
        }
    }
    (manifest, sweeps, ranking)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelopes_cover_all_paths() {
        let env = jvm_envelope(Arch::ArmV8);
        assert_eq!(env.len(), all_site_combinations().len());
        let kenv = kernel_envelope();
        assert_eq!(kenv.len(), 14);
        // All sites leave room for the 5-word cost function; the rbd site
        // additionally covers the 3-word ctrl/ctrl+isb sequences.
        assert!(kenv.values().all(|&v| v >= 6));
        assert_eq!(kenv[&KMacro::ReadBarrierDepends], 8);
    }

    #[test]
    fn fence_micro_matches_paper() {
        let rows = fence_microbenchmarks();
        let get = |l: &str| rows.iter().find(|(n, _)| n == l).unwrap().1;
        assert!((get("power sync") - 18.9).abs() < 1.0);
        assert!((get("power lwsync") - 6.1).abs() < 0.5);
        // dmb variants indistinguishable in vitro.
        let ish = get("arm dmb ish");
        assert!((ish - get("arm dmb ishld")).abs() / ish < 0.05);
        assert!((ish - get("arm dmb ishst")).abs() / ish < 0.05);
    }
}
