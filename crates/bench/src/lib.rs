//! # wmm-bench
//!
//! Experiment drivers regenerating every table and figure of
//! *Benchmarking Weak Memory Models*. Each `fig*`/`table*` binary in
//! `src/bin/` prints a paper-vs-measured artefact and writes CSV into
//! `results/`; the logic lives here so integration tests can assert the
//! shapes without shelling out.
//!
//! | Artefact | Function | Binary |
//! |---|---|---|
//! | Fig. 1 | [`experiments::fig1_example_fit`] | `fig1_fit` |
//! | Fig. 4 | [`experiments::fig4_costfn_calibration`] | `fig4_costfn` |
//! | Fig. 5 | [`experiments::fig5_openjdk_sweeps`] | `fig5_openjdk_sweep` |
//! | Fig. 6 | [`experiments::fig6_spark_elementals`] | `fig6_spark_barriers` |
//! | §4.2.1 tables | [`experiments::storestore_experiment`] and friends | `table_jvm_strategies` |
//! | Fig. 7 | [`experiments::linux_ranking`] | `fig7_macro_ranking` |
//! | Fig. 8 | [`experiments::linux_ranking`] | `fig8_bench_ranking` |
//! | Fig. 9 | [`experiments::fig9_rbd_sweeps`] | `fig9_rbd_sensitivity` |
//! | Fig. 10 | [`experiments::fig10_rbd_strategies`] | `fig10_rbd_strategies` |
//! | §4.3.1 cost table | [`experiments::rbd_cost_estimates`] | `table_rbd_costs` |
//! | litmus matrix | `wmm_litmus::suite::run_full_suite` | `litmus_matrix` |
//! | fence audit | `wmm_analyze::analyze` + Eq. 1 pricing | `fence_lint` |
//! | fence synthesis | `wmm_analyze::synthesize` + dual validation | `fence_synth` |
//! | per-site profiles | [`profiling::profile_campaign`] | `wmm_profile` |
//! | cross-JIT site diff | [`profiling`] + `wmm_obs::Profile::diff` | `wmm_tracediff` |
//! | reclamation schemes | [`experiments::fig_dstruct_manifest_with`] | `fig_dstruct` |
//! | observed run report | [`report::collect_report`] | `wmm_report` |
//! | perf trajectory gate | [`perf::run_campaigns`] | `wmm_bench` |
//!
//! The [`streams`] module is the shared stream-ingestion path for the
//! static checkers: platform instruction streams go through one
//! [`streams::audit_streams`] / [`streams::synth_stream_case`] funnel, so
//! `fence_lint` and `fence_synth` need no per-platform glue beyond the
//! idiom builders themselves.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod perf;
pub mod profiling;
pub mod report;
pub mod streams;
pub mod wps;

pub use experiments::*;
