//! The `wmm_bench` engine: end-to-end campaign throughput measurement with
//! a perf-trajectory gate.
//!
//! A *campaign* is one full figure-producing experiment run cold (fresh
//! executor, fresh cache, every job simulated). Each campaign is run
//! `warmup + iters` times; the warmup iterations prime the allocator and
//! branch predictors and are discarded, the measured iterations yield a
//! wall-time distribution (p50/p95/p99) and a best-iteration throughput in
//! jobs per second — the least noise-sensitive statistic on shared
//! hardware, and the one the gate compares.
//!
//! Alongside timing, every iteration folds its *scientific results* (the
//! sweep fits and points) into an order-sensitive checksum. The checksum
//! must agree across iterations — simulation is deterministic, so any
//! disagreement is a correctness bug, not noise — and is a **structural**
//! field of the report: the gate requires it to match the committed
//! [`BENCH_FILE`] exactly, which pins the simulator's observable behaviour
//! at the moment the perf numbers were recorded.
//!
//! The report deliberately contains no wall-clock timestamps or host
//! identifiers: re-running on the same machine state should reproduce it up
//! to timing jitter.

use std::time::Instant;

use wmm_analyze::{critical_cycles_wps, synthesize_wps, CostModel, CycleCache, SynthConfig};
use wmm_harness::{ParallelExecutor, SimCache};
use wmm_obs::MetricsRegistry;
use wmm_sim::arch::Arch;
use wmmbench::json::Json;
use wmmbench::sensitivity::SweepResult;

use crate::wps::{make_bundles, Bundle, WPS_MODEL};
use crate::{fig5_openjdk_sweeps_with, ExpConfig};

/// Report schema identifier; bump on incompatible layout changes.
pub const BENCH_SCHEMA: &str = "wmm_bench/1";

/// Default committed report path, relative to the repo root.
pub const BENCH_FILE: &str = "BENCH_wmm.json";

/// What to measure and how hard.
#[derive(Debug, Clone)]
pub struct BenchOptions {
    /// Use the quick experiment config (CI-sized) instead of the full one.
    pub quick: bool,
    /// Worker threads (`None` = auto, same resolution as the executors).
    pub threads: Option<usize>,
    /// Discarded priming iterations per campaign.
    pub warmup: usize,
    /// Measured iterations per campaign.
    pub iters: usize,
}

impl BenchOptions {
    /// Defaults for a mode: 1 warmup, 3 measured (quick) / 5 measured
    /// (full).
    pub fn new(quick: bool) -> Self {
        BenchOptions {
            quick,
            threads: None,
            warmup: 1,
            iters: if quick { 3 } else { 5 },
        }
    }

    fn config(&self) -> ExpConfig {
        if self.quick {
            ExpConfig::quick()
        } else {
            ExpConfig::full()
        }
    }

    /// Mode label recorded in (and gated against) the report.
    pub fn mode(&self) -> &'static str {
        if self.quick {
            "quick"
        } else {
            "full"
        }
    }
}

/// Measured performance of one campaign.
#[derive(Debug, Clone)]
pub struct CampaignPerf {
    /// Campaign name (e.g. `fig5_arm`).
    pub name: String,
    /// Jobs simulated per iteration.
    pub jobs: u64,
    /// Checksum over the campaign's scientific results (hex), identical
    /// across iterations by the determinism contract.
    pub checksum: String,
    /// Measured iteration wall times, ms, in chronological order.
    pub iter_ms: Vec<f64>,
}

impl CampaignPerf {
    fn sorted_ms(&self) -> Vec<f64> {
        let mut v = self.iter_ms.clone();
        v.sort_by(f64::total_cmp);
        v
    }

    /// Nearest-rank percentile of the iteration wall times.
    pub fn percentile_ms(&self, p: f64) -> f64 {
        percentile(&self.sorted_ms(), p)
    }

    /// Fastest iteration, ms.
    pub fn best_ms(&self) -> f64 {
        self.sorted_ms().first().copied().unwrap_or(f64::NAN)
    }

    /// Throughput of the fastest iteration, jobs per second.
    pub fn jobs_per_sec_best(&self) -> f64 {
        self.jobs as f64 / (self.best_ms() / 1e3)
    }
}

/// Nearest-rank percentile over an **ascending-sorted** slice.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = (p / 100.0 * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Order-sensitive FNV-1a over the deterministic fields of a campaign's
/// sweep results. Floats are folded by their exact bit patterns, so two
/// checksums agree iff the science is bit-identical.
fn results_checksum(sweeps: &[SweepResult]) -> String {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    let mut fold = |bytes: &[u8]| {
        for &b in bytes {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for s in sweeps {
        fold(s.benchmark.as_bytes());
        fold(s.arch.as_bytes());
        fold(s.code_path.as_bytes());
        for p in &s.points {
            for f in [p.target_ns, p.actual_ns, p.rel_perf, p.rel_min, p.rel_max] {
                fold(&f.to_bits().to_le_bytes());
            }
            fold(&p.iters.to_le_bytes());
        }
        match &s.fit {
            Some(fit) => {
                for f in [fit.k, fit.k_std_err, fit.r_squared] {
                    fold(&f.to_bits().to_le_bytes());
                }
            }
            None => fold(b"nofit"),
        }
    }
    format!("{h:016x}")
}

/// Run one campaign `warmup + iters` times, cold each time, and collect
/// its perf record. `body` performs one full cold iteration and returns
/// `(jobs, checksum)` — its work-unit count and a checksum over its
/// scientific results. Panics if any iteration's checksum disagrees with
/// the first — that would be a determinism regression, which no amount of
/// timing tolerance should absorb.
fn run_campaign(
    name: &str,
    opts: &BenchOptions,
    run_log: &mut dyn FnMut(&str),
    body: &mut dyn FnMut(&BenchOptions) -> (u64, String),
) -> CampaignPerf {
    let mut checksum = String::new();
    let mut jobs = 0;
    let mut iter_ms = Vec::with_capacity(opts.iters);
    for i in 0..opts.warmup + opts.iters {
        let t0 = Instant::now();
        let (n, sum) = body(opts);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        if checksum.is_empty() {
            checksum = sum;
        } else {
            assert_eq!(
                sum, checksum,
                "{name}: results changed between iterations — determinism bug"
            );
        }
        jobs = n;
        let phase = if i < opts.warmup { "warmup" } else { "measure" };
        run_log(&format!("{name} {phase} {i}: {ms:.1} ms, {jobs} jobs"));
        if i >= opts.warmup {
            iter_ms.push(ms);
        }
    }
    CampaignPerf {
        name: name.to_string(),
        jobs,
        checksum,
        iter_ms,
    }
}

/// One cold fig. 5 sweep iteration: fresh executor, fresh cache, every
/// job simulated.
fn fig5_iteration(arch: Arch, opts: &BenchOptions) -> (u64, String) {
    let exec = ParallelExecutor::new(opts.threads).with_cache(SimCache::in_memory());
    let sweeps = fig5_openjdk_sweeps_with(arch, opts.config(), &exec);
    (exec.telemetry().jobs, results_checksum(&sweeps))
}

/// The fig. 5 iteration with the full `wmm-obs` metrics layer attached:
/// a fresh registry per iteration, every batch updating the
/// `harness.exec.*` / `harness.worker.*` / `harness.cache.sim.*` metrics.
/// Same science as [`fig5_iteration`] — metrics observe, they never steer —
/// so its checksum must equal the plain campaign's, which the committed
/// report pins. The campaign exists to *price* observability: the
/// [`overhead_check`] compares its throughput against the bare run.
fn fig5_obs_iteration(arch: Arch, opts: &BenchOptions) -> (u64, String) {
    let registry = MetricsRegistry::new();
    let exec = ParallelExecutor::new(opts.threads)
        .with_cache(SimCache::in_memory())
        .with_metrics(&registry);
    let sweeps = fig5_openjdk_sweeps_with(arch, opts.config(), &exec);
    (exec.telemetry().jobs, results_checksum(&sweeps))
}

/// One WPS enumeration iteration over the generated bundles: several
/// cold rounds (fresh cycle cache each, every conflict component
/// enumerated) so the iteration is long enough to time. Jobs = critical
/// cycles enumerated, so the gated throughput is cycles per second.
fn wps_enum_iteration(bundles: &[Bundle], opts: &BenchOptions) -> (u64, String) {
    let rounds = if opts.quick { 16 } else { 32 };
    let mut h = wmm_harness::Fnv128::new();
    let mut cycles = 0u64;
    for _ in 0..rounds {
        let cache = CycleCache::in_memory();
        for b in bundles {
            let set = critical_cycles_wps(&b.graph, opts.threads, Some(&cache));
            cycles += set.len() as u64;
            h.bytes(format!("{set:?}").as_bytes());
        }
    }
    (cycles, format!("{:016x}", h.finish() as u64))
}

/// One cold WPS solve iteration: the full tiered pipeline (enumerate,
/// approx tier, exact oracle where gated) per bundle. Jobs = solved
/// instances, so the gated throughput is solves per second.
fn wps_solve_iteration(bundles: &[Bundle], opts: &BenchOptions) -> (u64, String) {
    let cache = CycleCache::in_memory();
    let costs = CostModel::priced(crate::streams::NOMINAL_K);
    let wps = wmm_analyze::WpsConfig {
        threads: opts.threads,
        ..wmm_analyze::WpsConfig::default()
    };
    let mut h = wmm_harness::Fnv128::new();
    let mut solves = 0u64;
    for b in bundles {
        let report = synthesize_wps(
            &b.graph,
            SynthConfig::for_model(WPS_MODEL),
            &costs,
            &wps,
            Some(&cache),
        )
        .expect("bundle synthesis");
        solves += 1;
        h.bytes(report.tier.label().as_bytes());
        h.bytes(format!("{:?}", report.placement.instruments).as_bytes());
        h.f64(report.placement.cost_ns);
        h.f64(report.approx_cost_ns);
    }
    (solves, format!("{:016x}", h.finish() as u64))
}

/// Measure every campaign in the suite: the fig. 5 OpenJDK sweep campaign
/// on both architectures — the simulator's end-to-end hot path (image
/// generation, calibration, linking, keying, simulation, fitting) — plus
/// the whole-program synthesis pipeline over the generated bundles, split
/// into its enumeration (cycles/sec) and tiered-solve (solves/sec) rates.
pub fn run_campaigns(opts: &BenchOptions, mut log: impl FnMut(&str)) -> Vec<CampaignPerf> {
    // Bundle packing is input preparation, not the measured pipeline:
    // build once, outside the timed iterations.
    let bundles = make_bundles(if opts.quick { 64 } else { 128 });
    let mut out = vec![
        run_campaign("fig5_arm", opts, &mut log, &mut |o| {
            fig5_iteration(Arch::ArmV8, o)
        }),
        // Measured back-to-back with fig5_arm so the overhead ratio compares
        // iterations taken under the same machine conditions.
        run_campaign("fig5_arm_obs", opts, &mut log, &mut |o| {
            fig5_obs_iteration(Arch::ArmV8, o)
        }),
        run_campaign("fig5_power", opts, &mut log, &mut |o| {
            fig5_iteration(Arch::Power7, o)
        }),
    ];
    out.push(run_campaign("wps_enum", opts, &mut log, &mut |o| {
        wps_enum_iteration(&bundles, o)
    }));
    out.push(run_campaign("wps_solve", opts, &mut log, &mut |o| {
        wps_solve_iteration(&bundles, o)
    }));
    out
}

/// Reference numbers embedded in a report: the same measurement taken with
/// a prior build of the tree (see `--reference` in the CLI).
#[derive(Debug, Clone)]
pub struct Reference {
    /// Human label for the prior build (e.g. a commit id).
    pub label: String,
    /// `(campaign name, best_ms, jobs_per_sec_best)` per campaign.
    pub campaigns: Vec<(String, f64, f64)>,
}

impl Reference {
    /// Extract reference numbers from a prior report.
    pub fn from_report(report: &Json, label: &str) -> Result<Reference, String> {
        let campaigns = report
            .get("campaigns")
            .and_then(Json::as_arr)
            .ok_or("reference report has no campaigns array")?
            .iter()
            .map(|c| {
                let f = |k: &str| {
                    c.get(k)
                        .and_then(Json::as_f64)
                        .ok_or_else(|| format!("reference campaign missing {k}"))
                };
                Ok((
                    c.get("name")
                        .and_then(Json::as_str)
                        .ok_or("reference campaign missing name")?
                        .to_string(),
                    f("best_ms")?,
                    f("jobs_per_sec_best")?,
                ))
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Reference {
            label: label.to_string(),
            campaigns,
        })
    }
}

/// Render a report. Structural fields (schema, mode, campaign names, job
/// counts, checksums) are exact; timing fields carry measurement noise and
/// are gated with tolerance.
pub fn report_json(opts: &BenchOptions, campaigns: &[CampaignPerf]) -> Json {
    let camp_json = campaigns
        .iter()
        .map(|c| {
            Json::obj(vec![
                ("name", Json::Str(c.name.clone())),
                ("jobs", Json::Num(c.jobs as f64)),
                ("checksum", Json::Str(c.checksum.clone())),
                (
                    "iter_ms",
                    Json::Arr(c.iter_ms.iter().map(|&m| Json::Num(m)).collect()),
                ),
                ("p50_ms", Json::Num(c.percentile_ms(50.0))),
                ("p95_ms", Json::Num(c.percentile_ms(95.0))),
                ("p99_ms", Json::Num(c.percentile_ms(99.0))),
                ("best_ms", Json::Num(c.best_ms())),
                ("jobs_per_sec_best", Json::Num(c.jobs_per_sec_best())),
            ])
        })
        .collect();
    let total_jobs: u64 = campaigns.iter().map(|c| c.jobs).sum();
    let total_best_ms: f64 = campaigns.iter().map(CampaignPerf::best_ms).sum();
    let fields = vec![
        ("schema", Json::Str(BENCH_SCHEMA.to_string())),
        ("mode", Json::Str(opts.mode().to_string())),
        (
            "threads",
            Json::Num(wmm_harness::resolve_threads(opts.threads) as f64),
        ),
        ("warmup", Json::Num(opts.warmup as f64)),
        ("iters", Json::Num(opts.iters as f64)),
        ("campaigns", Json::Arr(camp_json)),
        (
            "total",
            Json::obj(vec![
                ("jobs", Json::Num(total_jobs as f64)),
                ("best_ms", Json::Num(total_best_ms)),
                (
                    "jobs_per_sec_best",
                    Json::Num(total_jobs as f64 / (total_best_ms / 1e3)),
                ),
            ]),
        ),
    ];
    Json::obj(fields)
}

/// Set (or replace) a report's `reference` section: the same measurement
/// taken with a prior build, plus the derived `speedup_best` — the ratio of
/// summed best-iteration campaign times, prior over current.
pub fn attach_reference(report: &mut Json, r: &Reference) -> Result<(), String> {
    let total_best_ms = report
        .get("total")
        .and_then(|t| t.get("best_ms"))
        .and_then(Json::as_f64)
        .ok_or("report has no total.best_ms")?;
    let ref_total_ms: f64 = r.campaigns.iter().map(|(_, ms, _)| ms).sum();
    let reference = Json::obj(vec![
        ("label", Json::Str(r.label.clone())),
        (
            "campaigns",
            Json::Arr(
                r.campaigns
                    .iter()
                    .map(|(name, ms, jps)| {
                        Json::obj(vec![
                            ("name", Json::Str(name.clone())),
                            ("best_ms", Json::Num(*ms)),
                            ("jobs_per_sec_best", Json::Num(*jps)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("best_ms", Json::Num(ref_total_ms)),
        ("speedup_best", Json::Num(ref_total_ms / total_best_ms)),
    ]);
    let Json::Obj(pairs) = report else {
        return Err("report is not an object".to_string());
    };
    match pairs.iter_mut().find(|(k, _)| k == "reference") {
        Some((_, slot)) => *slot = reference,
        None => pairs.push(("reference".to_string(), reference)),
    }
    Ok(())
}

/// Compare a fresh measurement against the committed report. Structural
/// fields must match exactly; `jobs_per_sec_best` must be within a factor
/// of `tol` of the committed value, per campaign. Returns the list of
/// violations (empty = pass).
pub fn gate(
    committed: &Json,
    opts: &BenchOptions,
    current: &[CampaignPerf],
    tol: f64,
) -> Vec<String> {
    let mut bad = Vec::new();
    let stru = |key: &str, want: &str, bad: &mut Vec<String>| match committed
        .get(key)
        .and_then(Json::as_str)
    {
        Some(v) if v == want => {}
        Some(v) => bad.push(format!("{key}: committed {v:?} != current {want:?}")),
        None => bad.push(format!("{key}: missing from committed report")),
    };
    stru("schema", BENCH_SCHEMA, &mut bad);
    stru("mode", opts.mode(), &mut bad);
    let committed_campaigns = committed
        .get("campaigns")
        .and_then(Json::as_arr)
        .unwrap_or(&[]);
    if committed_campaigns.len() != current.len() {
        bad.push(format!(
            "campaign count: committed {} != current {}",
            committed_campaigns.len(),
            current.len()
        ));
        return bad;
    }
    for (c, cur) in committed_campaigns.iter().zip(current) {
        let name = c.get("name").and_then(Json::as_str).unwrap_or("?");
        if name != cur.name {
            bad.push(format!(
                "campaign name: committed {name} != current {}",
                cur.name
            ));
            continue;
        }
        if c.get("jobs").and_then(Json::as_f64) != Some(cur.jobs as f64) {
            bad.push(format!("{name}: job count differs from committed report"));
        }
        match c.get("checksum").and_then(Json::as_str) {
            Some(sum) if sum == cur.checksum => {}
            Some(sum) => bad.push(format!(
                "{name}: results checksum {sum} != current {} — simulator behaviour changed",
                cur.checksum
            )),
            None => bad.push(format!("{name}: committed report has no checksum")),
        }
        if let Some(jps) = c.get("jobs_per_sec_best").and_then(Json::as_f64) {
            let now = cur.jobs_per_sec_best();
            let ratio = now / jps;
            if !(1.0 / tol..=tol).contains(&ratio) {
                bad.push(format!(
                    "{name}: throughput {now:.1} jobs/s vs committed {jps:.1} \
                     (ratio {ratio:.2} outside tolerance {tol:.1})"
                ));
            }
        } else {
            bad.push(format!("{name}: committed report has no jobs_per_sec_best"));
        }
    }
    bad
}

/// Name of the bare campaign the observability overhead is priced against.
pub const OVERHEAD_BASE: &str = "fig5_arm";

/// Name of the metrics-enabled twin of [`OVERHEAD_BASE`].
pub const OVERHEAD_OBS: &str = "fig5_arm_obs";

/// Default ceiling on the observability overhead: the metrics-enabled
/// campaign may be at most 2% slower (in best-iteration jobs/sec) than
/// the bare one.
pub const OVERHEAD_TOL: f64 = 0.02;

/// Check the cost of the metrics layer in a fresh measurement: the
/// metrics-enabled fig. 5 campaign must keep at least `1 - tol` of the
/// bare campaign's best-iteration throughput, and — metrics being purely
/// observational — must reproduce its results checksum exactly. Returns
/// the violations (empty = pass); missing campaigns are themselves a
/// violation, so the check cannot silently pass on a renamed suite.
pub fn overhead_check(current: &[CampaignPerf], tol: f64) -> Vec<String> {
    let mut bad = Vec::new();
    let find = |name: &str| current.iter().find(|c| c.name == name);
    let (base, obs) = match (find(OVERHEAD_BASE), find(OVERHEAD_OBS)) {
        (Some(b), Some(o)) => (b, o),
        (b, o) => {
            for (name, got) in [(OVERHEAD_BASE, b), (OVERHEAD_OBS, o)] {
                if got.is_none() {
                    bad.push(format!("overhead check: campaign `{name}` not measured"));
                }
            }
            return bad;
        }
    };
    if obs.checksum != base.checksum {
        bad.push(format!(
            "overhead check: `{}` checksum {} != `{}` checksum {} — metrics changed the science",
            OVERHEAD_OBS, obs.checksum, OVERHEAD_BASE, base.checksum
        ));
    }
    let ratio = obs.jobs_per_sec_best() / base.jobs_per_sec_best();
    if !ratio.is_finite() || ratio < 1.0 - tol {
        bad.push(format!(
            "overhead check: metrics-enabled throughput {:.1} jobs/s is {:.1}% below bare \
             {:.1} jobs/s (ratio {ratio:.4}, tolerance {:.1}%)",
            obs.jobs_per_sec_best(),
            (1.0 - ratio) * 100.0,
            base.jobs_per_sec_best(),
            tol * 100.0
        ));
    }
    bad
}

#[cfg(test)]
mod tests {
    use super::*;

    fn camp(name: &str, iter_ms: Vec<f64>) -> CampaignPerf {
        CampaignPerf {
            name: name.to_string(),
            jobs: 320,
            checksum: "deadbeefdeadbeef".to_string(),
            iter_ms,
        }
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 50.0), 2.0);
        assert_eq!(percentile(&v, 95.0), 4.0);
        assert_eq!(percentile(&v, 99.0), 4.0);
        assert_eq!(percentile(&[7.5], 50.0), 7.5);
        assert!(percentile(&[], 50.0).is_nan());
    }

    #[test]
    fn best_and_throughput() {
        let c = camp("x", vec![200.0, 100.0, 400.0]);
        assert_eq!(c.best_ms(), 100.0);
        assert_eq!(c.jobs_per_sec_best(), 3200.0);
        assert_eq!(c.percentile_ms(50.0), 200.0);
    }

    #[test]
    fn report_round_trips_through_gate() {
        let opts = BenchOptions::new(true);
        let camps = vec![camp("fig5_arm", vec![120.0, 130.0, 125.0])];
        let report = report_json(&opts, &camps);
        let parsed = Json::parse(&report.to_string_pretty()).expect("parse");
        assert!(gate(&parsed, &opts, &camps, 3.0).is_empty());
    }

    #[test]
    fn gate_rejects_structural_drift() {
        let opts = BenchOptions::new(true);
        let camps = vec![camp("fig5_arm", vec![120.0])];
        let report = Json::parse(&report_json(&opts, &camps).to_string_pretty()).unwrap();
        // Checksum drift is structural: tolerance cannot absorb it.
        let mut changed = camps.clone();
        changed[0].checksum = "0000000000000000".to_string();
        assert!(gate(&report, &opts, &changed, 1e9)
            .iter()
            .any(|v| v.contains("checksum")));
        // Throughput drift beyond tolerance trips the timing check.
        let mut slow = camps.clone();
        slow[0].iter_ms = vec![120.0 * 10.0];
        assert!(gate(&report, &opts, &slow, 3.0)
            .iter()
            .any(|v| v.contains("tolerance")));
        // Within tolerance passes.
        let mut ok = camps;
        ok[0].iter_ms = vec![120.0 * 1.5];
        assert!(gate(&report, &opts, &ok, 3.0).is_empty());
    }

    #[test]
    fn overhead_check_prices_the_metrics_layer() {
        // 1% slower with identical checksum: within the 2% default budget.
        let base = camp(OVERHEAD_BASE, vec![100.0]);
        let mut obs = camp(OVERHEAD_OBS, vec![101.0]);
        assert!(overhead_check(&[base.clone(), obs.clone()], OVERHEAD_TOL).is_empty());
        // 10% slower: over budget, and the message carries the ratio.
        obs.iter_ms = vec![111.2];
        let bad = overhead_check(&[base.clone(), obs.clone()], OVERHEAD_TOL);
        assert_eq!(bad.len(), 1);
        assert!(bad[0].contains("ratio 0.8993"), "{}", bad[0]);
        // A checksum mismatch is flagged even when timing is fine.
        obs.iter_ms = vec![100.0];
        obs.checksum = "0000000000000000".to_string();
        let bad = overhead_check(&[base, obs], OVERHEAD_TOL);
        assert!(bad.iter().any(|v| v.contains("changed the science")));
        // Missing campaigns cannot silently pass.
        let bad = overhead_check(&[], OVERHEAD_TOL);
        assert_eq!(bad.len(), 2);
    }

    #[test]
    fn reference_embeds_and_computes_speedup() {
        let opts = BenchOptions::new(true);
        let camps = vec![camp("fig5_arm", vec![100.0])];
        let r = Reference {
            label: "pre".to_string(),
            campaigns: vec![("fig5_arm".to_string(), 250.0, 1280.0)],
        };
        let mut report = Json::parse(&report_json(&opts, &camps).to_string_pretty()).unwrap();
        attach_reference(&mut report, &r).unwrap();
        // Attaching again replaces, not duplicates.
        attach_reference(&mut report, &r).unwrap();
        let speedup = report
            .get("reference")
            .and_then(|x| x.get("speedup_best"))
            .and_then(Json::as_f64)
            .unwrap();
        assert!((speedup - 2.5).abs() < 1e-12);
        let back = Reference::from_report(&report, "again").unwrap();
        assert_eq!(back.campaigns[0].0, "fig5_arm");
        assert_eq!(back.campaigns[0].1, 100.0);
    }
}
