//! Per-site stall profiling of whole campaigns — the driver layer behind
//! the `wmm_profile` and `wmm_tracediff` binaries.
//!
//! Where [`crate::experiments`] answers "what does this strategy cost
//! per *fence kind*", this module answers "which *site* paid it": every
//! measurement batch runs through `Machine::run_sited`, the per-sample
//! [`SiteStall`] records are folded into a [`Profile`] keyed by the stable
//! site names a [`SiteMap`] assigns, and whole campaigns (all DaCapo or
//! kernel benchmarks under one strategy) merge into a single name-prefixed
//! profile ready for flamegraph export or site-by-site diffing.
//!
//! The per-site fold is cross-checked against the per-kind telemetry the
//! attribution campaigns already gate: for every `(benchmark, fence kind)`
//! cell, summing site fence-stall cycles over sites of that kind must
//! reproduce the `ExecStats` per-kind total (to float reassociation,
//! ≈1e-9 relative — see [`KindCheck`]). No cycle is double-counted and
//! none is lost.

use std::collections::HashMap;
use std::hash::Hash;

use wmm_harness::{SimTotals, SiteRecord};
use wmm_jvm::barrier::Combined;
use wmm_jvm::jit::JitConfig;
use wmm_kernel::rbd::{rbd_strategy, RbdStrategy};
use wmm_obs::Profile;
use wmm_sim::arch::Arch;
use wmm_sim::isa::{FenceKind, Instr};
use wmm_sim::stats::SiteStall;
use wmm_sim::Machine;
use wmm_workloads::dacapo::dacapo_suite;
use wmm_workloads::kernel::{kernel_profile, KernelBench};
use wmmbench::exec::Executor;
use wmmbench::image::{Injection, SiteMap, SiteRewriter};
use wmmbench::runner::{measurement_jobs_sited, BenchSpec, RunConfig};
use wmmbench::strategy::{FencingStrategy, FnStrategy};

use crate::experiments::{
    dstruct_envelope, jvm_base_strategy, jvm_envelope, kernel_envelope, machine, ExpConfig,
};

/// One sited measurement batch: sample wall times, the aggregated per-kind
/// simulator statistics, and the per-site profile folded over the same
/// samples (warm-ups dropped from all three, mirroring
/// `batch_with_stats`).
#[derive(Debug, Clone)]
pub struct ProfiledBatch {
    /// Sample wall times, ns (warm-ups dropped).
    pub times: Vec<f64>,
    /// Per-kind statistics aggregated over the same samples.
    pub totals: SimTotals,
    /// Per-site stall profile folded over the same samples.
    pub profile: Profile,
    /// The first sample's raw stall records and site map — enough to
    /// reconstruct one run's instruction-granular timeline for trace
    /// export.
    pub exemplar: Option<(Vec<SiteStall>, SiteMap)>,
}

impl ProfiledBatch {
    /// Mean sample wall time, ns.
    pub fn mean_wall_ns(&self) -> f64 {
        if self.times.is_empty() {
            return 0.0;
        }
        self.times.iter().sum::<f64>() / self.times.len() as f64
    }
}

/// Run one measurement batch sited: the per-site counterpart of the
/// attribution campaigns' stats batches. Wall times and per-kind totals
/// are bit-identical to the unsited batch — the probe observes values the
/// executor already computed — so callers can use them interchangeably.
pub fn batch_with_profile<P: Clone + Eq + Hash + std::fmt::Debug>(
    m: &Machine,
    bench: &dyn BenchSpec<P>,
    rw: &SiteRewriter<'_, P>,
    cfg: RunConfig,
    exec: &dyn Executor,
) -> ProfiledBatch {
    let (jobs, maps, _) = measurement_jobs_sited(m, bench, rw, cfg);
    let outcomes = exec.run_batch_stats(jobs);
    let mut batch = ProfiledBatch {
        times: Vec::with_capacity(cfg.samples),
        totals: SimTotals::default(),
        profile: Profile::new(),
        exemplar: None,
    };
    for (o, map) in outcomes.iter().zip(&maps).skip(cfg.warmups) {
        batch.times.push(o.wall_ns);
        if let Some(s) = &o.stats {
            batch.totals.merge_stats(s);
            if let Some(per_site) = &s.per_site {
                batch.profile.add_run(per_site, map);
                if batch.exemplar.is_none() {
                    batch.exemplar = Some((per_site.clone(), map.clone()));
                }
            }
        }
    }
    batch
}

/// One benchmark's sited batch within a campaign.
#[derive(Debug, Clone)]
pub struct BenchProfile {
    /// Benchmark name (the site-name prefix in the merged profile).
    pub bench: String,
    /// The benchmark's sited measurement batch.
    pub batch: ProfiledBatch,
}

/// A whole campaign profiled site by site: one sited batch per benchmark,
/// plus the cycle→ns conversion of the machine it ran on.
#[derive(Debug, Clone)]
pub struct CampaignProfile {
    /// Campaign id (`fig5-arm`, `fig9-kernel`, `jdk8-arm`, `jdk9-arm`).
    pub campaign: &'static str,
    /// Architecture label for manifests.
    pub arch: &'static str,
    /// Nanoseconds per simulator cycle on the campaign's machine.
    pub ns_per_cycle: f64,
    /// Per-benchmark batches, in suite order.
    pub benches: Vec<BenchProfile>,
}

impl CampaignProfile {
    /// The campaign-wide profile: every benchmark's sites merged under
    /// `benchmark/site` names (prefixing keeps same-shaped benchmarks from
    /// colliding; `SiteMap::is_code` still recognises code rows because it
    /// matches the name's tail).
    pub fn merged(&self) -> Profile {
        let mut merged = Profile::new();
        for b in &self.benches {
            for (name, sp) in &b.batch.profile.sites {
                merged
                    .sites
                    .insert(format!("{}/{}", b.bench, name), sp.clone());
            }
        }
        merged
    }

    /// Sum of per-benchmark mean wall times, ns — the campaign-level wall
    /// cost whose strategy-to-strategy delta `wmm_tracediff` attributes.
    pub fn total_wall_ns(&self) -> f64 {
        self.benches.iter().map(|b| b.batch.mean_wall_ns()).sum()
    }

    /// The merged profile as manifest site records (deterministic name
    /// order, straight from the `BTreeMap`).
    pub fn site_records(&self) -> Vec<SiteRecord> {
        site_records(&self.merged())
    }
}

/// Convert a profile to manifest [`SiteRecord`]s (name order).
pub fn site_records(profile: &Profile) -> Vec<SiteRecord> {
    profile
        .sites
        .iter()
        .map(|(name, sp)| SiteRecord {
            name: name.clone(),
            fence: sp.fence,
            fences: sp.fences,
            fence_cycles: sp.fence_cycles,
            sb_stall_cycles: sp.sb_stall_cycles,
            mem_cycles: sp.mem_cycles,
            total_cycles: sp.total_cycles,
        })
        .collect()
}

/// Rebuild a [`Profile`] from manifest site records (the file side of
/// `wmm_tracediff`). Executions are not recorded in manifests and come
/// back as zero; every cycle and fence count round-trips exactly.
pub fn profile_from_records(records: &[SiteRecord]) -> Profile {
    let mut p = Profile::new();
    for r in records {
        let sp = p.sites.entry(r.name.clone()).or_default();
        if r.fence.is_some() {
            sp.fence = r.fence;
        }
        sp.fences += r.fences;
        sp.fence_cycles += r.fence_cycles;
        sp.sb_stall_cycles += r.sb_stall_cycles;
        sp.mem_cycles += r.mem_cycles;
        sp.total_cycles += r.total_cycles;
    }
    p
}

/// One `(benchmark, fence kind)` cross-check cell: the per-site fold's
/// fence stall cycles against the per-kind `ExecStats` total the
/// attribution campaigns gate. The two sum the same stall events in
/// different orders, so they agree to float reassociation (≈1e-9
/// relative), and the fence *counts* must match exactly.
#[derive(Debug, Clone)]
pub struct KindCheck {
    /// Benchmark name.
    pub bench: String,
    /// Fence kind.
    pub kind: FenceKind,
    /// Σ fence stall cycles over sites of this kind (per-site account).
    pub site_cycles: f64,
    /// The `ExecStats` per-kind stall cycle total (per-kind account).
    pub kind_cycles: f64,
    /// Σ fence executions over sites of this kind.
    pub site_fences: u64,
    /// The `ExecStats` per-kind execution count.
    pub kind_fences: u64,
}

impl KindCheck {
    /// Relative cycle disagreement between the two accounts.
    pub fn rel_err(&self) -> f64 {
        (self.site_cycles - self.kind_cycles).abs() / self.kind_cycles.abs().max(1e-12)
    }

    /// Whether the accounts agree: exact fence counts, cycles within
    /// reassociation tolerance.
    pub fn pass(&self) -> bool {
        self.site_fences == self.kind_fences && self.rel_err() < 1e-6
    }
}

/// Cross-check every `(benchmark, fence kind)` cell of a campaign. Kinds
/// that neither account saw are omitted.
pub fn kind_checks(cp: &CampaignProfile) -> Vec<KindCheck> {
    let mut checks = vec![];
    for b in &cp.benches {
        for kind in FenceKind::ALL {
            let sites = b
                .batch
                .profile
                .sites
                .values()
                .filter(|s| s.fence == Some(kind));
            let (site_cycles, site_fences) =
                sites.fold((0.0, 0), |(c, n), s| (c + s.fence_cycles, n + s.fences));
            let kind_cycles = *b
                .batch
                .totals
                .counters
                .fence_cycles
                .get(&kind)
                .unwrap_or(&0.0);
            let kind_fences = *b
                .batch
                .totals
                .counters
                .fence_counts
                .get(&kind)
                .unwrap_or(&0);
            if site_fences == 0 && kind_fences == 0 {
                continue;
            }
            checks.push(KindCheck {
                bench: b.bench.clone(),
                kind,
                site_cycles,
                kind_cycles,
                site_fences,
                kind_fences,
            });
        }
    }
    checks
}

/// The campaign ids [`profile_campaign`] accepts.
pub const PROFILE_CAMPAIGNS: [&str; 6] = [
    "fig5-arm",
    "fig9-kernel",
    "jdk8-arm",
    "jdk9-arm",
    "dstruct-hp-dmb",
    "dstruct-hp-asym",
];

/// Profile a campaign by id:
///
/// * `fig5-arm` — the Fig. 5 attribution test side: DaCapo under JDK8
///   lowering with a single `dmb ish` per barrier site, so per-site and
///   per-fence costs coincide and the per-kind cross-check is exact.
/// * `fig9-kernel` — the §4.3 kernels with `read_barrier_depends`
///   strengthened to `dmb ish` over the default ARM strategy.
/// * `jdk8-arm` / `jdk9-arm` — the §4.2.1 comparison sides: the same
///   `arm-jdk8-barriers` strategy over JDK8 (barrier sites) vs JDK9
///   (`ldar`/`stlr`, no volatile sites) images; diffing them attributes
///   the JDK8→JDK9 wall delta to the barrier sites that disappeared.
/// * `dstruct-hp-dmb` / `dstruct-hp-asym` — the reclamation comparison
///   sides: the same data-structure workloads under classic hazard
///   pointers (a `dmb ish` at every protect site) vs the asymmetric
///   scheme (readers free, the rare scan priced heavily); diffing them
///   attributes the scheme delta to the protect sites that went quiet.
pub fn profile_campaign(
    name: &str,
    cfg: ExpConfig,
    exec: &dyn Executor,
) -> Option<CampaignProfile> {
    match name {
        "fig5-arm" => Some(profile_fig5_arm(cfg, exec)),
        "fig9-kernel" => Some(profile_fig9_kernel(cfg, exec)),
        "jdk8-arm" => Some(profile_jdk8_arm(cfg, exec)),
        "jdk9-arm" => Some(profile_jdk9_arm(cfg, exec)),
        "dstruct-hp-dmb" => Some(profile_dstruct(cfg, exec, "dstruct-hp-dmb")),
        "dstruct-hp-asym" => Some(profile_dstruct(cfg, exec, "dstruct-hp-asym")),
        _ => None,
    }
}

fn jvm_campaign(
    campaign: &'static str,
    jit: JitConfig,
    strategy: &dyn FencingStrategy<Combined>,
    cfg: ExpConfig,
    exec: &dyn Executor,
) -> CampaignProfile {
    let m = machine(Arch::ArmV8);
    let env: HashMap<Combined, u64> = jvm_envelope(Arch::ArmV8);
    let mut benches = vec![];
    for bench in dacapo_suite(jit, cfg.scale) {
        let rw = SiteRewriter::new(strategy, Injection::None, env.clone());
        benches.push(BenchProfile {
            bench: bench.name().to_string(),
            batch: batch_with_profile(&m, &bench, &rw, cfg.run, exec),
        });
    }
    CampaignProfile {
        campaign,
        arch: "arm",
        ns_per_cycle: m.spec().ns(1.0),
        benches,
    }
}

/// The Fig. 5 ARM attribution test side, profiled per site.
pub fn profile_fig5_arm(cfg: ExpConfig, exec: &dyn Executor) -> CampaignProfile {
    let dmb = FnStrategy::new("dmb-per-site", |_: &Combined| {
        vec![Instr::Fence(FenceKind::DmbIsh)]
    });
    jvm_campaign("fig5-arm", JitConfig::jdk8(Arch::ArmV8), &dmb, cfg, exec)
}

/// §4.2.1 base side: JDK8 barrier images under the stock ARM strategy.
pub fn profile_jdk8_arm(cfg: ExpConfig, exec: &dyn Executor) -> CampaignProfile {
    let strategy = jvm_base_strategy(Arch::ArmV8);
    jvm_campaign(
        "jdk8-arm",
        JitConfig::jdk8(Arch::ArmV8),
        &strategy,
        cfg,
        exec,
    )
}

/// §4.2.1 test side: JDK9 `ldar`/`stlr` images under the same strategy.
pub fn profile_jdk9_arm(cfg: ExpConfig, exec: &dyn Executor) -> CampaignProfile {
    let strategy = jvm_base_strategy(Arch::ArmV8);
    jvm_campaign(
        "jdk9-arm",
        JitConfig::jdk9(Arch::ArmV8),
        &strategy,
        cfg,
        exec,
    )
}

/// The Fig. 9 kernels with `read_barrier_depends = dmb ish`, profiled per
/// site.
pub fn profile_fig9_kernel(cfg: ExpConfig, exec: &dyn Executor) -> CampaignProfile {
    let m = machine(Arch::ArmV8);
    let env = kernel_envelope();
    let strat = rbd_strategy(RbdStrategy::DmbIsh);
    let mut benches = vec![];
    for name in ["ebizzy", "netperf_udp", "lmbench", "netperf_tcp"] {
        let bench = KernelBench::new(kernel_profile(name).expect("profile exists"), cfg.scale);
        let rw = SiteRewriter::new(&strat, Injection::None, env.clone());
        benches.push(BenchProfile {
            bench: bench.name().to_string(),
            batch: batch_with_profile(&m, &bench, &rw, cfg.run, exec),
        });
    }
    CampaignProfile {
        campaign: "fig9-kernel",
        arch: "arm",
        ns_per_cycle: m.spec().ns(1.0),
        benches,
    }
}

/// The data-structure workloads under one hazard-pointer scheme, profiled
/// per reclamation site. `campaign` selects the scheme: `dstruct-hp-dmb`
/// (classic, per-protect fence) or `dstruct-hp-asym` (asymmetric,
/// scan-priced).
pub fn profile_dstruct(
    cfg: ExpConfig,
    exec: &dyn Executor,
    campaign: &'static str,
) -> CampaignProfile {
    let m = machine(Arch::ArmV8);
    let env = dstruct_envelope();
    let strat = if campaign == "dstruct-hp-asym" {
        wmm_dstruct::hp_asym_strategy()
    } else {
        wmm_dstruct::hp_dmb_strategy()
    };
    let mut benches = vec![];
    for bench in wmm_dstruct::dstruct_suite(cfg.scale) {
        let rw = SiteRewriter::new(&strat, Injection::None, env.clone());
        benches.push(BenchProfile {
            bench: bench.name().to_string(),
            batch: batch_with_profile(&m, &bench, &rw, cfg.run, exec),
        });
    }
    CampaignProfile {
        campaign,
        arch: "arm",
        ns_per_cycle: m.spec().ns(1.0),
        benches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmmbench::exec::SerialExecutor;

    #[test]
    fn fig5_per_site_fold_reproduces_per_kind_totals() {
        let cfg = ExpConfig::quick();
        let cp = profile_fig5_arm(cfg, &SerialExecutor);
        assert_eq!(
            cp.benches.len(),
            dacapo_suite(JitConfig::jdk8(Arch::ArmV8), cfg.scale).len()
        );
        let checks = kind_checks(&cp);
        assert!(!checks.is_empty(), "dmb-per-site must execute fences");
        for c in &checks {
            assert!(
                c.pass(),
                "{}/{:?}: site {} vs kind {} ({} vs {} fences)",
                c.bench,
                c.kind,
                c.site_cycles,
                c.kind_cycles,
                c.site_fences,
                c.kind_fences
            );
        }
        // Fence sites exist and carry stall cycles.
        let merged = cp.merged();
        assert!(merged.fence_stall_cycles(FenceKind::DmbIsh) > 0.0);
    }

    #[test]
    fn site_records_roundtrip_through_profile_reconstruction() {
        let cfg = ExpConfig::quick();
        let cp = profile_fig9_kernel(cfg, &SerialExecutor);
        let merged = cp.merged();
        let records = cp.site_records();
        assert!(!records.is_empty());
        let back = profile_from_records(&records);
        assert_eq!(back.sites.len(), merged.sites.len());
        for (name, sp) in &merged.sites {
            let b = &back.sites[name];
            assert_eq!(b.fence, sp.fence, "{name}");
            assert_eq!(b.fences, sp.fences, "{name}");
            assert_eq!(
                b.total_cycles.to_bits(),
                sp.total_cycles.to_bits(),
                "{name}"
            );
        }
    }

    #[test]
    fn hp_dmb_vs_hp_asym_delta_lands_on_protect_sites() {
        let cfg = ExpConfig::quick();
        let base = profile_dstruct(cfg, &SerialExecutor, "dstruct-hp-dmb");
        let test = profile_dstruct(cfg, &SerialExecutor, "dstruct-hp-asym");
        let diff = base.merged().diff(&test.merged());
        assert!(diff.abs_delta() > 0.0, "schemes must differ");
        // Whole-wall share is diluted by memory-timing ripple on code and
        // chase rows; the scheme change itself moves fence cost, so that is
        // what gets attributed.
        let share = diff.fence_share(|r| r.name.contains(":HpProtect#"));
        assert!(
            share >= 0.90,
            "protect sites must carry ≥90% of the fence-stall delta, got {share:.3}"
        );
    }

    #[test]
    fn jdk8_vs_jdk9_delta_lands_on_barrier_sites() {
        let cfg = ExpConfig::quick();
        let base = profile_jdk8_arm(cfg, &SerialExecutor);
        let test = profile_jdk9_arm(cfg, &SerialExecutor);
        let diff = base.merged().diff(&test.merged());
        assert!(diff.abs_delta() > 0.0, "strategies must differ");
        let share = diff.share(|r| !SiteMap::is_code(&r.name));
        assert!(
            share >= 0.90,
            "barrier sites must carry ≥90% of the delta, got {share:.3}"
        );
    }
}
