//! The run-report layer behind the `wmm_report` binary: run a profiled
//! campaign with the full `wmm-obs` observability stack attached and join
//! what the individual seams report — executor metrics, per-site stall
//! profiles, cache statistics, solver metrics, span timeline — into one
//! markdown document and one gateable manifest.
//!
//! The report is deliberately two-faced:
//!
//! * the **markdown** rendering ([`markdown`]) is for humans: campaign
//!   summary, the structural metrics table, the hottest sites, cache
//!   traffic, and the per-kind cross-check verdict;
//! * the **manifest** ([`manifest`]) is for the `bench_gate` regression
//!   gate: every structural metric becomes a cell (`metrics/<name>`), so
//!   CI pins not just the science but the *accounting* — a refactor that
//!   silently stops counting cache hits or solver nodes drifts a cell and
//!   fails the gate. Observational metrics (worker timings, latency
//!   histograms, lock waits) ride along in the manifest's `metrics` block
//!   for inspection but are excluded from the gated cells and from the
//!   deterministic projection's structural entries only by class, never by
//!   hand-maintained lists.
//!
//! Determinism contract: two [`collect_report`] runs of the same campaign
//! at *any* worker counts produce manifests whose deterministic
//! projections are byte-identical (asserted in this module's tests), which
//! is what makes the committed baseline meaningful.

use wmm_analyze::{
    synthesize_wps_metered, CostModel, CycleCache, SynthConfig, WpsConfig, WpsMetrics,
};
use wmm_harness::{CacheStats, ParallelExecutor, RunManifest, SimCache, TraceEvent};
use wmm_obs::{MetricValue, MetricsRegistry, MetricsSnapshot, SpanLog, SpanRecord};
use wmmbench::report::Table;

use crate::profiling::{kind_checks, profile_campaign, site_records, KindCheck};
use crate::wps::{make_bundles, WPS_MODEL};
use crate::ExpConfig;

/// How [`collect_report`] runs the campaign.
#[derive(Debug, Clone)]
pub struct ReportOptions {
    /// Profile campaign id (see [`crate::profiling::PROFILE_CAMPAIGNS`]).
    pub campaign: String,
    /// Experiment scale.
    pub cfg: ExpConfig,
    /// Worker threads (`None` = auto).
    pub threads: Option<usize>,
    /// Minimum generated litmus tests for the WPS solver stage; `0`
    /// skips the stage (and its `wps.*` metrics).
    pub wps_min_tests: usize,
    /// Collect the executor's batch/job Chrome-trace timeline alongside
    /// the span log (costs one mutex push per job; off by default).
    pub trace: bool,
}

impl ReportOptions {
    /// The CI-shaped default: quick fig. 5 ARM campaign plus a small WPS
    /// solver stage, no batch/job timeline.
    pub fn quick() -> Self {
        ReportOptions {
            campaign: "fig5-arm".to_string(),
            cfg: ExpConfig::quick(),
            threads: None,
            wps_min_tests: 16,
            trace: false,
        }
    }
}

/// Everything one observed campaign run produced, ready for rendering.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Campaign id the profile layer ran.
    pub campaign: String,
    /// Architecture label.
    pub arch: String,
    /// Nanoseconds per simulator cycle on the campaign's machine.
    pub ns_per_cycle: f64,
    /// Per-benchmark `(name, mean wall ns, distinct sites)`.
    pub benches: Vec<(String, f64, usize)>,
    /// Per-`(benchmark, fence kind)` cross-check cells.
    pub checks: Vec<KindCheck>,
    /// Merged site records ranked by total cycles, hottest first.
    pub ranked_sites: Vec<wmm_harness::SiteRecord>,
    /// Simulation-cache statistics at end of run.
    pub cache: CacheStats,
    /// Full metrics snapshot (structural and observational) at end of run.
    pub snapshot: MetricsSnapshot,
    /// Completed spans, in completion order.
    pub spans: Vec<SpanRecord>,
    /// Executor batch/job timeline (empty unless tracing was enabled).
    pub trace: Vec<TraceEvent>,
    /// Bundles solved by the WPS stage (`None` = stage skipped).
    pub wps_bundles: Option<usize>,
}

/// Run `opts.campaign` with a metrics registry, span log and simulation
/// cache attached, optionally follow with a metered WPS solver stage over
/// generated bundles, and collect everything the seams reported. Returns
/// `None` for an unknown campaign id.
pub fn collect_report(opts: &ReportOptions) -> Option<RunReport> {
    let registry = MetricsRegistry::new();
    let spans = SpanLog::new();
    let exec = ParallelExecutor::new(opts.threads)
        .with_cache(SimCache::in_memory())
        .with_trace(opts.trace)
        .with_metrics(&registry);

    let whole = spans.span(format!("report/{}", opts.campaign), "report");
    let cp = {
        let _g = spans.span(opts.campaign.clone(), "campaign");
        profile_campaign(&opts.campaign, opts.cfg, &exec)?
    };

    let wps_bundles = (opts.wps_min_tests > 0).then(|| {
        let _g = spans.span("wps-solve", "phase");
        let metrics = WpsMetrics::register(&registry);
        let cache = CycleCache::in_memory();
        let costs = CostModel::priced(crate::streams::NOMINAL_K);
        let wps = WpsConfig {
            threads: opts.threads,
            ..WpsConfig::default()
        };
        let bundles = make_bundles(opts.wps_min_tests);
        for b in &bundles {
            synthesize_wps_metered(
                &b.graph,
                SynthConfig::for_model(WPS_MODEL),
                &costs,
                &wps,
                Some(&cache),
                Some(&metrics),
            )
            .expect("bundle synthesis");
        }
        bundles.len()
    });
    drop(whole);

    let mut ranked = site_records(&cp.merged());
    ranked.sort_by(|a, b| {
        b.total_cycles
            .partial_cmp(&a.total_cycles)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.name.cmp(&b.name))
    });
    Some(RunReport {
        campaign: cp.campaign.to_string(),
        arch: cp.arch.to_string(),
        ns_per_cycle: cp.ns_per_cycle,
        benches: cp
            .benches
            .iter()
            .map(|b| {
                (
                    b.bench.clone(),
                    b.batch.mean_wall_ns(),
                    b.batch.profile.sites.len(),
                )
            })
            .collect(),
        checks: kind_checks(&cp),
        ranked_sites: ranked,
        cache: exec.cache_stats().unwrap_or_default(),
        snapshot: registry.snapshot(),
        spans: spans.records(),
        trace: exec.trace_events(),
        wps_bundles,
    })
}

/// Whether every per-kind cross-check cell passed.
pub fn checks_pass(report: &RunReport) -> bool {
    report.checks.iter().all(KindCheck::pass)
}

fn metric_rows(table: &mut Table, snapshot: &MetricsSnapshot) {
    for e in &snapshot.entries {
        let (kind, value) = match &e.value {
            MetricValue::Counter(v) => ("counter", v.to_string()),
            MetricValue::Gauge(v) => ("gauge", format!("{v}")),
            MetricValue::Histogram { sum, count, .. } => {
                ("histogram", format!("count {count}, sum {sum:.0}"))
            }
        };
        table.row(vec![e.name.clone(), kind.to_string(), value]);
    }
}

/// Render the human-facing markdown document.
pub fn markdown(report: &RunReport) -> String {
    let mut out = String::new();
    let ns = |cycles: f64| cycles * report.ns_per_cycle;
    out.push_str(&format!(
        "# wmm_report — campaign `{}` ({})\n\n",
        report.campaign, report.arch
    ));

    let mut summary = Table::new(&["benchmark", "mean_wall_ns", "sites"]);
    for (name, wall, sites) in &report.benches {
        summary.row(vec![name.clone(), format!("{wall:.0}"), sites.to_string()]);
    }
    out.push_str("## Campaign\n\n");
    out.push_str(&summary.markdown());
    if let Some(bundles) = report.wps_bundles {
        out.push_str(&format!("\nWPS solver stage: {bundles} bundles solved.\n"));
    }

    out.push_str("\n## Structural metrics\n\n");
    out.push_str("Deterministic accounting — byte-identical at any worker count.\n\n");
    let mut stru = Table::new(&["metric", "kind", "value"]);
    metric_rows(&mut stru, &report.snapshot.structural());
    out.push_str(&stru.markdown());

    out.push_str("\n## Observational metrics\n\n");
    out.push_str("Timing- and worker-dependent; vary run to run, never gated.\n\n");
    let observational = MetricsSnapshot {
        entries: report
            .snapshot
            .entries
            .iter()
            .filter(|e| e.class == wmm_obs::Class::Observational)
            .cloned()
            .collect(),
    };
    let mut obs = Table::new(&["metric", "kind", "value"]);
    metric_rows(&mut obs, &observational);
    out.push_str(&obs.markdown());

    out.push_str("\n## Hottest sites\n\n");
    let mut sites = Table::new(&["site", "fences", "fence_ns", "sb_ns", "total_ns"]);
    for s in report.ranked_sites.iter().take(10) {
        sites.row(vec![
            s.name.clone(),
            s.fences.to_string(),
            format!("{:.0}", ns(s.fence_cycles)),
            format!("{:.0}", ns(s.sb_stall_cycles)),
            format!("{:.0}", ns(s.total_cycles)),
        ]);
    }
    out.push_str(&sites.markdown());

    let c = &report.cache;
    out.push_str(&format!(
        "\n## Cache\n\n{} entries, {} hits / {} misses, {} puts, \
         {} disk appends ({} bytes), {} ns waiting on the append lock.\n",
        c.entries, c.hits, c.misses, c.puts, c.disk_appends, c.disk_append_bytes, c.lock_wait_ns
    ));

    out.push_str(&format!(
        "\n## Cross-check\n\nPer-site vs per-kind accounting over {} cells: {}.\n",
        report.checks.len(),
        if checks_pass(report) { "PASS" } else { "FAIL" }
    ));
    out.push_str(&format!(
        "\n{} spans recorded; {} executor trace events.\n",
        report.spans.len(),
        report.trace.len()
    ));
    out
}

/// Build the gateable manifest: campaign shape, cross-check verdict, and
/// every structural metric as a `metrics/<name>` cell (histograms
/// contribute `/count` and `/sum`). The full snapshot — observational
/// entries included — rides in the manifest's `metrics` block.
pub fn manifest(report: &RunReport) -> RunManifest {
    let name = if report.campaign == "fig5-arm" {
        "wmm_report".to_string()
    } else {
        format!("wmm_report-{}", report.campaign)
    };
    let mut m = RunManifest::new(name, report.arch.clone());
    m.push_cell("profile/benches", report.benches.len() as f64);
    for (bench, _, sites) in &report.benches {
        m.push_cell(format!("{bench}/sites"), *sites as f64);
    }
    m.push_cell("checks/cells", report.checks.len() as f64);
    m.push_cell("checks/pass", if checks_pass(report) { 1.0 } else { 0.0 });
    if let Some(bundles) = report.wps_bundles {
        m.push_cell("wps/bundles", bundles as f64);
    }
    for e in &report.snapshot.structural().entries {
        match &e.value {
            MetricValue::Counter(v) => m.push_cell(format!("metrics/{}", e.name), *v as f64),
            MetricValue::Gauge(v) => m.push_cell(format!("metrics/{}", e.name), *v),
            MetricValue::Histogram { sum, count, .. } => {
                m.push_cell(format!("metrics/{}/count", e.name), *count as f64);
                m.push_cell(format!("metrics/{}/sum", e.name), *sum);
            }
        }
    }
    m.metrics = Some(report.snapshot.clone());
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts(threads: usize) -> ReportOptions {
        ReportOptions {
            threads: Some(threads),
            ..ReportOptions::quick()
        }
    }

    #[test]
    fn report_joins_metrics_profiles_and_cache_stats() {
        let r = collect_report(&quick_opts(2)).expect("known campaign");
        assert!(!r.benches.is_empty());
        assert!(!r.ranked_sites.is_empty());
        assert!(checks_pass(&r), "per-kind cross-check must pass");
        // The executor seam reported through the registry...
        assert!(r.snapshot.counter("harness.exec.jobs").unwrap() > 0);
        // ...and the cache gauges mirror the cache's own stats.
        assert_eq!(
            r.snapshot.gauge("harness.cache.sim.entries").unwrap(),
            r.cache.entries as f64
        );
        // The WPS stage populated the solver metrics.
        assert!(r.wps_bundles.unwrap() > 0);
        assert!(r.snapshot.counter("wps.cycles_enumerated").unwrap() > 0);
        // Spans nested report > campaign > phase, all recorded.
        assert!(r.spans.iter().any(|s| s.cat == "report"));
        assert!(r.spans.iter().any(|s| s.cat == "campaign"));
        assert!(r.spans.iter().any(|s| s.cat == "phase"));

        let md = markdown(&r);
        for section in [
            "## Campaign",
            "## Structural metrics",
            "## Observational metrics",
            "## Hottest sites",
            "## Cache",
            "## Cross-check",
        ] {
            assert!(md.contains(section), "missing {section}");
        }

        let m = manifest(&r);
        assert_eq!(m.campaign, "wmm_report");
        assert!(m
            .cells
            .iter()
            .any(|c| c.label == "metrics/wps.solver.nodes"));
        assert!(m.metrics.is_some());
    }

    #[test]
    fn manifest_deterministic_projection_is_identical_across_worker_counts() {
        let one = manifest(&collect_report(&quick_opts(1)).unwrap());
        let four = manifest(&collect_report(&quick_opts(4)).unwrap());
        assert_eq!(
            one.deterministic_json().to_string_pretty(),
            four.deterministic_json().to_string_pretty(),
            "gated report content must not depend on worker count"
        );
    }
}
