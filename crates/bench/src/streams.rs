//! Shared stream-ingestion path for the static-audit binaries.
//!
//! `fence_lint` and `fence_synth` both consume platform idioms as bare
//! instruction streams plus inter-thread dependencies, run them through the
//! analyzer (priced with the paper's Eq. 1/Eq. 2 model), and — for
//! synthesis — validate each derived placement twice and race it against
//! the platform's hand strategies. That flow used to be copy-pasted per
//! platform; this module factors it so a new strategy-site platform (the
//! JVM volatiles, the kernel macros, the dstruct reclamation schemes, the
//! next one) plugs in with a [`StreamCase`] and an expectation, not glue.

use wmm_analyze::{
    analyze, synthesize, Analysis, CostModel, Instrument, Placement, ProgramGraph, StreamDep,
    SynthConfig,
};
use wmm_harness::RunManifest;
use wmm_litmus::explore::explore;
use wmm_litmus::ops::ModelKind;
use wmm_litmus::LitmusTest;
use wmm_sim::isa::{FenceKind, Instr};
use wmm_sim::machine::Machine;

/// Nominal fence sensitivity used to price fences in lints and synthesis
/// (spark on ARMv8, the paper's most barrier-sensitive workload — Fig. 5).
pub const NOMINAL_K: f64 = 0.0087;

/// Cost slack for "synthesis ≤ best hand strategy": ties are allowed,
/// float noise is not a failure.
pub const COST_EPS: f64 = 1e-9;

/// The four memory models every audit runs under.
pub const MODELS: [ModelKind; 4] = [
    ModelKind::Sc,
    ModelKind::Tso,
    ModelKind::ArmV8,
    ModelKind::Power,
];

/// Per-fence cost (ns) on `mach`, keyed by the stream mnemonic.
pub fn fence_cost(mach: &Machine) -> impl Fn(&str) -> f64 + '_ {
    |mnemonic: &str| {
        let kind = match mnemonic {
            "DmbIsh" => Some(FenceKind::DmbIsh),
            "DmbIshLd" => Some(FenceKind::DmbIshLd),
            "DmbIshSt" => Some(FenceKind::DmbIshSt),
            "Isb" => Some(FenceKind::Isb),
            "HwSync" => Some(FenceKind::HwSync),
            "LwSync" => Some(FenceKind::LwSync),
            _ => None,
        };
        kind.map_or(0.0, |k| mach.time_sequence_ns(&[Instr::Fence(k)], 2000, 7))
    }
}

/// Record the analysis head-counts under `label` in the manifest.
pub fn push_analysis(m: &mut RunManifest, label: &str, a: &Analysis) {
    m.push_cell(format!("{label}/cycles"), a.cycles as f64);
    m.push_cell(format!("{label}/unprotected"), a.unprotected.len() as f64);
    m.push_cell(format!("{label}/redundant"), a.redundant.len() as f64);
    m.push_cell(format!("{label}/downgrade"), a.downgrade.len() as f64);
}

/// Print every unprotected critical cycle with its missing orderings.
pub fn print_unprotected(a: &Analysis) {
    for u in &a.unprotected {
        println!("    UNPROTECTED {}", u.cycle);
        for (from, to) in &u.missing {
            println!("      missing ordering: {from} -> {to}");
        }
    }
}

/// Print every redundant-fence lint with its Eq. 2 saving estimate.
pub fn print_redundant(a: &Analysis) {
    for r in &a.redundant {
        let place = if r.on_cycle {
            "covered elsewhere"
        } else {
            "on no cycle"
        };
        let saving = r
            .saving_ns
            .map(|ns| format!(", est. saving {ns:.1} ns/invocation"))
            .unwrap_or_default();
        println!(
            "    redundant fence: {} at t{} slot {} ({place}{saving})",
            r.mnemonic, r.thread, r.slot
        );
    }
}

/// Print every over-strong-fence downgrade proposal.
pub fn print_downgrade(a: &Analysis) {
    for d in &a.downgrade {
        let saving = d
            .saving_ns
            .map(|ns| format!(", est. saving {ns:.1} ns/invocation"))
            .unwrap_or_else(|| ", unpriced".into());
        println!(
            "    over-strong fence: {} at t{} slot {} suffices as {}{saving}",
            d.mnemonic, d.thread, d.slot, d.to_mnemonic
        );
    }
}

/// Audit one lowered idiom: analyze with savings, print the findings,
/// record the head-counts, and check the protection verdict against the
/// expectation. Returns the analysis so callers can assert extra lints
/// (redundancy, downgrades) on top.
#[allow(clippy::too_many_arguments)]
pub fn audit_streams(
    manifest: &mut RunManifest,
    errors: &mut Vec<String>,
    label: &str,
    streams: &[Vec<Instr>],
    deps: &[StreamDep],
    model: ModelKind,
    mach: &Machine,
    expect_protected: bool,
) -> Analysis {
    let g = ProgramGraph::from_streams(label.to_string(), streams, deps);
    let a = analyze(&g, model).with_savings(NOMINAL_K, fence_cost(mach));
    println!(
        "  {label}: {} cycles, {} unprotected, {} redundant",
        a.cycles,
        a.unprotected.len(),
        a.redundant.len()
    );
    print_unprotected(&a);
    print_redundant(&a);
    print_downgrade(&a);
    push_analysis(manifest, label, &a);
    if a.protected() != expect_protected {
        errors.push(format!(
            "{label}: expected protected={expect_protected}, got {}",
            a.protected()
        ));
    }
    a
}

/// Dynamic validation: after reinforcing `test` with the placement, the
/// explorer must no longer reach the weak outcome under `model`.
pub fn explorer_rejects_weak(test: &LitmusTest, placement: &Placement, model: ModelKind) -> bool {
    let reinforced = test.reinforced(&placement.to_reinforce());
    !explore(&reinforced, model).allows_with_memory(&reinforced.interesting, &reinforced.memory)
}

/// A platform idiom lowered to instruction streams plus inter-thread
/// dependencies — the analyzer's stream-ingestion input shape.
pub type LoweredStreams = (Vec<Vec<Instr>>, Vec<StreamDep>);

/// One hand strategy to race synthesis against:
/// `(tag, graph_name, streams, deps)`.
pub type HandLowering = (String, String, Vec<Vec<Instr>>, Vec<StreamDep>);

/// Re-lowering hook: map synthesized instruments back onto the platform's
/// strategy sites, or `None` if a placement has no site to live at.
pub type RelowerFn<'a> = Box<dyn Fn(&[Instrument]) -> Option<LoweredStreams> + 'a>;

/// One synthesis case over a platform idiom expressed as bare streams.
pub struct StreamCase<'a> {
    /// Manifest cell prefix, e.g. `synth/rbd`.
    pub label: String,
    /// Program-graph name prefix, e.g. `kernel/rbd-publish`.
    pub graph: String,
    /// Model to synthesize for and validate under.
    pub model: ModelKind,
    /// The unfenced idiom: instruction streams + inter-thread deps.
    pub bare: LoweredStreams,
    /// Restrict synthesis to fences (platforms whose sites are pure
    /// instruction sequences have nowhere to host upgrades/dependencies).
    pub fences_only: bool,
    /// The litmus shape matching the idiom's access skeleton, for dynamic
    /// validation through the operational explorer.
    pub litmus: LitmusTest,
    /// Map the placement back onto the platform's strategy sites and
    /// re-lower; `None` means the placement has no site to live at.
    pub relower: RelowerFn<'a>,
    /// Hand strategies to race.
    pub hands: Vec<HandLowering>,
}

/// Run one [`StreamCase`]: synthesize a minimal-cost placement on the bare
/// idiom, validate it statically (through the platform re-lowering) and
/// dynamically (through the explorer), then race it against every hand
/// strategy — synthesis must cost no more than the best protected hand.
pub fn synth_stream_case(
    case: &StreamCase,
    manifest: &mut RunManifest,
    errors: &mut Vec<String>,
    costs: &CostModel,
) {
    use wmm_analyze::{apply_to_graph, graph_cost};

    let (bare, deps) = &case.bare;
    let g = ProgramGraph::from_streams(format!("{}/bare", case.graph), bare, deps);
    let cfg = if case.fences_only {
        SynthConfig::fences_only(case.model)
    } else {
        SynthConfig::for_model(case.model)
    };
    let p = match synthesize(&g, cfg, costs) {
        Ok(p) => p,
        Err(e) => {
            errors.push(format!("{}: synthesis failed: {e}", case.label));
            return;
        }
    };
    println!("  synthesized: {} ({:.1} ns)", p.describe(), p.cost_ns);
    manifest.push_cell(format!("{}/cost_ns", case.label), p.cost_ns);
    manifest.push_cell(
        format!("{}/instruments", case.label),
        p.instruments.len() as f64,
    );

    // Static validation twice over: once on the instrumented graph itself,
    // once through the platform re-lowering (the placement must survive the
    // round trip onto real strategy sites).
    let instrumented_ok = analyze(&apply_to_graph(&g, &p.instruments), case.model).protected();
    let relowered_ok = match (case.relower)(&p.instruments) {
        Some((streams, sdeps)) => {
            let g2 = ProgramGraph::from_streams(format!("{}/synth", case.graph), &streams, &sdeps);
            analyze(&g2, case.model).protected()
        }
        None => {
            errors.push(format!(
                "{}: placement does not map onto platform sites",
                case.label
            ));
            false
        }
    };
    let static_ok = instrumented_ok && relowered_ok;
    let dynamic_ok = explorer_rejects_weak(&case.litmus, &p, case.model);
    manifest.push_cell(
        format!("{}/valid", case.label),
        f64::from(static_ok && dynamic_ok),
    );
    if !static_ok {
        errors.push(format!(
            "{}: re-lowered strategy leaves the idiom unprotected",
            case.label
        ));
    }
    if !dynamic_ok {
        errors.push(format!("{}: explorer reaches the weak outcome", case.label));
    }

    // Hand comparison: the synthesized placement must not lose to any
    // protected hand strategy on the same idiom.
    let mut best_hand = f64::INFINITY;
    for (tag, graph_name, streams, sdeps) in &case.hands {
        let gh = ProgramGraph::from_streams(graph_name.clone(), streams, sdeps);
        let protected = analyze(&gh, case.model).protected();
        let cost = graph_cost(&gh, case.model, costs);
        println!(
            "  hand {tag}: {cost:.1} ns, {}",
            if protected {
                "protected"
            } else {
                "UNPROTECTED"
            }
        );
        manifest.push_cell(format!("{}/hand/{tag}/cost_ns", case.label), cost);
        manifest.push_cell(
            format!("{}/hand/{tag}/protected", case.label),
            f64::from(protected),
        );
        if protected {
            best_hand = best_hand.min(cost);
        }
    }
    manifest.push_cell(format!("{}/best_hand_cost_ns", case.label), best_hand);
    println!(
        "  synthesis {:.1} ns vs best protected hand strategy {best_hand:.1} ns",
        p.cost_ns
    );
    if p.cost_ns > best_hand + COST_EPS {
        errors.push(format!(
            "{}: synthesized cost {:.3} ns exceeds best hand strategy {best_hand:.3} ns",
            case.label, p.cost_ns
        ));
    }
}
