//! Shared workload for whole-program synthesis: generated-corpus bundles.
//!
//! `fence_synth_wps` (the validating campaign binary) and the `wmm_bench`
//! perf campaigns drive the same inputs — parallel-composition bundles
//! packed from the differential corpus under whole-program size caps —
//! so the bundle builder and the placement-slicing helper live here.

use wmm_analyze::{
    check_cycle, critical_cycles, differential_corpus, Instrument, Placement, ProgramGraph,
};
use wmm_litmus::ops::ModelKind;
use wmm_litmus::LitmusTest;

/// Synthesis model for every whole-program instance. ARMv8 keeps all
/// fence classes and upgrade candidates live, so it exercises the solver
/// hardest.
pub const WPS_MODEL: ModelKind = ModelKind::ArmV8;

/// Bundle packing caps (whole-program scale: up to 16 threads / 64
/// accesses per stitched program).
pub const MAX_BUNDLE_THREADS: usize = 16;
/// Access cap per bundle.
pub const MAX_BUNDLE_ACCESSES: usize = 64;
/// Generated-test floor the validating run must clear.
pub const MIN_BUNDLED_TESTS: usize = 128;

/// Open-leg floor for the stress bundles: packed from the leg-heaviest
/// corpus tests so the greedy tier's constraint bound actually bites.
pub const STRESS_LEG_TARGET: usize = 14;
/// Number of stress bundles packed after the corpus-ordered head.
pub const STRESS_BUNDLES: usize = 3;

/// A parallel-composition bundle: the union graph plus each constituent
/// test with its thread offset inside the union.
pub struct Bundle {
    /// Stable bundle label (`bundle{NNN}` in packing order).
    pub label: String,
    /// The union graph the whole-program pipeline runs on.
    pub graph: ProgramGraph,
    /// Constituent tests with their thread offsets inside the union.
    pub parts: Vec<(LitmusTest, usize)>,
    /// Stress bundles additionally run (and validate) a forced
    /// greedy-tier solve.
    pub stress: bool,
}

/// Pack the head of the differential corpus into bundles under the
/// thread/access caps until at least `min_tests` tests are in, then
/// append [`STRESS_BUNDLES`] leg-heavy stress bundles.
#[must_use]
pub fn make_bundles(min_tests: usize) -> Vec<Bundle> {
    let mut bundles: Vec<Bundle> = vec![];
    let mut cur: Vec<(LitmusTest, ProgramGraph)> = vec![];
    let (mut threads, mut accesses, mut packed) = (0usize, 0usize, 0usize);
    let flush = |cur: &mut Vec<(LitmusTest, ProgramGraph)>, bundles: &mut Vec<Bundle>, stress| {
        if cur.is_empty() {
            return;
        }
        let label = format!("bundle{:03}", bundles.len());
        let graphs: Vec<&ProgramGraph> = cur.iter().map(|(_, g)| g).collect();
        let graph = ProgramGraph::disjoint_union(&label, &graphs);
        let mut off = 0usize;
        let parts = cur
            .drain(..)
            .map(|(t, g)| {
                let part = (t, off);
                off += g.threads.len();
                part
            })
            .collect();
        bundles.push(Bundle {
            label,
            graph,
            parts,
            stress,
        });
    };
    let corpus = differential_corpus();
    for test in &corpus {
        if packed >= min_tests {
            break;
        }
        let g = ProgramGraph::from_litmus(test);
        let (nt, na) = (g.threads.len(), g.accesses.len());
        if threads + nt > MAX_BUNDLE_THREADS || accesses + na > MAX_BUNDLE_ACCESSES {
            flush(&mut cur, &mut bundles, false);
            threads = 0;
            accesses = 0;
        }
        threads += nt;
        accesses += na;
        packed += 1;
        cur.push((test.clone(), g));
    }
    flush(&mut cur, &mut bundles, false);

    // Stress bundles: pack the leg-heaviest corpus tests together so the
    // reorder bound has the most constraints to drop. These bundles also
    // run a forced greedy-tier solve whose placement ships through the
    // same static + dual-oracle dynamic validation as every other.
    let mut ranked: Vec<(usize, usize)> = corpus
        .iter()
        .enumerate()
        .map(|(i, test)| (i, open_leg_count(&ProgramGraph::from_litmus(test))))
        .collect();
    ranked.sort_by_key(|&(i, legs)| (std::cmp::Reverse(legs), i));
    let (mut legs_sum, mut made) = (0usize, 0usize);
    (threads, accesses) = (0, 0);
    for &(i, legs) in &ranked {
        if made >= STRESS_BUNDLES {
            break;
        }
        let g = ProgramGraph::from_litmus(&corpus[i]);
        let (nt, na) = (g.threads.len(), g.accesses.len());
        if threads + nt > MAX_BUNDLE_THREADS || accesses + na > MAX_BUNDLE_ACCESSES {
            flush(&mut cur, &mut bundles, true);
            (threads, accesses, legs_sum) = (0, 0, 0);
            made += 1;
            continue;
        }
        threads += nt;
        accesses += na;
        legs_sum += legs;
        cur.push((corpus[i].clone(), g));
        if legs_sum >= STRESS_LEG_TARGET {
            flush(&mut cur, &mut bundles, true);
            (threads, accesses, legs_sum) = (0, 0, 0);
            made += 1;
        }
    }
    cur.clear();
    bundles
}

/// Distinct reorderable (multi-access) legs across a graph's open cycles
/// under [`WPS_MODEL`] — the same instance-size measure the exact cap
/// checks.
#[must_use]
pub fn open_leg_count(g: &ProgramGraph) -> usize {
    let mut legs: Vec<(usize, usize)> = critical_cycles(g)
        .iter()
        .filter(|c| !check_cycle(g, WPS_MODEL, c).protected)
        .flat_map(|c| c.legs.iter().copied().filter(|&(e, x)| e != x))
        .collect();
    legs.sort_unstable();
    legs.dedup();
    legs.len()
}

/// The slice of a bundle placement owned by the part whose threads start
/// at `off` (bundle parts share no locations, so every cycle — and every
/// instrument covering one — lives inside a single part).
#[must_use]
pub fn slice_placement(p: &Placement, off: usize, nthreads: usize) -> Placement {
    let shift = |thread: usize| thread - off;
    let instruments = p
        .instruments
        .iter()
        .filter(|ins| {
            let t = match **ins {
                Instrument::Fence { thread, .. }
                | Instrument::Acquire { thread, .. }
                | Instrument::Release { thread, .. }
                | Instrument::Dep { thread, .. } => thread,
            };
            (off..off + nthreads).contains(&t)
        })
        .map(|ins| match *ins {
            Instrument::Fence { thread, slot, kind } => Instrument::Fence {
                thread: shift(thread),
                slot,
                kind,
            },
            Instrument::Acquire { thread, pos } => Instrument::Acquire {
                thread: shift(thread),
                pos,
            },
            Instrument::Release { thread, pos } => Instrument::Release {
                thread: shift(thread),
                pos,
            },
            Instrument::Dep {
                thread,
                from_pos,
                to_pos,
                kind,
            } => Instrument::Dep {
                thread: shift(thread),
                from_pos,
                to_pos,
                kind,
            },
        })
        .collect();
    Placement {
        instruments,
        cost_ns: 0.0,
        rounds: p.rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundles_respect_caps_and_floor() {
        let bundles = make_bundles(MIN_BUNDLED_TESTS);
        let packed: usize = bundles.iter().map(|b| b.parts.len()).sum();
        assert!(packed >= MIN_BUNDLED_TESTS);
        assert!(bundles.iter().any(|b| b.stress));
        for b in &bundles {
            assert!(b.graph.threads.len() <= MAX_BUNDLE_THREADS, "{}", b.label);
            assert!(b.graph.accesses.len() <= MAX_BUNDLE_ACCESSES, "{}", b.label);
            let total: usize = b.parts.iter().map(|(t, _)| t.threads.len()).sum();
            assert_eq!(total, b.graph.threads.len());
        }
    }

    #[test]
    fn slicing_partitions_a_bundle_placement() {
        use wmm_analyze::{synthesize, CostModel, SynthConfig};
        let bundles = make_bundles(8);
        let b = &bundles[0];
        let p = synthesize(
            &b.graph,
            SynthConfig::for_model(WPS_MODEL),
            &CostModel::static_table(),
        )
        .expect("bundle synth");
        let sliced: usize = b
            .parts
            .iter()
            .map(|(t, off)| slice_placement(&p, *off, t.threads.len()).instruments.len())
            .sum();
        assert_eq!(sliced, p.instruments.len());
    }
}
