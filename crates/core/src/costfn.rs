//! Cost functions — the paper's injectable spin loops (Figs. 2–4).
//!
//! A cost function is "an instruction sequence with known stable execution
//! time": `mov xN, #iters; subs; bne` (plus a stack spill/reload when no
//! scratch register is available). It takes up a predictable amount of time
//! without touching shared memory.
//!
//! Because pipelining makes small loops sub-linear in the iteration count
//! (Fig. 4), the methodology first *calibrates* the cost function — measures
//! its execution time across the loop counts of interest on the target
//! machine — and uses the measured nanoseconds, not the nominal count, as
//! the `a` axis of every sweep.

use wmm_sim::isa::Instr;
use wmm_sim::Machine;

/// A cost function: the spin loop of Fig. 2 (ARM) / Fig. 3 (POWER).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostFunction {
    /// Loop iteration count N.
    pub iters: u64,
    /// Whether the loop counter register must be spilled to the stack.
    /// In OpenJDK on ARMv8 a scratch register (`x9`) is available, so the
    /// spill is elided ("arm-nostack" in Fig. 4); the Linux kernel rewriting
    /// must spill.
    pub stack_spill: bool,
}

impl CostFunction {
    /// The injectable instruction (modelled natively by the simulator).
    pub fn instr(&self) -> Instr {
        Instr::CostLoop {
            iters: self.iters,
            stack_spill: self.stack_spill,
        }
    }

    /// Encoded size in instruction words (5 with spill, 3 without),
    /// needed for size-invariant padding of the base case.
    pub fn size(&self) -> u64 {
        self.instr().size()
    }
}

/// A calibration table: measured execution time for a range of loop counts
/// on a specific machine — the data behind Fig. 4.
#[derive(Debug, Clone)]
pub struct Calibration {
    /// Whether the calibrated variant spills to the stack.
    pub stack_spill: bool,
    /// `(iteration count, measured ns)` pairs, ascending in count.
    pub points: Vec<(u64, f64)>,
}

impl Calibration {
    /// Measure the cost function across `2^0 ..= 2^max_exp` iterations on
    /// `machine` (the paper uses up to 2^10 for Fig. 4 and up to 2^14 for
    /// Fig. 1).
    pub fn measure(machine: &Machine, stack_spill: bool, max_exp: u32) -> Self {
        let mut points = Vec::with_capacity(max_exp as usize + 1);
        for e in 0..=max_exp {
            let n = 1u64 << e;
            let cf = CostFunction {
                iters: n,
                stack_spill,
            };
            // Interleave with a little ALU work so that the loop is measured
            // in a realistic pipeline context rather than back-to-back.
            let body = [Instr::Alu, cf.instr(), Instr::Alu];
            let total = machine.time_sequence_ns(&body, 400, 0xC0FFEE + e as u64);
            let empty = machine.time_sequence_ns(&[Instr::Alu, Instr::Alu], 400, 0xC0FFEE);
            points.push((n, (total - empty).max(0.01)));
        }
        Calibration {
            stack_spill,
            points,
        }
    }

    /// Measured nanoseconds for a loop count (piecewise-linear interpolation
    /// between calibrated points; extrapolates linearly beyond the table).
    pub fn ns_for_iters(&self, iters: u64) -> f64 {
        assert!(!self.points.is_empty());
        let n = iters as f64;
        if iters <= self.points[0].0 {
            return self.points[0].1;
        }
        for w in self.points.windows(2) {
            let (n0, t0) = (w[0].0 as f64, w[0].1);
            let (n1, t1) = (w[1].0 as f64, w[1].1);
            if n <= n1 {
                return t0 + (t1 - t0) * (n - n0) / (n1 - n0);
            }
        }
        // Beyond the last point: extrapolate from the final slope.
        let last = self.points.len() - 1;
        let (n0, t0) = (self.points[last - 1].0 as f64, self.points[last - 1].1);
        let (n1, t1) = (self.points[last].0 as f64, self.points[last].1);
        t1 + (t1 - t0) * (n - n1) / (n1 - n0)
    }

    /// Smallest loop count whose measured time reaches `target_ns`.
    /// This is how a sweep converts its nanosecond axis into loop counts.
    pub fn iters_for_ns(&self, target_ns: f64) -> u64 {
        let mut lo = 1u64;
        let mut hi = self.points.last().expect("non-empty").0.max(2);
        // Grow the bracket if the target is beyond the calibrated range.
        while self.ns_for_iters(hi) < target_ns {
            hi = hi.saturating_mul(2);
            if hi > 1 << 40 {
                break;
            }
        }
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.ns_for_iters(mid) < target_ns {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// The cost function realising approximately `target_ns`, together with
    /// its calibrated actual time — the value used for the model's `a` axis.
    pub fn for_target_ns(&self, target_ns: f64) -> (CostFunction, f64) {
        let iters = self.iters_for_ns(target_ns);
        (
            CostFunction {
                iters,
                stack_spill: self.stack_spill,
            },
            self.ns_for_iters(iters),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmm_sim::arch::{armv8_xgene1, power7};

    #[test]
    fn sizes_match_figures_2_and_3() {
        assert_eq!(
            CostFunction {
                iters: 8,
                stack_spill: true
            }
            .size(),
            5
        );
        assert_eq!(
            CostFunction {
                iters: 8,
                stack_spill: false
            }
            .size(),
            3
        );
    }

    #[test]
    fn calibration_is_monotonic() {
        let m = Machine::new(armv8_xgene1());
        let cal = Calibration::measure(&m, true, 10);
        for w in cal.points.windows(2) {
            assert!(w[1].1 >= w[0].1, "{:?} then {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn calibration_linear_region_slope() {
        // Large-N slope approaches 1 cycle/iteration: ~0.417 ns on ARM at
        // 2.4 GHz and ~0.27 ns on POWER at 3.7 GHz (Fig. 4).
        for (spec, per_iter) in [(armv8_xgene1(), 1.0 / 2.4), (power7(), 1.0 / 3.7)] {
            let m = Machine::new(spec);
            let cal = Calibration::measure(&m, true, 12);
            let (n0, t0) = cal.points[10];
            let (n1, t1) = cal.points[12];
            let slope = (t1 - t0) / (n1 - n0) as f64;
            assert!(
                (slope - per_iter).abs() / per_iter < 0.1,
                "slope {slope} vs {per_iter}"
            );
        }
    }

    #[test]
    fn sublinear_at_small_n() {
        let m = Machine::new(armv8_xgene1());
        let cal = Calibration::measure(&m, false, 10);
        let t1 = cal.ns_for_iters(1);
        let t8 = cal.ns_for_iters(8);
        assert!(
            t8 < 6.0 * t1,
            "overlap should compress small loops: {t1} vs {t8}"
        );
    }

    #[test]
    fn nostack_cheaper_than_stack() {
        let m = Machine::new(armv8_xgene1());
        let with = Calibration::measure(&m, true, 6);
        let without = Calibration::measure(&m, false, 6);
        for ((_, a), (_, b)) in with.points.iter().zip(&without.points) {
            assert!(b <= a, "nostack {b} should not exceed stack {a}");
        }
    }

    #[test]
    fn iters_for_ns_inverts_ns_for_iters() {
        let m = Machine::new(armv8_xgene1());
        let cal = Calibration::measure(&m, true, 14);
        for target in [1.0, 4.0, 16.0, 100.0, 1000.0] {
            let n = cal.iters_for_ns(target);
            let t = cal.ns_for_iters(n);
            assert!(t >= target || n == 1, "target {target}: got n={n} t={t}");
            if n > 1 {
                assert!(
                    cal.ns_for_iters(n - 1) < target,
                    "n not minimal for {target}"
                );
            }
        }
    }

    #[test]
    fn for_target_returns_consistent_pair() {
        let m = Machine::new(power7());
        let cal = Calibration::measure(&m, true, 12);
        let (cf, actual) = cal.for_target_ns(64.0);
        assert!(cf.stack_spill);
        assert!((cal.ns_for_iters(cf.iters) - actual).abs() < 1e-12);
        assert!(actual >= 64.0);
    }
}
