//! The execution seam: how batches of independent simulations are run.
//!
//! Every experiment in the methodology — a [`crate::runner::measure`] call,
//! a [`crate::sensitivity::sweep`], a ranking matrix, a turnkey evaluation —
//! bottoms out in a set of *independent, deterministic* simulations: each is
//! one `(machine, program, ctx, seed)` cell, and cells never depend on each
//! other's results. [`Executor`] abstracts over how such a batch is driven:
//! the in-crate [`SerialExecutor`] runs cells in order on the calling
//! thread; the `wmm-harness` crate provides a parallel, caching executor
//! that fans cells out across worker threads and skips already-simulated
//! cells via a content-addressed result cache.
//!
//! The contract that makes this safe to parallelise: `run_batch` must return
//! wall-times **in job order**, and each job's result must depend only on
//! that job's inputs. The simulator guarantees the latter (`Machine::run` is
//! deterministic in `(program, ctx, seed)`), so any executor that preserves
//! order produces bit-identical experiment output regardless of worker
//! count.
//!
//! # Telemetry through the seam
//!
//! The simulator counts every fence execution and stall cycle
//! ([`ExecStats`]), and discarding that ground truth at the seam would make
//! the methodology's Eq. 2 cost estimates impossible to audit. So the
//! primitive batch operation is [`Executor::run_batch_stats`], which returns
//! one [`JobOutcome`] per job: always the wall time, plus the full
//! [`ExecStats`] whenever the job was actually simulated. A caching executor
//! answers repeat jobs from a wall-time-only store, so a cache hit carries
//! `stats: None` — callers that aggregate telemetry count only the observed
//! (freshly simulated) jobs. [`Executor::run_batch`] is the scalar
//! projection every measurement path uses.

use wmm_sim::machine::{MachineScratch, Program, WorkloadCtx};
use wmm_sim::stats::ExecStats;
use wmm_sim::Machine;

/// One independent simulation cell: everything `Machine::run` needs.
///
/// Jobs own their program and context so a batch can outlive the image it
/// was linked from and cross thread boundaries freely.
pub struct SimJob<'a> {
    /// The machine to simulate on.
    pub machine: &'a Machine,
    /// The linked program.
    pub program: Program,
    /// Workload execution context.
    pub ctx: WorkloadCtx,
    /// Sample seed.
    pub seed: u64,
    /// Collect per-site stall attribution (`Machine::run_sited`). Sited
    /// runs produce identical wall times and counters to unsited ones, but
    /// their [`ExecStats`] additionally carries the per-site stall map —
    /// caching executors must treat them as always-miss so the stats are
    /// guaranteed present.
    pub sited: bool,
}

impl SimJob<'_> {
    /// Run this job to completion, returning the simulated wall time (ns).
    pub fn run(&self) -> f64 {
        self.run_stats().wall_ns
    }

    /// Run this job to completion, returning the full execution statistics
    /// (wall time, per-core cycles, event counters, fence stall cycles).
    pub fn run_stats(&self) -> ExecStats {
        self.run_stats_with(&mut MachineScratch::new())
    }

    /// [`SimJob::run_stats`] reusing a [`MachineScratch`] arena across jobs
    /// — the executor hot path. Results are bit-identical to
    /// [`SimJob::run_stats`]; only the per-run allocations disappear.
    pub fn run_stats_with(&self, scratch: &mut MachineScratch) -> ExecStats {
        if self.sited {
            self.machine
                .run_sited_with(&self.program, &self.ctx, self.seed, scratch)
        } else {
            self.machine
                .run_with(&self.program, &self.ctx, self.seed, scratch)
        }
    }
}

/// The result of one job through the seam: the wall time that defines the
/// experiment's output, plus the simulator's full statistics when the job
/// was freshly simulated (`None` means the wall time came from a result
/// cache, which stores only the scalar).
pub struct JobOutcome {
    /// Simulated wall-clock time, ns — identical to what `run_batch`
    /// returns for this job.
    pub wall_ns: f64,
    /// Full execution statistics, when observed.
    pub stats: Option<ExecStats>,
}

impl JobOutcome {
    /// An outcome observed by actually running the simulation.
    pub fn observed(stats: ExecStats) -> Self {
        JobOutcome {
            wall_ns: stats.wall_ns,
            stats: Some(stats),
        }
    }

    /// An outcome answered from a wall-time-only cache.
    pub fn cached(wall_ns: f64) -> Self {
        JobOutcome {
            wall_ns,
            stats: None,
        }
    }
}

/// Strategy for draining a batch of independent simulation jobs.
pub trait Executor: Sync {
    /// Run every job and return one [`JobOutcome`] per job **in job
    /// order**. Wall times must be bit-identical to what direct
    /// `SimJob::run` calls would produce.
    fn run_batch_stats(&self, jobs: Vec<SimJob<'_>>) -> Vec<JobOutcome>;

    /// Run every job and return the wall times (ns) **in job order** — the
    /// scalar projection of [`Executor::run_batch_stats`].
    fn run_batch(&self, jobs: Vec<SimJob<'_>>) -> Vec<f64> {
        self.run_batch_stats(jobs)
            .into_iter()
            .map(|o| o.wall_ns)
            .collect()
    }
}

/// The default executor: runs jobs sequentially on the calling thread.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialExecutor;

impl Executor for SerialExecutor {
    fn run_batch_stats(&self, jobs: Vec<SimJob<'_>>) -> Vec<JobOutcome> {
        // One scratch arena serves the whole batch: per-run state is reset
        // in place instead of reallocated per job.
        let mut scratch = MachineScratch::new();
        jobs.iter()
            .map(|j| JobOutcome::observed(j.run_stats_with(&mut scratch)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmm_sim::arch::armv8_xgene1;
    use wmm_sim::isa::{FenceKind, Instr};

    #[test]
    fn serial_executor_matches_direct_runs() {
        let machine = Machine::new(armv8_xgene1());
        let ctx = WorkloadCtx::default();
        let mk = |cycles: u32, seed: u64| SimJob {
            machine: &machine,
            program: Program::new(vec![vec![Instr::Compute { cycles }]]),
            ctx: ctx.clone(),
            seed,
            sited: false,
        };
        let jobs = vec![mk(100, 1), mk(5_000, 2), mk(700, 3)];
        let direct: Vec<f64> = jobs.iter().map(SimJob::run).collect();
        let batched = SerialExecutor.run_batch(jobs);
        assert_eq!(batched, direct);
        assert!(batched[1] > batched[0]);
    }

    #[test]
    fn stats_batch_carries_full_exec_stats() {
        let machine = Machine::new(armv8_xgene1());
        let job = SimJob {
            machine: &machine,
            program: Program::new(vec![vec![
                Instr::Compute { cycles: 100 },
                Instr::Fence(FenceKind::DmbIsh),
                Instr::Fence(FenceKind::DmbIsh),
            ]]),
            ctx: WorkloadCtx::default(),
            seed: 9,
            sited: false,
        };
        let outcomes = SerialExecutor.run_batch_stats(vec![job]);
        assert_eq!(outcomes.len(), 1);
        let o = &outcomes[0];
        let stats = o.stats.as_ref().expect("serial runs always observe");
        assert_eq!(o.wall_ns, stats.wall_ns);
        assert_eq!(stats.fences(FenceKind::DmbIsh), 2);
        assert!(stats.fence_stall_cycles(FenceKind::DmbIsh) > 0.0);
    }

    #[test]
    fn cached_outcome_has_no_stats() {
        let o = JobOutcome::cached(12.5);
        assert_eq!(o.wall_ns, 12.5);
        assert!(o.stats.is_none());
    }
}
