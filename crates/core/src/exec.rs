//! The execution seam: how batches of independent simulations are run.
//!
//! Every experiment in the methodology — a [`crate::runner::measure`] call,
//! a [`crate::sensitivity::sweep`], a ranking matrix, a turnkey evaluation —
//! bottoms out in a set of *independent, deterministic* simulations: each is
//! one `(machine, program, ctx, seed)` cell, and cells never depend on each
//! other's results. [`Executor`] abstracts over how such a batch is driven:
//! the in-crate [`SerialExecutor`] runs cells in order on the calling
//! thread; the `wmm-harness` crate provides a parallel, caching executor
//! that fans cells out across worker threads and skips already-simulated
//! cells via a content-addressed result cache.
//!
//! The contract that makes this safe to parallelise: `run_batch` must return
//! wall-times **in job order**, and each job's result must depend only on
//! that job's inputs. The simulator guarantees the latter (`Machine::run` is
//! deterministic in `(program, ctx, seed)`), so any executor that preserves
//! order produces bit-identical experiment output regardless of worker
//! count.

use wmm_sim::machine::{Program, WorkloadCtx};
use wmm_sim::Machine;

/// One independent simulation cell: everything `Machine::run` needs.
///
/// Jobs own their program and context so a batch can outlive the image it
/// was linked from and cross thread boundaries freely.
pub struct SimJob<'a> {
    /// The machine to simulate on.
    pub machine: &'a Machine,
    /// The linked program.
    pub program: Program,
    /// Workload execution context.
    pub ctx: WorkloadCtx,
    /// Sample seed.
    pub seed: u64,
}

impl SimJob<'_> {
    /// Run this job to completion, returning the simulated wall time (ns).
    pub fn run(&self) -> f64 {
        self.machine
            .run(&self.program, &self.ctx, self.seed)
            .wall_ns
    }
}

/// Strategy for draining a batch of independent simulation jobs.
pub trait Executor: Sync {
    /// Run every job and return the wall times (ns) **in job order**.
    fn run_batch(&self, jobs: Vec<SimJob<'_>>) -> Vec<f64>;
}

/// The default executor: runs jobs sequentially on the calling thread.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialExecutor;

impl Executor for SerialExecutor {
    fn run_batch(&self, jobs: Vec<SimJob<'_>>) -> Vec<f64> {
        jobs.iter().map(SimJob::run).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmm_sim::arch::armv8_xgene1;
    use wmm_sim::isa::Instr;

    #[test]
    fn serial_executor_matches_direct_runs() {
        let machine = Machine::new(armv8_xgene1());
        let ctx = WorkloadCtx::default();
        let mk = |cycles: u32, seed: u64| SimJob {
            machine: &machine,
            program: Program::new(vec![vec![Instr::Compute { cycles }]]),
            ctx: ctx.clone(),
            seed,
        };
        let jobs = vec![mk(100, 1), mk(5_000, 2), mk(700, 3)];
        let direct: Vec<f64> = jobs.iter().map(SimJob::run).collect();
        let batched = SerialExecutor.run_batch(jobs);
        assert_eq!(batched, direct);
        assert!(batched[1] > batched[0]);
    }
}
