//! Program images with labelled barrier sites, and size-invariant rewriting.
//!
//! The paper compiles its targets "with illegal, but uniquely identifiable,
//! instruction sequences replacing all invocations of memory model macros"
//! and then rewrites the binary per test, keeping "the binary size of all
//! code sections invariant regardless of the test" (§4.3). This module is
//! that mechanism: platform code is a sequence of [`Segment`]s — literal
//! instructions interleaved with named *sites* — and [`SiteRewriter`] links
//! an image into a runnable [`Program`] by lowering every site under a
//! fencing strategy, optionally appending an injected cost function, and
//! padding with `nop`s to a per-site envelope that is identical across all
//! variants under comparison.

use std::collections::HashMap;
use std::hash::Hash;

use wmm_sim::isa::{pad_to, seq_size, AccessOrd, Instr};
use wmm_sim::machine::{Program, WorkloadCtx};

use crate::costfn::CostFunction;
use crate::strategy::FencingStrategy;

/// One element of platform code: literal instructions, or a fencing-strategy
/// site identified by code path `P`.
#[derive(Debug, Clone)]
pub enum Segment<P> {
    /// Literal instructions (application/platform code).
    Code(Vec<Instr>),
    /// Literal instructions carrying an observability label. Linked exactly
    /// like [`Segment::Code`] — no strategy lowering, no padding — but
    /// [`SiteRewriter::link_sited`] names them `t{t}:{label}#{occ}` instead
    /// of pooling them into `t{t}:code`. Platforms use this to tag accesses
    /// whose cost moves *between* segments across strategy variants (e.g. a
    /// volatile access that is a plain load under a barrier JIT but an
    /// acquire load under `ldar`/`stlr` lowering), so per-site profiles of
    /// the two variants join on the same row.
    Labeled(&'static str, Vec<Instr>),
    /// A code path where the fencing strategy is implemented.
    Site(P),
}

/// Flatten per-thread segment lists into raw instruction streams by
/// lowering every site through `strategy` — no padding, no cost
/// injection. This is the bridge between the platform lowerings and
/// analyses that consume bare streams (e.g. `wmm-analyze`'s program-graph
/// frontend).
pub fn flatten_streams<P>(
    threads: &[Vec<Segment<P>>],
    strategy: &dyn FencingStrategy<P>,
) -> Vec<Vec<Instr>> {
    threads
        .iter()
        .map(|segs| {
            let mut out = Vec::new();
            for seg in segs {
                match seg {
                    Segment::Code(is) | Segment::Labeled(_, is) => out.extend(is.iter().copied()),
                    Segment::Site(p) => out.extend(strategy.lower(p)),
                }
            }
            out
        })
        .collect()
}

/// A multi-threaded program image with labelled sites.
#[derive(Debug, Clone)]
pub struct Image<P> {
    /// Per-thread segment lists.
    pub threads: Vec<Vec<Segment<P>>>,
    /// Workload execution context (branch pressure, locality, noise).
    pub ctx: WorkloadCtx,
    /// Units of work the image performs, for throughput normalisation.
    pub work_units: f64,
}

impl<P: Clone + Eq + Hash> Image<P> {
    /// Count site occurrences per code path — the "invocation counter"
    /// baseline the paper discusses (and rejects as a *measurement* tool,
    /// but still uses to reason about sensitivity).
    pub fn site_counts(&self) -> HashMap<P, u64> {
        let mut counts = HashMap::new();
        for t in &self.threads {
            for seg in t {
                if let Segment::Site(p) = seg {
                    *counts.entry(p.clone()).or_insert(0) += 1;
                }
            }
        }
        counts
    }

    /// All distinct code paths present in the image.
    pub fn paths(&self) -> Vec<P> {
        let mut seen = HashMap::new();
        let mut out = vec![];
        for t in &self.threads {
            for seg in t {
                if let Segment::Site(p) = seg {
                    if seen.insert(p.clone(), ()).is_none() {
                        out.push(p.clone());
                    }
                }
            }
        }
        out
    }
}

/// Where to inject the cost function.
#[derive(Debug, Clone)]
pub enum Injection<P> {
    /// No injection: the (nop-padded) base case.
    None,
    /// Inject at every site — Fig. 5's "all memory barriers" sweeps.
    All(CostFunction),
    /// Inject at sites of one code path only — Figs. 6 and 9.
    At(P, CostFunction),
    /// Inject at any site whose path is in the set. Used when code paths are
    /// *combined* barriers: injecting "into the StoreStore barrier" must hit
    /// every site whose combination contains StoreStore ("a code path will
    /// appear in multiple results", §4.2.1).
    Set(Vec<P>, CostFunction),
}

impl<P: PartialEq> Injection<P> {
    /// The cost function injected at `path`, if any.
    pub fn at(&self, path: &P) -> Option<CostFunction> {
        match self {
            Injection::None => None,
            Injection::All(cf) => Some(*cf),
            Injection::At(p, cf) => {
                if p == path {
                    Some(*cf)
                } else {
                    None
                }
            }
            Injection::Set(ps, cf) => {
                if ps.contains(path) {
                    Some(*cf)
                } else {
                    None
                }
            }
        }
    }

    /// The largest instruction-word footprint this injection can add to any
    /// single site (for envelope computation).
    pub fn max_size(&self) -> u64 {
        match self {
            Injection::None => 0,
            Injection::All(cf) | Injection::At(_, cf) | Injection::Set(_, cf) => cf.size(),
        }
    }
}

/// Links images into runnable programs under a (strategy, injection,
/// envelope) triple, asserting size invariance.
pub struct SiteRewriter<'a, P> {
    strategy: &'a dyn FencingStrategy<P>,
    injection: Injection<P>,
    envelope: HashMap<P, u64>,
}

impl<'a, P: Clone + Eq + Hash> SiteRewriter<'a, P> {
    /// Build a rewriter. `envelope` gives the fixed per-path site size in
    /// instruction words; use [`compute_envelope`] to derive it from the set
    /// of strategies under comparison.
    pub fn new(
        strategy: &'a dyn FencingStrategy<P>,
        injection: Injection<P>,
        envelope: HashMap<P, u64>,
    ) -> Self {
        SiteRewriter {
            strategy,
            injection,
            envelope,
        }
    }

    /// The strategy being applied.
    pub fn strategy_name(&self) -> &str {
        self.strategy.name()
    }

    /// Lower one site to its final, envelope-padded sequence.
    pub fn lower_site(&self, path: &P) -> Vec<Instr> {
        let mut seq = self.strategy.lower(path);
        if let Some(cf) = self.injection.at(path) {
            seq.push(cf.instr());
        }
        let env = *self
            .envelope
            .get(path)
            .unwrap_or_else(|| panic!("no envelope for code path"));
        pad_to(seq, env)
    }

    /// Link an image into a runnable program. Every site of a given path
    /// produces exactly `envelope[path]` instruction words, so two programs
    /// linked from the same image with different strategies or injections
    /// have identical code layout.
    ///
    /// Sites of the same path lower identically, so the lowering is computed
    /// once per distinct path and memcpy'd at every further occurrence —
    /// images have thousands of sites over a handful of paths. The cache is
    /// a linear-probed vec: with so few distinct paths, an `Eq` scan over
    /// tiny `Copy`-style path enums is cheaper than hashing each site.
    pub fn link(&self, image: &Image<P>) -> Program {
        let mut lowered: Vec<(P, Vec<Instr>)> = Vec::new();
        let threads = image
            .threads
            .iter()
            .map(|segs| {
                // Sizing pre-pass: segment counts are tiny next to the
                // instruction stream, so resolving every site first (warming
                // the cache as a side effect) buys a single exact allocation
                // for the linked thread.
                let mut len = 0;
                for seg in segs {
                    len += match seg {
                        Segment::Code(instrs) | Segment::Labeled(_, instrs) => instrs.len(),
                        Segment::Site(p) => {
                            let idx = match lowered.iter().position(|(q, _)| q == p) {
                                Some(i) => i,
                                None => {
                                    lowered.push((p.clone(), self.lower_site(p)));
                                    lowered.len() - 1
                                }
                            };
                            lowered[idx].1.len()
                        }
                    };
                }
                let mut out = Vec::with_capacity(len);
                for seg in segs {
                    match seg {
                        Segment::Code(instrs) | Segment::Labeled(_, instrs) => {
                            out.extend_from_slice(instrs)
                        }
                        Segment::Site(p) => {
                            let idx = lowered
                                .iter()
                                .position(|(q, _)| q == p)
                                .expect("warmed by sizing pass");
                            out.extend_from_slice(&lowered[idx].1);
                        }
                    }
                }
                out
            })
            .collect();
        Program::new(threads)
    }

    /// Like [`SiteRewriter::link`], but also produce a [`SiteMap`] that
    /// names every linked instruction after the image segment it came from.
    /// The program is identical to what `link` returns; the map is what lets
    /// the observability layer fold per-`(thread, index)` stall records into
    /// profiles keyed by stable, human-readable site names.
    pub fn link_sited(&self, image: &Image<P>) -> (Program, SiteMap)
    where
        P: std::fmt::Debug,
    {
        let mut lowered: Vec<(P, Vec<Instr>)> = Vec::new();
        let mut names: Vec<String> = Vec::new();
        let mut ids: HashMap<String, u32> = HashMap::new();
        let mut intern = |names: &mut Vec<String>, name: String| -> u32 {
            if let Some(&id) = ids.get(&name) {
                return id;
            }
            let id = names.len() as u32;
            ids.insert(name.clone(), id);
            names.push(name);
            id
        };
        let mut threads = Vec::with_capacity(image.threads.len());
        let mut map_threads = Vec::with_capacity(image.threads.len());
        for (t, segs) in image.threads.iter().enumerate() {
            let mut out = Vec::new();
            let mut map = Vec::new();
            let mut occ: HashMap<String, u64> = HashMap::new();
            for seg in segs {
                match seg {
                    Segment::Code(instrs) => {
                        // Ordered accesses are observation-worthy sites in
                        // their own right: a JIT that lowers volatiles to
                        // `ldar`/`stlr` emits no barrier segment, yet those
                        // accesses are exactly where the volatile cost
                        // moved. Name them individually; pool the rest.
                        for instr in instrs {
                            let label = match instr {
                                Instr::Load {
                                    ord: AccessOrd::Acquire,
                                    ..
                                } => Some("acq"),
                                Instr::Store {
                                    ord: AccessOrd::Release,
                                    ..
                                } => Some("rel"),
                                _ => None,
                            };
                            let id = match label {
                                Some(l) => {
                                    let n = occ.entry(l.to_string()).or_insert(0);
                                    let id = intern(&mut names, format!("t{t}:{l}#{n}"));
                                    *n += 1;
                                    id
                                }
                                None => intern(&mut names, format!("t{t}:code")),
                            };
                            out.push(*instr);
                            map.push(id);
                        }
                    }
                    Segment::Labeled(label, instrs) => {
                        let n = occ.entry((*label).to_string()).or_insert(0);
                        let id = intern(&mut names, format!("t{t}:{label}#{n}"));
                        *n += 1;
                        map.extend(std::iter::repeat_n(id, instrs.len()));
                        out.extend_from_slice(instrs);
                    }
                    Segment::Site(p) => {
                        let label = format!("{p:?}");
                        let n = occ.entry(label.clone()).or_insert(0);
                        let id = intern(&mut names, format!("t{t}:{label}#{n}"));
                        *n += 1;
                        let idx = match lowered.iter().position(|(q, _)| q == p) {
                            Some(i) => i,
                            None => {
                                lowered.push((p.clone(), self.lower_site(p)));
                                lowered.len() - 1
                            }
                        };
                        let seq = &lowered[idx].1;
                        map.extend(std::iter::repeat_n(id, seq.len()));
                        out.extend_from_slice(seq);
                    }
                }
            }
            threads.push(out);
            map_threads.push(map);
        }
        (
            Program::new(threads),
            SiteMap {
                names,
                threads: map_threads,
            },
        )
    }
}

/// Maps every linked instruction back to the image segment it came from, by
/// interned name. Site instructions are named `t{thread}:{path:?}#{occ}`
/// (`occ` counts occurrences of the same path within the thread, in stream
/// order); [`Segment::Labeled`] code is named `t{thread}:{label}#{occ}` the
/// same way; ordered accesses inside unlabeled literal code — `ldar`/`stlr`
/// stand-ins a platform did not tag — get fallback `t{thread}:acq#{occ}` /
/// `t{thread}:rel#{occ}` names; the remaining literal platform code is
/// pooled under `t{thread}:code`. Names are a function of the *image* and
/// thread layout only — not of the strategy, injection, or seed — so
/// profiles from different variants of the same image join site-by-site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteMap {
    names: Vec<String>,
    threads: Vec<Vec<u32>>,
}

impl SiteMap {
    /// The name of instruction `index` of `thread`, if in range.
    pub fn name(&self, thread: usize, index: usize) -> Option<&str> {
        let id = *self.threads.get(thread)?.get(index)?;
        self.names.get(id as usize).map(String::as_str)
    }

    /// All interned names, in first-appearance order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Whether `name` denotes pooled literal code rather than a site.
    pub fn is_code(name: &str) -> bool {
        name.ends_with(":code")
    }
}

/// Compute the per-path envelope: the maximum lowered size over all
/// `strategies`, plus room for the largest injectable cost function
/// (`extra_words`: 5 for the stack-spilling variant, 3 otherwise).
pub fn compute_envelope<P: Clone + Eq + Hash>(
    paths: &[P],
    strategies: &[&dyn FencingStrategy<P>],
    extra_words: u64,
) -> HashMap<P, u64> {
    let mut env = HashMap::new();
    for p in paths {
        let max_lower = strategies
            .iter()
            .map(|s| seq_size(&s.lower(p)))
            .max()
            .unwrap_or(0);
        env.insert(p.clone(), max_lower + extra_words);
    }
    env
}

/// Total linked code size of a program in instruction words — used by tests
/// to assert the size-invariance property.
pub fn program_words(program: &Program) -> u64 {
    program.threads.iter().flatten().map(Instr::size).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::FnStrategy;
    use wmm_sim::isa::FenceKind;

    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    enum Path {
        Enter,
        Exit,
    }

    fn image() -> Image<Path> {
        Image {
            threads: vec![vec![
                Segment::Code(vec![Instr::Alu, Instr::Alu]),
                Segment::Site(Path::Enter),
                Segment::Code(vec![Instr::Alu]),
                Segment::Site(Path::Exit),
                Segment::Site(Path::Enter),
            ]],
            ctx: WorkloadCtx::default(),
            work_units: 1.0,
        }
    }

    #[allow(clippy::type_complexity)]
    fn strategies() -> (
        FnStrategy<Path, impl Fn(&Path) -> Vec<Instr>>,
        FnStrategy<Path, impl Fn(&Path) -> Vec<Instr>>,
    ) {
        let a = FnStrategy::new("one-fence", |_: &Path| {
            vec![Instr::Fence(FenceKind::DmbIsh)]
        });
        let b = FnStrategy::new("two-fence", |p: &Path| match p {
            Path::Enter => vec![
                Instr::Fence(FenceKind::DmbIshLd),
                Instr::Fence(FenceKind::DmbIshSt),
            ],
            Path::Exit => vec![Instr::Fence(FenceKind::DmbIsh)],
        });
        (a, b)
    }

    #[test]
    fn site_counts_and_paths() {
        let img = image();
        let counts = img.site_counts();
        assert_eq!(counts[&Path::Enter], 2);
        assert_eq!(counts[&Path::Exit], 1);
        assert_eq!(img.paths().len(), 2);
    }

    #[test]
    fn linked_size_is_invariant_across_strategies_and_injection() {
        let img = image();
        let (a, b) = strategies();
        let cf = CostFunction {
            iters: 1 << 8,
            stack_spill: true,
        };
        let env = compute_envelope(&img.paths(), &[&a, &b], cf.size());

        let base_a = SiteRewriter::new(&a, Injection::None, env.clone()).link(&img);
        let base_b = SiteRewriter::new(&b, Injection::None, env.clone()).link(&img);
        let inj_a = SiteRewriter::new(&a, Injection::All(cf), env.clone()).link(&img);
        let inj_one = SiteRewriter::new(&a, Injection::At(Path::Enter, cf), env.clone()).link(&img);

        let sz = program_words(&base_a);
        for (name, p) in [
            ("base_b", &base_b),
            ("inj_a", &inj_a),
            ("inj_one", &inj_one),
        ] {
            assert_eq!(program_words(p), sz, "size changed for {name}");
        }
    }

    #[test]
    fn injection_at_targets_only_that_path() {
        let img = image();
        let (a, _) = strategies();
        let cf = CostFunction {
            iters: 4,
            stack_spill: false,
        };
        let env = compute_envelope(&img.paths(), &[&a], cf.size());
        let rw = SiteRewriter::new(&a, Injection::At(Path::Exit, cf), env);
        let prog = rw.link(&img);
        let loops = prog.threads[0]
            .iter()
            .filter(|i| matches!(i, Instr::CostLoop { .. }))
            .count();
        assert_eq!(loops, 1, "only the single Exit site gets the loop");
    }

    #[test]
    fn base_case_carries_nop_placeholder() {
        // §4.1: "we always inject a placeholder nop sequence into the base
        // case" — the envelope leaves room for the cost function, filled
        // with nops when nothing is injected.
        let img = image();
        let (a, _) = strategies();
        let cf = CostFunction {
            iters: 4,
            stack_spill: true,
        };
        let env = compute_envelope(&img.paths(), &[&a], cf.size());
        let rw = SiteRewriter::new(&a, Injection::None, env);
        let site = rw.lower_site(&Path::Enter);
        let nops = site.iter().filter(|i| matches!(i, Instr::Nop)).count();
        assert_eq!(nops as u64, cf.size());
    }

    #[test]
    fn link_sited_matches_link_and_names_every_instruction() {
        let img = image();
        let (a, _) = strategies();
        let env = compute_envelope(&img.paths(), &[&a], 0);
        let rw = SiteRewriter::new(&a, Injection::None, env);
        let plain = rw.link(&img);
        let (sited, map) = rw.link_sited(&img);
        assert_eq!(plain.threads, sited.threads);
        // Every instruction of every thread has a name...
        for (t, stream) in sited.threads.iter().enumerate() {
            for i in 0..stream.len() {
                assert!(map.name(t, i).is_some(), "unnamed instr t{t}:{i}");
            }
            assert!(map.name(t, stream.len()).is_none());
        }
        // ...and repeated sites of the same path get distinct names.
        let names = map.names();
        assert!(names.contains(&"t0:code".to_string()));
        assert!(names.contains(&"t0:Enter#0".to_string()));
        assert!(names.contains(&"t0:Enter#1".to_string()));
        assert!(names.contains(&"t0:Exit#0".to_string()));
        assert!(SiteMap::is_code("t0:code"));
        assert!(!SiteMap::is_code("t0:Enter#0"));
    }

    #[test]
    #[should_panic(expected = "cannot be padded")]
    fn oversized_lowering_rejected() {
        let (a, b) = strategies();
        // Envelope computed only from `a` cannot hold `b`'s two fences at
        // Enter once an injection is added... construct directly:
        let img = image();
        let env = compute_envelope(&img.paths(), &[&a], 0);
        let rw = SiteRewriter::new(&b, Injection::None, env);
        rw.link(&img);
    }
}
