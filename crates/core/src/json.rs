//! A small, dependency-free JSON value type with deterministic output.
//!
//! The workspace serialises experiment records (turnkey reports, harness run
//! manifests) and parses them back (the `bench_gate` regression gate). The
//! build environment has no registry access, so instead of `serde` this
//! module provides the minimal machinery: a [`Json`] value preserving object
//! key order, a [`ToJson`] trait, compact and pretty printers, and a strict
//! parser.
//!
//! Output is byte-deterministic: object keys keep insertion order and floats
//! print via Rust's shortest-roundtrip formatting, so two structurally
//! identical values always serialise to identical bytes — the property the
//! harness determinism tests rely on.

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order (no sorting, no
/// deduplication) so serialisation is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number. Non-finite floats serialise as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialise with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in, colon) = match indent {
            Some(w) => (
                "\n",
                " ".repeat(w * depth),
                " ".repeat(w * (depth + 1)),
                ": ",
            ),
            None => ("", String::new(), String::new(), ":"),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    if *n == n.trunc() && n.abs() < 1e15 {
                        // Integral values print without an exponent or a
                        // trailing `.0`, matching conventional JSON output.
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push_str(colon);
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. Strict: rejects trailing garbage, trailing
    /// commas and unescaped control characters.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }
}

impl std::fmt::Display for Json {
    /// Compact serialisation (no whitespace).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        f.write_str(&out)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected `{}` at byte {} (found {:?})",
            b as char,
            *pos,
            bytes.get(*pos).map(|&b| b as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = vec![];
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = vec![];
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        // Surrogate pairs are not needed for our artefacts.
                        out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x20 => {
                return Err(format!(
                    "control character in string at byte {pos}",
                    pos = *pos
                ))
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))
}

/// Conversion into a [`Json`] value — the serialisation trait experiment
/// records implement (the stand-in for `serde::Serialize`).
pub trait ToJson {
    /// Convert to a JSON value.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::Num(*self as f64)
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::Num(*self as f64)
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let v = Json::obj(vec![
            ("name", Json::Str("spark".into())),
            ("k", Json::Num(0.00885)),
            ("points", Json::Arr(vec![Json::Num(1.0), Json::Num(2.5)])),
            ("fit", Json::Null),
            ("usable", Json::Bool(true)),
        ]);
        for text in [v.to_string(), v.to_string_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn compact_output_shape() {
        let v = Json::obj(vec![
            ("a", Json::Num(1.0)),
            ("b", Json::Str("x,\"y".into())),
        ]);
        assert_eq!(v.to_string(), r#"{"a":1,"b":"x,\"y"}"#);
    }

    #[test]
    fn deterministic_output() {
        let mk = || {
            Json::obj(vec![
                ("z", Json::Num(0.1 + 0.2)),
                ("a", Json::Arr(vec![Json::Num(1e-7)])),
            ])
        };
        assert_eq!(mk().to_string(), mk().to_string());
        assert_eq!(mk().to_string_pretty(), mk().to_string_pretty());
    }

    #[test]
    fn float_roundtrip_exact() {
        for x in [0.008_847_88, 1.0 / 3.0, 6.02e23, -1.5e-12] {
            let text = Json::Num(x).to_string();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back, x, "{text}");
        }
    }

    #[test]
    fn nan_serialises_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{}x").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn getters() {
        let v = Json::parse(r#"{"fits":[{"k":0.5}],"name":"fig5"}"#).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("fig5"));
        let fits = v.get("fits").unwrap().as_arr().unwrap();
        assert_eq!(fits[0].get("k").unwrap().as_f64(), Some(0.5));
        assert!(v.get("missing").is_none());
    }
}
