//! # wmmbench
//!
//! The methodology of *Benchmarking Weak Memory Models* (Ritson & Owens,
//! PPoPP 2016), as a library.
//!
//! The paper's question: when a systems programmer chooses a **fencing
//! strategy** — which barrier instructions to emit at which code paths of a
//! platform (a JVM, an OS kernel) — how do they measure whether the choice
//! matters for real applications? The answer is a small toolkit:
//!
//! 1. **Cost functions** ([`costfn`]): spin loops with predictable, tunable
//!    execution time, injected inline at the code paths under study. Unlike
//!    invocation counters they need no shared memory and barely perturb the
//!    memory subsystem (Figs. 2–4).
//! 2. **Size-invariant rewriting** ([`image`]): every variant of a code path
//!    (different barriers, injected cost function, or plain `nop` padding for
//!    the base case) is padded to a common envelope so that code layout and
//!    instruction-cache effects do not contaminate the measurement (§4.1).
//! 3. **The sensitivity model** ([`model`]): normalised performance under an
//!    injected per-invocation cost of `a` ns follows
//!    `p(a) = 1/((1-k) + k·a)` (Eq. 1); `k` is fitted by non-linear least
//!    squares. Inverting the model (Eq. 2) turns a measured performance
//!    ratio for a *real* strategy change into an equivalent cost in ns.
//! 4. **Sweeps, rankings and comparisons** ([`sensitivity`], [`ranking`],
//!    [`runner`]): the two complementary uses of §3 — establish which code
//!    paths a platform's benchmarks are sensitive to, and establish which
//!    benchmarks are usable (sensitive *and* stable) for evaluating a
//!    change.
//!
//! The toolkit is generic over the *code path* type `P`: `wmm-jvm` uses its
//! elemental memory barriers, `wmm-kernel` its barrier macros.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod costfn;
pub mod exec;
pub mod image;
pub mod json;
pub mod model;
pub mod ranking;
pub mod report;
pub mod runner;
pub mod sensitivity;
pub mod strategy;
pub mod turnkey;

pub use costfn::{Calibration, CostFunction};
pub use exec::{Executor, JobOutcome, SerialExecutor, SimJob};
pub use image::{flatten_streams, Image, Segment, SiteMap, SiteRewriter};
pub use json::{Json, ToJson};
pub use model::{estimate_cost, predicted_performance, SensitivityFit};
pub use runner::{
    measure, measure_relative, measure_relative_with, measure_with, BenchSpec, Measurement,
    RunConfig,
};
pub use sensitivity::{sweep, sweep_with, SweepPoint, SweepResult};
pub use strategy::FencingStrategy;
pub use turnkey::{evaluate, evaluate_with, TurnkeyReport};
