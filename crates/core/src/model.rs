//! The idealised sensitivity model — Equations 1 and 2 of the paper.
//!
//! Benchmark performance `p`, normalised to the base case, under a cost
//! function of `a` nanoseconds injected into a code path with sensitivity
//! `k`:
//!
//! ```text
//! p = 1 / ((1-k) + k·a)            (Eq. 1)
//! ```
//!
//! The paper uses `1/((1-k)+ka)` instead of `1/(1+ka)` because the base case
//! is never truly `a = 0`: it carries the `nop` padding and untaken branches,
//! normalised to one nanosecond here. Solving for `a` gives the cost that a
//! measured performance ratio implies:
//!
//! ```text
//! a = -((1-k)·p - 1) / (k·p)       (Eq. 2)
//! ```
//!
//! Eq. 2 is what lets in-vitro and in-vivo measurements be compared on one
//! scale (§3): measure `k` once per (benchmark, code path), then any real
//! strategy change's performance ratio converts to "equivalent ns per
//! invocation".

use crate::json::{Json, ToJson};
use wmm_stats::{curve_fit, FitOptions};

/// Eq. 1: predicted normalised performance for sensitivity `k` and
/// per-invocation cost `a` (ns).
pub fn predicted_performance(k: f64, a: f64) -> f64 {
    1.0 / ((1.0 - k) + k * a)
}

/// Eq. 2: per-invocation cost (ns) implied by measured normalised
/// performance `p` under sensitivity `k`.
pub fn estimate_cost(k: f64, p: f64) -> f64 {
    -(((1.0 - k) * p) - 1.0) / (k * p)
}

/// Result of fitting Eq. 1 to a sweep of `(a, p)` samples.
#[derive(Debug, Clone)]
pub struct SensitivityFit {
    /// Fitted sensitivity.
    pub k: f64,
    /// Standard error of `k` (scipy-`curve_fit`-style, from the Jacobian).
    pub k_std_err: f64,
    /// Coefficient of determination of the fit.
    pub r_squared: f64,
}

impl SensitivityFit {
    /// Relative error of the estimate — the paper's "`k = 0.00277 ± 2.5%`".
    pub fn relative_error(&self) -> f64 {
        if self.k == 0.0 {
            f64::INFINITY
        } else {
            (self.k_std_err / self.k).abs()
        }
    }

    /// The paper's usability rule of thumb (§3): a benchmark is suited to
    /// evaluating a code path when its sensitivity is not comparatively low
    /// and the fit variance is not high.
    pub fn usable(&self, min_k: f64, max_rel_err: f64) -> bool {
        self.k >= min_k && self.relative_error() <= max_rel_err
    }

    /// Format as the paper prints it, e.g. `k=0.00885 ±3%`.
    pub fn display(&self) -> String {
        format!("k={:.5} ±{:.0}%", self.k, self.relative_error() * 100.0)
    }
}

impl ToJson for SensitivityFit {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("k", Json::Num(self.k)),
            ("k_std_err", Json::Num(self.k_std_err)),
            ("r_squared", Json::Num(self.r_squared)),
        ])
    }
}

/// Fit Eq. 1 to `(a_ns, p)` samples by non-linear least squares.
///
/// Returns `None` when the fit fails to converge to a finite, positive
/// sensitivity — which the methodology treats as "this benchmark is not
/// usable for this code path", not as an error.
pub fn fit_sensitivity(samples: &[(f64, f64)]) -> Option<SensitivityFit> {
    if samples.len() < 2 {
        return None;
    }
    let xs: Vec<f64> = samples.iter().map(|&(a, _)| a).collect();
    let ys: Vec<f64> = samples.iter().map(|&(_, p)| p).collect();
    let fit = curve_fit(
        |a, params| predicted_performance(params[0], a),
        &xs,
        &ys,
        &[1e-4],
        FitOptions::default(),
    )
    .ok()?;
    let k = fit.params[0];
    if !k.is_finite() {
        return None;
    }
    Some(SensitivityFit {
        k,
        k_std_err: fit.std_errors[0],
        r_squared: fit.r_squared,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn performance_is_one_at_unit_cost() {
        // The base case is normalised to a = 1 ns: p(1) = 1 for any k.
        for k in [0.0001, 0.003, 0.0133, 0.5] {
            assert!((predicted_performance(k, 1.0) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn performance_decreases_with_cost() {
        let k = 0.00885; // spark/ARM StoreStore (Fig. 6)
        let mut prev = f64::INFINITY;
        for e in 0..10 {
            let p = predicted_performance(k, (1u64 << e) as f64);
            assert!(p < prev);
            prev = p;
        }
    }

    #[test]
    fn higher_sensitivity_hurts_more() {
        let a = 64.0;
        assert!(predicted_performance(0.01, a) < predicted_performance(0.001, a));
    }

    #[test]
    fn eq2_inverts_eq1() {
        for &k in &[0.001, 0.00885, 0.0133] {
            for &a in &[1.0, 4.0, 64.0, 512.0] {
                let p = predicted_performance(k, a);
                let a_back = estimate_cost(k, p);
                assert!(
                    (a_back - a).abs() < 1e-9,
                    "k={k} a={a}: roundtrip gave {a_back}"
                );
            }
        }
    }

    #[test]
    fn paper_power_storestore_example() {
        // §4.2.1: mean performance 0.87530 with k = 0.01332662 computes an
        // increase in StoreStore execution time of 11.7 ns.
        let a = estimate_cost(0.013_326_62, 0.875_30);
        assert!((a - 11.7).abs() < 0.3, "a = {a}");
    }

    #[test]
    fn paper_arm_storestore_example() {
        // §4.2.1: mean performance 0.99293 with k = 0.00884788 suggests an
        // increase in StoreStore time of ~1.8 ns.
        let a = estimate_cost(0.008_847_88, 0.992_93);
        assert!((a - 1.8).abs() < 0.2, "a = {a}");
    }

    #[test]
    fn fit_recovers_known_sensitivity() {
        let k = 0.00277; // Fig. 1
        let samples: Vec<(f64, f64)> = (0..15)
            .map(|e| {
                let a = (1u64 << e) as f64;
                (a, predicted_performance(k, a))
            })
            .collect();
        let fit = fit_sensitivity(&samples).unwrap();
        assert!((fit.k - k).abs() / k < 1e-6);
        assert!(fit.r_squared > 0.999_999);
        assert!(fit.usable(1e-4, 0.15));
    }

    #[test]
    fn fit_flags_insensitive_benchmarks() {
        // Flat response => k near zero => not usable.
        let samples: Vec<(f64, f64)> = (0..10)
            .map(|e| ((1u64 << e) as f64, 1.0 + 0.001 * ((e % 3) as f64 - 1.0)))
            .collect();
        let fit = fit_sensitivity(&samples).unwrap();
        assert!(
            !fit.usable(1e-4, 0.15),
            "flat benchmark should be unusable: {}",
            fit.display()
        );
    }

    #[test]
    fn fit_rejects_degenerate_input() {
        assert!(fit_sensitivity(&[]).is_none());
        assert!(fit_sensitivity(&[(1.0, 1.0)]).is_none());
    }

    #[test]
    fn display_matches_paper_format() {
        let fit = SensitivityFit {
            k: 0.00885,
            k_std_err: 0.00885 * 0.03,
            r_squared: 0.99,
        };
        assert_eq!(fit.display(), "k=0.00885 ±3%");
    }
}
