//! Rankings from a fixed-size cost function across a (code path × benchmark)
//! matrix — the method behind Figs. 7 and 8.
//!
//! §4.3.1: "Expecting generally lower sensitivity to kernel behaviour, we
//! inject a large cost function (1024 loop iterations) into each macro in
//! turn, and measure the relative performance impact on all benchmarks. …
//! Assuming all macros and benchmarks are equal we aggregate either by
//! benchmark or macro to produce rankings of interest."

use std::collections::HashMap;
use std::hash::Hash;

use wmm_sim::Machine;
use wmm_stats::Comparison;

use crate::costfn::CostFunction;
use crate::exec::{Executor, SerialExecutor};
use crate::image::{Injection, SiteRewriter};
use crate::runner::{measurement_from_times, measurement_jobs, BenchSpec, RunConfig};
use crate::strategy::FencingStrategy;

/// The full measurement matrix of a ranking experiment.
#[derive(Debug, Clone)]
pub struct RankingMatrix<P> {
    /// Code paths probed (rows).
    pub paths: Vec<P>,
    /// Benchmark names (columns).
    pub benchmarks: Vec<String>,
    /// `rel_perf[path][bench]`: relative performance (≤ 1 when the injected
    /// cost hurts) of each benchmark with the cost function in each path.
    pub rel_perf: Vec<Vec<f64>>,
}

impl<P: Clone> RankingMatrix<P> {
    /// Fig. 7: aggregate across benchmarks for each code path; the *lower*
    /// the sum of relative performance, the bigger the macro's impact.
    /// Returned ascending (biggest impact first).
    pub fn by_path_impact(&self) -> Vec<(P, f64)> {
        let mut rows: Vec<(P, f64)> = self
            .paths
            .iter()
            .cloned()
            .zip(self.rel_perf.iter().map(|r| r.iter().sum::<f64>()))
            .collect();
        rows.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite sums"));
        rows
    }

    /// Fig. 8: aggregate across code paths for each benchmark; the lower the
    /// sum, the more sensitive the benchmark is to this platform's fencing
    /// strategy overall. Returned ascending (most sensitive first).
    pub fn by_benchmark_sensitivity(&self) -> Vec<(String, f64)> {
        let ncols = self.benchmarks.len();
        let mut cols: Vec<(String, f64)> = (0..ncols)
            .map(|c| {
                let sum = self.rel_perf.iter().map(|row| row[c]).sum::<f64>();
                (self.benchmarks[c].clone(), sum)
            })
            .collect();
        cols.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite sums"));
        cols
    }

    /// Number of data points (the paper's "our initial investigation
    /// produces 154 data points" for 14 macros × 11 benchmarks).
    pub fn data_points(&self) -> usize {
        self.rel_perf.iter().map(Vec::len).sum()
    }

    /// Single cell lookup by path index and benchmark name.
    pub fn cell(&self, path_idx: usize, bench: &str) -> Option<f64> {
        let col = self.benchmarks.iter().position(|b| b == bench)?;
        self.rel_perf.get(path_idx).map(|row| row[col])
    }
}

/// Build the ranking matrix: inject a fixed cost function into each code
/// path in turn and measure every benchmark's relative performance.
pub fn ranking_matrix<P: Clone + Eq + Hash>(
    machine: &Machine,
    benches: &[&dyn BenchSpec<P>],
    strategy: &dyn FencingStrategy<P>,
    paths: &[P],
    cost: CostFunction,
    envelope: HashMap<P, u64>,
    cfg: RunConfig,
) -> RankingMatrix<P> {
    ranking_matrix_with(
        machine,
        benches,
        strategy,
        paths,
        cost,
        envelope,
        cfg,
        &SerialExecutor,
    )
}

/// [`ranking_matrix`] through an explicit [`Executor`]: the per-benchmark
/// base cases and every `(path × benchmark)` cell are submitted as one batch
/// of independent simulations, so a parallel executor can drain the whole
/// matrix concurrently.
#[allow(clippy::too_many_arguments)]
pub fn ranking_matrix_with<P: Clone + Eq + Hash>(
    machine: &Machine,
    benches: &[&dyn BenchSpec<P>],
    strategy: &dyn FencingStrategy<P>,
    paths: &[P],
    cost: CostFunction,
    envelope: HashMap<P, u64>,
    cfg: RunConfig,
    exec: &dyn Executor,
) -> RankingMatrix<P> {
    let runs = cfg.warmups + cfg.samples;
    // Base case per benchmark (nop-padded), then every (path, bench) cell.
    let base_rw = SiteRewriter::new(strategy, Injection::None, envelope.clone());
    let mut jobs = Vec::with_capacity(runs * benches.len() * (paths.len() + 1));
    for b in benches {
        let (j, _) = measurement_jobs(machine, *b, &base_rw, cfg);
        jobs.extend(j);
    }
    for p in paths {
        let rw = SiteRewriter::new(strategy, Injection::At(p.clone(), cost), envelope.clone());
        for b in benches {
            let (j, _) = measurement_jobs(machine, *b, &rw, cfg);
            jobs.extend(j);
        }
    }

    let times = exec.run_batch(jobs);
    let slice = |idx: usize| &times[runs * idx..runs * (idx + 1)];
    let bases: Vec<_> = (0..benches.len())
        .map(|i| measurement_from_times(slice(i), 1.0, cfg))
        .collect();

    let mut rel_perf = Vec::with_capacity(paths.len());
    for (pi, _) in paths.iter().enumerate() {
        let mut row = Vec::with_capacity(benches.len());
        for (bi, base) in bases.iter().enumerate() {
            let cell = benches.len() * (pi + 1) + bi;
            let test = measurement_from_times(slice(cell), 1.0, cfg);
            row.push(Comparison::of_times(&test.times_ns, &base.times_ns).ratio);
        }
        rel_perf.push(row);
    }
    RankingMatrix {
        paths: paths.to_vec(),
        benchmarks: benches.iter().map(|b| b.name().to_string()).collect(),
        rel_perf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::{compute_envelope, Image, Segment};
    use crate::strategy::FnStrategy;
    use wmm_sim::arch::armv8_xgene1;
    use wmm_sim::isa::{FenceKind, Instr};
    use wmm_sim::machine::WorkloadCtx;

    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    enum P {
        Hot,
        Rare,
    }

    /// Benchmark touching `Hot` often and `Rare` once.
    struct Skewed;
    impl BenchSpec<P> for Skewed {
        fn name(&self) -> &str {
            "skewed"
        }
        fn image(&self, _seed: u64) -> Image<P> {
            let mut segs = vec![Segment::Site(P::Rare)];
            for _ in 0..50 {
                segs.push(Segment::Code(vec![Instr::Compute { cycles: 300 }]));
                segs.push(Segment::Site(P::Hot));
            }
            Image {
                threads: vec![segs],
                ctx: WorkloadCtx::default(),
                work_units: 1.0,
            }
        }
    }

    /// Benchmark with no sites at all — fully insensitive.
    struct NoSites;
    impl BenchSpec<P> for NoSites {
        fn name(&self) -> &str {
            "nosites"
        }
        fn image(&self, _seed: u64) -> Image<P> {
            Image {
                threads: vec![vec![Segment::Code(vec![Instr::Compute { cycles: 20_000 }])]],
                ctx: WorkloadCtx::default(),
                work_units: 1.0,
            }
        }
    }

    #[test]
    fn ranking_orders_paths_and_benchmarks() {
        let machine = Machine::new(armv8_xgene1());
        let strategy = FnStrategy::new("dmb", |_: &P| vec![Instr::Fence(FenceKind::DmbIsh)]);
        let cf = CostFunction {
            iters: 1024,
            stack_spill: true,
        };
        let env = compute_envelope(&[P::Hot, P::Rare], &[&strategy], cf.size());
        let skewed = Skewed;
        let nosites = NoSites;
        let benches: Vec<&dyn BenchSpec<P>> = vec![&skewed, &nosites];
        let m = ranking_matrix(
            &machine,
            &benches,
            &strategy,
            &[P::Hot, P::Rare],
            cf,
            env,
            RunConfig::quick(),
        );
        assert_eq!(m.data_points(), 4);

        let by_path = m.by_path_impact();
        assert_eq!(
            by_path[0].0,
            P::Hot,
            "hot path must rank first: {by_path:?}"
        );
        assert!(by_path[0].1 < by_path[1].1);

        let by_bench = m.by_benchmark_sensitivity();
        assert_eq!(by_bench[0].0, "skewed");
        // The no-site benchmark shows ~zero sensitivity: sums to ~#paths.
        assert!((by_bench[1].1 - 2.0).abs() < 0.05, "{by_bench:?}");
    }

    #[test]
    fn cell_lookup() {
        let m = RankingMatrix {
            paths: vec![P::Hot],
            benchmarks: vec!["a".into(), "b".into()],
            rel_perf: vec![vec![0.5, 0.9]],
        };
        assert_eq!(m.cell(0, "b"), Some(0.9));
        assert_eq!(m.cell(0, "zz"), None);
    }
}
