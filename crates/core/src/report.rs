//! Report rendering: markdown tables, CSV export, and a terminal-friendly
//! log-scale plot for sweep curves. The figure binaries in `wmm-bench` use
//! these to print paper-vs-measured artefacts.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use crate::json::ToJson;
use crate::sensitivity::SweepResult;

/// A simple text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: vec![],
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
        self
    }

    /// Render as GitHub-flavoured markdown.
    pub fn markdown(&self) -> String {
        let mut out = String::new();
        let widths: Vec<usize> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| {
                self.rows
                    .iter()
                    .map(|r| r[i].len())
                    .chain(std::iter::once(h.len()))
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let fmt_row = |cells: &[String]| {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(&widths) {
                let _ = write!(line, " {c:w$} |");
            }
            line
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{:-<1$}|", "", w + 2);
        }
        out.push_str(&sep);
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        out
    }

    /// Render as CSV.
    pub fn csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Write the CSV form to a file.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> io::Result<()> {
        fs::write(path, self.csv())
    }
}

/// Serialise any [`ToJson`] value as pretty JSON to a file (experiment
/// records).
pub fn write_json<T: ToJson + ?Sized>(path: impl AsRef<Path>, value: &T) -> io::Result<()> {
    let mut s = value.to_json().to_string_pretty();
    s.push('\n');
    fs::write(path, s)
}

/// An ASCII rendering of a sweep curve: relative performance vs log2 cost
/// size — a terminal stand-in for the panels of Figs. 5/6/9.
pub fn ascii_sweep(result: &SweepResult, width: usize) -> String {
    let mut out = String::new();
    let fit_str = result
        .fit
        .as_ref()
        .map_or("(no fit)".to_string(), |f| f.display());
    let _ = writeln!(
        out,
        "{} [{}] {} — {}",
        result.benchmark, result.arch, result.code_path, fit_str
    );
    for p in &result.points {
        let bars = ((p.rel_perf.clamp(0.0, 1.2)) * width as f64).round() as usize;
        let _ = writeln!(
            out,
            "  a={:8.1}ns |{:bar_w$}| p={:.4}",
            p.actual_ns,
            "#".repeat(bars),
            p.rel_perf,
            bar_w = (width as f64 * 1.2) as usize
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SensitivityFit;
    use crate::sensitivity::SweepPoint;

    #[test]
    fn markdown_table_renders() {
        let mut t = Table::new(&["bench", "k"]);
        t.row(vec!["spark".into(), "0.00885".into()]);
        t.row(vec!["xalan".into(), "0.00606".into()]);
        let md = t.markdown();
        assert!(md.contains("| bench |"));
        assert!(md.contains("| spark |"));
        assert!(md.lines().count() == 4);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x,y".into(), "plain".into()]);
        let csv = t.csv();
        assert!(csv.contains("\"x,y\",plain"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn ascii_sweep_contains_points() {
        let r = SweepResult {
            benchmark: "spark".into(),
            arch: "arm".into(),
            code_path: "all barriers".into(),
            points: vec![SweepPoint {
                target_ns: 1.0,
                actual_ns: 1.2,
                iters: 1,
                rel_perf: 0.99,
                rel_min: 0.97,
                rel_max: 1.0,
            }],
            fit: Some(SensitivityFit {
                k: 0.0087,
                k_std_err: 0.0087 * 0.06,
                r_squared: 0.99,
            }),
        };
        let s = ascii_sweep(&r, 40);
        assert!(s.contains("spark"));
        assert!(s.contains("p=0.9900"));
        assert!(s.contains("k=0.00870"));
    }
}
