//! The measurement harness: run benchmarks under rewriter configurations,
//! with warm-ups, repeated samples and the paper's statistics.
//!
//! §4.1: "Unless otherwise noted all reported results are geometric mean
//! (reduce impact of outliers) from six or more samples measured after one
//! or more warm-up runs of a given benchmark. All error bars represent a 95%
//! confidence interval computed using the Student's t-distribution."

use std::hash::Hash;

use wmm_sim::Machine;
use wmm_stats::{confidence_interval, Comparison, ConfidenceInterval, Summary};

use crate::exec::{Executor, SerialExecutor, SimJob};
use crate::image::{Image, SiteMap, SiteRewriter};

/// A benchmark: a black box producing a program image per sample seed.
///
/// Seed-dependence is how the paper's run-to-run variation appears: workload
/// generators vary their interleavings, access patterns and noise with the
/// seed, so repeated samples spread exactly like repeated executions.
pub trait BenchSpec<P> {
    /// Benchmark name as printed in figures (e.g. "spark", "netperf_udp").
    fn name(&self) -> &str;

    /// Produce the image for one sample.
    fn image(&self, seed: u64) -> Image<P>;
}

/// Sampling configuration.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Samples kept (the paper uses six or more).
    pub samples: usize,
    /// Warm-up runs discarded (the paper discards the first two).
    pub warmups: usize,
    /// Base seed; sample `i` uses `base_seed + i`.
    pub base_seed: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            samples: 6,
            warmups: 2,
            base_seed: 0x1CEB00DA,
        }
    }
}

impl RunConfig {
    /// A faster configuration for unit tests and smoke runs.
    pub fn quick() -> Self {
        RunConfig {
            samples: 3,
            warmups: 1,
            base_seed: 0x1CEB00DA,
        }
    }
}

/// A measured distribution of execution times for one configuration.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Per-sample wall times, ns (warm-ups excluded).
    pub times_ns: Vec<f64>,
    /// Work units per run, for throughput conversion.
    pub work_units: f64,
}

impl Measurement {
    /// Summary statistics of the times.
    pub fn summary(&self) -> Summary {
        Summary::of(&self.times_ns)
    }

    /// Throughput samples (work units per second).
    pub fn throughput(&self) -> Vec<f64> {
        self.times_ns
            .iter()
            .map(|t| self.work_units / (t * 1e-9))
            .collect()
    }

    /// 95% confidence interval on the mean time.
    pub fn ci95(&self) -> ConfidenceInterval {
        confidence_interval(&self.times_ns, 0.95)
    }
}

/// Generate the `cfg.warmups + cfg.samples` per-sample images of `bench`,
/// paired with their seeds. Images depend only on `(bench, seed)`, so
/// several rewriter configurations under comparison can be linked from one
/// shared set instead of regenerating it per configuration — image
/// generation dominates sweep setup otherwise.
pub fn sample_images<P>(bench: &dyn BenchSpec<P>, cfg: RunConfig) -> Vec<(u64, Image<P>)> {
    (0..cfg.warmups + cfg.samples)
        .map(|i| {
            let seed = cfg.base_seed.wrapping_add(i as u64);
            (seed, bench.image(seed))
        })
        .collect()
}

/// Link pre-generated sample images (from [`sample_images`]) into
/// simulation jobs under `rewriter`, plus the work-unit count.
pub fn jobs_from_images<'m, P: Clone + Eq + Hash>(
    machine: &'m Machine,
    images: &[(u64, Image<P>)],
    rewriter: &SiteRewriter<'_, P>,
) -> (Vec<SimJob<'m>>, f64) {
    let mut jobs = Vec::with_capacity(images.len());
    let mut work_units = 1.0;
    for (seed, image) in images {
        work_units = image.work_units;
        jobs.push(SimJob {
            machine,
            program: rewriter.link(image),
            ctx: image.ctx.clone(),
            seed: *seed,
            sited: false,
        });
    }
    (jobs, work_units)
}

/// The linked simulation jobs for one `(bench, rewriter, cfg)` measurement,
/// plus its work-unit count — the batchable form of [`measure`].
///
/// Returns `cfg.warmups + cfg.samples` jobs; the first `cfg.warmups`
/// results are warm-up runs to discard.
pub fn measurement_jobs<'m, P: Clone + Eq + Hash>(
    machine: &'m Machine,
    bench: &dyn BenchSpec<P>,
    rewriter: &SiteRewriter<'_, P>,
    cfg: RunConfig,
) -> (Vec<SimJob<'m>>, f64) {
    jobs_from_images(machine, &sample_images(bench, cfg), rewriter)
}

/// Like [`measurement_jobs`], but the jobs collect per-site stall
/// attribution and each job is paired (by index) with the [`SiteMap`] of
/// the image it was linked from — images can vary with the sample seed, so
/// profile folds join records by site *name*, not raw index.
pub fn measurement_jobs_sited<'m, P: Clone + Eq + Hash + std::fmt::Debug>(
    machine: &'m Machine,
    bench: &dyn BenchSpec<P>,
    rewriter: &SiteRewriter<'_, P>,
    cfg: RunConfig,
) -> (Vec<SimJob<'m>>, Vec<SiteMap>, f64) {
    let mut jobs = Vec::with_capacity(cfg.warmups + cfg.samples);
    let mut maps = Vec::with_capacity(cfg.warmups + cfg.samples);
    let mut work_units = 1.0;
    for i in 0..(cfg.warmups + cfg.samples) {
        let seed = cfg.base_seed.wrapping_add(i as u64);
        let image = bench.image(seed);
        work_units = image.work_units;
        let (program, map) = rewriter.link_sited(&image);
        jobs.push(SimJob {
            machine,
            program,
            ctx: image.ctx,
            seed,
            sited: true,
        });
        maps.push(map);
    }
    (jobs, maps, work_units)
}

/// Assemble a [`Measurement`] from batch results (drops warm-ups).
pub fn measurement_from_times(times: &[f64], work_units: f64, cfg: RunConfig) -> Measurement {
    Measurement {
        times_ns: times[cfg.warmups..].to_vec(),
        work_units,
    }
}

/// Run `bench` under `rewriter` on `machine` and collect samples.
pub fn measure<P: Clone + Eq + Hash>(
    machine: &Machine,
    bench: &dyn BenchSpec<P>,
    rewriter: &SiteRewriter<'_, P>,
    cfg: RunConfig,
) -> Measurement {
    measure_with(machine, bench, rewriter, cfg, &SerialExecutor)
}

/// [`measure`] through an explicit [`Executor`] — the harness seam.
pub fn measure_with<P: Clone + Eq + Hash>(
    machine: &Machine,
    bench: &dyn BenchSpec<P>,
    rewriter: &SiteRewriter<'_, P>,
    cfg: RunConfig,
    exec: &dyn Executor,
) -> Measurement {
    let (jobs, work_units) = measurement_jobs(machine, bench, rewriter, cfg);
    let times = exec.run_batch(jobs);
    measurement_from_times(&times, work_units, cfg)
}

/// Measure a test configuration against a base configuration and return the
/// relative performance (base time / test time; < 1 means the test case is
/// slower), with the paper's compounded min/max error rule.
pub fn measure_relative<P: Clone + Eq + Hash>(
    machine: &Machine,
    bench: &dyn BenchSpec<P>,
    base: &SiteRewriter<'_, P>,
    test: &SiteRewriter<'_, P>,
    cfg: RunConfig,
) -> Comparison {
    measure_relative_with(machine, bench, base, test, cfg, &SerialExecutor)
}

/// [`measure_relative`] through an explicit [`Executor`]: base and test
/// samples are submitted as one batch so they can run concurrently.
pub fn measure_relative_with<P: Clone + Eq + Hash>(
    machine: &Machine,
    bench: &dyn BenchSpec<P>,
    base: &SiteRewriter<'_, P>,
    test: &SiteRewriter<'_, P>,
    cfg: RunConfig,
    exec: &dyn Executor,
) -> Comparison {
    let (mut jobs, base_wu) = measurement_jobs(machine, bench, base, cfg);
    let split = jobs.len();
    let (test_jobs, test_wu) = measurement_jobs(machine, bench, test, cfg);
    jobs.extend(test_jobs);
    let times = exec.run_batch(jobs);
    let b = measurement_from_times(&times[..split], base_wu, cfg);
    let t = measurement_from_times(&times[split..], test_wu, cfg);
    Comparison::of_times(&t.times_ns, &b.times_ns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costfn::CostFunction;
    use crate::image::{compute_envelope, Injection, Segment};
    use crate::strategy::FnStrategy;
    use wmm_sim::arch::armv8_xgene1;
    use wmm_sim::isa::{FenceKind, Instr};
    use wmm_sim::machine::WorkloadCtx;

    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    struct OnlyPath;

    struct Toy {
        sites: usize,
        compute: u32,
    }

    impl BenchSpec<OnlyPath> for Toy {
        fn name(&self) -> &str {
            "toy"
        }

        fn image(&self, _seed: u64) -> Image<OnlyPath> {
            let mut segs = vec![];
            for _ in 0..self.sites {
                segs.push(Segment::Code(vec![Instr::Compute {
                    cycles: self.compute,
                }]));
                segs.push(Segment::Site(OnlyPath));
            }
            Image {
                threads: vec![segs],
                ctx: WorkloadCtx::default(),
                work_units: self.sites as f64,
            }
        }
    }

    #[test]
    fn measurement_discards_warmups_and_keeps_samples() {
        let machine = Machine::new(armv8_xgene1());
        let strategy = FnStrategy::new("dmb", |_: &OnlyPath| vec![Instr::Fence(FenceKind::DmbIsh)]);
        let env = compute_envelope(&[OnlyPath], &[&strategy], 5);
        let rw = SiteRewriter::new(&strategy, Injection::None, env);
        let bench = Toy {
            sites: 50,
            compute: 100,
        };
        let m = measure(&machine, &bench, &rw, RunConfig::quick());
        assert_eq!(m.times_ns.len(), 3);
        assert!(m.summary().mean > 0.0);
        assert_eq!(m.work_units, 50.0);
        assert!(m.throughput().iter().all(|&t| t > 0.0));
    }

    #[test]
    fn injection_slows_the_benchmark() {
        let machine = Machine::new(armv8_xgene1());
        let strategy = FnStrategy::new("dmb", |_: &OnlyPath| vec![Instr::Fence(FenceKind::DmbIsh)]);
        let cf = CostFunction {
            iters: 1 << 10,
            stack_spill: true,
        };
        let env = compute_envelope(&[OnlyPath], &[&strategy], cf.size());
        let base = SiteRewriter::new(&strategy, Injection::None, env.clone());
        let test = SiteRewriter::new(&strategy, Injection::All(cf), env);
        let bench = Toy {
            sites: 100,
            compute: 100,
        };
        let c = measure_relative(&machine, &bench, &base, &test, RunConfig::quick());
        assert!(
            c.ratio < 0.5,
            "a 1024-iteration loop per site must hurt: p = {}",
            c.ratio
        );
        assert!(c.significant());
    }

    #[test]
    fn identical_configs_show_no_change() {
        let machine = Machine::new(armv8_xgene1());
        let strategy = FnStrategy::new("dmb", |_: &OnlyPath| vec![Instr::Fence(FenceKind::DmbIsh)]);
        let env = compute_envelope(&[OnlyPath], &[&strategy], 5);
        let a = SiteRewriter::new(&strategy, Injection::None, env.clone());
        let b = SiteRewriter::new(&strategy, Injection::None, env);
        let bench = Toy {
            sites: 50,
            compute: 100,
        };
        let c = measure_relative(&machine, &bench, &a, &b, RunConfig::quick());
        assert!((c.ratio - 1.0).abs() < 1e-9, "p = {}", c.ratio);
    }
}
