//! Sensitivity sweeps: vary the injected cost-function size, measure the
//! relative performance curve, and fit the idealised model (Figs. 1, 5, 6
//! and 9 of the paper).

use std::hash::Hash;

use wmm_sim::Machine;
use wmm_stats::Comparison;

use crate::costfn::Calibration;
use crate::exec::{Executor, SerialExecutor};
use crate::image::{Injection, SiteRewriter};
use crate::model::{fit_sensitivity, SensitivityFit};
use crate::runner::{
    jobs_from_images, measurement_from_times, sample_images, BenchSpec, RunConfig,
};
use crate::strategy::FencingStrategy;

/// One point of a sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Requested cost-function size, ns.
    pub target_ns: f64,
    /// Calibrated actual cost-function time, ns — the model's `a` value.
    pub actual_ns: f64,
    /// Loop iteration count used.
    pub iters: u64,
    /// Relative performance vs the nop-padded base case (geometric means).
    pub rel_perf: f64,
    /// Conservative lower bound (compounded min rule).
    pub rel_min: f64,
    /// Conservative upper bound.
    pub rel_max: f64,
}

/// A complete sweep with its model fit.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Benchmark name.
    pub benchmark: String,
    /// Architecture label ("arm"/"power").
    pub arch: String,
    /// Description of the injected code path(s).
    pub code_path: String,
    /// Measured points, ascending in `actual_ns`.
    pub points: Vec<SweepPoint>,
    /// The fitted sensitivity, if the fit converged.
    pub fit: Option<SensitivityFit>,
}

impl SweepResult {
    /// `(a, p)` samples for external re-fitting or plotting.
    pub fn samples(&self) -> Vec<(f64, f64)> {
        self.points
            .iter()
            .map(|pt| (pt.actual_ns, pt.rel_perf))
            .collect()
    }

    /// Instability heuristic: the mean relative width of the compounded
    /// error bounds. The paper rejects xalan-on-POWER and netperf-tcp style
    /// benchmarks on exactly this kind of spread.
    pub fn mean_error_width(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points
            .iter()
            .map(|p| ((p.rel_max - p.rel_min) / p.rel_perf).abs())
            .sum::<f64>()
            / self.points.len() as f64
    }
}

/// Where a sweep injects its cost function.
pub enum SweepTarget<P> {
    /// Every site (Fig. 5).
    AllSites,
    /// A single code path (Figs. 6 and 9).
    Path(P),
    /// Every site whose path is in the set (elemental barriers inside
    /// combined-barrier sites, Fig. 6).
    Paths(Vec<P>),
}

/// Run a sensitivity sweep.
///
/// `targets_ns` is the requested cost-size axis (the paper uses powers of
/// two, e.g. `2^0 ..= 2^8` ns); the calibration converts each target into a
/// loop count and supplies the measured time used for fitting. The base
/// case is the same strategy with `nop` padding in place of the loop.
#[allow(clippy::too_many_arguments)]
pub fn sweep<P: Clone + Eq + Hash + Send + Sync>(
    machine: &Machine,
    bench: &(dyn BenchSpec<P> + Sync),
    strategy: &(dyn FencingStrategy<P> + Sync),
    target: SweepTarget<P>,
    calibration: &Calibration,
    targets_ns: &[f64],
    envelope: std::collections::HashMap<P, u64>,
    cfg: RunConfig,
) -> SweepResult {
    sweep_with(
        machine,
        bench,
        strategy,
        target,
        calibration,
        targets_ns,
        envelope,
        cfg,
        &SerialExecutor,
    )
}

/// [`sweep`] through an explicit [`Executor`]: the base case and every
/// cost-size point are linked up front and submitted as a single batch of
/// independent simulations, so a parallel executor can run the whole sweep
/// concurrently.
///
/// The per-sample images are generated once and shared by every
/// configuration (they depend only on the benchmark and seed), and the
/// configurations are linked on parallel threads — linking is pure, so the
/// job list is identical to serial construction.
#[allow(clippy::too_many_arguments)]
pub fn sweep_with<P: Clone + Eq + Hash + Send + Sync>(
    machine: &Machine,
    bench: &(dyn BenchSpec<P> + Sync),
    strategy: &(dyn FencingStrategy<P> + Sync),
    target: SweepTarget<P>,
    calibration: &Calibration,
    targets_ns: &[f64],
    envelope: std::collections::HashMap<P, u64>,
    cfg: RunConfig,
    exec: &dyn Executor,
) -> SweepResult {
    let runs = cfg.warmups + cfg.samples;
    let images = sample_images(bench, cfg);

    let mut injections = vec![Injection::None];
    let mut cfs = Vec::with_capacity(targets_ns.len());
    for &t_ns in targets_ns {
        let (cf, actual_ns) = calibration.for_target_ns(t_ns);
        injections.push(match &target {
            SweepTarget::AllSites => Injection::All(cf),
            SweepTarget::Path(p) => Injection::At(p.clone(), cf),
            SweepTarget::Paths(ps) => Injection::Set(ps.clone(), cf),
        });
        cfs.push((t_ns, cf, actual_ns));
    }

    let mut linked = Vec::with_capacity(injections.len());
    std::thread::scope(|s| {
        let images = &images;
        let handles: Vec<_> = injections
            .into_iter()
            .map(|injection| {
                let env = envelope.clone();
                s.spawn(move || {
                    let rw = SiteRewriter::new(strategy, injection, env);
                    jobs_from_images(machine, images, &rw)
                })
            })
            .collect();
        // Joining in spawn order keeps the job list deterministic.
        linked.extend(handles.into_iter().map(|h| h.join().expect("link worker")));
    });

    let base_wu = linked[0].1;
    let jobs = linked.into_iter().flat_map(|(jobs, _)| jobs).collect();

    let times = exec.run_batch(jobs);
    let base = measurement_from_times(&times[..runs], base_wu, cfg);

    let mut points = Vec::with_capacity(targets_ns.len());
    for (i, (t_ns, cf, actual_ns)) in cfs.into_iter().enumerate() {
        let slice = &times[runs * (i + 1)..runs * (i + 2)];
        let test = measurement_from_times(slice, base_wu, cfg);
        let cmp = Comparison::of_times(&test.times_ns, &base.times_ns);
        points.push(SweepPoint {
            target_ns: t_ns,
            actual_ns,
            iters: cf.iters,
            rel_perf: cmp.ratio,
            rel_min: cmp.min,
            rel_max: cmp.max,
        });
    }

    let fit = fit_sensitivity(
        &points
            .iter()
            .map(|p| (p.actual_ns, p.rel_perf))
            .collect::<Vec<_>>(),
    );
    SweepResult {
        benchmark: bench.name().to_string(),
        arch: machine.spec().arch.label().to_string(),
        code_path: match &target {
            SweepTarget::AllSites => "all barriers".to_string(),
            SweepTarget::Path(_) => "single code path".to_string(),
            SweepTarget::Paths(_) => "code path set".to_string(),
        },
        points,
        fit,
    }
}

/// The paper's cost-size axis: powers of two from `2^lo` to `2^hi` ns.
pub fn pow2_targets(lo: u32, hi: u32) -> Vec<f64> {
    (lo..=hi).map(|e| (1u64 << e) as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::{compute_envelope, Image, Segment};
    use crate::strategy::FnStrategy;
    use wmm_sim::arch::armv8_xgene1;
    use wmm_sim::isa::{FenceKind, Instr};
    use wmm_sim::machine::WorkloadCtx;

    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    struct S;

    /// A synthetic benchmark with a controllable barrier density, so the
    /// recovered k has a known ballpark.
    struct Synthetic {
        sites: usize,
        compute_per_site: u32,
    }

    impl BenchSpec<S> for Synthetic {
        fn name(&self) -> &str {
            "synthetic"
        }

        fn image(&self, _seed: u64) -> Image<S> {
            let mut segs = vec![];
            for _ in 0..self.sites {
                segs.push(Segment::Code(vec![Instr::Compute {
                    cycles: self.compute_per_site,
                }]));
                segs.push(Segment::Site(S));
            }
            Image {
                threads: vec![segs],
                ctx: WorkloadCtx::default(),
                work_units: self.sites as f64,
            }
        }
    }

    #[test]
    fn sweep_recovers_designed_sensitivity() {
        let machine = Machine::new(armv8_xgene1());
        let strategy = FnStrategy::new("dmb", |_: &S| vec![Instr::Fence(FenceKind::DmbIsh)]);
        let cal = Calibration::measure(&machine, false, 12);
        let env = compute_envelope(&[S], &[&strategy], 3);

        // Design: each site costs ~1 ns/ns of injection; baseline site region
        // ~= compute (417 ns) + fence. k_design ~= 1ns / (site period).
        let bench = Synthetic {
            sites: 60,
            compute_per_site: 1000,
        };
        let result = sweep(
            &machine,
            &bench,
            &strategy,
            SweepTarget::AllSites,
            &cal,
            &pow2_targets(0, 10),
            env,
            RunConfig::quick(),
        );
        let fit = result.fit.expect("fit converges");
        // Site period ~= 1000 cycles / 2.4 GHz ~= 417 ns + fence ~= 3 ns.
        let expected_k = 1.0 / 420.0;
        let rel = (fit.k - expected_k).abs() / expected_k;
        assert!(
            rel < 0.35,
            "k = {} expected ~{expected_k} (rel err {rel})",
            fit.k
        );
        // Performance must degrade monotonically (within noise).
        let first = result.points.first().unwrap().rel_perf;
        let last = result.points.last().unwrap().rel_perf;
        assert!(last < first * 0.9, "{first} -> {last}");
    }

    #[test]
    fn pow2_axis_matches_paper() {
        let axis = pow2_targets(0, 8);
        assert_eq!(axis.len(), 9);
        assert_eq!(axis[0], 1.0);
        assert_eq!(axis[8], 256.0);
    }

    #[test]
    fn single_path_sweep_only_touches_that_path() {
        // Two paths; sweep one; the benchmark only contains the other =>
        // no sensitivity.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        enum P2 {
            Hot,
            Cold,
        }
        struct OnlyHot;
        impl BenchSpec<P2> for OnlyHot {
            fn name(&self) -> &str {
                "onlyhot"
            }
            fn image(&self, _seed: u64) -> Image<P2> {
                let mut segs = vec![];
                for _ in 0..40 {
                    segs.push(Segment::Code(vec![Instr::Compute { cycles: 200 }]));
                    segs.push(Segment::Site(P2::Hot));
                }
                Image {
                    threads: vec![segs],
                    ctx: WorkloadCtx::default(),
                    work_units: 1.0,
                }
            }
        }
        let machine = Machine::new(armv8_xgene1());
        let strategy = FnStrategy::new("dmb", |_: &P2| vec![Instr::Fence(FenceKind::DmbIsh)]);
        let cal = Calibration::measure(&machine, false, 10);
        let env = compute_envelope(&[P2::Hot, P2::Cold], &[&strategy], 3);
        let result = sweep(
            &machine,
            &OnlyHot,
            &strategy,
            SweepTarget::Path(P2::Cold),
            &cal,
            &pow2_targets(0, 8),
            env,
            RunConfig::quick(),
        );
        for p in &result.points {
            assert!(
                (p.rel_perf - 1.0).abs() < 0.02,
                "cold path injection changed perf: {p:?}"
            );
        }
    }
}
