//! The fencing-strategy abstraction.
//!
//! §2 of the paper: "we refer to a particular collection of these decisions
//! as a *fencing strategy*" — where to put fences, which fences to use,
//! whether release/acquire instructions or synthetic control-flow
//! dependencies should be used instead. A strategy is a lowering from the
//! platform's *code paths* to instruction sequences.

use wmm_sim::isa::Instr;

/// A fencing strategy over code-path type `P`.
pub trait FencingStrategy<P> {
    /// Name used in figures and reports (e.g. "JDK9 ld.acq/st.rel",
    /// "dmb ishld").
    fn name(&self) -> &str;

    /// The instruction sequence this strategy emits at code path `path`.
    fn lower(&self, path: &P) -> Vec<Instr>;
}

/// A strategy built from a closure — convenient for one-off variants in
/// experiments ("what if StoreStore were a full sync?").
pub struct FnStrategy<P, F: Fn(&P) -> Vec<Instr>> {
    name: String,
    f: F,
    _marker: std::marker::PhantomData<fn(&P)>,
}

impl<P, F: Fn(&P) -> Vec<Instr>> FnStrategy<P, F> {
    /// Wrap a closure as a named strategy.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        FnStrategy {
            name: name.into(),
            f,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<P, F: Fn(&P) -> Vec<Instr>> FencingStrategy<P> for FnStrategy<P, F> {
    fn name(&self) -> &str {
        &self.name
    }

    fn lower(&self, path: &P) -> Vec<Instr> {
        (self.f)(path)
    }
}

/// A strategy that overrides a base strategy at exactly one code path —
/// the paper's single-barrier modifications ("we modified the generation of
/// StoreStore from lwsync to sync").
pub struct OverrideStrategy<'a, P: PartialEq> {
    name: String,
    base: &'a dyn FencingStrategy<P>,
    at: P,
    replacement: Vec<Instr>,
}

impl<'a, P: PartialEq> OverrideStrategy<'a, P> {
    /// Override `base` to emit `replacement` at `at`.
    pub fn new(
        name: impl Into<String>,
        base: &'a dyn FencingStrategy<P>,
        at: P,
        replacement: Vec<Instr>,
    ) -> Self {
        OverrideStrategy {
            name: name.into(),
            base,
            at,
            replacement,
        }
    }
}

impl<P: PartialEq> FencingStrategy<P> for OverrideStrategy<'_, P> {
    fn name(&self) -> &str {
        &self.name
    }

    fn lower(&self, path: &P) -> Vec<Instr> {
        if *path == self.at {
            self.replacement.clone()
        } else {
            self.base.lower(path)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmm_sim::isa::FenceKind;

    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    enum Path {
        A,
        B,
    }

    #[test]
    fn fn_strategy_lowers() {
        let s = FnStrategy::new("test", |p: &Path| match p {
            Path::A => vec![Instr::Fence(FenceKind::DmbIsh)],
            Path::B => vec![],
        });
        assert_eq!(s.name(), "test");
        assert_eq!(s.lower(&Path::A), vec![Instr::Fence(FenceKind::DmbIsh)]);
        assert!(s.lower(&Path::B).is_empty());
    }

    #[test]
    fn override_replaces_only_target() {
        let base = FnStrategy::new("base", |_: &Path| vec![Instr::Fence(FenceKind::LwSync)]);
        let over = OverrideStrategy::new(
            "StoreStore=sync",
            &base,
            Path::A,
            vec![Instr::Fence(FenceKind::HwSync)],
        );
        assert_eq!(over.lower(&Path::A), vec![Instr::Fence(FenceKind::HwSync)]);
        assert_eq!(over.lower(&Path::B), vec![Instr::Fence(FenceKind::LwSync)]);
    }
}
