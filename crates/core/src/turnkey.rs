//! A turnkey evaluation system — the extension proposed in the paper's
//! conclusion: "The process of iterating the cost function could also be
//! encapsulated in the VM, potentially yielding a turnkey evaluation
//! system."
//!
//! [`evaluate`] takes a machine, a benchmark and a fencing strategy and runs
//! the whole methodology unattended: calibrate the cost function, discover
//! the code paths actually present in the benchmark's image, sweep each
//! path, fit sensitivities, classify each (benchmark, path) pair as usable
//! or not, and rank the paths — producing everything a systems programmer
//! needs before committing to a fencing-strategy change.

use std::collections::HashMap;
use std::hash::Hash;

use wmm_sim::Machine;

use crate::costfn::Calibration;
use crate::exec::{Executor, SerialExecutor};
use crate::image::compute_envelope;
use crate::json::{Json, ToJson};
use crate::model::SensitivityFit;
use crate::runner::{BenchSpec, RunConfig};
use crate::sensitivity::{pow2_targets, sweep_with, SweepTarget};
use crate::strategy::FencingStrategy;

/// Thresholds for the usability verdict (§3: a benchmark suits a code path
/// when `k` is not comparatively low and the fit variance is not high).
#[derive(Debug, Clone, Copy)]
pub struct Usability {
    /// Minimum sensitivity worth acting on.
    pub min_k: f64,
    /// Maximum tolerated relative standard error of the fit.
    pub max_rel_err: f64,
    /// Maximum tolerated mean compounded-error width (stability).
    pub max_instability: f64,
}

impl Default for Usability {
    fn default() -> Self {
        Usability {
            min_k: 5e-4,
            max_rel_err: 0.25,
            max_instability: 0.35,
        }
    }
}

/// Per-code-path result of a turnkey evaluation.
#[derive(Debug, Clone)]
pub struct PathReport {
    /// Human-readable path label.
    pub path: String,
    /// Dynamic invocation count in one image (the paper's rejected-but-
    /// indicative counter statistic, here obtained for free).
    pub invocations: u64,
    /// Fitted sensitivity, if the fit converged.
    pub fit: Option<SensitivityFit>,
    /// Mean compounded-error width across the sweep (instability).
    pub instability: f64,
    /// The §3 verdict: is this benchmark usable for evaluating this path?
    pub usable: bool,
}

/// The full turnkey report for one (machine, benchmark, strategy) triple.
#[derive(Debug, Clone)]
pub struct TurnkeyReport {
    /// Benchmark name.
    pub benchmark: String,
    /// Architecture label.
    pub arch: String,
    /// Strategy name.
    pub strategy: String,
    /// Per-path results, sorted by descending sensitivity.
    pub paths: Vec<PathReport>,
}

impl ToJson for PathReport {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("path", self.path.to_json()),
            ("invocations", self.invocations.to_json()),
            ("fit", self.fit.to_json()),
            ("instability", Json::Num(self.instability)),
            ("usable", Json::Bool(self.usable)),
        ])
    }
}

impl ToJson for TurnkeyReport {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("benchmark", self.benchmark.to_json()),
            ("arch", self.arch.to_json()),
            ("strategy", self.strategy.to_json()),
            ("paths", self.paths.to_json()),
        ])
    }
}

impl TurnkeyReport {
    /// The most sensitive usable path, if any — the natural first target
    /// for optimisation effort.
    pub fn hottest_usable(&self) -> Option<&PathReport> {
        self.paths.iter().find(|p| p.usable)
    }

    /// Paths this benchmark cannot evaluate (low k or unstable).
    pub fn unusable(&self) -> Vec<&PathReport> {
        self.paths.iter().filter(|p| !p.usable).collect()
    }
}

/// Run the complete §3 methodology unattended.
///
/// `spill` selects the cost-function variant (whether a scratch register is
/// available on this platform); `targets_exp` bounds the sweep axis at
/// `2^targets_exp` ns.
pub fn evaluate<P>(
    machine: &Machine,
    bench: &(dyn BenchSpec<P> + Sync),
    strategy: &(dyn FencingStrategy<P> + Sync),
    spill: bool,
    targets_exp: u32,
    usability: Usability,
    cfg: RunConfig,
) -> TurnkeyReport
where
    P: Clone + Eq + Hash + std::fmt::Debug + Send + Sync,
{
    evaluate_with(
        machine,
        bench,
        strategy,
        spill,
        targets_exp,
        usability,
        cfg,
        &SerialExecutor,
    )
}

/// [`evaluate`] through an explicit [`Executor`]: each per-path sweep is
/// batched through the executor, so a parallel executor overlaps the
/// simulations within every sweep.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_with<P>(
    machine: &Machine,
    bench: &(dyn BenchSpec<P> + Sync),
    strategy: &(dyn FencingStrategy<P> + Sync),
    spill: bool,
    targets_exp: u32,
    usability: Usability,
    cfg: RunConfig,
    exec: &dyn Executor,
) -> TurnkeyReport
where
    P: Clone + Eq + Hash + std::fmt::Debug + Send + Sync,
{
    // 1. Calibrate.
    let calibration = Calibration::measure(machine, spill, 12);

    // 2. Discover the paths present and their invocation counts.
    let probe_image = bench.image(cfg.base_seed);
    let counts = probe_image.site_counts();
    let mut paths: Vec<P> = probe_image.paths();
    // Deterministic order for reproducible reports.
    paths.sort_by_key(|p| format!("{p:?}"));

    let extra = crate::costfn::CostFunction {
        iters: 1,
        stack_spill: spill,
    }
    .size();
    let envelope: HashMap<P, u64> = compute_envelope(&paths, &[strategy], extra);

    // 3. Sweep each path and fit.
    let mut reports = Vec::with_capacity(paths.len());
    for p in &paths {
        let result = sweep_with(
            machine,
            bench,
            strategy,
            SweepTarget::Path(p.clone()),
            &calibration,
            &pow2_targets(0, targets_exp),
            envelope.clone(),
            cfg,
            exec,
        );
        let instability = result.mean_error_width();
        let usable = result
            .fit
            .as_ref()
            .map(|f| {
                f.usable(usability.min_k, usability.max_rel_err)
                    && instability <= usability.max_instability
            })
            .unwrap_or(false);
        reports.push(PathReport {
            path: format!("{p:?}"),
            invocations: counts.get(p).copied().unwrap_or(0),
            fit: result.fit,
            instability,
            usable,
        });
    }

    // 4. Rank by sensitivity.
    reports.sort_by(|a, b| {
        let ka = a.fit.as_ref().map(|f| f.k).unwrap_or(0.0);
        let kb = b.fit.as_ref().map(|f| f.k).unwrap_or(0.0);
        kb.partial_cmp(&ka).expect("finite k")
    });

    TurnkeyReport {
        benchmark: bench.name().to_string(),
        arch: machine.spec().arch.label().to_string(),
        strategy: strategy.name().to_string(),
        paths: reports,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::{Image, Segment};
    use crate::strategy::FnStrategy;
    use wmm_sim::arch::armv8_xgene1;
    use wmm_sim::isa::{FenceKind, Instr};
    use wmm_sim::machine::WorkloadCtx;

    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
    enum P {
        Hot,
        Cold,
    }

    struct TwoPath;
    impl BenchSpec<P> for TwoPath {
        fn name(&self) -> &str {
            "twopath"
        }
        fn image(&self, _seed: u64) -> Image<P> {
            let mut segs = vec![];
            for i in 0..60 {
                segs.push(Segment::Code(vec![Instr::Compute { cycles: 400 }]));
                segs.push(Segment::Site(P::Hot));
                if i % 20 == 0 {
                    segs.push(Segment::Site(P::Cold));
                }
            }
            Image {
                threads: vec![segs],
                ctx: WorkloadCtx::default(),
                work_units: 60.0,
            }
        }
    }

    #[test]
    fn turnkey_ranks_hot_path_first_and_flags_usability() {
        let machine = Machine::new(armv8_xgene1());
        let strategy = FnStrategy::new("dmb", |_: &P| vec![Instr::Fence(FenceKind::DmbIsh)]);
        let report = evaluate(
            &machine,
            &TwoPath,
            &strategy,
            false,
            9,
            Usability::default(),
            RunConfig::quick(),
        );
        assert_eq!(report.benchmark, "twopath");
        assert_eq!(report.paths.len(), 2, "absent path not discovered");
        assert_eq!(report.paths[0].path, "Hot");
        assert!(report.paths[0].invocations > report.paths[1].invocations);
        let hottest = report.hottest_usable().expect("hot path usable");
        assert_eq!(hottest.path, "Hot");
        // The cold path is invoked 20x less often: lower k.
        let k0 = report.paths[0].fit.as_ref().unwrap().k;
        let k1 = report.paths[1].fit.as_ref().unwrap().k;
        assert!(k0 > 5.0 * k1, "hot {k0} vs cold {k1}");
    }

    #[test]
    fn turnkey_report_serialises() {
        let machine = Machine::new(armv8_xgene1());
        let strategy = FnStrategy::new("dmb", |_: &P| vec![Instr::Fence(FenceKind::DmbIsh)]);
        let report = evaluate(
            &machine,
            &TwoPath,
            &strategy,
            false,
            6,
            Usability::default(),
            RunConfig::quick(),
        );
        let json = report.to_json().to_string();
        assert!(json.contains("\"benchmark\":\"twopath\""));
    }
}
