//! # wmm-dstruct
//!
//! A lock-free **data-structure platform**: concurrent structures with safe
//! memory reclamation as the third strategy-site platform of the
//! *Benchmarking Weak Memory Models* reproduction (after the JVM volatiles
//! of §4.2 and the kernel macros of §4.3).
//!
//! Hazard pointers pay a fence per protected read; epoch-based reclamation
//! amortises its barriers over whole operations; asymmetric (membarrier
//! style) hazard pointers move the cost from every reader onto the rare
//! reclaimer scan. Which scheme wins is exactly an Eq. 1/Eq. 2 question —
//! how often each fence site executes times what the fence costs there —
//! so the platform lowers every protect, retire, scan and epoch site to a
//! named [`wmmbench::image::Segment::Site`] and lets the existing
//! methodology (sensitivity sweeps, strategy ranking, static analysis,
//! fence synthesis, per-site profiling) answer it.
//!
//! * [`sites`] — the reclamation code paths ([`DSite`]) and the four
//!   scheme strategies: `nr` (no reclamation, every site free), `ebr`
//!   (fences at epoch boundaries), `hp-dmb` (`dmb ish` per protect) and
//!   `hp-asym` (readers free, reclaimer scan priced with a heavy
//!   membarrier-style sequence);
//! * [`ops`] — Treiber stack and Harris-Michael list operations as segment
//!   generators emitting those sites at realistic densities (pointer-chase
//!   loads are labeled so profiles join on stable rows);
//! * [`retire`] — the hazard-publication/retire-scan idiom (an SB-shaped
//!   race between a reader announcing a hazard and a reclaimer scanning
//!   for it), the bridge mapping a synthesized fence placement back onto
//!   the protect/scan sites, and the use-after-retire litmus shapes the
//!   explorer checks;
//! * [`stitch`] — multi-operation programs (push+pop, insert+delete+search)
//!   stitched into one graph for whole-program fence synthesis, with the
//!   embedded reclamation race mapped back onto the litmus shapes;
//! * [`workload`] — whole benchmarks composing the operations into
//!   stack-churn, list-search and list-update mixes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ops;
pub mod retire;
pub mod sites;
pub mod stitch;
pub mod workload;

pub use ops::DstructOp;
pub use retire::{
    bare_reclaim, ebr_reclaim_idiom, ebr_use_after_retire, hp_reclaim_idiom, hp_use_after_retire,
    strategy_from_placement, use_after_retire,
};
pub use sites::{
    ebr_strategy, hp_asym_strategy, hp_dmb_strategy, nr_strategy, scheme_strategies, DSite,
    DstructStrategy,
};
pub use stitch::{stitched_harris_michael, stitched_treiber, HazardWindow, StitchedProgram};
pub use workload::{dstruct_profile, dstruct_profiles, dstruct_suite, DstructBench};
