//! Lock-free structure operations: segment generators with reclamation
//! sites.
//!
//! Each operation models one hot path of a Treiber stack or Harris-Michael
//! list as application-level instruction segments plus [`DSite`] sites at
//! the densities that make the scheme comparison interesting: the list
//! traversals publish a hazard per visited node (so `hp-dmb` pays a
//! `dmb ish` per pointer chase), every operation crosses one epoch
//! enter/exit pair, and the retire-scan path runs once per reclamation
//! batch (every [`SCAN_PERIOD`]-th retirement on average) — which is what
//! lets the asymmetric scheme price its heavy barrier where it rarely
//! executes. Pointer-chase loads are labeled `chase` so per-site profiles
//! join structure traffic on stable rows.

use wmm_sim::isa::{AccessOrd, FenceKind, Instr, Loc};
use wmm_sim::SplitMix64;
use wmmbench::image::Segment;

use crate::sites::DSite;

/// One lock-free structure operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DstructOp {
    /// Treiber stack push: init node, publish, CAS the top pointer.
    TreiberPush,
    /// Treiber stack pop: protect the top node, CAS it out, retire it.
    TreiberPop,
    /// Harris-Michael lookup: hazard-protected traversal.
    HmLookup,
    /// Harris-Michael insert: traversal, then publish + CAS.
    HmInsert,
    /// Harris-Michael delete: traversal, mark + unlink CAS, retire; every
    /// few retirements the reclaim path (scan + epoch advance) runs.
    HmDelete,
}

/// Mean retirements per hazard scan / epoch advance: reclamation is
/// batched (real implementations scan after on the order of
/// 2 × slots × threads retirements), so the reclaimer-side sites execute
/// this many times more rarely than [`DSite::Retire`].
pub const SCAN_PERIOD: u64 = 32;

/// Shared data-structure lines.
mod lines {
    /// Stack top pointer.
    pub const TOP: u64 = 0x70_0000;
    /// List head and node pool.
    pub const LIST: u64 = 0x11_0000;
    /// Per-thread hazard-pointer slots.
    pub const HAZARD: u64 = 0x4A_0000;
    /// Per-thread retire lists.
    pub const RETIRE: u64 = 0x2E_0000;
    /// Global + per-thread epoch words.
    pub const EPOCH: u64 = 0xE0_0000;
}

impl DstructOp {
    /// Append this operation's hot path to `out`. `rng` varies node lines
    /// and traversal lengths so repeated invocations are not identical.
    // One arm per operation; each arm is a reclamation vignette and reads
    // as a unit.
    #[allow(clippy::too_many_lines)]
    pub fn emit(&self, out: &mut Vec<Segment<DSite>>, rng: &mut SplitMix64) {
        let code = |v: Vec<Instr>| Segment::Code(v);
        let site = |s: DSite| Segment::Site(s);
        let chase = |l: u64| {
            Segment::Labeled(
                "chase",
                vec![Instr::Load {
                    loc: Loc::SharedRw(l),
                    ord: AccessOrd::Plain,
                }],
            )
        };
        let ld = |l: u64| Instr::Load {
            loc: Loc::SharedRw(l),
            ord: AccessOrd::Plain,
        };
        let st = |l: u64| Instr::Store {
            loc: Loc::SharedRw(l),
            ord: AccessOrd::Plain,
        };
        let work = |c: u32| Instr::Compute { cycles: c };

        // A hazard-protected pointer chase: publish the hazard slot, cross
        // the protect site (the scheme's validation fence), re-read the
        // protected pointer.
        let protect = |out: &mut Vec<Segment<DSite>>, rng: &mut SplitMix64, node: u64| {
            out.push(code(vec![st(lines::HAZARD + rng.next_below(4))]));
            out.push(site(DSite::HpProtect));
            out.push(chase(node));
        };
        // The batched reclaim path: scan every hazard slot, advance the
        // epoch, free the batch.
        let reclaim = |out: &mut Vec<Segment<DSite>>| {
            out.push(site(DSite::HpScan));
            out.push(code(vec![
                ld(lines::HAZARD),
                ld(lines::HAZARD + 1),
                ld(lines::HAZARD + 2),
                ld(lines::HAZARD + 3),
            ]));
            out.push(site(DSite::EpochAdvance));
            out.push(code(vec![ld(lines::EPOCH), st(lines::EPOCH + 1), work(60)]));
        };

        match self {
            DstructOp::TreiberPush => {
                let node = lines::LIST + rng.next_below(64);
                out.push(site(DSite::EpochEnter));
                out.push(code(vec![st(lines::EPOCH + 2)]));
                // Init the node and publish it: the store-store barrier is
                // structure correctness, identical under every scheme, so
                // it lives in code rather than at a strategy site.
                out.push(code(vec![
                    work(25),
                    st(node),
                    Instr::Fence(FenceKind::DmbIshSt),
                    Instr::Cas {
                        loc: Loc::SharedRw(lines::TOP),
                        success_prob: 0.9,
                    },
                ]));
                out.push(site(DSite::EpochExit));
                out.push(code(vec![st(lines::EPOCH + 2)]));
            }
            DstructOp::TreiberPop => {
                out.push(site(DSite::EpochEnter));
                out.push(code(vec![st(lines::EPOCH + 2)]));
                protect(out, rng, lines::TOP);
                out.push(code(vec![
                    work(15),
                    Instr::Cas {
                        loc: Loc::SharedRw(lines::TOP),
                        success_prob: 0.85,
                    },
                ]));
                out.push(site(DSite::Retire));
                out.push(code(vec![st(lines::RETIRE + rng.next_below(4))]));
                if rng.next_below(SCAN_PERIOD) == 0 {
                    reclaim(out);
                }
                out.push(site(DSite::EpochExit));
                out.push(code(vec![st(lines::EPOCH + 2)]));
            }
            DstructOp::HmLookup => {
                out.push(site(DSite::EpochEnter));
                out.push(code(vec![st(lines::EPOCH + 2)]));
                let hops = 2 + rng.next_below(3);
                let mut node = lines::LIST + rng.next_below(128);
                for _ in 0..hops {
                    protect(out, rng, node);
                    out.push(code(vec![work(12)]));
                    node = lines::LIST + rng.next_below(128);
                }
                out.push(site(DSite::EpochExit));
                out.push(code(vec![st(lines::EPOCH + 2)]));
            }
            DstructOp::HmInsert => {
                out.push(site(DSite::EpochEnter));
                out.push(code(vec![st(lines::EPOCH + 2)]));
                let hops = 1 + rng.next_below(3);
                let mut node = lines::LIST + rng.next_below(128);
                for _ in 0..hops {
                    protect(out, rng, node);
                    node = lines::LIST + rng.next_below(128);
                }
                out.push(code(vec![
                    work(30),
                    st(node),
                    Instr::Fence(FenceKind::DmbIshSt),
                    Instr::Cas {
                        loc: Loc::SharedRw(node + 1),
                        success_prob: 0.92,
                    },
                ]));
                out.push(site(DSite::EpochExit));
                out.push(code(vec![st(lines::EPOCH + 2)]));
            }
            DstructOp::HmDelete => {
                out.push(site(DSite::EpochEnter));
                out.push(code(vec![st(lines::EPOCH + 2)]));
                let hops = 1 + rng.next_below(3);
                let mut node = lines::LIST + rng.next_below(128);
                for _ in 0..hops {
                    protect(out, rng, node);
                    node = lines::LIST + rng.next_below(128);
                }
                // Mark, then unlink.
                out.push(code(vec![
                    Instr::Cas {
                        loc: Loc::SharedRw(node),
                        success_prob: 0.88,
                    },
                    work(10),
                    Instr::Cas {
                        loc: Loc::SharedRw(node + 1),
                        success_prob: 0.9,
                    },
                ]));
                out.push(site(DSite::Retire));
                out.push(code(vec![st(lines::RETIRE + rng.next_below(4))]));
                if rng.next_below(SCAN_PERIOD) == 0 {
                    reclaim(out);
                }
                out.push(site(DSite::EpochExit));
                out.push(code(vec![st(lines::EPOCH + 2)]));
            }
        }
    }

    /// Count reclamation sites this operation emits per invocation with a
    /// fixed seed (deterministic).
    #[must_use]
    pub fn site_count(&self) -> usize {
        let mut out = vec![];
        let mut rng = SplitMix64::new(0);
        self.emit(&mut out, &mut rng);
        out.iter().filter(|s| matches!(s, Segment::Site(_))).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sites_of(op: DstructOp, seed: u64) -> Vec<DSite> {
        let mut out = vec![];
        let mut rng = SplitMix64::new(seed);
        op.emit(&mut out, &mut rng);
        out.iter()
            .filter_map(|seg| match seg {
                Segment::Site(s) => Some(*s),
                _ => None,
            })
            .collect()
    }

    const OPS: [DstructOp; 5] = [
        DstructOp::TreiberPush,
        DstructOp::TreiberPop,
        DstructOp::HmLookup,
        DstructOp::HmInsert,
        DstructOp::HmDelete,
    ];

    #[test]
    fn every_op_crosses_one_epoch_pair() {
        for op in OPS {
            for seed in 0..16 {
                let sites = sites_of(op, seed);
                let enters = sites.iter().filter(|s| **s == DSite::EpochEnter).count();
                let exits = sites.iter().filter(|s| **s == DSite::EpochExit).count();
                assert_eq!(enters, 1, "{op:?}");
                assert_eq!(exits, 1, "{op:?}");
            }
        }
    }

    #[test]
    fn traversals_protect_every_hop() {
        // The list operations must emit multiple protect sites per op —
        // that density is what makes hp-dmb lose to the batched schemes.
        for seed in 0..16 {
            let protects = sites_of(DstructOp::HmLookup, seed)
                .iter()
                .filter(|s| **s == DSite::HpProtect)
                .count();
            assert!(protects >= 2, "lookup protects every visited node");
        }
        assert_eq!(
            sites_of(DstructOp::TreiberPush, 1)
                .iter()
                .filter(|s| **s == DSite::HpProtect)
                .count(),
            0,
            "push reads no shared nodes and needs no hazard"
        );
    }

    #[test]
    fn retiring_ops_retire_and_occasionally_scan() {
        for op in [DstructOp::TreiberPop, DstructOp::HmDelete] {
            let mut retires = 0usize;
            let mut scans = 0usize;
            for seed in 0..200 {
                let sites = sites_of(op, seed);
                retires += sites.iter().filter(|s| **s == DSite::Retire).count();
                scans += sites.iter().filter(|s| **s == DSite::HpScan).count();
            }
            assert_eq!(retires, 200, "{op:?} retires exactly once per op");
            assert!(scans > 0, "{op:?} must reach the reclaim path");
            assert!(
                scans * 4 < retires,
                "{op:?}: scans ({scans}) must be much rarer than retires ({retires})"
            );
        }
    }

    #[test]
    fn pointer_chases_are_labeled() {
        let mut out = vec![];
        DstructOp::HmLookup.emit(&mut out, &mut SplitMix64::new(3));
        assert!(
            out.iter()
                .any(|s| matches!(s, Segment::Labeled("chase", _))),
            "traversal loads must join profiles on the chase label"
        );
    }

    #[test]
    fn emission_is_seed_deterministic() {
        for op in OPS {
            let mut a = vec![];
            let mut b = vec![];
            op.emit(&mut a, &mut SplitMix64::new(5));
            op.emit(&mut b, &mut SplitMix64::new(5));
            assert_eq!(a.len(), b.len(), "{op:?}");
        }
    }

    #[test]
    fn all_six_sites_are_reachable() {
        let mut seen = std::collections::HashSet::new();
        for op in OPS {
            for seed in 0..32 {
                seen.extend(sites_of(op, seed));
            }
        }
        for s in DSite::ALL {
            assert!(seen.contains(&s), "{s:?} unused by any operation");
        }
    }
}
