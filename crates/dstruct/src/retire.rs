//! The hazard-publication / retire-scan idiom, and the bridge between
//! fence *synthesis* and reclamation *schemes*.
//!
//! The safety core of hazard pointers is a store-buffering race: a reader
//! announces a hazard then validates the node is still reachable, while a
//! reclaimer unlinks the node then scans the hazard slots. If both the
//! protect fence and the scan fence are missing, each side can miss the
//! other's store — the reclaimer frees a node the reader still holds, and
//! the reader dereferences reclaimed memory. [`hp_reclaim_idiom`] lowers
//! that skeleton under any [`DstructStrategy`]; [`ebr_reclaim_idiom`] is
//! the epoch analogue (announcement vs epoch advance);
//! [`use_after_retire`] is the litmus shape the explorer checks.
//!
//! [`strategy_from_placement`] closes the loop with `wmm-analyze`: a fence
//! placement synthesized on the bare skeleton maps back onto the
//! protect/scan sites, so a synthesized scheme can be re-lowered and
//! priced exactly like a hand-written one.

use wmm_analyze::{Instrument, StreamDep};
use wmm_litmus::ops::{FClass, LOp, LitmusTest};
use wmm_litmus::rewrite::Reinforce;
use wmm_sim::isa::{AccessOrd, FenceKind, Instr, Loc};
use wmmbench::strategy::FencingStrategy;

use crate::sites::{nr_strategy, DSite, DstructStrategy};

/// Shared locations of the reclaim idiom.
const HAZARD: Loc = Loc::SharedRw(0x4A5A);
const NODE: Loc = Loc::SharedRw(0x20DE);
const EPOCH: Loc = Loc::SharedRw(0xE60C);

fn store(loc: Loc) -> Instr {
    Instr::Store {
        loc,
        ord: AccessOrd::Plain,
    }
}

fn load(loc: Loc) -> Instr {
    Instr::Load {
        loc,
        ord: AccessOrd::Plain,
    }
}

/// Lower the hazard-pointer reclaim idiom under a scheme: reader thread
/// `W hazard; hp_protect(); R node`, reclaimer thread
/// `W node (unlink); hp_scan(); R hazard`. No syntactic dependencies —
/// protection must come from the site lowerings.
#[must_use]
pub fn hp_reclaim_idiom(s: &DstructStrategy) -> (Vec<Vec<Instr>>, Vec<StreamDep>) {
    let mut reader = vec![store(HAZARD)];
    reader.extend(s.lower(&DSite::HpProtect));
    reader.push(load(NODE));

    let mut reclaimer = vec![store(NODE)];
    reclaimer.extend(s.lower(&DSite::HpScan));
    reclaimer.push(load(HAZARD));

    (vec![reader, reclaimer], vec![])
}

/// The epoch analogue of [`hp_reclaim_idiom`]: reader thread
/// `W epoch (announce); epoch_enter(); R node`, reclaimer thread
/// `W node (unlink); epoch_advance(); R epoch`.
#[must_use]
pub fn ebr_reclaim_idiom(s: &DstructStrategy) -> (Vec<Vec<Instr>>, Vec<StreamDep>) {
    let mut reader = vec![store(EPOCH)];
    reader.extend(s.lower(&DSite::EpochEnter));
    reader.push(load(NODE));

    let mut reclaimer = vec![store(NODE)];
    reclaimer.extend(s.lower(&DSite::EpochAdvance));
    reclaimer.push(load(EPOCH));

    (vec![reader, reclaimer], vec![])
}

/// The bare reclaim skeleton: no fences anywhere (what fence synthesis
/// starts from). Thread 0 is `W hazard; R node`, thread 1 is
/// `W node; R hazard` — the store-buffering shape.
#[must_use]
pub fn bare_reclaim() -> (Vec<Vec<Instr>>, Vec<StreamDep>) {
    (
        vec![
            vec![store(HAZARD), load(NODE)],
            vec![store(NODE), load(HAZARD)],
        ],
        vec![],
    )
}

/// Map a fence placement synthesized on [`bare_reclaim`] back onto the
/// reclamation sites: reader fences between hazard store and node load
/// become the `hp_protect` lowering, reclaimer fences between unlink and
/// scan load become the `hp_scan` lowering. A site the placement leaves
/// bare is lowered to a compiler barrier (overriding nothing — the NR
/// default is already compiler-only — but keeping the mapping explicit).
///
/// Returns `None` if the placement contains anything without a site to
/// live in: non-fence instruments (upgrades, dependencies) or fences
/// outside the two inter-access slots.
#[must_use]
pub fn strategy_from_placement(instruments: &[Instrument]) -> Option<DstructStrategy> {
    let mut protect: Vec<Instr> = vec![];
    let mut scan: Vec<Instr> = vec![];
    for ins in instruments {
        match *ins {
            Instrument::Fence {
                thread: 0,
                slot: 1,
                kind,
            } => protect.push(Instr::Fence(kind)),
            Instrument::Fence {
                thread: 1,
                slot: 1,
                kind,
            } => scan.push(Instr::Fence(kind)),
            _ => return None,
        }
    }
    if protect.is_empty() {
        protect.push(Instr::Fence(FenceKind::Compiler));
    }
    if scan.is_empty() {
        scan.push(Instr::Fence(FenceKind::Compiler));
    }
    Some(
        nr_strategy()
            .with(DSite::HpProtect, protect)
            .with(DSite::HpScan, scan)
            .named("hp=synth"),
    )
}

/// The use-after-retire litmus shape: variable 0 is the hazard slot,
/// variable 1 the node's reachability word (1 once unlinked/poisoned).
/// The weak outcome — both threads read 0 — is the reader validating a
/// node the reclaimer has already decided nobody holds: the reclaimed
/// node gets dereferenced. Observable wherever store→load reorders (TSO
/// and weaker) when no scheme fences are placed.
#[must_use]
pub fn use_after_retire() -> LitmusTest {
    LitmusTest {
        name: "use-after-retire".into(),
        threads: vec![
            vec![
                LOp::Store {
                    var: 0,
                    val: 1,
                    release: false,
                },
                LOp::Load {
                    var: 1,
                    reg: 0,
                    acquire: false,
                    dep: None,
                },
            ],
            vec![
                LOp::Store {
                    var: 1,
                    val: 1,
                    release: false,
                },
                LOp::Load {
                    var: 0,
                    reg: 0,
                    acquire: false,
                    dep: None,
                },
            ],
        ],
        interesting: vec![(0, 0, 0), (1, 0, 0)],
        store_deps: vec![],
        memory: vec![],
    }
}

/// [`use_after_retire`] with the classic hazard-pointer placement: a full
/// fence between hazard publication and validation, and a full fence
/// between unlink and scan. The weak outcome must be unreachable under
/// every model.
#[must_use]
pub fn hp_use_after_retire() -> LitmusTest {
    use_after_retire().reinforced(&[
        Reinforce::Fence {
            thread: 0,
            before: 1,
            class: FClass::Full,
        },
        Reinforce::Fence {
            thread: 1,
            before: 1,
            class: FClass::Full,
        },
    ])
}

/// [`use_after_retire`] with the epoch placement: the same two full
/// fences, read as epoch announcement vs epoch advance. Semantically
/// identical to [`hp_use_after_retire`] — both schemes close the same
/// race — but kept separate so each scheme's check names its own sites.
#[must_use]
pub fn ebr_use_after_retire() -> LitmusTest {
    let mut t = hp_use_after_retire();
    t.name = "use-after-retire+epoch".into();
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sites::{ebr_strategy, hp_asym_strategy, hp_dmb_strategy};
    use wmm_analyze::{analyze, ProgramGraph};
    use wmm_litmus::explore::explore;
    use wmm_litmus::ops::ModelKind;

    #[test]
    fn bare_reclaim_has_no_fences() {
        let (streams, deps) = bare_reclaim();
        assert!(deps.is_empty());
        for t in &streams {
            assert!(t.iter().all(|i| !matches!(i, Instr::Fence(_))));
        }
    }

    #[test]
    fn hp_dmb_idiom_is_statically_protected() {
        let (streams, deps) = hp_reclaim_idiom(&hp_dmb_strategy());
        let g = ProgramGraph::from_streams("hp-dmb", &streams, &deps);
        assert!(analyze(&g, ModelKind::ArmV8).protected());
    }

    #[test]
    fn nr_and_asym_reader_sides_are_statically_unprotected() {
        // NR places no fences at all; the asymmetric scheme's reader-side
        // compiler barrier is invisible to the per-thread fence analysis
        // (its correctness lives in the membarrier IPI, outside the
        // model) — both must be flagged.
        for s in [nr_strategy(), hp_asym_strategy()] {
            let (streams, deps) = hp_reclaim_idiom(&s);
            let g = ProgramGraph::from_streams(s.name().to_string(), &streams, &deps);
            assert!(
                !analyze(&g, ModelKind::ArmV8).protected(),
                "{} must be flagged",
                s.name()
            );
        }
    }

    #[test]
    fn ebr_idiom_is_statically_protected() {
        let (streams, deps) = ebr_reclaim_idiom(&ebr_strategy());
        let g = ProgramGraph::from_streams("ebr", &streams, &deps);
        assert!(analyze(&g, ModelKind::ArmV8).protected());
        let (streams, deps) = ebr_reclaim_idiom(&nr_strategy());
        let g = ProgramGraph::from_streams("ebr-bare", &streams, &deps);
        assert!(!analyze(&g, ModelKind::ArmV8).protected());
    }

    #[test]
    fn use_after_retire_differential_two_oracles_agree() {
        // For every model: the explorer reaches the reclaimed-node read
        // exactly when the static check reports an unprotected cycle —
        // the "Herding Cats" two-oracle discipline on the new shape.
        for (test, expect_weak_somewhere) in [
            (use_after_retire(), true),
            (hp_use_after_retire(), false),
            (ebr_use_after_retire(), false),
        ] {
            let mut weak_anywhere = false;
            for model in [
                ModelKind::Sc,
                ModelKind::Tso,
                ModelKind::ArmV8,
                ModelKind::Power,
            ] {
                let observed =
                    explore(&test, model).allows_with_memory(&test.interesting, &test.memory);
                let g = ProgramGraph::from_litmus(&test);
                let protected = analyze(&g, model).protected();
                assert_eq!(
                    protected,
                    !observed,
                    "{} under {}: static protected={protected}, explorer observes={observed}",
                    test.name,
                    model.label()
                );
                weak_anywhere |= observed;
            }
            assert_eq!(weak_anywhere, expect_weak_somewhere, "{}", test.name);
        }
    }

    #[test]
    fn use_after_retire_is_reachable_on_tso_and_weaker() {
        // SB-shaped: even TSO's store→load reordering frees the node.
        for model in [ModelKind::Tso, ModelKind::ArmV8, ModelKind::Power] {
            let t = use_after_retire();
            assert!(
                explore(&t, model).allows_with_memory(&t.interesting, &t.memory),
                "{}",
                model.label()
            );
        }
        let t = use_after_retire();
        assert!(!explore(&t, ModelKind::Sc).allows_with_memory(&t.interesting, &t.memory));
    }

    #[test]
    fn placement_maps_onto_reclamation_sites() {
        let s = strategy_from_placement(&[
            Instrument::Fence {
                thread: 0,
                slot: 1,
                kind: FenceKind::DmbIsh,
            },
            Instrument::Fence {
                thread: 1,
                slot: 1,
                kind: FenceKind::DmbIsh,
            },
        ])
        .expect("both fences sit on reclamation sites");
        assert_eq!(
            s.lower(&DSite::HpProtect),
            vec![Instr::Fence(FenceKind::DmbIsh)]
        );
        assert_eq!(
            s.lower(&DSite::HpScan),
            vec![Instr::Fence(FenceKind::DmbIsh)]
        );
        let (streams, deps) = hp_reclaim_idiom(&s);
        let g = ProgramGraph::from_streams("hp=synth", &streams, &deps);
        assert!(analyze(&g, ModelKind::ArmV8).protected());
    }

    #[test]
    fn empty_sites_relower_to_compiler_barriers() {
        let s = strategy_from_placement(&[Instrument::Fence {
            thread: 1,
            slot: 1,
            kind: FenceKind::DmbIsh,
        }])
        .expect("scan-only placement");
        assert_eq!(
            s.lower(&DSite::HpProtect),
            vec![Instr::Fence(FenceKind::Compiler)]
        );
    }

    #[test]
    fn off_site_instruments_have_no_dstruct_home() {
        assert!(strategy_from_placement(&[Instrument::Fence {
            thread: 0,
            slot: 2,
            kind: FenceKind::DmbIsh,
        }])
        .is_none());
        assert!(strategy_from_placement(&[Instrument::Acquire { thread: 1, pos: 0 }]).is_none());
    }
}
