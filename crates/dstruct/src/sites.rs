//! The reclamation code paths and the four scheme strategies.
//!
//! Every fence a reclamation scheme needs lives at one of six named sites;
//! a scheme is a [`DstructStrategy`] lowering each site to an instruction
//! sequence. The structures themselves (CAS publication order and so on)
//! keep their barriers inside plain code segments, so the strategy axis
//! varies *only* the reclamation cost — the same discipline the kernel
//! platform applies to `read_barrier_depends`.

use wmm_sim::isa::{FenceKind, Instr};
use wmmbench::strategy::FencingStrategy;

/// The six reclamation code paths of the platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DSite {
    /// Hazard-pointer publication: announce the pointer, then order the
    /// announcement before the validating re-read (the hot reader site).
    HpProtect,
    /// Add a removed node to the thread-local retire list (orders the
    /// unlink before the list publication).
    Retire,
    /// Scan all hazard pointers before freeing retired nodes (the rare
    /// reclaimer site — where the asymmetric scheme concentrates its cost).
    HpScan,
    /// Epoch entry: announce the local epoch before touching shared nodes.
    EpochEnter,
    /// Epoch exit: release the critical section.
    EpochExit,
    /// Global epoch advance before reclaiming a grace-period-old batch.
    EpochAdvance,
}

impl DSite {
    /// All sites, readers first, reclaimer paths after.
    pub const ALL: [DSite; 6] = [
        DSite::HpProtect,
        DSite::Retire,
        DSite::HpScan,
        DSite::EpochEnter,
        DSite::EpochExit,
        DSite::EpochAdvance,
    ];

    /// Site name as used in documentation and site-name rows.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DSite::HpProtect => "hp_protect",
            DSite::Retire => "retire",
            DSite::HpScan => "hp_scan",
            DSite::EpochEnter => "epoch_enter",
            DSite::EpochExit => "epoch_exit",
            DSite::EpochAdvance => "epoch_advance",
        }
    }
}

/// A reclamation scheme: the free default per-site lowering with an
/// arbitrary set of overrides (how all four schemes are built).
pub struct DstructStrategy {
    name: String,
    overrides: Vec<(DSite, Vec<Instr>)>,
}

impl DstructStrategy {
    /// Add an override.
    #[must_use]
    pub fn with(mut self, s: DSite, seq: Vec<Instr>) -> Self {
        self.overrides.push((s, seq));
        self
    }

    /// Rename.
    #[must_use]
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Default lowering: every reclamation site is compiler-only. This is
    /// the no-reclamation baseline — the structure's own publication
    /// barriers live in code segments and are not part of any site.
    #[must_use]
    pub fn default_lowering(_s: DSite) -> Vec<Instr> {
        vec![Instr::Fence(FenceKind::Compiler)]
    }
}

impl FencingStrategy<DSite> for DstructStrategy {
    fn name(&self) -> &str {
        &self.name
    }

    fn lower(&self, path: &DSite) -> Vec<Instr> {
        for (s, seq) in &self.overrides {
            if s == path {
                return seq.clone();
            }
        }
        DstructStrategy::default_lowering(*path)
    }
}

/// No reclamation: every site free. The baseline every scheme is ranked
/// against (and the unsafe end of the use-after-retire check).
#[must_use]
pub fn nr_strategy() -> DstructStrategy {
    DstructStrategy {
        name: "nr".into(),
        overrides: vec![],
    }
}

/// Epoch-based reclamation: full barrier on epoch entry (announcement
/// before the first shared read), store barrier on exit, full barrier at
/// the global advance. Per-protect sites stay free — the scheme's whole
/// point is amortising ordering over the critical section.
#[must_use]
pub fn ebr_strategy() -> DstructStrategy {
    nr_strategy()
        .with(DSite::EpochEnter, vec![Instr::Fence(FenceKind::DmbIsh)])
        .with(DSite::EpochExit, vec![Instr::Fence(FenceKind::DmbIshSt)])
        .with(DSite::EpochAdvance, vec![Instr::Fence(FenceKind::DmbIsh)])
        .named("ebr")
}

/// Classic hazard pointers: `dmb ish` between every hazard publication and
/// its validating re-read (the §4 `store → fence → load` pattern on the
/// hottest path), store barrier on retire, full barrier before the scan.
#[must_use]
pub fn hp_dmb_strategy() -> DstructStrategy {
    nr_strategy()
        .with(DSite::HpProtect, vec![Instr::Fence(FenceKind::DmbIsh)])
        .with(DSite::Retire, vec![Instr::Fence(FenceKind::DmbIshSt)])
        .with(DSite::HpScan, vec![Instr::Fence(FenceKind::DmbIsh)])
        .named("hp-dmb")
}

/// Asymmetric (membarrier-style) hazard pointers: the reader-side protect
/// fence is compiler-only; the reclaimer pays for everyone with a heavy
/// process-wide barrier sequence before each scan (modeled as
/// `dmb ish; isb; dmb ish` — the IPI round-trip that forces every reader's
/// ordering remotely).
#[must_use]
pub fn hp_asym_strategy() -> DstructStrategy {
    nr_strategy()
        .with(DSite::Retire, vec![Instr::Fence(FenceKind::DmbIshSt)])
        .with(
            DSite::HpScan,
            vec![
                Instr::Fence(FenceKind::DmbIsh),
                Instr::Fence(FenceKind::Isb),
                Instr::Fence(FenceKind::DmbIsh),
            ],
        )
        .named("hp-asym")
}

/// All four scheme strategies, baseline first (the ranking order the
/// campaign reports).
#[must_use]
pub fn scheme_strategies() -> Vec<DstructStrategy> {
    vec![
        nr_strategy(),
        ebr_strategy(),
        hp_dmb_strategy(),
        hp_asym_strategy(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_sites() {
        assert_eq!(DSite::ALL.len(), 6);
        let mut names: Vec<&str> = DSite::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn nr_is_free_everywhere() {
        let s = nr_strategy();
        for site in DSite::ALL {
            assert_eq!(
                s.lower(&site),
                vec![Instr::Fence(FenceKind::Compiler)],
                "{site:?} must be free under NR"
            );
        }
    }

    #[test]
    fn hp_dmb_fences_every_protect() {
        let s = hp_dmb_strategy();
        assert_eq!(
            s.lower(&DSite::HpProtect),
            vec![Instr::Fence(FenceKind::DmbIsh)]
        );
        assert_eq!(
            s.lower(&DSite::EpochEnter),
            vec![Instr::Fence(FenceKind::Compiler)],
            "HP does not touch epoch sites"
        );
    }

    #[test]
    fn hp_asym_moves_cost_to_the_scan() {
        let s = hp_asym_strategy();
        assert_eq!(
            s.lower(&DSite::HpProtect),
            vec![Instr::Fence(FenceKind::Compiler)],
            "asymmetric readers are fence-free"
        );
        let scan = s.lower(&DSite::HpScan);
        assert!(
            scan.len() > hp_dmb_strategy().lower(&DSite::HpScan).len(),
            "the reclaimer pays more than the classic scan"
        );
    }

    #[test]
    fn ebr_fences_only_epoch_boundaries() {
        let s = ebr_strategy();
        assert_eq!(
            s.lower(&DSite::HpProtect),
            vec![Instr::Fence(FenceKind::Compiler)]
        );
        assert_eq!(
            s.lower(&DSite::EpochEnter),
            vec![Instr::Fence(FenceKind::DmbIsh)]
        );
        assert_eq!(
            s.lower(&DSite::EpochExit),
            vec![Instr::Fence(FenceKind::DmbIshSt)]
        );
    }

    #[test]
    fn four_schemes_with_distinct_names() {
        let mut names: Vec<String> = scheme_strategies()
            .iter()
            .map(|s| s.name().to_string())
            .collect();
        assert_eq!(names.len(), 4);
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 4);
    }
}
