//! Stitched multi-operation hot paths for whole-program synthesis.
//!
//! [`crate::ops`] emits single operations as priced segment streams for
//! the simulator; [`crate::retire`] distils the reclamation race into a
//! 2x2 litmus shape. This module sits between the two: each *stitched
//! program* concatenates several operations of one data structure into
//! per-thread instruction streams over shared locations — push **and**
//! pop on the Treiber stack, insert **and** delete **and** search on the
//! Harris-Michael list — so the static analysis sees the races between
//! operations that per-shape synthesis never composes:
//!
//! * the **publication race** (message-passing shape): initialise a node,
//!   publish it with a CAS; a concurrent traversal reads the pointer and
//!   dereferences the node;
//! * the **reclamation race** (store-buffering shape): a reader publishes
//!   a hazard pointer and dereferences; the reclaimer poisons the node
//!   and scans hazards — [`crate::retire::use_after_retire`] embedded in
//!   full operation context.
//!
//! The threads share locations (top-of-stack, list head, node payloads),
//! so the stitched program is a single conflict component — the
//! whole-program analysis cannot split it and must handle the composed
//! cycle set, which is exactly what makes these programs a stress input
//! for the tiered solver. Each program also knows where its reclamation
//! race lives ([`StitchedProgram::hazard_race_reinforcement`]), so a
//! synthesized placement can be replayed onto the use-after-retire litmus
//! and validated dynamically by the explorer.

use wmm_analyze::{Instrument, ProgramGraph, StreamDep};
use wmm_litmus::ops::{DepKind, FClass};
use wmm_litmus::rewrite::Reinforce;
use wmm_sim::isa::{AccessOrd, Instr, Loc};

/// Where a stitched program's reclamation (hazard) race lives: one
/// store→load window per side, mapped onto one thread of the
/// use-after-retire litmus.
#[derive(Debug, Clone, Copy)]
pub struct HazardWindow {
    /// Stream thread carrying the window.
    pub thread: usize,
    /// Access position of the hazard-publish (or node-poison) store.
    pub store_pos: usize,
    /// Access position of the validating deref (or hazard-scan load).
    pub load_pos: usize,
    /// The use-after-retire thread this window corresponds to.
    pub litmus_thread: usize,
}

/// A stitched multi-operation program plus its race geometry.
#[derive(Debug, Clone)]
pub struct StitchedProgram {
    /// Program name (also the [`ProgramGraph`] name).
    pub name: &'static str,
    /// Per-thread instruction streams (accesses only — synthesis adds
    /// the fences).
    pub threads: Vec<Vec<Instr>>,
    /// Pointer-chase dependencies the idiom establishes.
    pub deps: Vec<StreamDep>,
    /// The two sides of the embedded reclamation race.
    pub hazard_windows: [HazardWindow; 2],
}

fn load(loc: u64) -> Instr {
    Instr::Load {
        loc: Loc::SharedRw(loc),
        ord: AccessOrd::Plain,
    }
}

fn store(loc: u64) -> Instr {
    Instr::Store {
        loc: Loc::SharedRw(loc),
        ord: AccessOrd::Plain,
    }
}

fn cas(loc: u64) -> Instr {
    Instr::Cas {
        loc: Loc::SharedRw(loc),
        success_prob: 1.0,
    }
}

fn addr(thread: usize, from: usize, to: usize) -> StreamDep {
    StreamDep {
        thread,
        from,
        to,
        kind: DepKind::Addr,
    }
}

/// Shared lines of the stitched programs (same address space as
/// [`crate::ops`]'s segment lines).
mod lines {
    /// Treiber top-of-stack pointer.
    pub const TOP: u64 = 0x70_0000;
    /// Harris-Michael list head.
    pub const HEAD: u64 = 0x11_0000;
    /// Payload/next word of an established node.
    pub const NODE_A: u64 = 0x20DE;
    /// Payload/next word of a second (freshly pushed / being reclaimed)
    /// node.
    pub const NODE_B: u64 = 0x20DF;
    /// Hazard-pointer slot.
    pub const HAZARD: u64 = 0x4A5A;
}

/// Treiber stack, push + pop stitched.
///
/// Thread 0 pushes node A (initialise, CAS the top) and begins a pop
/// (publish a hazard for the observed top, dereference it). Thread 1 runs
/// the competing pop: read the top, dereference node A through it, unlink
/// with a CAS, poison node B's payload for reuse and scan hazards before
/// freeing. Bare, both the publication race (`NODE_A`/`TOP`) and the
/// reclamation race (`HAZARD`/`NODE_B`) are open on every model weaker
/// than SC.
#[must_use]
pub fn stitched_treiber() -> StitchedProgram {
    use lines::{HAZARD, NODE_A, NODE_B, TOP};
    StitchedProgram {
        name: "treiber-push-pop",
        threads: vec![
            vec![
                store(NODE_A), // 0: init payload of A
                cas(TOP),      // 1: push A (publish)
                store(HAZARD), // 2: pop: announce hazard for candidate
                load(TOP),     // 3: pop: re-read top (validate)
                load(NODE_B),  // 4: pop: deref candidate B
            ],
            vec![
                load(TOP),     // 0: pop: read top
                load(NODE_A),  // 1: deref A (publication consumer)
                cas(TOP),      // 2: unlink
                store(NODE_B), // 3: poison B for reuse (retire)
                load(HAZARD),  // 4: scan hazards before free
            ],
        ],
        deps: vec![addr(0, 3, 4), addr(1, 0, 1)],
        hazard_windows: [
            HazardWindow {
                thread: 0,
                store_pos: 2,
                load_pos: 4,
                litmus_thread: 0,
            },
            HazardWindow {
                thread: 1,
                store_pos: 3,
                load_pos: 4,
                litmus_thread: 1,
            },
        ],
    }
}

/// Harris-Michael list, insert + delete + search stitched.
///
/// Thread 0 inserts node B after A (traverse, initialise, CAS the link);
/// thread 1 deletes A (mark via CAS, unlink the head, poison the node,
/// scan hazards); thread 2 searches (publish a hazard, validate from the
/// head, dereference A then continue to B — the consumer of both the
/// insert's publication and the delete's poison).
#[must_use]
pub fn stitched_harris_michael() -> StitchedProgram {
    use lines::{HAZARD, HEAD, NODE_A, NODE_B};
    StitchedProgram {
        name: "hm-insert-delete-search",
        threads: vec![
            vec![
                load(HEAD),    // 0: traverse from head
                load(NODE_A),  // 1: read A.next
                store(NODE_B), // 2: init new node B
                cas(NODE_A),   // 3: link B after A
            ],
            vec![
                load(HEAD),    // 0: traverse
                cas(NODE_A),   // 1: logical delete (mark A)
                cas(HEAD),     // 2: physical unlink
                store(NODE_A), // 3: poison A (retire)
                load(HAZARD),  // 4: scan hazards before free
            ],
            vec![
                store(HAZARD), // 0: protect candidate
                load(HEAD),    // 1: validate from head
                load(NODE_A),  // 2: deref A
                load(NODE_B),  // 3: continue to B (publication consumer)
            ],
        ],
        deps: vec![addr(0, 0, 1), addr(1, 0, 1), addr(2, 1, 2)],
        hazard_windows: [
            HazardWindow {
                thread: 2,
                store_pos: 0,
                load_pos: 2,
                litmus_thread: 0,
            },
            HazardWindow {
                thread: 1,
                store_pos: 3,
                load_pos: 4,
                litmus_thread: 1,
            },
        ],
    }
}

impl StitchedProgram {
    /// The program graph the whole-program analysis runs on.
    #[must_use]
    pub fn graph(&self) -> ProgramGraph {
        ProgramGraph::from_streams(self.name, &self.threads, &self.deps)
    }

    /// Both stitched programs, in manifest order.
    #[must_use]
    pub fn all() -> Vec<StitchedProgram> {
        vec![stitched_treiber(), stitched_harris_michael()]
    }

    /// Replay the part of a synthesized placement that falls inside the
    /// reclamation-race windows onto [`crate::retire::use_after_retire`]:
    /// fences between a window's store and load map to a fence between
    /// the corresponding litmus accesses, release/acquire upgrades on the
    /// window endpoints carry over. The reinforced litmus must then make
    /// the weak outcome unreachable — the dynamic half of validating the
    /// placement.
    #[must_use]
    pub fn hazard_race_reinforcement(&self, instruments: &[Instrument]) -> Vec<Reinforce> {
        let mut out: Vec<Reinforce> = vec![];
        let mut push = |r: Reinforce| {
            if !out.contains(&r) {
                out.push(r);
            }
        };
        for w in &self.hazard_windows {
            for ins in instruments {
                match *ins {
                    Instrument::Fence { thread, slot, kind }
                        if thread == w.thread && slot > w.store_pos && slot <= w.load_pos =>
                    {
                        if let Some(class) = FClass::of_fence(kind) {
                            push(Reinforce::Fence {
                                thread: w.litmus_thread,
                                before: 1,
                                class,
                            });
                        }
                    }
                    Instrument::Release { thread, pos }
                        if thread == w.thread && pos == w.store_pos =>
                    {
                        push(Reinforce::Release {
                            thread: w.litmus_thread,
                            pos: 0,
                        });
                    }
                    Instrument::Acquire { thread, pos }
                        if thread == w.thread && pos == w.load_pos =>
                    {
                        push(Reinforce::Acquire {
                            thread: w.litmus_thread,
                            pos: 1,
                        });
                    }
                    _ => {}
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::retire::use_after_retire;
    use wmm_analyze::{analyze, apply_to_graph, synthesize, CostModel, SynthConfig};
    use wmm_litmus::explore::explore;
    use wmm_litmus::ops::ModelKind;

    #[test]
    fn stitched_programs_are_bare_open_single_components() {
        for prog in StitchedProgram::all() {
            let g = prog.graph();
            assert!(
                !analyze(&g, ModelKind::ArmV8).protected(),
                "{} should be open bare",
                prog.name
            );
            assert_eq!(
                wmm_analyze::wps::conflict_components(&g).len(),
                1,
                "{} threads share locations",
                prog.name
            );
        }
    }

    #[test]
    fn synthesized_placement_closes_the_hazard_race_dynamically() {
        let costs = CostModel::static_table();
        for prog in StitchedProgram::all() {
            let g = prog.graph();
            let cfg = SynthConfig::fences_only(ModelKind::ArmV8);
            let placement = synthesize(&g, cfg, &costs).expect("stitched programs are fenceable");
            assert!(analyze(
                &apply_to_graph(&g, &placement.instruments),
                ModelKind::ArmV8
            )
            .protected());
            let items = prog.hazard_race_reinforcement(&placement.instruments);
            // Both sides of the race must have been fenced.
            for lt in [0, 1] {
                assert!(
                    items.iter().any(|r| matches!(
                        r,
                        Reinforce::Fence { thread, .. } if *thread == lt
                    )),
                    "{}: no fence mapped onto litmus thread {lt}: {items:?}",
                    prog.name
                );
            }
            let reinforced = use_after_retire().reinforced(&items);
            let weak = explore(&reinforced, ModelKind::ArmV8)
                .allows_with_memory(&reinforced.interesting, &reinforced.memory);
            assert!(!weak, "{}: reclamation race still reachable", prog.name);
        }
    }
}
