//! Data-structure benchmarks: operation mixes composed into whole images.
//!
//! Three workloads span the scheme trade-off space: `stack_churn` is
//! retire-heavy (pop retires every node, so the reclaim path runs often),
//! `list_search` is traversal-heavy (many hazard publications per
//! operation, almost no retirements — the worst case for per-protect
//! fences and the best case for the asymmetric scheme), and `list_update`
//! mixes inserts, deletes and lookups.

use wmm_sim::isa::Instr;
use wmm_sim::machine::WorkloadCtx;
use wmm_sim::SplitMix64;
use wmmbench::image::{Image, Segment};
use wmmbench::runner::BenchSpec;

use crate::ops::DstructOp;
use crate::sites::DSite;

/// A data-structure benchmark profile.
#[derive(Debug, Clone)]
pub struct DstructProfile {
    /// Benchmark name.
    pub name: &'static str,
    /// Concurrent threads hammering the structure.
    pub threads: usize,
    /// Operations per thread at scale 1.0.
    pub ops: usize,
    /// Application work between operations, cycles.
    pub user_cycles: u32,
    /// Structure operations per request, with fractional rates.
    pub mix: Vec<(DstructOp, f64)>,
    /// Run-level noise amplitude.
    pub noise_amp: f64,
    /// Load-queue pressure at fence sites (traversals keep it hot).
    pub load_pressure: f64,
    /// Branch-predictor pressure.
    pub bp_pressure: f64,
    /// L1 miss rate on private data.
    pub l1_miss_rate: f64,
}

/// The benchmark suite, most protect-dense first.
pub fn dstruct_profiles() -> Vec<DstructProfile> {
    use DstructOp::*;
    vec![
        DstructProfile {
            name: "list_search",
            threads: 4,
            ops: 220,
            user_cycles: 260,
            mix: vec![(HmLookup, 1.0), (HmInsert, 0.05), (HmDelete, 0.05)],
            noise_amp: 0.02,
            load_pressure: 0.7,
            bp_pressure: 0.35,
            l1_miss_rate: 0.04,
        },
        DstructProfile {
            name: "list_update",
            threads: 2,
            ops: 180,
            user_cycles: 420,
            mix: vec![(HmLookup, 0.5), (HmInsert, 0.5), (HmDelete, 0.5)],
            noise_amp: 0.03,
            load_pressure: 0.5,
            bp_pressure: 0.45,
            l1_miss_rate: 0.05,
        },
        DstructProfile {
            name: "stack_churn",
            threads: 4,
            ops: 240,
            user_cycles: 340,
            mix: vec![(TreiberPush, 1.0), (TreiberPop, 1.0)],
            noise_amp: 0.03,
            load_pressure: 0.3,
            bp_pressure: 0.5,
            l1_miss_rate: 0.05,
        },
    ]
}

/// A runnable data-structure benchmark.
pub struct DstructBench {
    /// The profile.
    pub profile: DstructProfile,
    /// Image-size multiplier.
    pub scale: f64,
}

impl DstructBench {
    /// Construct from a profile.
    pub fn new(profile: DstructProfile, scale: f64) -> Self {
        DstructBench { profile, scale }
    }

    fn gen_thread(&self, thread: usize, seed: u64) -> Vec<Segment<DSite>> {
        let p = &self.profile;
        let mut rng = SplitMix64::new(seed ^ (thread as u64).wrapping_mul(0xA076_1D64_78BD_642F));
        let n = ((p.ops as f64) * self.scale).ceil() as usize;
        let mut segs: Vec<Segment<DSite>> = Vec::with_capacity(n * 12);
        for _ in 0..n {
            let w = (p.user_cycles as f64 * rng.jitter(0.25)) as u32;
            segs.push(Segment::Code(vec![Instr::Compute { cycles: w }]));
            for &(op, rate) in &p.mix {
                let count = rate.floor() as u32 + u32::from(rng.chance(rate - rate.floor()));
                for _ in 0..count {
                    op.emit(&mut segs, &mut rng);
                }
            }
        }
        segs
    }
}

impl BenchSpec<DSite> for DstructBench {
    fn name(&self) -> &str {
        self.profile.name
    }

    fn image(&self, seed: u64) -> Image<DSite> {
        let threads: Vec<Vec<Segment<DSite>>> = (0..self.profile.threads)
            .map(|t| self.gen_thread(t, seed))
            .collect();
        let work = (self.profile.ops as f64 * self.scale).ceil() * self.profile.threads as f64;
        Image {
            threads,
            ctx: WorkloadCtx {
                name: self.profile.name.to_string(),
                bp_pressure: self.profile.bp_pressure,
                load_pressure: self.profile.load_pressure,
                l1_miss_rate: self.profile.l1_miss_rate,
                dram_frac: 0.2,
                noise_amp: self.profile.noise_amp,
            },
            work_units: work,
        }
    }
}

/// The full suite at a given scale.
pub fn dstruct_suite(scale: f64) -> Vec<DstructBench> {
    dstruct_profiles()
        .into_iter()
        .map(|p| DstructBench::new(p, scale))
        .collect()
}

/// Look up one profile by name.
pub fn dstruct_profile(name: &str) -> Option<DstructProfile> {
    dstruct_profiles().into_iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_benchmarks() {
        let names: Vec<String> = dstruct_suite(0.2)
            .iter()
            .map(|b| b.name().to_string())
            .collect();
        assert_eq!(names, vec!["list_search", "list_update", "stack_churn"]);
    }

    #[test]
    fn list_search_is_most_protect_dense() {
        // The traversal workload must publish the most hazards per site —
        // that density is the asymmetric scheme's win condition.
        let protect_share = |b: &DstructBench| {
            let counts = b.image(5).site_counts();
            let protect = counts.get(&DSite::HpProtect).copied().unwrap_or(0) as f64;
            let total: u64 = counts.values().sum();
            protect / total as f64
        };
        let suite = dstruct_suite(0.2);
        let search = suite.iter().find(|b| b.name() == "list_search").unwrap();
        for b in &suite {
            if b.name() != "list_search" {
                assert!(
                    protect_share(b) < protect_share(search),
                    "{} denser in protects than list_search",
                    b.name()
                );
            }
        }
    }

    #[test]
    fn scans_are_rare_everywhere() {
        for b in dstruct_suite(0.3) {
            let counts = b.image(7).site_counts();
            let scans = counts.get(&DSite::HpScan).copied().unwrap_or(0);
            let protects = counts.get(&DSite::HpProtect).copied().unwrap_or(0);
            assert!(
                scans * 3 < protects.max(1),
                "{}: scans ({scans}) must be rare vs protects ({protects})",
                b.name()
            );
        }
    }

    #[test]
    fn images_deterministic_per_seed() {
        let b = DstructBench::new(dstruct_profile("stack_churn").unwrap(), 0.2);
        assert_eq!(b.image(9).site_counts(), b.image(9).site_counts());
        assert_ne!(b.image(9).site_counts(), b.image(10).site_counts());
    }

    #[test]
    fn every_site_appears_in_the_suite() {
        let mut seen = std::collections::HashSet::new();
        for b in dstruct_suite(0.3) {
            for (site, n) in b.image(3).site_counts() {
                if n > 0 {
                    seen.insert(site);
                }
            }
        }
        for s in DSite::ALL {
            assert!(seen.contains(&s), "{s:?} never emitted");
        }
    }
}
