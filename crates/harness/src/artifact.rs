//! Persistent run artifacts.
//!
//! Every campaign writes a schema-versioned JSON manifest under
//! `results/runs/`: the per-cell measurements and fitted sensitivities that
//! define the experiment's outcome, plus a telemetry section (job counts,
//! timings, cache hit rate, worker count) describing how it ran.
//!
//! The two sections have different determinism contracts. The *result*
//! section is a pure function of the experiment inputs and is what
//! [`RunManifest::canonical_json`] serialises — byte-identical across
//! worker counts, cache states and machines. The *telemetry* section is
//! observational and excluded from the canonical form; the regression gate
//! compares canonical content only.

use std::path::{Path, PathBuf};

use wmmbench::json::{Json, ToJson};
use wmmbench::model::SensitivityFit;

/// Manifest schema version; bump on any breaking layout change.
pub const SCHEMA_VERSION: u64 = 1;

/// One scalar measurement cell (e.g. a sweep point's relative performance,
/// a ranking-matrix entry), identified by a stable label.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRecord {
    /// Stable identifier, e.g. `"spark/volatile-read/a=16"`.
    pub label: String,
    /// The measured value.
    pub value: f64,
}

/// One fitted sensitivity, identified by a stable label.
#[derive(Debug, Clone, PartialEq)]
pub struct FitRecord {
    /// Stable identifier, e.g. `"spark/volatile-read"`.
    pub label: String,
    /// Fitted sensitivity `k` (Eq. 1).
    pub k: f64,
    /// Standard error of `k`.
    pub k_std_err: f64,
    /// Coefficient of determination of the fit.
    pub r_squared: f64,
}

/// How a campaign ran: counters from the executor, excluded from the
/// canonical (gated) manifest content.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Telemetry {
    /// Worker threads used.
    pub threads: usize,
    /// Batches submitted.
    pub batches: u64,
    /// Total jobs (including cache hits).
    pub jobs: u64,
    /// Jobs answered from the result cache.
    pub cache_hits: u64,
    /// Jobs actually simulated.
    pub cache_misses: u64,
    /// Sum of per-job simulation wall time, ms.
    pub sim_ms: f64,
    /// Wall time spent inside `run_batch`, ms.
    pub wall_ms: f64,
}

impl Telemetry {
    /// Fraction of jobs answered from cache.
    pub fn hit_rate(&self) -> f64 {
        if self.jobs == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.jobs as f64
        }
    }
}

impl ToJson for Telemetry {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("threads", self.threads.to_json()),
            ("batches", self.batches.to_json()),
            ("jobs", self.jobs.to_json()),
            ("cache_hits", self.cache_hits.to_json()),
            ("cache_misses", self.cache_misses.to_json()),
            ("cache_hit_rate", Json::Num(self.hit_rate())),
            ("sim_ms", Json::Num(self.sim_ms)),
            ("wall_ms", Json::Num(self.wall_ms)),
        ])
    }
}

/// The per-campaign run artifact.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunManifest {
    /// Campaign name; also the manifest's file stem under `results/runs/`.
    pub campaign: String,
    /// Architecture label(s) the campaign ran on.
    pub arch: String,
    /// Per-cell measurements.
    pub cells: Vec<CellRecord>,
    /// Fitted sensitivities.
    pub fits: Vec<FitRecord>,
    /// Execution telemetry (not part of the canonical content).
    pub telemetry: Option<Telemetry>,
}

impl RunManifest {
    /// An empty manifest for `campaign` on `arch`.
    pub fn new(campaign: impl Into<String>, arch: impl Into<String>) -> Self {
        RunManifest {
            campaign: campaign.into(),
            arch: arch.into(),
            ..RunManifest::default()
        }
    }

    /// Record one measurement cell.
    pub fn push_cell(&mut self, label: impl Into<String>, value: f64) {
        self.cells.push(CellRecord {
            label: label.into(),
            value,
        });
    }

    /// Record one fitted sensitivity.
    pub fn push_fit(&mut self, label: impl Into<String>, fit: &SensitivityFit) {
        self.fits.push(FitRecord {
            label: label.into(),
            k: fit.k,
            k_std_err: fit.k_std_err,
            r_squared: fit.r_squared,
        });
    }

    /// The deterministic result content: everything except telemetry.
    /// Byte-identical across worker counts and cache states; this is what
    /// the determinism tests compare and what the gate inspects.
    pub fn canonical_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", SCHEMA_VERSION.to_json()),
            ("campaign", self.campaign.to_json()),
            ("arch", self.arch.to_json()),
            (
                "cells",
                Json::Arr(
                    self.cells
                        .iter()
                        .map(|c| {
                            Json::obj(vec![
                                ("label", c.label.to_json()),
                                ("value", Json::Num(c.value)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "fits",
                Json::Arr(
                    self.fits
                        .iter()
                        .map(|f| {
                            Json::obj(vec![
                                ("label", f.label.to_json()),
                                ("k", Json::Num(f.k)),
                                ("k_std_err", Json::Num(f.k_std_err)),
                                ("r_squared", Json::Num(f.r_squared)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Serialise to the written manifest file's text (canonical content
    /// plus the telemetry section).
    pub fn to_file_text(&self) -> String {
        let mut json = self.canonical_json();
        if let (Json::Obj(pairs), Some(t)) = (&mut json, &self.telemetry) {
            pairs.push(("telemetry".to_string(), t.to_json()));
        }
        let mut text = json.to_string_pretty();
        text.push('\n');
        text
    }

    /// Write the manifest to `dir/<campaign>.json`, creating `dir` as
    /// needed, and return the path.
    pub fn write(&self, dir: impl AsRef<Path>) -> std::io::Result<PathBuf> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.campaign));
        std::fs::write(&path, self.to_file_text())?;
        Ok(path)
    }

    /// Parse a manifest from JSON. Rejects unknown schema versions so the
    /// gate never silently compares incompatible layouts.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        let version = json
            .get("schema_version")
            .and_then(Json::as_f64)
            .ok_or("missing schema_version")? as u64;
        if version != SCHEMA_VERSION {
            return Err(format!(
                "manifest schema version {version} (this build understands {SCHEMA_VERSION})"
            ));
        }
        let field = |k: &str| {
            json.get(k)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("missing {k}"))
        };
        let num = |j: &Json, k: &str| {
            j.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing numeric {k}"))
        };
        let label = |j: &Json| {
            j.get("label")
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or("missing label")
        };
        let mut cells = vec![];
        for c in json
            .get("cells")
            .and_then(Json::as_arr)
            .ok_or("missing cells")?
        {
            cells.push(CellRecord {
                label: label(c)?,
                value: num(c, "value")?,
            });
        }
        let mut fits = vec![];
        for f in json
            .get("fits")
            .and_then(Json::as_arr)
            .ok_or("missing fits")?
        {
            fits.push(FitRecord {
                label: label(f)?,
                k: num(f, "k")?,
                k_std_err: num(f, "k_std_err")?,
                r_squared: num(f, "r_squared")?,
            });
        }
        let telemetry = json.get("telemetry").map(|t| Telemetry {
            threads: t.get("threads").and_then(Json::as_f64).unwrap_or(0.0) as usize,
            batches: t.get("batches").and_then(Json::as_f64).unwrap_or(0.0) as u64,
            jobs: t.get("jobs").and_then(Json::as_f64).unwrap_or(0.0) as u64,
            cache_hits: t.get("cache_hits").and_then(Json::as_f64).unwrap_or(0.0) as u64,
            cache_misses: t.get("cache_misses").and_then(Json::as_f64).unwrap_or(0.0) as u64,
            sim_ms: t.get("sim_ms").and_then(Json::as_f64).unwrap_or(0.0),
            wall_ms: t.get("wall_ms").and_then(Json::as_f64).unwrap_or(0.0),
        });
        Ok(RunManifest {
            campaign: field("campaign")?.to_string(),
            arch: field("arch")?.to_string(),
            cells,
            fits,
            telemetry,
        })
    }

    /// Load a manifest file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, String> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let json = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::from_json(&json).map_err(|e| format!("{}: {e}", path.display()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunManifest {
        let mut m = RunManifest::new("fig5_test", "arm");
        m.push_cell("spark/a=1", 0.996);
        m.push_cell("spark/a=2", 0.985);
        m.push_fit(
            "spark",
            &SensitivityFit {
                k: 0.00885,
                k_std_err: 0.0004,
                r_squared: 0.997,
            },
        );
        m
    }

    #[test]
    fn canonical_excludes_telemetry() {
        let mut a = sample();
        let mut b = sample();
        a.telemetry = Some(Telemetry {
            threads: 1,
            jobs: 10,
            wall_ms: 123.0,
            ..Telemetry::default()
        });
        b.telemetry = Some(Telemetry {
            threads: 8,
            jobs: 10,
            cache_hits: 10,
            wall_ms: 1.0,
            ..Telemetry::default()
        });
        assert_eq!(
            a.canonical_json().to_string(),
            b.canonical_json().to_string()
        );
        assert_ne!(a.to_file_text(), b.to_file_text());
    }

    #[test]
    fn file_roundtrip_is_lossless() {
        let dir = std::env::temp_dir().join("wmm-harness-artifact-test");
        let mut m = sample();
        m.telemetry = Some(Telemetry {
            threads: 4,
            batches: 2,
            jobs: 40,
            cache_hits: 8,
            cache_misses: 32,
            sim_ms: 10.5,
            wall_ms: 3.25,
        });
        let path = m.write(&dir).unwrap();
        let back = RunManifest::load(&path).unwrap();
        assert_eq!(back, m);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unknown_schema_version_is_rejected() {
        let json = Json::parse(
            r#"{"schema_version":99,"campaign":"x","arch":"arm","cells":[],"fits":[]}"#,
        )
        .unwrap();
        assert!(RunManifest::from_json(&json).unwrap_err().contains("99"));
    }
}
