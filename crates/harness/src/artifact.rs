//! Persistent run artifacts.
//!
//! Every campaign writes a schema-versioned JSON manifest under
//! `results/runs/`: the per-cell measurements and fitted sensitivities that
//! define the experiment's outcome, plus a telemetry section describing how
//! it ran and what the simulator observed while doing so.
//!
//! The sections have different determinism contracts:
//!
//! * The *result* section (cells + fits) is a pure function of the
//!   experiment inputs — [`RunManifest::canonical_json`] — byte-identical
//!   across worker counts, cache states and machines. The regression gate
//!   compares this content only.
//! * `telemetry.sim` and the telemetry job counters are deterministic
//!   *given the cache state*: the aggregated [`SimTotals`] cover exactly
//!   the freshly simulated jobs, merged in job order, so two runs with the
//!   same cache contents produce identical totals regardless of worker
//!   count ([`RunManifest::deterministic_json`] includes them).
//! * `telemetry.timing` is observational (wall clocks, worker count) and
//!   excluded from every determinism comparison.

use std::path::{Path, PathBuf};

use wmm_obs::MetricsSnapshot;
use wmm_sim::isa::FenceKind;
use wmm_sim::stats::{Counters, ExecStats};
use wmmbench::json::{Json, ToJson};
use wmmbench::model::SensitivityFit;

/// Manifest schema version; bump on any breaking layout change.
///
/// v2: `telemetry` split into deterministic counters (`sim`, aggregated
/// `ExecStats`) and observational `timing`.
///
/// v3: `telemetry` gains an optional `sites` array — per-site stall
/// profiles keyed by stable site name, produced by campaigns that run
/// sited (`wmm_profile`, `wmm_tracediff`). Absent for ordinary campaigns.
///
/// v4: optional top-level `metrics` block — a full
/// [`MetricsSnapshot`] for campaigns run with a metrics registry
/// attached. The file carries every metric; the deterministic projection
/// carries only the structural subset; the canonical (gated) content is
/// unchanged.
pub const SCHEMA_VERSION: u64 = 4;

/// One scalar measurement cell (e.g. a sweep point's relative performance,
/// a ranking-matrix entry), identified by a stable label.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRecord {
    /// Stable identifier, e.g. `"spark/volatile-read/a=16"`.
    pub label: String,
    /// The measured value.
    pub value: f64,
}

/// One fitted sensitivity, identified by a stable label.
#[derive(Debug, Clone, PartialEq)]
pub struct FitRecord {
    /// Stable identifier, e.g. `"spark/volatile-read"`.
    pub label: String,
    /// Fitted sensitivity `k` (Eq. 1).
    pub k: f64,
    /// Standard error of `k`.
    pub k_std_err: f64,
    /// Coefficient of determination of the fit.
    pub r_squared: f64,
}

/// Campaign-level aggregate of the simulator's own ground truth: every
/// freshly simulated job's [`ExecStats`], merged in job order.
///
/// Cache hits contribute nothing (the cache stores only wall times), so
/// `jobs_observed` says how many jobs these totals cover. Cycle sums are
/// `f64` and merged in a fixed order, so totals are bit-identical across
/// worker counts for a given cache state.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct SimTotals {
    /// Simulated jobs contributing to the totals.
    pub jobs_observed: u64,
    /// Event counters summed over those jobs (fence counts and stall
    /// cycles by kind, memory-hierarchy outcomes, cost-loop invocations…).
    pub counters: Counters,
    /// Store-buffer capacity stalls summed over those jobs.
    pub sb_stalls: u64,
    /// Cycles lost to store-buffer capacity stalls.
    pub sb_stall_cycles: f64,
}

impl SimTotals {
    /// Fold one freshly simulated job's statistics into the totals.
    pub fn merge_stats(&mut self, stats: &ExecStats) {
        self.jobs_observed += 1;
        self.counters.merge(&stats.counters);
        self.sb_stalls += stats.sb_stalls;
        self.sb_stall_cycles += stats.sb_stall_cycles;
    }

    /// Total fence executions across all kinds.
    pub fn total_fences(&self) -> u64 {
        FenceKind::ALL
            .iter()
            .map(|&k| self.counters.fence_counts.get(&k).copied().unwrap_or(0))
            .sum()
    }

    /// Total cycles stalled in fences across all kinds, summed in the
    /// stable [`FenceKind::ALL`] order.
    pub fn total_fence_stall_cycles(&self) -> f64 {
        FenceKind::ALL
            .iter()
            .map(|&k| self.counters.fence_cycles.get(&k).copied().unwrap_or(0.0))
            .sum()
    }

    /// Observed mean stall cycles per executed fence of `kind`, if any.
    pub fn mean_fence_cycles(&self, kind: FenceKind) -> Option<f64> {
        let n = *self.counters.fence_counts.get(&kind).unwrap_or(&0);
        if n == 0 {
            None
        } else {
            Some(self.counters.fence_cycles.get(&kind).unwrap_or(&0.0) / n as f64)
        }
    }
}

impl ToJson for SimTotals {
    fn to_json(&self) -> Json {
        let c = &self.counters;
        let fences: Vec<Json> = FenceKind::ALL
            .iter()
            .filter_map(|&kind| {
                let count = *c.fence_counts.get(&kind).unwrap_or(&0);
                let cycles = *c.fence_cycles.get(&kind).unwrap_or(&0.0);
                if count == 0 && cycles == 0.0 {
                    return None;
                }
                Some(Json::obj(vec![
                    ("kind", kind.mnemonic().to_json()),
                    ("count", count.to_json()),
                    ("stall_cycles", Json::Num(cycles)),
                ]))
            })
            .collect();
        Json::obj(vec![
            ("jobs_observed", self.jobs_observed.to_json()),
            ("loads", c.loads.to_json()),
            ("stores", c.stores.to_json()),
            ("atomics", c.atomics.to_json()),
            ("cas_retries", c.cas_retries.to_json()),
            ("acquires", c.acquires.to_json()),
            ("releases", c.releases.to_json()),
            ("mispredicts", c.mispredicts.to_json()),
            ("l1_hits", c.l1_hits.to_json()),
            ("llc_hits", c.llc_hits.to_json()),
            ("dram_accesses", c.dram_accesses.to_json()),
            ("coherence_transfers", c.coherence_transfers.to_json()),
            ("cost_loop_invocations", c.cost_loop_invocations.to_json()),
            ("cost_loop_iters", c.cost_loop_iters.to_json()),
            ("sb_stalls", self.sb_stalls.to_json()),
            ("sb_stall_cycles", Json::Num(self.sb_stall_cycles)),
            ("fences", Json::Arr(fences)),
        ])
    }
}

/// One site's stall profile, aggregated over every sited sample of a
/// campaign and keyed by the stable site name the image's `SiteMap`
/// assigned (`t{thread}:{path}#{occ}`, or `t{thread}:code` for pooled
/// literal code).
#[derive(Debug, Clone, PartialEq)]
pub struct SiteRecord {
    /// Stable site name.
    pub name: String,
    /// Fence kind executed at the site, if any.
    pub fence: Option<FenceKind>,
    /// Fence executions summed over samples.
    pub fences: u64,
    /// Cycles stalled in fences, summed over samples.
    pub fence_cycles: f64,
    /// Store-buffer capacity-stall cycles, summed over samples.
    pub sb_stall_cycles: f64,
    /// Exposed memory-access cycles, summed over samples.
    pub mem_cycles: f64,
    /// Total cycles the site advanced its core's clock by, summed over
    /// samples.
    pub total_cycles: f64,
}

impl SiteRecord {
    /// Cycles not attributed to fence, store-buffer or memory stalls.
    pub fn compute_cycles(&self) -> f64 {
        (self.total_cycles - self.fence_cycles - self.sb_stall_cycles - self.mem_cycles).max(0.0)
    }
}

impl ToJson for SiteRecord {
    fn to_json(&self) -> Json {
        let mut pairs = vec![("name", self.name.to_json())];
        if let Some(k) = self.fence {
            pairs.push(("fence", k.mnemonic().to_json()));
        }
        pairs.push(("fences", self.fences.to_json()));
        pairs.push(("fence_cycles", Json::Num(self.fence_cycles)));
        pairs.push(("sb_stall_cycles", Json::Num(self.sb_stall_cycles)));
        pairs.push(("mem_cycles", Json::Num(self.mem_cycles)));
        pairs.push(("total_cycles", Json::Num(self.total_cycles)));
        Json::obj(pairs)
    }
}

/// Observational run timings — the only telemetry that legitimately varies
/// between runs of the same campaign.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct Timing {
    /// Worker threads used.
    pub threads: usize,
    /// Sum of per-job simulation wall time, ms.
    pub sim_ms: f64,
    /// Wall time spent inside `run_batch`, ms.
    pub wall_ms: f64,
    /// Wall time of the slowest single batch, ms.
    pub max_batch_ms: f64,
    /// Jobs in the largest batch submitted (queue-depth proxy).
    pub max_batch_jobs: u64,
}

impl ToJson for Timing {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("threads", self.threads.to_json()),
            ("sim_ms", Json::Num(self.sim_ms)),
            ("wall_ms", Json::Num(self.wall_ms)),
            ("max_batch_ms", Json::Num(self.max_batch_ms)),
            ("max_batch_jobs", self.max_batch_jobs.to_json()),
        ])
    }
}

/// How a campaign ran: executor counters, aggregated simulator statistics
/// and run timings. Never gated — the regression gate inspects canonical
/// content only.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Telemetry {
    /// Batches submitted.
    pub batches: u64,
    /// Total jobs (including cache hits).
    pub jobs: u64,
    /// Jobs answered from the result cache.
    pub cache_hits: u64,
    /// Jobs actually simulated.
    pub cache_misses: u64,
    /// Aggregated simulator ground truth over the simulated jobs.
    pub sim: SimTotals,
    /// Per-site stall profiles, for campaigns that ran sited. Sorted by
    /// site name; deterministic (sited jobs always simulate, so the fold
    /// covers the same samples regardless of cache state).
    pub sites: Option<Vec<SiteRecord>>,
    /// Observational timings (excluded from determinism comparisons).
    pub timing: Timing,
}

impl Telemetry {
    /// Fraction of jobs answered from cache.
    pub fn hit_rate(&self) -> f64 {
        if self.jobs == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.jobs as f64
        }
    }

    /// The deterministic portion: everything except `timing`. Identical
    /// across worker counts for a given cache state.
    pub fn deterministic_json(&self) -> Json {
        let mut pairs = vec![
            ("batches".to_string(), self.batches.to_json()),
            ("jobs".to_string(), self.jobs.to_json()),
            ("cache_hits".to_string(), self.cache_hits.to_json()),
            ("cache_misses".to_string(), self.cache_misses.to_json()),
            ("sim".to_string(), self.sim.to_json()),
        ];
        if let Some(sites) = &self.sites {
            pairs.push((
                "sites".to_string(),
                Json::Arr(sites.iter().map(ToJson::to_json).collect()),
            ));
        }
        Json::Obj(pairs)
    }
}

impl ToJson for Telemetry {
    fn to_json(&self) -> Json {
        let mut json = self.deterministic_json();
        if let Json::Obj(pairs) = &mut json {
            pairs.push(("cache_hit_rate".to_string(), Json::Num(self.hit_rate())));
            pairs.push(("timing".to_string(), self.timing.to_json()));
        }
        json
    }
}

/// The per-campaign run artifact.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunManifest {
    /// Campaign name; also the manifest's file stem under `results/runs/`.
    pub campaign: String,
    /// Architecture label(s) the campaign ran on.
    pub arch: String,
    /// Per-cell measurements.
    pub cells: Vec<CellRecord>,
    /// Fitted sensitivities.
    pub fits: Vec<FitRecord>,
    /// Execution telemetry (not part of the canonical content).
    pub telemetry: Option<Telemetry>,
    /// Metrics snapshot, for campaigns run with a registry attached (not
    /// part of the canonical content; the deterministic projection keeps
    /// only the structural entries).
    pub metrics: Option<MetricsSnapshot>,
}

impl RunManifest {
    /// An empty manifest for `campaign` on `arch`.
    pub fn new(campaign: impl Into<String>, arch: impl Into<String>) -> Self {
        RunManifest {
            campaign: campaign.into(),
            arch: arch.into(),
            ..RunManifest::default()
        }
    }

    /// Record one measurement cell.
    pub fn push_cell(&mut self, label: impl Into<String>, value: f64) {
        self.cells.push(CellRecord {
            label: label.into(),
            value,
        });
    }

    /// Record one fitted sensitivity.
    pub fn push_fit(&mut self, label: impl Into<String>, fit: &SensitivityFit) {
        self.fits.push(FitRecord {
            label: label.into(),
            k: fit.k,
            k_std_err: fit.k_std_err,
            r_squared: fit.r_squared,
        });
    }

    /// The canonical result content: cells and fits only. Byte-identical
    /// across worker counts and cache states; this is what the gate
    /// inspects.
    pub fn canonical_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", SCHEMA_VERSION.to_json()),
            ("campaign", self.campaign.to_json()),
            ("arch", self.arch.to_json()),
            (
                "cells",
                Json::Arr(
                    self.cells
                        .iter()
                        .map(|c| {
                            Json::obj(vec![
                                ("label", c.label.to_json()),
                                ("value", Json::Num(c.value)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "fits",
                Json::Arr(
                    self.fits
                        .iter()
                        .map(|f| {
                            Json::obj(vec![
                                ("label", f.label.to_json()),
                                ("k", Json::Num(f.k)),
                                ("k_std_err", Json::Num(f.k_std_err)),
                                ("r_squared", Json::Num(f.r_squared)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// The deterministic content: canonical result plus the deterministic
    /// telemetry (everything except `telemetry.timing`). For a given cache
    /// state this is byte-identical across worker counts — the contract the
    /// threads-1-vs-N tests assert.
    pub fn deterministic_json(&self) -> Json {
        let mut json = self.canonical_json();
        if let Json::Obj(pairs) = &mut json {
            if let Some(t) = &self.telemetry {
                pairs.push(("telemetry".to_string(), t.deterministic_json()));
            }
            if let Some(m) = &self.metrics {
                pairs.push(("metrics".to_string(), m.structural().to_json()));
            }
        }
        json
    }

    /// Serialise to the written manifest file's text (canonical content
    /// plus the full telemetry section, timing included, plus the full
    /// metrics snapshot if one was attached).
    pub fn to_file_text(&self) -> String {
        let mut json = self.canonical_json();
        if let Json::Obj(pairs) = &mut json {
            if let Some(t) = &self.telemetry {
                pairs.push(("telemetry".to_string(), t.to_json()));
            }
            if let Some(m) = &self.metrics {
                pairs.push(("metrics".to_string(), m.to_json()));
            }
        }
        let mut text = json.to_string_pretty();
        text.push('\n');
        text
    }

    /// Write the manifest to `dir/<campaign>.json`, creating `dir` as
    /// needed, and return the path.
    pub fn write(&self, dir: impl AsRef<Path>) -> std::io::Result<PathBuf> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.campaign));
        std::fs::write(&path, self.to_file_text())?;
        Ok(path)
    }

    /// Parse a manifest from JSON. Rejects unknown schema versions so the
    /// gate never silently compares incompatible layouts.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        let version = json
            .get("schema_version")
            .and_then(Json::as_f64)
            .ok_or("missing schema_version")? as u64;
        if version != SCHEMA_VERSION {
            return Err(format!(
                "manifest schema version {version} (this build understands {SCHEMA_VERSION})"
            ));
        }
        let field = |k: &str| {
            json.get(k)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("missing {k}"))
        };
        let num = |j: &Json, k: &str| {
            j.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing numeric {k}"))
        };
        let label = |j: &Json| {
            j.get("label")
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or("missing label")
        };
        let mut cells = vec![];
        for c in json
            .get("cells")
            .and_then(Json::as_arr)
            .ok_or("missing cells")?
        {
            cells.push(CellRecord {
                label: label(c)?,
                value: num(c, "value")?,
            });
        }
        let mut fits = vec![];
        for f in json
            .get("fits")
            .and_then(Json::as_arr)
            .ok_or("missing fits")?
        {
            fits.push(FitRecord {
                label: label(f)?,
                k: num(f, "k")?,
                k_std_err: num(f, "k_std_err")?,
                r_squared: num(f, "r_squared")?,
            });
        }
        let telemetry = match json.get("telemetry") {
            None => None,
            Some(t) => Some(telemetry_from_json(t)?),
        };
        let metrics = match json.get("metrics") {
            None => None,
            Some(m) => Some(MetricsSnapshot::from_json(m)?),
        };
        Ok(RunManifest {
            campaign: field("campaign")?.to_string(),
            arch: field("arch")?.to_string(),
            cells,
            fits,
            telemetry,
            metrics,
        })
    }

    /// Load a manifest file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, String> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let json = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::from_json(&json).map_err(|e| format!("{}: {e}", path.display()))
    }
}

fn telemetry_from_json(t: &Json) -> Result<Telemetry, String> {
    let u = |j: &Json, k: &str| j.get(k).and_then(Json::as_f64).unwrap_or(0.0) as u64;
    let f = |j: &Json, k: &str| j.get(k).and_then(Json::as_f64).unwrap_or(0.0);
    let mut sim = SimTotals::default();
    if let Some(s) = t.get("sim") {
        sim.jobs_observed = u(s, "jobs_observed");
        let c = &mut sim.counters;
        c.loads = u(s, "loads");
        c.stores = u(s, "stores");
        c.atomics = u(s, "atomics");
        c.cas_retries = u(s, "cas_retries");
        c.acquires = u(s, "acquires");
        c.releases = u(s, "releases");
        c.mispredicts = u(s, "mispredicts");
        c.l1_hits = u(s, "l1_hits");
        c.llc_hits = u(s, "llc_hits");
        c.dram_accesses = u(s, "dram_accesses");
        c.coherence_transfers = u(s, "coherence_transfers");
        c.cost_loop_invocations = u(s, "cost_loop_invocations");
        c.cost_loop_iters = u(s, "cost_loop_iters");
        sim.sb_stalls = u(s, "sb_stalls");
        sim.sb_stall_cycles = f(s, "sb_stall_cycles");
        if let Some(fences) = s.get("fences").and_then(Json::as_arr) {
            for entry in fences {
                let kind = entry
                    .get("kind")
                    .and_then(Json::as_str)
                    .and_then(FenceKind::from_mnemonic)
                    .ok_or("unknown fence kind in telemetry")?;
                c.fence_counts.insert(kind, u(entry, "count"));
                c.fence_cycles.insert(kind, f(entry, "stall_cycles"));
            }
        }
    }
    let sites = match t.get("sites").and_then(Json::as_arr) {
        None => None,
        Some(entries) => {
            let mut sites = Vec::with_capacity(entries.len());
            for entry in entries {
                let name = entry
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("site record missing name")?
                    .to_string();
                let fence = match entry.get("fence").and_then(Json::as_str) {
                    None => None,
                    Some(m) => Some(
                        FenceKind::from_mnemonic(m).ok_or("unknown fence kind in site record")?,
                    ),
                };
                sites.push(SiteRecord {
                    name,
                    fence,
                    fences: u(entry, "fences"),
                    fence_cycles: f(entry, "fence_cycles"),
                    sb_stall_cycles: f(entry, "sb_stall_cycles"),
                    mem_cycles: f(entry, "mem_cycles"),
                    total_cycles: f(entry, "total_cycles"),
                });
            }
            Some(sites)
        }
    };
    let timing = match t.get("timing") {
        None => Timing::default(),
        Some(w) => Timing {
            threads: u(w, "threads") as usize,
            sim_ms: f(w, "sim_ms"),
            wall_ms: f(w, "wall_ms"),
            max_batch_ms: f(w, "max_batch_ms"),
            max_batch_jobs: u(w, "max_batch_jobs"),
        },
    };
    Ok(Telemetry {
        batches: u(t, "batches"),
        jobs: u(t, "jobs"),
        cache_hits: u(t, "cache_hits"),
        cache_misses: u(t, "cache_misses"),
        sim,
        sites,
        timing,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunManifest {
        let mut m = RunManifest::new("fig5_test", "arm");
        m.push_cell("spark/a=1", 0.996);
        m.push_cell("spark/a=2", 0.985);
        m.push_fit(
            "spark",
            &SensitivityFit {
                k: 0.00885,
                k_std_err: 0.0004,
                r_squared: 0.997,
            },
        );
        m
    }

    fn sample_totals() -> SimTotals {
        let mut totals = SimTotals::default();
        let mut counters = Counters {
            loads: 120,
            stores: 60,
            ..Default::default()
        };
        counters.record_fence(FenceKind::DmbIsh);
        counters.record_fence(FenceKind::DmbIsh);
        counters.record_fence(FenceKind::DmbIshSt);
        counters.record_fence_cycles(FenceKind::DmbIsh, 21.5);
        counters.record_fence_cycles(FenceKind::DmbIshSt, 5.25);
        totals.merge_stats(&ExecStats {
            wall_ns: 100.0,
            core_cycles: vec![240.0],
            counters,
            sb_stall_cycles: 3.5,
            sb_stalls: 2,
            per_site: None,
        });
        totals
    }

    #[test]
    fn canonical_excludes_telemetry_and_deterministic_excludes_timing() {
        let mut a = sample();
        let mut b = sample();
        a.telemetry = Some(Telemetry {
            jobs: 10,
            cache_misses: 10,
            sim: sample_totals(),
            timing: Timing {
                threads: 1,
                wall_ms: 123.0,
                ..Timing::default()
            },
            ..Telemetry::default()
        });
        b.telemetry = Some(Telemetry {
            jobs: 10,
            cache_misses: 10,
            sim: sample_totals(),
            timing: Timing {
                threads: 8,
                wall_ms: 1.0,
                ..Timing::default()
            },
            ..Telemetry::default()
        });
        assert_eq!(
            a.canonical_json().to_string(),
            b.canonical_json().to_string()
        );
        // Same counters, different timing: deterministic text agrees, full
        // file text does not.
        assert_eq!(
            a.deterministic_json().to_string(),
            b.deterministic_json().to_string()
        );
        assert_ne!(a.to_file_text(), b.to_file_text());
        // Different counters: the deterministic text must expose it.
        let mut c = sample();
        let mut sim = sample_totals();
        sim.counters.loads += 1;
        c.telemetry = Some(Telemetry {
            jobs: 10,
            cache_misses: 10,
            sim,
            ..Telemetry::default()
        });
        assert_ne!(
            a.deterministic_json().to_string(),
            c.deterministic_json().to_string()
        );
    }

    #[test]
    fn file_roundtrip_is_lossless() {
        let dir = std::env::temp_dir().join("wmm-harness-artifact-test");
        let mut m = sample();
        m.telemetry = Some(Telemetry {
            batches: 2,
            jobs: 40,
            cache_hits: 8,
            cache_misses: 32,
            sim: sample_totals(),
            sites: None,
            timing: Timing {
                threads: 4,
                sim_ms: 10.5,
                wall_ms: 3.25,
                max_batch_ms: 2.125,
                max_batch_jobs: 24,
            },
        });
        let path = m.write(&dir).unwrap();
        let back = RunManifest::load(&path).unwrap();
        assert_eq!(back, m);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sim_totals_aggregate_and_expose_means() {
        let totals = sample_totals();
        assert_eq!(totals.jobs_observed, 1);
        assert_eq!(totals.counters.loads, 120);
        assert_eq!(totals.sb_stalls, 2);
        assert_eq!(
            totals.mean_fence_cycles(FenceKind::DmbIsh),
            Some(21.5 / 2.0)
        );
        assert_eq!(totals.mean_fence_cycles(FenceKind::Isb), None);
    }

    #[test]
    fn unknown_schema_version_is_rejected() {
        let json = Json::parse(
            r#"{"schema_version":99,"campaign":"x","arch":"arm","cells":[],"fits":[]}"#,
        )
        .unwrap();
        assert!(RunManifest::from_json(&json).unwrap_err().contains("99"));
        // v1 (pre-telemetry), v2 (pre-sites) and v3 (pre-metrics)
        // manifests are also rejected: the baselines were refreshed when
        // the schema was bumped.
        for version in [1, 2, 3] {
            let json = Json::parse(&format!(
                r#"{{"schema_version":{version},"campaign":"x","arch":"arm","cells":[],"fits":[]}}"#
            ))
            .unwrap();
            assert!(RunManifest::from_json(&json).is_err(), "v{version}");
        }
    }

    #[test]
    fn metrics_block_roundtrips_and_deterministic_keeps_structural_only() {
        use wmm_obs::{Class, MetricsRegistry};

        let dir = std::env::temp_dir().join("wmm-harness-artifact-metrics-test");
        let reg = MetricsRegistry::new();
        reg.counter("harness.exec.jobs", Class::Structural).add(40);
        reg.counter("harness.worker.0.jobs", Class::Observational)
            .add(40);
        reg.histogram("wps.gap", Class::Structural, &[1.0, 2.0])
            .observe(1.5);
        let mut m = sample();
        m.campaign = "metrics_test".to_string();
        m.metrics = Some(reg.snapshot());
        let path = m.write(&dir).unwrap();
        let back = RunManifest::load(&path).unwrap();
        assert_eq!(back, m);
        // Full file carries both classes; the deterministic projection
        // keeps only the structural subset; the gated canonical content
        // ignores metrics entirely.
        assert!(m.to_file_text().contains("harness.worker.0.jobs"));
        let det = m.deterministic_json().to_string();
        assert!(det.contains("harness.exec.jobs"));
        assert!(!det.contains("harness.worker.0.jobs"));
        assert!(m.canonical_json().get("metrics").is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn site_records_roundtrip_and_expose_compute_cycles() {
        let dir = std::env::temp_dir().join("wmm-harness-artifact-sites-test");
        let mut m = sample();
        m.campaign = "sited_test".to_string();
        let sites = vec![
            SiteRecord {
                name: "t0:VolatileStore#0".to_string(),
                fence: Some(FenceKind::DmbIsh),
                fences: 12,
                fence_cycles: 226.8,
                sb_stall_cycles: 4.5,
                mem_cycles: 30.25,
                total_cycles: 300.0,
            },
            SiteRecord {
                name: "t0:code".to_string(),
                fence: None,
                fences: 0,
                fence_cycles: 0.0,
                sb_stall_cycles: 0.0,
                mem_cycles: 96.0,
                total_cycles: 1024.0,
            },
        ];
        assert_eq!(sites[0].compute_cycles(), 300.0 - 226.8 - 4.5 - 30.25);
        m.telemetry = Some(Telemetry {
            jobs: 4,
            cache_misses: 4,
            sim: sample_totals(),
            sites: Some(sites),
            ..Telemetry::default()
        });
        let path = m.write(&dir).unwrap();
        let back = RunManifest::load(&path).unwrap();
        assert_eq!(back, m);
        // Sites are deterministic content: present in the deterministic
        // projection, so the threads-1-vs-N comparisons cover them.
        assert!(m.deterministic_json().to_string().contains("VolatileStore"));
        let _ = std::fs::remove_file(&path);
    }
}
