//! Regression gate CLI: diff a run manifest against a committed baseline.
//!
//! ```text
//! bench_gate <baseline.json> <current.json> [--k-tol FRAC] [--cell-tol FRAC]
//! ```
//!
//! Exits 0 when every fitted sensitivity and measurement cell is within
//! tolerance of the baseline, 1 on drift or structural differences, 2 on
//! usage or I/O errors.

use std::process::ExitCode;

use wmm_harness::{compare, GateConfig, RunManifest};

fn usage() -> ExitCode {
    eprintln!("usage: bench_gate <baseline.json> <current.json> [--k-tol FRAC] [--cell-tol FRAC]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut cfg = GateConfig::default();
    let mut paths = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--k-tol" | "--cell-tol" => {
                let Some(value) = args.next().and_then(|v| v.parse::<f64>().ok()) else {
                    return usage();
                };
                if arg == "--k-tol" {
                    cfg.k_rel_tol = value;
                } else {
                    cfg.cell_rel_tol = value;
                }
            }
            "--help" | "-h" => {
                return usage();
            }
            _ => paths.push(arg),
        }
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        return usage();
    };

    let load = |path: &str| match RunManifest::load(path) {
        Ok(m) => Some(m),
        Err(e) => {
            eprintln!("bench_gate: {e}");
            None
        }
    };
    let (Some(baseline), Some(current)) = (load(baseline_path), load(current_path)) else {
        return ExitCode::from(2);
    };

    let report = compare(&baseline, &current, cfg);
    if report.pass() {
        println!(
            "bench_gate: PASS — {} values within tolerance of {baseline_path}",
            report.checked
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "bench_gate: FAIL — {} of {} checks out of tolerance:",
            report.failures.len(),
            report.checked.max(report.failures.len())
        );
        for failure in &report.failures {
            eprintln!("  - {failure}");
        }
        // Structured per-cell diff of every drifted value (structural
        // failures — missing/duplicate labels — appear above only).
        let table = report.diff_table();
        if !table.is_empty() {
            eprintln!();
            for line in table.lines() {
                eprintln!("  {line}");
            }
        }
        ExitCode::FAILURE
    }
}
