//! Content-addressed result caching.
//!
//! `Machine::run` is deterministic in `(arch, program, ctx, seed)`, so a
//! simulation result can be reused whenever those inputs recur — across
//! batches, campaigns and (with the on-disk store) processes. The cache key
//! is a 128-bit hash over a canonical encoding of exactly those inputs —
//! FNV-1a over strings, a word-wise multiply-xor fold over numeric fields
//! (keys are almost entirely instruction words, and hashing them a byte at
//! a time showed up in campaign dispatch time): two independent 64-bit
//! lanes keep accidental collisions far below any realistic campaign size.
//!
//! The on-disk store is an append-only text file of `key result` pairs;
//! results are stored as `f64::to_bits` hex so a reloaded value is
//! bit-identical to the freshly simulated one — caching never changes
//! experiment output.

use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use wmm_sim::isa::{AccessOrd, Instr, Loc, Mispredict};
use wmmbench::exec::SimJob;

/// One 64-bit FNV-1a lane.
struct Fnv(u64);

impl Fnv {
    fn new(basis: u64) -> Self {
        Fnv(basis)
    }
    fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x100_0000_01b3);
    }
    fn u64(&mut self, v: u64) {
        // Word-wise fold: finalize the word through the SplitMix64 mixer,
        // then one FNV-style xor-multiply round. Equivalent dispersion to
        // the byte loop at a sixteenth of the work.
        let mut z = v.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.0 = (self.0 ^ (z ^ (z >> 31))).wrapping_mul(0x100_0000_01b3);
    }
    fn bytes(&mut self, bs: &[u8]) {
        self.u64(bs.len() as u64);
        for &b in bs {
            self.byte(b);
        }
    }
}

/// Two independent lanes (distinct offset bases) hashed in lockstep.
///
/// Public so other content-addressed stores (e.g. the analysis-task cache
/// in [`crate::jobs`]) key into the same 128-bit space with the same
/// collision odds as the simulation cache.
pub struct Fnv128(Fnv, Fnv);

impl Default for Fnv128 {
    fn default() -> Self {
        Fnv128::new()
    }
}

impl Fnv128 {
    /// Fresh hasher over both lanes.
    #[must_use]
    pub fn new() -> Self {
        // Lane 0: the standard FNV-1a offset basis; lane 1: an arbitrary
        // odd constant so the lanes decorrelate.
        Fnv128(
            Fnv::new(0xcbf2_9ce4_8422_2325),
            Fnv::new(0x9e37_79b9_7f4a_7c15),
        )
    }
    /// Fold one word into both lanes.
    pub fn u64(&mut self, v: u64) {
        self.0.u64(v);
        self.1.u64(v ^ 0xa5a5_a5a5_a5a5_a5a5);
    }
    /// Fold one float (by bit pattern) into both lanes.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    /// Fold a length-prefixed byte string into both lanes.
    pub fn bytes(&mut self, bs: &[u8]) {
        self.0.bytes(bs);
        self.1.bytes(bs);
    }
    /// The 128-bit digest.
    #[must_use]
    pub fn finish(self) -> u128 {
        ((self.0 .0 as u128) << 64) | self.1 .0 as u128
    }
}

fn hash_loc(h: &mut Fnv128, loc: &Loc) {
    match loc {
        Loc::Private(l) => {
            h.u64(0);
            h.u64(*l);
        }
        Loc::SharedRo(l) => {
            h.u64(1);
            h.u64(*l);
        }
        Loc::SharedRw(l) => {
            h.u64(2);
            h.u64(*l);
        }
    }
}

fn hash_ord(h: &mut Fnv128, ord: &AccessOrd) {
    h.u64(match ord {
        AccessOrd::Plain => 0,
        AccessOrd::Acquire => 1,
        AccessOrd::Release => 2,
    });
}

fn hash_instr(h: &mut Fnv128, instr: &Instr) {
    match instr {
        Instr::Nop => h.u64(0),
        Instr::MovImm => h.u64(1),
        Instr::Alu => h.u64(2),
        Instr::CmpImm => h.u64(3),
        Instr::CondBranch(m) => {
            h.u64(4);
            match m {
                Mispredict::Never => h.u64(0),
                Mispredict::Rate(r) => {
                    h.u64(1);
                    h.f64(*r);
                }
                Mispredict::Workload => h.u64(2),
            }
        }
        Instr::StackPush => h.u64(5),
        Instr::StackPop => h.u64(6),
        Instr::Load { loc, ord } => {
            h.u64(7);
            hash_loc(h, loc);
            hash_ord(h, ord);
        }
        Instr::Store { loc, ord } => {
            h.u64(8);
            hash_loc(h, loc);
            hash_ord(h, ord);
        }
        Instr::Cas { loc, success_prob } => {
            h.u64(9);
            hash_loc(h, loc);
            h.f64(*success_prob);
        }
        Instr::Fence(k) => {
            h.u64(10);
            h.u64(*k as u64);
        }
        Instr::CostLoop { iters, stack_spill } => {
            h.u64(11);
            h.u64(*iters);
            h.u64(*stack_spill as u64);
        }
        Instr::Compute { cycles } => {
            h.u64(12);
            h.u64(*cycles as u64);
        }
    }
}

/// The content address of one simulation cell: a stable 128-bit hash of
/// everything `Machine::run` depends on — architecture label, workload
/// context, seed and the full instruction stream.
pub fn job_key(job: &SimJob<'_>) -> u128 {
    let mut h = Fnv128::new();
    h.bytes(job.machine.spec().arch.label().as_bytes());
    let ctx = &job.ctx;
    h.bytes(ctx.name.as_bytes());
    h.f64(ctx.bp_pressure);
    h.f64(ctx.load_pressure);
    h.f64(ctx.l1_miss_rate);
    h.f64(ctx.dram_frac);
    h.f64(ctx.noise_amp);
    h.u64(job.seed);
    h.u64(job.program.threads.len() as u64);
    for thread in &job.program.threads {
        h.u64(thread.len() as u64);
        for instr in thread {
            hash_instr(&mut h, instr);
        }
    }
    h.finish()
}

/// The on-disk lane of a cache: the backing file plus its own append lock,
/// so disk I/O never holds up readers of the in-memory map.
struct DiskLane {
    path: PathBuf,
    append: Mutex<()>,
}

/// Operational counters of a content-addressed cache, shared between the
/// simulation cache and the generic task cache ([`crate::TaskCache`]).
///
/// Everything except `lock_wait_ns` is deterministic given the cache state
/// and the batch sequence (entries, hit/miss/put counts, and the
/// disk-append accounting the lane always implied but never reported);
/// `lock_wait_ns` is a wall-clock measurement of time spent waiting for
/// the disk lane's append lock and is observational.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Entries currently held in the in-memory map.
    pub entries: u64,
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// First-writer inserts (repeat puts of a key count nothing).
    pub puts: u64,
    /// Lines appended to the disk lane.
    pub disk_appends: u64,
    /// Bytes appended to the disk lane (newlines included).
    pub disk_append_bytes: u64,
    /// Wall nanoseconds spent waiting on the disk lane's append lock
    /// (observational — never on the `get` hot path).
    pub lock_wait_ns: u64,
}

/// A content-addressed simulation-result cache: an in-memory map with an
/// optional append-only on-disk store shared across processes.
pub struct SimCache {
    mem: Mutex<HashMap<u128, f64>>,
    disk: Option<DiskLane>,
    hits: AtomicU64,
    misses: AtomicU64,
    puts: AtomicU64,
    disk_appends: AtomicU64,
    disk_append_bytes: AtomicU64,
    lock_wait_ns: AtomicU64,
}

impl SimCache {
    /// A purely in-memory cache.
    pub fn in_memory() -> Self {
        SimCache {
            mem: Mutex::new(HashMap::new()),
            disk: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            puts: AtomicU64::new(0),
            disk_appends: AtomicU64::new(0),
            disk_append_bytes: AtomicU64::new(0),
            lock_wait_ns: AtomicU64::new(0),
        }
    }

    /// A cache backed by `path`: existing entries are loaded eagerly and
    /// new results are appended as they are produced. Unreadable lines are
    /// skipped (a torn final line from a killed run is harmless).
    pub fn with_disk(path: impl Into<PathBuf>) -> std::io::Result<Self> {
        let path = path.into();
        let mut mem = HashMap::new();
        if path.exists() {
            for line in std::fs::read_to_string(&path)?.lines() {
                if let Some((key, val)) = parse_line(line) {
                    mem.insert(key, val);
                }
            }
        } else if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        Ok(SimCache {
            mem: Mutex::new(mem),
            disk: Some(DiskLane {
                path,
                append: Mutex::new(()),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            puts: AtomicU64::new(0),
            disk_appends: AtomicU64::new(0),
            disk_append_bytes: AtomicU64::new(0),
            lock_wait_ns: AtomicU64::new(0),
        })
    }

    /// Look up a result.
    pub fn get(&self, key: u128) -> Option<f64> {
        let found = self.mem.lock().expect("cache poisoned").get(&key).copied();
        match found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Store a result (and append it to the disk store, if any).
    ///
    /// The in-memory insert decides, under the map lock, whether this call
    /// is the first writer of `key`; the disk append then happens *outside*
    /// that lock, on the disk lane's own lock, so file I/O never blocks
    /// concurrent `get`/`put` traffic on other keys.
    pub fn put(&self, key: u128, value: f64) {
        let first_insert = self
            .mem
            .lock()
            .expect("cache poisoned")
            .insert(key, value)
            .is_none();
        if first_insert {
            self.puts.fetch_add(1, Ordering::Relaxed);
            if let Some(lane) = &self.disk {
                let wait = std::time::Instant::now();
                let _append = lane.append.lock().expect("disk lane poisoned");
                self.lock_wait_ns
                    .fetch_add(wait.elapsed().as_nanos() as u64, Ordering::Relaxed);
                if let Ok(mut f) = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&lane.path)
                {
                    let line = format!("{key:032x} {:016x}", value.to_bits());
                    if writeln!(f, "{line}").is_ok() {
                        self.disk_appends.fetch_add(1, Ordering::Relaxed);
                        self.disk_append_bytes
                            .fetch_add(line.len() as u64 + 1, Ordering::Relaxed);
                    }
                }
            }
        }
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.mem.lock().expect("cache poisoned").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookup count that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookup count that missed.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// First-writer insert count.
    pub fn puts(&self) -> u64 {
        self.puts.load(Ordering::Relaxed)
    }

    /// The full counter snapshot, for metrics export.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            entries: self.len() as u64,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
            disk_appends: self.disk_appends.load(Ordering::Relaxed),
            disk_append_bytes: self.disk_append_bytes.load(Ordering::Relaxed),
            lock_wait_ns: self.lock_wait_ns.load(Ordering::Relaxed),
        }
    }

    /// The backing file, if this cache persists to disk.
    pub fn disk_path(&self) -> Option<&Path> {
        self.disk.as_ref().map(|lane| lane.path.as_path())
    }
}

/// Parse one disk-store line. The writer always emits exactly 32 hex chars
/// of key and 16 of value, so anything narrower is a torn line from a
/// killed run — it must be rejected, not parsed: a truncated value like
/// `3ff` is still valid hex and would otherwise load as a silently wrong
/// result under a valid key prefix.
fn parse_line(line: &str) -> Option<(u128, f64)> {
    let (key, val) = line.split_once(' ')?;
    if key.len() != 32 || val.len() != 16 {
        return None;
    }
    Some((
        u128::from_str_radix(key, 16).ok()?,
        f64::from_bits(u64::from_str_radix(val, 16).ok()?),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmm_sim::arch::armv8_xgene1;
    use wmm_sim::machine::{Program, WorkloadCtx};
    use wmm_sim::Machine;

    fn job(machine: &Machine, cycles: u32, seed: u64) -> SimJob<'_> {
        SimJob {
            machine,
            program: Program::new(vec![vec![Instr::Compute { cycles }]]),
            ctx: WorkloadCtx::default(),
            seed,
            sited: false,
        }
    }

    #[test]
    fn key_is_stable_and_input_sensitive() {
        let machine = Machine::new(armv8_xgene1());
        let a = job_key(&job(&machine, 100, 7));
        assert_eq!(a, job_key(&job(&machine, 100, 7)), "stable");
        assert_ne!(a, job_key(&job(&machine, 101, 7)), "program-sensitive");
        assert_ne!(a, job_key(&job(&machine, 100, 8)), "seed-sensitive");
        let mut noisy = job(&machine, 100, 7);
        noisy.ctx.noise_amp = 0.5;
        assert_ne!(a, job_key(&noisy), "ctx-sensitive");
    }

    #[test]
    fn instr_encoding_distinguishes_variants() {
        let machine = Machine::new(armv8_xgene1());
        let mk = |instr: Instr| SimJob {
            machine: &machine,
            program: Program::new(vec![vec![instr]]),
            ctx: WorkloadCtx::default(),
            seed: 0,
            sited: false,
        };
        let keys: Vec<u128> = [
            Instr::Nop,
            Instr::StackPush,
            Instr::Load {
                loc: Loc::Private(0),
                ord: AccessOrd::Plain,
            },
            Instr::Load {
                loc: Loc::SharedRw(0),
                ord: AccessOrd::Plain,
            },
            Instr::Load {
                loc: Loc::Private(0),
                ord: AccessOrd::Acquire,
            },
            Instr::Store {
                loc: Loc::Private(0),
                ord: AccessOrd::Plain,
            },
        ]
        .into_iter()
        .map(|i| job_key(&mk(i)))
        .collect();
        for (i, a) in keys.iter().enumerate() {
            for b in &keys[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn memory_cache_round_trips() {
        let cache = SimCache::in_memory();
        assert_eq!(cache.get(42), None);
        cache.put(42, 1.5);
        assert_eq!(cache.get(42), Some(1.5));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        // Repeat puts of a key are not first-writer inserts.
        cache.put(42, 1.5);
        let stats = cache.stats();
        assert_eq!(
            (stats.entries, stats.hits, stats.misses, stats.puts),
            (1, 1, 1, 1)
        );
        assert_eq!(
            (stats.disk_appends, stats.disk_append_bytes),
            (0, 0),
            "no disk lane, no append accounting"
        );
    }

    #[test]
    fn disk_stats_count_appended_lines_and_bytes() {
        let dir = std::env::temp_dir().join("wmm-harness-cache-stats-test");
        let path = dir.join("stats.cache");
        let _ = std::fs::remove_file(&path);
        let cache = SimCache::with_disk(&path).unwrap();
        cache.put(1, 0.5);
        cache.put(2, 1.5);
        cache.put(1, 0.5); // duplicate: no new line
        let stats = cache.stats();
        assert_eq!((stats.puts, stats.disk_appends), (2, 2));
        // Each line is 32 hex key + space + 16 hex value + newline = 50.
        assert_eq!(stats.disk_append_bytes, 100);
        assert_eq!(
            stats.disk_append_bytes,
            std::fs::metadata(&path).unwrap().len(),
            "byte accounting matches the file"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn disk_cache_persists_bit_exact() {
        let dir = std::env::temp_dir().join("wmm-harness-cache-test");
        let path = dir.join("sim.cache");
        let _ = std::fs::remove_file(&path);
        let value = 1_234.000_000_001_f64;
        {
            let cache = SimCache::with_disk(&path).unwrap();
            cache.put(7, value);
            cache.put(u128::MAX, -0.0);
        }
        let cache = SimCache::with_disk(&path).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(7).map(f64::to_bits), Some(value.to_bits()));
        assert_eq!(
            cache.get(u128::MAX).map(f64::to_bits),
            Some((-0.0f64).to_bits())
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_final_line_is_rejected_not_misparsed() {
        // A killed run can tear the last append anywhere. Every prefix of a
        // valid line must parse to nothing — never to a wrong (key, value).
        let full = format!("{:032x} {:016x}", 0xdead_beef_u128, 1.5f64.to_bits());
        assert!(parse_line(&full).is_some());
        for cut in 0..full.len() {
            assert_eq!(
                parse_line(&full[..cut]),
                None,
                "prefix of {cut} chars must not parse"
            );
        }
        // A torn-then-appended reload drops only the torn line.
        let dir = std::env::temp_dir().join("wmm-harness-cache-torn-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.cache");
        let good = format!("{:032x} {:016x}\n", 7_u128, 2.5f64.to_bits());
        let torn = &full[..40]; // full key, space, truncated value
        std::fs::write(&path, format!("{good}{torn}")).unwrap();
        let cache = SimCache::with_disk(&path).unwrap();
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(7), Some(2.5));
        assert_eq!(cache.get(0xdead_beef), None);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn concurrent_puts_stay_consistent() {
        let dir = std::env::temp_dir().join("wmm-harness-cache-mt-test");
        let path = dir.join("concurrent.cache");
        let _ = std::fs::remove_file(&path);
        let cache = SimCache::with_disk(&path).unwrap();
        // 8 threads hammer 256 keys; every key is written by several
        // threads with the same (deterministic) value, interleaved with
        // reads. The map and the disk store must both end up with exactly
        // one entry per key, bit-exact.
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..256u128 {
                        let key = (i * 0x9e37) % 256;
                        cache.put(key, key as f64 * 0.125 + 1.0);
                        if t % 2 == 0 {
                            let got = cache.get(key).expect("just put");
                            assert_eq!(got, key as f64 * 0.125 + 1.0);
                        }
                    }
                });
            }
        });
        assert_eq!(cache.len(), 256);
        // Reload from disk: append-only file must hold every key exactly
        // once (first-writer-wins under the map lock) and parse cleanly.
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 256, "one disk line per unique key");
        let reloaded = SimCache::with_disk(&path).unwrap();
        assert_eq!(reloaded.len(), 256);
        for i in 0..256u128 {
            assert_eq!(reloaded.get(i), Some(i as f64 * 0.125 + 1.0));
        }
        let _ = std::fs::remove_file(&path);
    }
}
