//! The regression gate: diff a run manifest against a committed baseline.
//!
//! The gate compares canonical manifest content only — fitted
//! sensitivities and per-cell measurements — and fails when any value
//! drifts beyond its relative tolerance, when a baseline entry disappears,
//! or when the campaigns/architectures do not match. Telemetry is never
//! gated: timings and hit rates legitimately vary run to run.

use crate::artifact::RunManifest;

/// Gate tolerances. Relative drift is `|new - old| / max(|old|, eps)`.
#[derive(Debug, Clone, Copy)]
pub struct GateConfig {
    /// Maximum relative drift of a fitted `k`.
    pub k_rel_tol: f64,
    /// Maximum relative drift of a measurement cell.
    pub cell_rel_tol: f64,
}

impl Default for GateConfig {
    fn default() -> Self {
        // Fitted ks move more than individual cells under legitimate noise
        // (the fit amplifies tail points), so they get the wider band.
        GateConfig {
            k_rel_tol: 0.10,
            cell_rel_tol: 0.05,
        }
    }
}

/// The gate verdict: every out-of-tolerance or structural difference found.
#[derive(Debug, Clone, Default)]
pub struct GateReport {
    /// Human-readable failure descriptions; empty means the gate passes.
    pub failures: Vec<String>,
    /// Number of values compared.
    pub checked: usize,
}

impl GateReport {
    /// Whether the manifest is within tolerance of the baseline.
    pub fn pass(&self) -> bool {
        self.failures.is_empty()
    }
}

fn rel_drift(old: f64, new: f64) -> f64 {
    (new - old).abs() / old.abs().max(1e-12)
}

/// Compare `current` against `baseline` under `cfg`.
pub fn compare(baseline: &RunManifest, current: &RunManifest, cfg: GateConfig) -> GateReport {
    let mut report = GateReport::default();
    let mut fail = |msg: String| report.failures.push(msg);

    if baseline.campaign != current.campaign {
        fail(format!(
            "campaign mismatch: baseline `{}` vs current `{}`",
            baseline.campaign, current.campaign
        ));
    }
    if baseline.arch != current.arch {
        fail(format!(
            "arch mismatch: baseline `{}` vs current `{}`",
            baseline.arch, current.arch
        ));
    }

    let mut checked = 0usize;
    for bf in &baseline.fits {
        match current.fits.iter().find(|f| f.label == bf.label) {
            None => fail(format!("fit `{}` missing from current run", bf.label)),
            Some(cf) => {
                checked += 1;
                let drift = rel_drift(bf.k, cf.k);
                if drift > cfg.k_rel_tol {
                    fail(format!(
                        "fit `{}`: k drifted {:.1}% (baseline {:.6e}, current {:.6e}, tolerance {:.1}%)",
                        bf.label,
                        100.0 * drift,
                        bf.k,
                        cf.k,
                        100.0 * cfg.k_rel_tol
                    ));
                }
            }
        }
    }
    for bc in &baseline.cells {
        match current.cells.iter().find(|c| c.label == bc.label) {
            None => fail(format!("cell `{}` missing from current run", bc.label)),
            Some(cc) => {
                checked += 1;
                let drift = rel_drift(bc.value, cc.value);
                if drift > cfg.cell_rel_tol {
                    fail(format!(
                        "cell `{}`: value drifted {:.1}% (baseline {:.6}, current {:.6}, tolerance {:.1}%)",
                        bc.label,
                        100.0 * drift,
                        bc.value,
                        cc.value,
                        100.0 * cfg.cell_rel_tol
                    ));
                }
            }
        }
    }
    for cf in &current.fits {
        if !baseline.fits.iter().any(|f| f.label == cf.label) {
            fail(format!(
                "fit `{}` absent from baseline (refresh the baseline manifest)",
                cf.label
            ));
        }
    }
    for cc in &current.cells {
        if !baseline.cells.iter().any(|c| c.label == cc.label) {
            fail(format!(
                "cell `{}` absent from baseline (refresh the baseline manifest)",
                cc.label
            ));
        }
    }

    report.checked = checked;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmmbench::model::SensitivityFit;

    fn manifest(k: f64, cell: f64) -> RunManifest {
        let mut m = RunManifest::new("gate_test", "arm");
        m.push_fit(
            "spark",
            &SensitivityFit {
                k,
                k_std_err: 1e-4,
                r_squared: 0.99,
            },
        );
        m.push_cell("spark/a=16", cell);
        m
    }

    #[test]
    fn identical_manifests_pass() {
        let r = compare(
            &manifest(0.01, 0.9),
            &manifest(0.01, 0.9),
            GateConfig::default(),
        );
        assert!(r.pass(), "{:?}", r.failures);
        assert_eq!(r.checked, 2);
    }

    #[test]
    fn drift_within_tolerance_passes() {
        let r = compare(
            &manifest(0.01, 0.9),
            &manifest(0.0105, 0.91),
            GateConfig::default(),
        );
        assert!(r.pass(), "{:?}", r.failures);
    }

    #[test]
    fn k_drift_beyond_tolerance_fails() {
        let r = compare(
            &manifest(0.01, 0.9),
            &manifest(0.013, 0.9),
            GateConfig::default(),
        );
        assert!(!r.pass());
        assert!(r.failures[0].contains("k drifted"), "{:?}", r.failures);
    }

    #[test]
    fn cell_drift_beyond_tolerance_fails() {
        let r = compare(
            &manifest(0.01, 0.9),
            &manifest(0.01, 0.8),
            GateConfig::default(),
        );
        assert!(!r.pass());
    }

    #[test]
    fn structural_differences_fail() {
        let baseline = manifest(0.01, 0.9);
        let mut current = manifest(0.01, 0.9);
        current.fits.clear();
        let r = compare(&baseline, &current, GateConfig::default());
        assert!(r.failures.iter().any(|f| f.contains("missing")));

        let mut extra = manifest(0.01, 0.9);
        extra.push_cell("new/cell", 1.0);
        let r = compare(&baseline, &extra, GateConfig::default());
        assert!(r
            .failures
            .iter()
            .any(|f| f.contains("absent from baseline")));
    }
}
