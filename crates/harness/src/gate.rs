//! The regression gate: diff a run manifest against a committed baseline.
//!
//! The gate compares canonical manifest content only — fitted
//! sensitivities and per-cell measurements — and fails when any value
//! drifts beyond its relative tolerance, when a baseline entry disappears,
//! or when the campaigns/architectures do not match. Telemetry is never
//! gated: timings and hit rates legitimately vary run to run.
//!
//! Two failure modes are handled explicitly rather than silently:
//!
//! * **Non-finite values.** A NaN drift makes every `drift > tol`
//!   comparison false, so a manifest full of NaN fits would sail through a
//!   naive gate. Any non-finite baseline value, current value, or computed
//!   drift is a hard failure.
//! * **Duplicate labels.** Labels are the join key between baseline and
//!   current; if either side repeats a label, only one entry would ever be
//!   compared and the rest would be silently ignored. Duplicates are a
//!   hard failure on whichever side they appear.

use std::collections::HashMap;

use crate::artifact::RunManifest;

/// Gate tolerances. Relative drift is `|new - old| / max(|old|, eps)`.
#[derive(Debug, Clone, Copy)]
pub struct GateConfig {
    /// Maximum relative drift of a fitted `k`.
    pub k_rel_tol: f64,
    /// Maximum relative drift of a measurement cell.
    pub cell_rel_tol: f64,
}

impl Default for GateConfig {
    fn default() -> Self {
        // Fitted ks move more than individual cells under legitimate noise
        // (the fit amplifies tail points), so they get the wider band.
        GateConfig {
            k_rel_tol: 0.10,
            cell_rel_tol: 0.05,
        }
    }
}

/// One out-of-tolerance value comparison, structured so callers can print
/// a full per-cell diff table instead of only the first offending entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Mismatch {
    /// What kind of value drifted (`"fit k"` or `"cell"`).
    pub kind: &'static str,
    /// The label joining baseline and current.
    pub label: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Absolute delta `current - baseline`.
    pub abs_delta: f64,
    /// Relative drift `|current - baseline| / max(|baseline|, eps)`.
    pub rel_delta: f64,
}

/// The gate verdict: every out-of-tolerance or structural difference found.
#[derive(Debug, Clone, Default)]
pub struct GateReport {
    /// Human-readable failure descriptions; empty means the gate passes.
    pub failures: Vec<String>,
    /// The value comparisons that drifted out of tolerance, in manifest
    /// order — the structured counterpart of the drift entries in
    /// `failures` (structural failures have no mismatch record).
    pub mismatches: Vec<Mismatch>,
    /// Number of values compared.
    pub checked: usize,
}

impl GateReport {
    /// Whether the manifest is within tolerance of the baseline.
    pub fn pass(&self) -> bool {
        self.failures.is_empty()
    }

    /// A compact aligned diff table of every drifted value, one row per
    /// mismatch; empty string when no values drifted.
    pub fn diff_table(&self) -> String {
        if self.mismatches.is_empty() {
            return String::new();
        }
        let label_w = self
            .mismatches
            .iter()
            .map(|m| m.label.len())
            .max()
            .unwrap_or(0)
            .max("label".len());
        let mut out = format!(
            "{:<6} {:<label_w$} {:>13} {:>13} {:>13} {:>9}\n",
            "kind", "label", "baseline", "current", "abs delta", "rel"
        );
        for m in &self.mismatches {
            out.push_str(&format!(
                "{:<6} {:<label_w$} {:>13.6e} {:>13.6e} {:>+13.6e} {:>8.2}%\n",
                m.kind.replace(' ', "-"),
                m.label,
                m.baseline,
                m.current,
                m.abs_delta,
                100.0 * m.rel_delta,
            ));
        }
        out
    }
}

fn rel_drift(old: f64, new: f64) -> f64 {
    (new - old).abs() / old.abs().max(1e-12)
}

/// Compare one labelled value pair, appending a failure when the drift is
/// out of tolerance or any quantity involved is non-finite (NaN compares
/// false against every tolerance, so it must be rejected explicitly).
/// Out-of-tolerance drifts also append a structured [`Mismatch`].
///
/// Every failure is a single line carrying the offending campaign, the
/// label, and the measured current/baseline ratio — enough to identify and
/// judge the regression from a CI log without opening the manifests.
#[allow(clippy::too_many_arguments)]
fn check_value(
    campaign: &str,
    kind: &'static str,
    label: &str,
    old: f64,
    new: f64,
    tol: f64,
    failures: &mut Vec<String>,
    mismatches: &mut Vec<Mismatch>,
) {
    let drift = rel_drift(old, new);
    if !old.is_finite() || !new.is_finite() || !drift.is_finite() {
        failures.push(format!(
            "campaign `{campaign}` {kind} `{label}`: non-finite value (baseline {old}, current {new}) — gate cannot pass NaN/inf"
        ));
        return;
    }
    if drift > tol {
        let ratio = new / old.abs().max(1e-12).copysign(old);
        failures.push(format!(
            "campaign `{campaign}` {kind} `{label}`: value drifted {:.1}% — ratio {ratio:.4} (baseline {:.6e}, current {:.6e}, tolerance {:.1}%)",
            100.0 * drift,
            old,
            new,
            100.0 * tol
        ));
        mismatches.push(Mismatch {
            kind,
            label: label.to_string(),
            baseline: old,
            current: new,
            abs_delta: new - old,
            rel_delta: drift,
        });
    }
}

/// Index records by label, reporting every duplicated label on `side`.
/// Duplicates would make the gate silently compare only one of the
/// entries, so they are a hard failure rather than a shrug.
fn index_by_label<'a, T>(
    items: &'a [T],
    label: impl Fn(&T) -> &str,
    side: &str,
    kind: &str,
    failures: &mut Vec<String>,
) -> HashMap<&'a str, &'a T> {
    let mut map: HashMap<&str, &T> = HashMap::with_capacity(items.len());
    for item in items {
        let l = label(item);
        if map.insert(l, item).is_some() {
            failures.push(format!(
                "{side} {kind} label `{l}` is duplicated — ambiguous comparison, fix the manifest"
            ));
        }
    }
    map
}

/// Compare `current` against `baseline` under `cfg`.
pub fn compare(baseline: &RunManifest, current: &RunManifest, cfg: GateConfig) -> GateReport {
    let mut report = GateReport::default();
    let GateReport {
        failures,
        mismatches,
        ..
    } = &mut report;

    if baseline.campaign != current.campaign {
        failures.push(format!(
            "campaign mismatch: baseline `{}` vs current `{}`",
            baseline.campaign, current.campaign
        ));
    }
    if baseline.arch != current.arch {
        failures.push(format!(
            "arch mismatch: baseline `{}` vs current `{}`",
            baseline.arch, current.arch
        ));
    }

    // Build the label indices once (the manifests can hold hundreds of
    // sweep cells; repeated linear scans made the gate O(n²)).
    let base_fits = index_by_label(&baseline.fits, |f| &f.label, "baseline", "fit", failures);
    let cur_fits = index_by_label(&current.fits, |f| &f.label, "current", "fit", failures);
    let base_cells = index_by_label(&baseline.cells, |c| &c.label, "baseline", "cell", failures);
    let cur_cells = index_by_label(&current.cells, |c| &c.label, "current", "cell", failures);

    let mut checked = 0usize;
    for bf in &baseline.fits {
        match cur_fits.get(bf.label.as_str()) {
            None => failures.push(format!("fit `{}` missing from current run", bf.label)),
            Some(cf) => {
                checked += 1;
                check_value(
                    &baseline.campaign,
                    "fit k",
                    &bf.label,
                    bf.k,
                    cf.k,
                    cfg.k_rel_tol,
                    failures,
                    mismatches,
                );
            }
        }
    }
    for bc in &baseline.cells {
        match cur_cells.get(bc.label.as_str()) {
            None => failures.push(format!("cell `{}` missing from current run", bc.label)),
            Some(cc) => {
                checked += 1;
                check_value(
                    &baseline.campaign,
                    "cell",
                    &bc.label,
                    bc.value,
                    cc.value,
                    cfg.cell_rel_tol,
                    failures,
                    mismatches,
                );
            }
        }
    }
    for cf in &current.fits {
        if !base_fits.contains_key(cf.label.as_str()) {
            failures.push(format!(
                "fit `{}` absent from baseline (refresh the baseline manifest)",
                cf.label
            ));
        }
    }
    for cc in &current.cells {
        if !base_cells.contains_key(cc.label.as_str()) {
            failures.push(format!(
                "cell `{}` absent from baseline (refresh the baseline manifest)",
                cc.label
            ));
        }
    }

    report.checked = checked;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmmbench::model::SensitivityFit;

    fn manifest(k: f64, cell: f64) -> RunManifest {
        let mut m = RunManifest::new("gate_test", "arm");
        m.push_fit(
            "spark",
            &SensitivityFit {
                k,
                k_std_err: 1e-4,
                r_squared: 0.99,
            },
        );
        m.push_cell("spark/a=16", cell);
        m
    }

    #[test]
    fn identical_manifests_pass() {
        let r = compare(
            &manifest(0.01, 0.9),
            &manifest(0.01, 0.9),
            GateConfig::default(),
        );
        assert!(r.pass(), "{:?}", r.failures);
        assert_eq!(r.checked, 2);
    }

    #[test]
    fn drift_within_tolerance_passes() {
        let r = compare(
            &manifest(0.01, 0.9),
            &manifest(0.0105, 0.91),
            GateConfig::default(),
        );
        assert!(r.pass(), "{:?}", r.failures);
    }

    #[test]
    fn k_drift_beyond_tolerance_fails() {
        let r = compare(
            &manifest(0.01, 0.9),
            &manifest(0.013, 0.9),
            GateConfig::default(),
        );
        assert!(!r.pass());
        assert!(r.failures[0].contains("drifted"), "{:?}", r.failures);
        // One line per failure, naming the campaign and the measured
        // ratio so CI logs are self-contained.
        assert!(!r.failures[0].contains('\n'));
        assert!(
            r.failures[0].contains("campaign `gate_test`"),
            "{:?}",
            r.failures
        );
        assert!(r.failures[0].contains("ratio 1.3000"), "{:?}", r.failures);
    }

    #[test]
    fn cell_drift_beyond_tolerance_fails() {
        let r = compare(
            &manifest(0.01, 0.9),
            &manifest(0.01, 0.8),
            GateConfig::default(),
        );
        assert!(!r.pass());
    }

    #[test]
    fn nan_values_fail_instead_of_sailing_through() {
        // A NaN current k: `drift > tol` is false for NaN, so a naive gate
        // would pass this. It must fail.
        let r = compare(
            &manifest(0.01, 0.9),
            &manifest(f64::NAN, 0.9),
            GateConfig::default(),
        );
        assert!(!r.pass(), "NaN fit must not pass the gate");
        assert!(
            r.failures.iter().any(|f| f.contains("non-finite")),
            "{:?}",
            r.failures
        );
        // NaN in the *baseline* is just as fatal.
        let r = compare(
            &manifest(f64::NAN, 0.9),
            &manifest(0.01, 0.9),
            GateConfig::default(),
        );
        assert!(!r.pass());
        // Infinite cells too.
        let r = compare(
            &manifest(0.01, 0.9),
            &manifest(0.01, f64::INFINITY),
            GateConfig::default(),
        );
        assert!(!r.pass());
        // NaN == NaN in both manifests is still a failure, not a match.
        let r = compare(
            &manifest(f64::NAN, 0.9),
            &manifest(f64::NAN, 0.9),
            GateConfig::default(),
        );
        assert!(!r.pass(), "NaN baseline + NaN current must still fail");
    }

    #[test]
    fn duplicate_labels_fail_loudly() {
        let baseline = manifest(0.01, 0.9);
        // Current has the cell label twice: first copy in tolerance, second
        // wildly out. The old find-first gate compared only the first and
        // passed; duplicates must instead be a hard failure.
        let mut current = manifest(0.01, 0.9);
        current.push_cell("spark/a=16", 500.0);
        let r = compare(&baseline, &current, GateConfig::default());
        assert!(!r.pass(), "duplicate label must fail the gate");
        assert!(
            r.failures.iter().any(|f| f.contains("duplicated")),
            "{:?}",
            r.failures
        );
        // Duplicates in the baseline are reported symmetrically.
        let mut dup_base = manifest(0.01, 0.9);
        dup_base.push_cell("spark/a=16", 0.9);
        let r = compare(&dup_base, &manifest(0.01, 0.9), GateConfig::default());
        assert!(!r.pass());
        assert!(
            r.failures
                .iter()
                .any(|f| f.contains("baseline") && f.contains("duplicated")),
            "{:?}",
            r.failures
        );
    }

    #[test]
    fn mismatches_record_every_drifted_cell_with_deltas() {
        let mut baseline = manifest(0.01, 0.9);
        baseline.push_cell("spark/a=32", 0.8);
        let mut current = manifest(0.02, 0.7);
        current.push_cell("spark/a=32", 0.8); // within tolerance
        let r = compare(&baseline, &current, GateConfig::default());
        assert!(!r.pass());
        assert_eq!(r.mismatches.len(), 2, "{:?}", r.mismatches);
        let k = &r.mismatches[0];
        assert_eq!((k.kind, k.label.as_str()), ("fit k", "spark"));
        assert_eq!(k.abs_delta, 0.02 - 0.01);
        assert!((k.rel_delta - 1.0).abs() < 1e-12);
        let c = &r.mismatches[1];
        assert_eq!((c.kind, c.label.as_str()), ("cell", "spark/a=16"));
        assert!(c.abs_delta < 0.0);
        // The diff table renders one aligned row per mismatch.
        let table = r.diff_table();
        assert_eq!(table.lines().count(), 3, "{table}");
        assert!(table.contains("spark/a=16"));
        assert!(!table.contains("spark/a=32"));
        // A passing gate renders nothing.
        let clean = compare(&baseline, &baseline, GateConfig::default());
        assert!(clean.diff_table().is_empty());
        assert!(clean.mismatches.is_empty());
    }

    #[test]
    fn structural_differences_fail() {
        let baseline = manifest(0.01, 0.9);
        let mut current = manifest(0.01, 0.9);
        current.fits.clear();
        let r = compare(&baseline, &current, GateConfig::default());
        assert!(r.failures.iter().any(|f| f.contains("missing")));

        let mut extra = manifest(0.01, 0.9);
        extra.push_cell("new/cell", 1.0);
        let r = compare(&baseline, &extra, GateConfig::default());
        assert!(r
            .failures
            .iter()
            .any(|f| f.contains("absent from baseline")));
    }
}
