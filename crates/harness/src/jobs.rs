//! Generic content-addressed task execution for analysis workloads.
//!
//! The simulation path pairs [`crate::ParallelExecutor`] with the
//! [`crate::SimCache`], both specialised to `SimJob -> f64`. Static
//! analysis wants the same discipline — deterministic keyed fan-out plus
//! content-addressed reuse — for arbitrary task and result types (e.g.
//! per-component critical-cycle enumeration, whose results are cycle
//! *sets*, not scalars). This module provides that seam:
//!
//! - [`TaskCache<V>`]: a `u128 -> V` store keyed by the same two-lane FNV
//!   hash as the simulation cache ([`crate::cache::Fnv128`]), with an
//!   optional append-only disk lane sitting alongside the sim results.
//! - [`run_cached_tasks`]: batch execution through the same scoped-thread
//!   scheduler as simulation jobs. Keys are computed on the pool, cache
//!   hits resolve up front, misses fan out via [`crate::run_keyed`], and
//!   results return **in submission order** — output is bit-identical at
//!   any worker count.
//!
//! The disk lane stores one task per line as `key payload|` (32 hex key
//! digits, one space, a caller-encoded single-line payload, a trailing
//! `|` terminator). A torn final line from a killed process fails either
//! the width check, the terminator check or the caller's decoder, and is
//! simply re-computed — the lane is an optimisation, never a correctness
//! input.

use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::cache::CacheStats;
use crate::scheduler::run_keyed;

/// Single-line payload codec for a [`TaskCache`] disk lane. `encode` must
/// emit no newlines or `|`; `decode` returns `None` on any malformed
/// payload (the entry is then treated as a miss).
pub struct TaskCodec<V> {
    /// Render a value as a single-line payload.
    pub encode: fn(&V) -> String,
    /// Parse a payload back; `None` rejects the line.
    pub decode: fn(&str) -> Option<V>,
}

// Manual impls: the fields are fn pointers, Copy for every V (the derive
// would demand `V: Copy`).
impl<V> Clone for TaskCodec<V> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<V> Copy for TaskCodec<V> {}

/// Content-addressed `u128 -> V` task store with hit/miss counters and an
/// optional append-only disk lane.
pub struct TaskCache<V> {
    mem: Mutex<HashMap<u128, V>>,
    disk: Option<(PathBuf, Mutex<()>, TaskCodec<V>)>,
    hits: AtomicU64,
    misses: AtomicU64,
    puts: AtomicU64,
    disk_appends: AtomicU64,
    disk_append_bytes: AtomicU64,
    lock_wait_ns: AtomicU64,
}

impl<V: Clone> Default for TaskCache<V> {
    fn default() -> Self {
        TaskCache::in_memory()
    }
}

impl<V: Clone> TaskCache<V> {
    /// Fresh in-memory cache.
    #[must_use]
    pub fn in_memory() -> Self {
        TaskCache {
            mem: Mutex::new(HashMap::new()),
            disk: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            puts: AtomicU64::new(0),
            disk_appends: AtomicU64::new(0),
            disk_append_bytes: AtomicU64::new(0),
            lock_wait_ns: AtomicU64::new(0),
        }
    }

    /// Cache backed by an append-only file at `path`, loading any entries
    /// a previous process left there. Malformed lines (torn writes) are
    /// skipped.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating the parent directory or
    /// reading an existing store.
    pub fn with_disk(path: &Path, codec: TaskCodec<V>) -> std::io::Result<Self> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let cache = TaskCache {
            mem: Mutex::new(HashMap::new()),
            disk: Some((path.to_path_buf(), Mutex::new(()), codec)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            puts: AtomicU64::new(0),
            disk_appends: AtomicU64::new(0),
            disk_append_bytes: AtomicU64::new(0),
            lock_wait_ns: AtomicU64::new(0),
        };
        if path.exists() {
            let text = std::fs::read_to_string(path)?;
            let mut mem = cache.mem.lock().expect("task cache poisoned");
            for line in text.lines() {
                if let Some((key, value)) = parse_task_line(line, &codec) {
                    mem.entry(key).or_insert(value);
                }
            }
        }
        Ok(cache)
    }

    /// Look up a result, counting the hit or miss.
    pub fn get(&self, key: u128) -> Option<V> {
        let found = self
            .mem
            .lock()
            .expect("task cache poisoned")
            .get(&key)
            .cloned();
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Insert a result (first writer wins) and append it to the disk lane
    /// if one is configured. Disk append failures are ignored: the lane
    /// is an optimisation.
    pub fn put(&self, key: u128, value: &V) {
        let fresh = {
            let mut mem = self.mem.lock().expect("task cache poisoned");
            match mem.entry(key) {
                std::collections::hash_map::Entry::Occupied(_) => false,
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(value.clone());
                    true
                }
            }
        };
        if !fresh {
            return;
        }
        self.puts.fetch_add(1, Ordering::Relaxed);
        if let Some((path, append, codec)) = &self.disk {
            let wait = std::time::Instant::now();
            let _guard = append.lock().expect("task cache disk lane poisoned");
            self.lock_wait_ns
                .fetch_add(wait.elapsed().as_nanos() as u64, Ordering::Relaxed);
            if let Ok(mut f) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
            {
                let line = format!("{key:032x} {}|", (codec.encode)(value));
                if writeln!(f, "{line}").is_ok() {
                    self.disk_appends.fetch_add(1, Ordering::Relaxed);
                    self.disk_append_bytes
                        .fetch_add(line.len() as u64 + 1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of stored results.
    #[must_use]
    pub fn len(&self) -> usize {
        self.mem.lock().expect("task cache poisoned").len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The full counter snapshot, for metrics export.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            entries: self.len() as u64,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
            disk_appends: self.disk_appends.load(Ordering::Relaxed),
            disk_append_bytes: self.disk_append_bytes.load(Ordering::Relaxed),
            lock_wait_ns: self.lock_wait_ns.load(Ordering::Relaxed),
        }
    }
}

fn parse_task_line<V>(line: &str, codec: &TaskCodec<V>) -> Option<(u128, V)> {
    let (key_hex, rest) = line.split_at_checked(32)?;
    let key = u128::from_str_radix(key_hex, 16).ok()?;
    let payload = rest.strip_prefix(' ')?.strip_suffix('|')?;
    Some((key, (codec.decode)(payload)?))
}

/// Run `tasks` through the scoped-thread scheduler with content-addressed
/// reuse, returning results **in submission order** (bit-identical at any
/// worker count).
///
/// Keys are computed on the pool first (they can themselves be nontrivial
/// hashes of large inputs); hits resolve from `cache` without executing;
/// misses fan out together and are stored back. Without a cache every
/// task simply runs.
pub fn run_cached_tasks<T, V, K, F>(
    tasks: &[T],
    threads: usize,
    cache: Option<&TaskCache<V>>,
    key_of: K,
    run: F,
) -> Vec<V>
where
    T: Sync,
    V: Clone + Send,
    K: Fn(&T) -> u128 + Sync,
    F: Fn(&T) -> V + Sync,
{
    let Some(cache) = cache else {
        return run_keyed(tasks, threads, run);
    };
    let keys = run_keyed(tasks, threads, key_of);
    let mut slots: Vec<Option<V>> = keys.iter().map(|&k| cache.get(k)).collect();
    // One representative per distinct missing key: duplicates inside a
    // batch (repeated program shapes) compute once and fan out.
    let mut rep_idx: Vec<usize> = vec![];
    for i in (0..tasks.len()).filter(|&i| slots[i].is_none()) {
        if !rep_idx.iter().any(|&r| keys[r] == keys[i]) {
            rep_idx.push(i);
        }
    }
    let fresh = run_keyed(&rep_idx, threads, |&i| run(&tasks[i]));
    for (&r, value) in rep_idx.iter().zip(fresh) {
        cache.put(keys[r], &value);
        for i in 0..tasks.len() {
            if slots[i].is_none() && keys[i] == keys[r] {
                slots[i] = Some(value.clone());
            }
        }
    }
    slots
        .into_iter()
        .map(|v| v.expect("every task resolved or computed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn double_codec() -> TaskCodec<u64> {
        TaskCodec {
            encode: |v| format!("{v:x}"),
            decode: |s| u64::from_str_radix(s, 16).ok(),
        }
    }

    #[test]
    fn results_are_in_submission_order_at_any_worker_count() {
        let tasks: Vec<u64> = (0..97).collect();
        let serial = run_cached_tasks(&tasks, 1, None, |&t| u128::from(t), |&t| t * 3);
        for threads in [2, 4, 7] {
            let parallel = run_cached_tasks(&tasks, threads, None, |&t| u128::from(t), |&t| t * 3);
            assert_eq!(serial, parallel);
        }
    }

    #[test]
    fn cache_resolves_repeats_without_recomputing() {
        let cache = TaskCache::in_memory();
        let executed = AtomicUsize::new(0);
        let tasks: Vec<u64> = vec![1, 2, 1, 3, 2, 1];
        let run = |&t: &u64| {
            executed.fetch_add(1, Ordering::Relaxed);
            t + 100
        };
        // Duplicate keys within one batch compute once and fan out; across
        // batches every repeat is a hit.
        let first = run_cached_tasks(&tasks, 2, Some(&cache), |&t| u128::from(t), run);
        assert_eq!(first, vec![101, 102, 101, 103, 102, 101]);
        assert_eq!(executed.load(Ordering::Relaxed), 3);
        let second = run_cached_tasks(&tasks, 2, Some(&cache), |&t| u128::from(t), run);
        assert_eq!(second, first);
        assert_eq!(executed.load(Ordering::Relaxed), 3);
        assert_eq!(cache.hits(), 6);
        assert_eq!(cache.len(), 3);
        let stats = cache.stats();
        assert_eq!((stats.entries, stats.puts), (3, 3));
        assert_eq!((stats.hits, stats.misses), (6, 6));
        assert_eq!(stats.disk_appends, 0, "in-memory cache never appends");
    }

    #[test]
    fn disk_lane_round_trips_and_rejects_torn_lines() {
        let dir = std::env::temp_dir().join(format!("wmm-task-cache-{}", std::process::id()));
        let path = dir.join("tasks.txt");
        let _ = std::fs::remove_file(&path);
        {
            let cache = TaskCache::with_disk(&path, double_codec()).expect("create");
            cache.put(7, &49);
            cache.put(8, &64);
        }
        // Simulate a torn final line from a killed process.
        {
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .expect("open");
            write!(f, "{:032x} dead", 9u128).expect("write");
        }
        let reloaded = TaskCache::with_disk(&path, double_codec()).expect("reload");
        assert_eq!(reloaded.get(7), Some(49));
        assert_eq!(reloaded.get(8), Some(64));
        assert_eq!(reloaded.get(9), None);
        let _ = std::fs::remove_file(&path);
    }
}
