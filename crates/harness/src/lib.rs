//! # wmm-harness
//!
//! The execution layer for experiment campaigns: everything `wmmbench`
//! expresses as a batch of independent simulation cells (sweeps, ranking
//! matrices, turnkey evaluations) runs through this crate's
//! [`ParallelExecutor`], which adds — without changing a single output
//! byte — three things the methodology crate deliberately stays out of:
//!
//! 1. **Parallelism** ([`scheduler`]): a keyed job queue drained by scoped
//!    worker threads. Results are collected by job index, so experiment
//!    output is bit-identical regardless of worker count. Worker count
//!    comes from `--threads`, the `WMM_THREADS` environment variable, or
//!    the machine's available parallelism.
//! 2. **Result caching** ([`cache`]): simulations are deterministic in
//!    `(arch, program, ctx, seed)`, so results are content-addressed by a
//!    stable hash of exactly those inputs, with an in-memory map and an
//!    optional append-only on-disk store.
//! 3. **Run artifacts and gating** ([`artifact`], [`gate`]): each campaign
//!    writes a schema-versioned JSON manifest (per-cell measurements,
//!    fitted sensitivities, timings, cache hit rate) under `results/runs/`,
//!    and the `bench_gate` binary diffs a manifest against a committed
//!    baseline, failing on out-of-tolerance drift.
//! 4. **Telemetry** ([`artifact::SimTotals`], [`trace`]): every freshly
//!    simulated job's full `ExecStats` flows back through the executor
//!    seam and is folded — in job order, so the totals are bit-identical
//!    across worker counts — into campaign-wide counters (fence executions
//!    and stall cycles by kind, store-buffer stalls, cache-hierarchy
//!    outcomes, cost-loop invocations). The totals land in the manifest's
//!    non-gated `telemetry` section; per-batch and per-job wall timings can
//!    additionally be exported as a `chrome://tracing` timeline.
//! 5. **Metrics** ([`ParallelExecutor::with_metrics`]): a `wmm-obs`
//!    [`MetricsRegistry`](wmm_obs::MetricsRegistry) can be attached to an
//!    executor, which then maintains `harness.exec.*` (batch/job/cache
//!    counters, queue depth, a job-latency histogram), per-worker
//!    `harness.worker.*` counters and `harness.cache.sim.*` gauges.
//!    Structural metrics are byte-identical across worker counts and land
//!    in the manifest's optional `metrics` block (schema v4); span logs
//!    merge into the Chrome trace via [`trace::span_trace_events`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod cache;
pub mod gate;
pub mod jobs;
pub mod scheduler;
pub mod trace;

pub use artifact::{
    CellRecord, FitRecord, RunManifest, SimTotals, SiteRecord, Telemetry, Timing, SCHEMA_VERSION,
};
pub use cache::{job_key, CacheStats, Fnv128, SimCache};
pub use gate::{compare, GateConfig, GateReport, Mismatch};
pub use jobs::{run_cached_tasks, TaskCache, TaskCodec};
pub use scheduler::{resolve_threads, run_keyed, run_keyed_indexed, ParallelExecutor};
pub use trace::{
    instruction_trace_events, merge_chronological, span_trace_events, write_chrome_trace,
    TraceEvent,
};
