//! # wmm-harness
//!
//! The execution layer for experiment campaigns: everything `wmmbench`
//! expresses as a batch of independent simulation cells (sweeps, ranking
//! matrices, turnkey evaluations) runs through this crate's
//! [`ParallelExecutor`], which adds — without changing a single output
//! byte — three things the methodology crate deliberately stays out of:
//!
//! 1. **Parallelism** ([`scheduler`]): a keyed job queue drained by scoped
//!    worker threads. Results are collected by job index, so experiment
//!    output is bit-identical regardless of worker count. Worker count
//!    comes from `--threads`, the `WMM_THREADS` environment variable, or
//!    the machine's available parallelism.
//! 2. **Result caching** ([`cache`]): simulations are deterministic in
//!    `(arch, program, ctx, seed)`, so results are content-addressed by a
//!    stable hash of exactly those inputs, with an in-memory map and an
//!    optional append-only on-disk store.
//! 3. **Run artifacts and gating** ([`artifact`], [`gate`]): each campaign
//!    writes a schema-versioned JSON manifest (per-cell measurements,
//!    fitted sensitivities, timings, cache hit rate) under `results/runs/`,
//!    and the `bench_gate` binary diffs a manifest against a committed
//!    baseline, failing on out-of-tolerance drift.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod cache;
pub mod gate;
pub mod scheduler;

pub use artifact::{CellRecord, FitRecord, RunManifest, Telemetry, SCHEMA_VERSION};
pub use cache::{job_key, SimCache};
pub use gate::{compare, GateConfig, GateReport};
pub use scheduler::{resolve_threads, run_keyed, ParallelExecutor};
