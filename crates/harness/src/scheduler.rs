//! The deterministic parallel scheduler.
//!
//! A batch of independent jobs is drained by `std::thread::scope` workers
//! claiming indices off a shared atomic counter; each result is recorded
//! under the index (the *key*) of the job that produced it, and the batch
//! returns results in job order. Because every job is deterministic in its
//! own inputs and keys restore submission order, the output of a batch is
//! bit-identical whether it ran on one worker or sixteen.
//!
//! Beyond results, the executor aggregates the simulator's own telemetry:
//! every freshly simulated job's [`ExecStats`] is folded — in job order, so
//! float sums are bit-identical across worker counts — into a campaign-wide
//! [`SimTotals`], and per-batch/per-job wall timings can be recorded as
//! [`TraceEvent`]s for Chrome-trace export.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use wmm_obs::{Class, Counter, Gauge, Histogram, MetricsRegistry};
use wmm_sim::stats::ExecStats;
use wmm_sim::MachineScratch;
use wmmbench::exec::{Executor, JobOutcome, SimJob};

use crate::artifact::{SimTotals, Telemetry, Timing};
use crate::cache::{job_key, CacheStats, SimCache};
use crate::trace::TraceEvent;

/// Resolve the worker-thread count: an explicit request wins, then the
/// `WMM_THREADS` environment variable, then the machine's available
/// parallelism. A resolved count is always at least 1.
pub fn resolve_threads(requested: Option<usize>) -> usize {
    let n = requested
        .or_else(|| {
            std::env::var("WMM_THREADS")
                .ok()
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    n.max(1)
}

/// Run `f` over every item, on up to `threads` scoped workers, and return
/// the results **in item order** — the keyed-queue primitive underneath
/// [`ParallelExecutor`].
///
/// Workers claim item indices from a shared counter and push `(index,
/// result)` pairs; the pairs are re-keyed into submission order before
/// returning, so the caller cannot observe scheduling.
pub fn run_keyed<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    run_keyed_indexed(items, threads, |_, item| f(item))
}

/// [`run_keyed`], with the claiming worker's index (0-based) passed to `f`
/// alongside each item — used to attribute trace slices to worker tracks.
pub fn run_keyed_indexed<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.iter().map(|item| f(0, item)).collect();
    }
    let next = AtomicUsize::new(0);
    let keyed: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        let (next, keyed, f) = (&next, &keyed, &f);
        for worker in 0..threads.min(n) {
            scope.spawn(move || loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= n {
                    break;
                }
                let result = f(worker, &items[idx]);
                keyed
                    .lock()
                    .expect("collector poisoned")
                    .push((idx, result));
            });
        }
    });
    let mut keyed = keyed.into_inner().expect("collector poisoned");
    keyed.sort_by_key(|(idx, _)| *idx);
    debug_assert_eq!(keyed.len(), n);
    keyed.into_iter().map(|(_, r)| r).collect()
}

thread_local! {
    /// Per-worker-thread simulation scratch: every job a worker claims
    /// resets this arena in place instead of reallocating core/memory/heap
    /// state. Results are bit-identical to fresh-state runs (see
    /// `MachineScratch`), so reuse is invisible to the determinism contract.
    static SIM_SCRATCH: RefCell<MachineScratch> = RefCell::new(MachineScratch::new());
}

/// Aggregate counters across every batch an executor has run.
#[derive(Debug, Default)]
struct BatchCounters {
    batches: AtomicU64,
    jobs: AtomicU64,
    sim_ns: AtomicU64,
    wall_ns: AtomicU64,
    max_batch_ns: AtomicU64,
    max_batch_jobs: AtomicU64,
}

/// Registered metric handles for an instrumented executor.
///
/// Structural metrics (batch/job/hit/miss counts, queue depth) are updated
/// only on the calling thread from count-derived values, so their values —
/// and therefore the registry's structural snapshot — are byte-identical
/// across worker counts. Observational metrics (the job-latency histogram
/// and the per-worker counters) are updated from worker threads and carry
/// wall-clock readings.
struct ExecMetrics {
    batches: Arc<Counter>,
    jobs: Arc<Counter>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    job_latency_ns: Arc<Histogram>,
    worker_jobs: Vec<Arc<Counter>>,
    worker_busy_ns: Vec<Arc<Counter>>,
    sim_cache_entries: Arc<Gauge>,
    sim_cache_hits: Arc<Gauge>,
    sim_cache_misses: Arc<Gauge>,
    sim_cache_puts: Arc<Gauge>,
    sim_cache_disk_append_bytes: Arc<Gauge>,
    sim_cache_lock_wait_ns: Arc<Gauge>,
}

impl ExecMetrics {
    fn register(registry: &MetricsRegistry, threads: usize) -> Self {
        ExecMetrics {
            batches: registry.counter("harness.exec.batches", Class::Structural),
            jobs: registry.counter("harness.exec.jobs", Class::Structural),
            cache_hits: registry.counter("harness.exec.cache_hits", Class::Structural),
            cache_misses: registry.counter("harness.exec.cache_misses", Class::Structural),
            queue_depth: registry.gauge("harness.exec.queue_depth", Class::Structural),
            job_latency_ns: registry.histogram(
                "harness.exec.job_latency_ns",
                Class::Observational,
                &[1e3, 1e4, 1e5, 1e6, 1e7, 1e8],
            ),
            worker_jobs: (0..threads)
                .map(|w| {
                    registry.counter(&format!("harness.worker.{w}.jobs"), Class::Observational)
                })
                .collect(),
            worker_busy_ns: (0..threads)
                .map(|w| {
                    registry.counter(&format!("harness.worker.{w}.busy_ns"), Class::Observational)
                })
                .collect(),
            sim_cache_entries: registry.gauge("harness.cache.sim.entries", Class::Structural),
            sim_cache_hits: registry.gauge("harness.cache.sim.hits", Class::Structural),
            sim_cache_misses: registry.gauge("harness.cache.sim.misses", Class::Structural),
            sim_cache_puts: registry.gauge("harness.cache.sim.puts", Class::Structural),
            sim_cache_disk_append_bytes: registry
                .gauge("harness.cache.sim.disk_append_bytes", Class::Structural),
            sim_cache_lock_wait_ns: registry
                .gauge("harness.cache.sim.lock_wait_ns", Class::Observational),
        }
    }

    /// Mirror the cache's counter snapshot into the registry gauges
    /// (called on the calling thread after each batch, so the structural
    /// gauges only ever see deterministic values).
    fn sync_cache(&self, stats: CacheStats) {
        self.sim_cache_entries.set(stats.entries as f64);
        self.sim_cache_hits.set(stats.hits as f64);
        self.sim_cache_misses.set(stats.misses as f64);
        self.sim_cache_puts.set(stats.puts as f64);
        self.sim_cache_disk_append_bytes
            .set(stats.disk_append_bytes as f64);
        self.sim_cache_lock_wait_ns.set(stats.lock_wait_ns as f64);
    }
}

/// The parallel, caching [`Executor`].
///
/// Wraps the scheduler around an optional content-addressed [`SimCache`]:
/// each batch first resolves cache hits on the calling thread, fans the
/// misses out across workers, then stores the fresh results. Alongside the
/// results the executor aggregates campaign telemetry — batch/job counts,
/// wall and simulated time, and the [`SimTotals`] merged from every freshly
/// simulated job's [`ExecStats`] — for the run manifest's telemetry
/// section, and (when enabled) a Chrome-trace timeline of batches and jobs.
pub struct ParallelExecutor {
    threads: usize,
    cache: Option<SimCache>,
    progress: bool,
    tracing: bool,
    epoch: Instant,
    counters: BatchCounters,
    sim_totals: Mutex<SimTotals>,
    trace: Mutex<Vec<TraceEvent>>,
    metrics: Option<ExecMetrics>,
}

impl ParallelExecutor {
    /// An executor with `threads` workers (see [`resolve_threads`]) and no
    /// cache.
    pub fn new(threads: Option<usize>) -> Self {
        ParallelExecutor {
            threads: resolve_threads(threads),
            cache: None,
            progress: false,
            tracing: false,
            epoch: Instant::now(),
            counters: BatchCounters::default(),
            sim_totals: Mutex::new(SimTotals::default()),
            trace: Mutex::new(Vec::new()),
            metrics: None,
        }
    }

    /// Attach a result cache.
    pub fn with_cache(mut self, cache: SimCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Enable progress/ETA lines on stderr for long batches.
    pub fn with_progress(mut self, progress: bool) -> Self {
        self.progress = progress;
        self
    }

    /// Enable Chrome-trace event collection (see [`Self::write_trace`]).
    pub fn with_trace(mut self, tracing: bool) -> Self {
        self.tracing = tracing;
        self
    }

    /// Attach a metrics registry: the executor registers its
    /// `harness.exec.*`, `harness.worker.*` and `harness.cache.sim.*`
    /// metrics and updates them per batch. Without this call the hot path
    /// pays nothing (an `Option` check per batch, not per job).
    pub fn with_metrics(mut self, registry: &MetricsRegistry) -> Self {
        self.metrics = Some(ExecMetrics::register(registry, self.threads));
        self
    }

    /// The resolved worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The attached cache, if any.
    pub fn cache(&self) -> Option<&SimCache> {
        self.cache.as_ref()
    }

    /// Counter snapshot of the attached cache, if any.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(SimCache::stats)
    }

    /// Telemetry snapshot for the campaign so far: executor counters, the
    /// aggregated simulator totals, and observational timings.
    pub fn telemetry(&self) -> Telemetry {
        let jobs = self.counters.jobs.load(Ordering::Relaxed);
        let (hits, misses) = match self.cache.as_ref() {
            Some(c) => (c.hits(), c.misses()),
            // Without a cache every job is simulated.
            None => (0, jobs),
        };
        Telemetry {
            batches: self.counters.batches.load(Ordering::Relaxed),
            jobs,
            cache_hits: hits,
            cache_misses: misses,
            sim: self.sim_totals.lock().expect("totals poisoned").clone(),
            sites: None,
            timing: Timing {
                threads: self.threads,
                sim_ms: self.counters.sim_ns.load(Ordering::Relaxed) as f64 / 1e6,
                wall_ms: self.counters.wall_ns.load(Ordering::Relaxed) as f64 / 1e6,
                max_batch_ms: self.counters.max_batch_ns.load(Ordering::Relaxed) as f64 / 1e6,
                max_batch_jobs: self.counters.max_batch_jobs.load(Ordering::Relaxed),
            },
        }
    }

    /// Snapshot of the trace events collected so far (empty unless
    /// [`Self::with_trace`] enabled collection).
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.trace.lock().expect("trace poisoned").clone()
    }

    /// Write the collected Chrome-trace timeline to `path`.
    pub fn write_trace(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        crate::trace::write_chrome_trace(path, &self.trace_events())
    }

    /// One-line campaign summary (jobs, hit rate, speed-up proxy).
    pub fn summary(&self) -> String {
        let t = self.telemetry();
        format!(
            "{} jobs in {} batches on {} threads: {:.0} ms wall, {:.0} ms simulated, {:.0}% cache hits",
            t.jobs,
            t.batches,
            t.timing.threads,
            t.timing.wall_ms,
            t.timing.sim_ms,
            100.0 * t.hit_rate()
        )
    }
}

impl Executor for ParallelExecutor {
    fn run_batch_stats(&self, jobs: Vec<SimJob<'_>>) -> Vec<JobOutcome> {
        let start = Instant::now();
        let batch_ts_us = self.epoch.elapsed().as_secs_f64() * 1e6;
        let batch_id = self.counters.batches.fetch_add(1, Ordering::Relaxed);
        let n = jobs.len();
        let mut outcomes: Vec<Option<JobOutcome>> = (0..n).map(|_| None).collect();

        // Resolve cache hits up front; content keys hash entire programs,
        // so they are computed on the worker pool (in submission order) and
        // the hits then resolve on the calling thread.
        let mut misses: Vec<usize> = Vec::with_capacity(n);
        let keys: Option<Vec<u128>> = self.cache.as_ref().map(|cache| {
            let keys = run_keyed(&jobs, self.threads, job_key);
            for (i, (job, &key)) in jobs.iter().zip(&keys).enumerate() {
                // Sited jobs must surface their per-site stall map, which
                // the wall-time-only cache cannot answer — always simulate
                // them (their wall times are identical, so the result is
                // still stored for non-sited consumers).
                if job.sited {
                    misses.push(i);
                    continue;
                }
                match cache.get(key) {
                    Some(t) => outcomes[i] = Some(JobOutcome::cached(t)),
                    None => misses.push(i),
                }
            }
            keys
        });
        if keys.is_none() {
            misses = (0..n).collect();
        }

        // Fan the misses out across workers, observing progress and
        // (optionally) recording one trace slice per simulated job.
        let done = AtomicUsize::new(0);
        let sim_ns = AtomicU64::new(0);
        let total = misses.len();
        let stats: Vec<ExecStats> = run_keyed_indexed(&misses, self.threads, |worker, &slot| {
            let ts_us = self.epoch.elapsed().as_secs_f64() * 1e6;
            let t0 = Instant::now();
            let stats = SIM_SCRATCH.with(|s| jobs[slot].run_stats_with(&mut s.borrow_mut()));
            let dur = t0.elapsed();
            sim_ns.fetch_add(dur.as_nanos() as u64, Ordering::Relaxed);
            if let Some(m) = &self.metrics {
                // Observational side only: worker attribution and latency
                // are wall-clock facts, never part of the structural
                // snapshot.
                let ns = dur.as_nanos() as u64;
                m.job_latency_ns.observe(ns as f64);
                if let Some(w) = m.worker_jobs.get(worker) {
                    w.inc();
                }
                if let Some(w) = m.worker_busy_ns.get(worker) {
                    w.add(ns);
                }
            }
            if self.tracing {
                self.trace.lock().expect("trace poisoned").push(TraceEvent {
                    name: format!("job {slot}"),
                    cat: "job",
                    ts_us,
                    dur_us: dur.as_secs_f64() * 1e6,
                    tid: worker as u64 + 1,
                });
            }
            let d = done.fetch_add(1, Ordering::Relaxed) + 1;
            if self.progress && (d.is_multiple_of(16) || d == total) {
                let elapsed = start.elapsed().as_secs_f64();
                let eta = elapsed / d as f64 * (total - d) as f64;
                eprintln!(
                    "[wmm-harness] {d}/{total} jobs ({} queued), {elapsed:.1}s elapsed, ETA {eta:.1}s",
                    total - d
                );
            }
            stats
        });

        // Fold the fresh statistics into the campaign totals in job order
        // (run_keyed_indexed restored submission order), so the aggregated
        // float sums are bit-identical across worker counts.
        {
            let mut totals = self.sim_totals.lock().expect("totals poisoned");
            for s in &stats {
                totals.merge_stats(s);
            }
        }
        for (&slot, s) in misses.iter().zip(stats) {
            if let (Some(cache), Some(keys)) = (&self.cache, &keys) {
                cache.put(keys[slot], s.wall_ns);
            }
            outcomes[slot] = Some(JobOutcome::observed(s));
        }

        if let Some(m) = &self.metrics {
            // Structural side, on the calling thread with count-derived
            // values: identical whatever the worker count.
            m.batches.inc();
            m.jobs.add(n as u64);
            m.cache_hits.add((n - misses.len()) as u64);
            m.cache_misses.add(misses.len() as u64);
            m.queue_depth.set(n as f64);
            if let Some(cache) = &self.cache {
                m.sync_cache(cache.stats());
            }
        }

        let batch_ns = start.elapsed().as_nanos() as u64;
        self.counters.jobs.fetch_add(n as u64, Ordering::Relaxed);
        self.counters
            .sim_ns
            .fetch_add(sim_ns.load(Ordering::Relaxed), Ordering::Relaxed);
        self.counters.wall_ns.fetch_add(batch_ns, Ordering::Relaxed);
        self.counters
            .max_batch_ns
            .fetch_max(batch_ns, Ordering::Relaxed);
        self.counters
            .max_batch_jobs
            .fetch_max(n as u64, Ordering::Relaxed);
        if self.tracing {
            self.trace.lock().expect("trace poisoned").push(TraceEvent {
                name: format!("batch {batch_id} ({total}/{n} simulated)"),
                cat: "batch",
                ts_us: batch_ts_us,
                dur_us: batch_ns as f64 / 1e3,
                tid: 0,
            });
        }
        outcomes
            .into_iter()
            .map(|o| o.expect("every job slot resolved"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmm_sim::arch::armv8_xgene1;
    use wmm_sim::isa::{FenceKind, Instr};
    use wmm_sim::machine::{Program, WorkloadCtx};
    use wmm_sim::Machine;
    use wmmbench::exec::SerialExecutor;

    fn jobs(machine: &Machine, n: usize) -> Vec<SimJob<'_>> {
        (0..n)
            .map(|i| SimJob {
                machine,
                program: Program::new(vec![vec![
                    Instr::Compute {
                        cycles: 100 + (i as u32 % 7) * 900,
                    },
                    Instr::Fence(FenceKind::DmbIsh),
                ]]),
                ctx: WorkloadCtx::default(),
                seed: i as u64,
                sited: false,
            })
            .collect()
    }

    #[test]
    fn run_keyed_preserves_order() {
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 5, 16] {
            assert_eq!(run_keyed(&items, threads, |x| x * x), serial);
        }
    }

    #[test]
    fn run_keyed_indexed_reports_valid_workers() {
        let items: Vec<u64> = (0..64).collect();
        let workers = run_keyed_indexed(&items, 4, |worker, _| worker);
        assert!(workers.iter().all(|&w| w < 4));
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        let machine = Machine::new(armv8_xgene1());
        let serial = SerialExecutor.run_batch(jobs(&machine, 37));
        for threads in [1, 3, 8] {
            let par = ParallelExecutor::new(Some(threads)).run_batch(jobs(&machine, 37));
            assert_eq!(par, serial, "threads = {threads}");
        }
    }

    #[test]
    fn sim_totals_identical_across_worker_counts() {
        let machine = Machine::new(armv8_xgene1());
        let base = ParallelExecutor::new(Some(1));
        base.run_batch(jobs(&machine, 37));
        let base_t = base.telemetry();
        assert_eq!(base_t.sim.jobs_observed, 37);
        assert!(base_t.sim.counters.fence_counts[&FenceKind::DmbIsh] >= 37);
        for threads in [2, 8] {
            let exec = ParallelExecutor::new(Some(threads));
            exec.run_batch(jobs(&machine, 37));
            let t = exec.telemetry();
            // Bit-identical, including the f64 stall-cycle sums.
            assert_eq!(t.sim, base_t.sim, "threads = {threads}");
            assert_eq!(
                t.deterministic_json().to_string(),
                base_t.deterministic_json().to_string()
            );
        }
    }

    #[test]
    fn cached_executor_matches_and_hits() {
        let machine = Machine::new(armv8_xgene1());
        let exec = ParallelExecutor::new(Some(4)).with_cache(SimCache::in_memory());
        let first = exec.run_batch(jobs(&machine, 20));
        let second = exec.run_batch(jobs(&machine, 20));
        assert_eq!(first, second);
        let t = exec.telemetry();
        assert_eq!(t.cache_hits, 20);
        assert_eq!(t.cache_misses, 20);
        assert_eq!(t.jobs, 40);
        assert_eq!(t.batches, 2);
        // Only the simulated jobs contribute to the totals.
        assert_eq!(t.sim.jobs_observed, 20);
        assert_eq!(t.timing.max_batch_jobs, 20);
    }

    fn sited_jobs(machine: &Machine, n: usize) -> Vec<SimJob<'_>> {
        jobs(machine, n)
            .into_iter()
            .map(|mut j| {
                j.sited = true;
                j
            })
            .collect()
    }

    #[test]
    fn sited_jobs_simulate_even_on_warm_cache() {
        // Regression: the cache stores wall times only, so a cache hit
        // cannot answer a sited job's per-site stall query. Sited jobs must
        // bypass the hit path and carry full stats even when an identical
        // program's result is already cached.
        let machine = Machine::new(armv8_xgene1());
        let exec = ParallelExecutor::new(Some(2)).with_cache(SimCache::in_memory());
        let cold = exec.run_batch_stats(jobs(&machine, 6));
        let warm_sited = exec.run_batch_stats(sited_jobs(&machine, 6));
        for (c, s) in cold.iter().zip(&warm_sited) {
            let stats = s.stats.as_ref().expect("sited job simulated, not cached");
            assert!(stats.per_site.is_some(), "sited stats carry the site map");
            // Sited and unsited runs of the same program agree on time.
            assert_eq!(c.wall_ns, s.wall_ns);
        }
        // The unsited batch populated the cache; the sited batch neither
        // hit it nor corrupted it.
        assert_eq!(exec.telemetry().cache_hits, 0);
    }

    #[test]
    fn warm_cache_sited_profile_matches_cold_run() {
        let machine = Machine::new(armv8_xgene1());
        // Cold: sited campaign on a fresh executor.
        let cold_exec = ParallelExecutor::new(Some(2)).with_cache(SimCache::in_memory());
        let cold = cold_exec.run_batch_stats(sited_jobs(&machine, 5));
        // Warm: same sited campaign after the cache saw the same programs.
        let warm_exec = ParallelExecutor::new(Some(2)).with_cache(SimCache::in_memory());
        warm_exec.run_batch_stats(jobs(&machine, 5));
        let warm = warm_exec.run_batch_stats(sited_jobs(&machine, 5));
        for (c, w) in cold.iter().zip(&warm) {
            let (cs, ws) = (c.stats.as_ref().unwrap(), w.stats.as_ref().unwrap());
            // Bit-identical per-site profiles: cache warmth is invisible.
            assert_eq!(cs.per_site, ws.per_site);
            assert_eq!(c.wall_ns, w.wall_ns);
        }
    }

    #[test]
    fn cache_hits_carry_no_stats() {
        let machine = Machine::new(armv8_xgene1());
        let exec = ParallelExecutor::new(Some(2)).with_cache(SimCache::in_memory());
        let first = exec.run_batch_stats(jobs(&machine, 5));
        assert!(first.iter().all(|o| o.stats.is_some()));
        let second = exec.run_batch_stats(jobs(&machine, 5));
        assert!(second.iter().all(|o| o.stats.is_none()));
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.wall_ns, b.wall_ns);
        }
    }

    #[test]
    fn trace_collects_batch_and_job_slices() {
        let machine = Machine::new(armv8_xgene1());
        let exec = ParallelExecutor::new(Some(2)).with_trace(true);
        exec.run_batch(jobs(&machine, 6));
        let events = exec.trace_events();
        assert_eq!(events.iter().filter(|e| e.cat == "batch").count(), 1);
        assert_eq!(events.iter().filter(|e| e.cat == "job").count(), 6);
        assert!(events.iter().all(|e| e.dur_us >= 0.0));
        // Tracing off by default: no events collected.
        let silent = ParallelExecutor::new(Some(2));
        silent.run_batch(jobs(&machine, 3));
        assert!(silent.trace_events().is_empty());
    }

    #[test]
    fn exec_metrics_count_batches_jobs_and_cache_traffic() {
        let machine = Machine::new(armv8_xgene1());
        let reg = MetricsRegistry::new();
        let exec = ParallelExecutor::new(Some(2))
            .with_cache(SimCache::in_memory())
            .with_metrics(&reg);
        exec.run_batch(jobs(&machine, 20));
        exec.run_batch(jobs(&machine, 20));
        let snap = reg.snapshot();
        assert_eq!(snap.counter("harness.exec.batches"), Some(2));
        assert_eq!(snap.counter("harness.exec.jobs"), Some(40));
        assert_eq!(snap.counter("harness.exec.cache_hits"), Some(20));
        assert_eq!(snap.counter("harness.exec.cache_misses"), Some(20));
        assert_eq!(snap.gauge("harness.exec.queue_depth"), Some(20.0));
        assert_eq!(snap.gauge("harness.cache.sim.entries"), Some(20.0));
        assert_eq!(snap.gauge("harness.cache.sim.puts"), Some(20.0));
        // Every simulated job landed in the latency histogram and on some
        // worker track.
        let lat = snap.get("harness.exec.job_latency_ns").expect("registered");
        match &lat.value {
            wmm_obs::MetricValue::Histogram { count, .. } => assert_eq!(*count, 20),
            other => panic!("latency should be a histogram, got {other:?}"),
        }
        let worker_jobs: u64 = (0..2)
            .map(|w| {
                snap.counter(&format!("harness.worker.{w}.jobs"))
                    .expect("worker track registered")
            })
            .sum();
        assert_eq!(worker_jobs, 20);
        assert_eq!(exec.cache_stats().expect("cache attached").puts, 20);
    }

    #[test]
    fn metrics_structural_snapshot_is_identical_across_worker_counts() {
        let machine = Machine::new(armv8_xgene1());
        let structural_json = |threads: usize| {
            let reg = MetricsRegistry::new();
            let exec = ParallelExecutor::new(Some(threads))
                .with_cache(SimCache::in_memory())
                .with_metrics(&reg);
            exec.run_batch(jobs(&machine, 24));
            exec.run_batch(jobs(&machine, 24));
            use wmmbench::json::ToJson as _;
            reg.snapshot().structural().to_json().to_string_pretty()
        };
        let base = structural_json(1);
        for threads in [2, 4] {
            assert_eq!(structural_json(threads), base, "threads = {threads}");
        }
    }

    #[test]
    fn thread_resolution_prefers_explicit() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert_eq!(resolve_threads(Some(0)), 1);
        assert!(resolve_threads(None) >= 1);
    }
}
