//! The deterministic parallel scheduler.
//!
//! A batch of independent jobs is drained by `std::thread::scope` workers
//! claiming indices off a shared atomic counter; each result is recorded
//! under the index (the *key*) of the job that produced it, and the batch
//! returns results in job order. Because every job is deterministic in its
//! own inputs and keys restore submission order, the output of a batch is
//! bit-identical whether it ran on one worker or sixteen.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use wmmbench::exec::{Executor, SimJob};

use crate::cache::{job_key, SimCache};

/// Resolve the worker-thread count: an explicit request wins, then the
/// `WMM_THREADS` environment variable, then the machine's available
/// parallelism. A resolved count is always at least 1.
pub fn resolve_threads(requested: Option<usize>) -> usize {
    let n = requested
        .or_else(|| {
            std::env::var("WMM_THREADS")
                .ok()
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    n.max(1)
}

/// Run `f` over every item, on up to `threads` scoped workers, and return
/// the results **in item order** — the keyed-queue primitive underneath
/// [`ParallelExecutor`].
///
/// Workers claim item indices from a shared counter and push `(index,
/// result)` pairs; the pairs are re-keyed into submission order before
/// returning, so the caller cannot observe scheduling.
pub fn run_keyed<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let keyed: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= n {
                    break;
                }
                let result = f(&items[idx]);
                keyed
                    .lock()
                    .expect("collector poisoned")
                    .push((idx, result));
            });
        }
    });
    let mut keyed = keyed.into_inner().expect("collector poisoned");
    keyed.sort_by_key(|(idx, _)| *idx);
    debug_assert_eq!(keyed.len(), n);
    keyed.into_iter().map(|(_, r)| r).collect()
}

/// Aggregate counters across every batch an executor has run.
#[derive(Debug, Default)]
struct Counters {
    batches: AtomicU64,
    jobs: AtomicU64,
    sim_ns: AtomicU64,
    wall_ns: AtomicU64,
}

/// The parallel, caching [`Executor`].
///
/// Wraps the scheduler around an optional content-addressed [`SimCache`]:
/// each batch first resolves cache hits on the calling thread, fans the
/// misses out across workers, then stores the fresh results. Per-job wall
/// time, queue depth and batch counts are tracked for the campaign summary
/// and the run manifest's telemetry section.
pub struct ParallelExecutor {
    threads: usize,
    cache: Option<SimCache>,
    progress: bool,
    counters: Counters,
}

impl ParallelExecutor {
    /// An executor with `threads` workers (see [`resolve_threads`]) and no
    /// cache.
    pub fn new(threads: Option<usize>) -> Self {
        ParallelExecutor {
            threads: resolve_threads(threads),
            cache: None,
            progress: false,
            counters: Counters::default(),
        }
    }

    /// Attach a result cache.
    pub fn with_cache(mut self, cache: SimCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Enable progress/ETA lines on stderr for long batches.
    pub fn with_progress(mut self, progress: bool) -> Self {
        self.progress = progress;
        self
    }

    /// The resolved worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The attached cache, if any.
    pub fn cache(&self) -> Option<&SimCache> {
        self.cache.as_ref()
    }

    /// Telemetry snapshot for the campaign so far.
    pub fn telemetry(&self) -> crate::artifact::Telemetry {
        let (hits, misses) = self
            .cache
            .as_ref()
            .map(|c| (c.hits(), c.misses()))
            .unwrap_or((0, 0));
        crate::artifact::Telemetry {
            threads: self.threads,
            batches: self.counters.batches.load(Ordering::Relaxed),
            jobs: self.counters.jobs.load(Ordering::Relaxed),
            cache_hits: hits,
            cache_misses: misses,
            sim_ms: self.counters.sim_ns.load(Ordering::Relaxed) as f64 / 1e6,
            wall_ms: self.counters.wall_ns.load(Ordering::Relaxed) as f64 / 1e6,
        }
    }

    /// One-line campaign summary (jobs, hit rate, speed-up proxy).
    pub fn summary(&self) -> String {
        let t = self.telemetry();
        let hit_rate = if t.jobs > 0 {
            t.cache_hits as f64 / t.jobs as f64
        } else {
            0.0
        };
        format!(
            "{} jobs in {} batches on {} threads: {:.0} ms wall, {:.0} ms simulated, {:.0}% cache hits",
            t.jobs,
            t.batches,
            t.threads,
            t.wall_ms,
            t.sim_ms,
            100.0 * hit_rate
        )
    }
}

impl Executor for ParallelExecutor {
    fn run_batch(&self, jobs: Vec<SimJob<'_>>) -> Vec<f64> {
        let start = Instant::now();
        let n = jobs.len();
        let mut results = vec![0.0f64; n];

        // Resolve cache hits up front (calling thread); collect miss slots.
        let mut misses: Vec<usize> = Vec::with_capacity(n);
        let keys: Option<Vec<u128>> = self.cache.as_ref().map(|cache| {
            jobs.iter()
                .enumerate()
                .map(|(i, job)| {
                    let key = job_key(job);
                    match cache.get(key) {
                        Some(t) => results[i] = t,
                        None => misses.push(i),
                    }
                    key
                })
                .collect()
        });
        if keys.is_none() {
            misses = (0..n).collect();
        }

        // Fan the misses out across workers, observing progress.
        let done = AtomicUsize::new(0);
        let sim_ns = AtomicU64::new(0);
        let total = misses.len();
        let times = run_keyed(&misses, self.threads, |&slot| {
            let t0 = Instant::now();
            let t = jobs[slot].run();
            sim_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            let d = done.fetch_add(1, Ordering::Relaxed) + 1;
            if self.progress && (d.is_multiple_of(16) || d == total) {
                let elapsed = start.elapsed().as_secs_f64();
                let eta = elapsed / d as f64 * (total - d) as f64;
                eprintln!(
                    "[wmm-harness] {d}/{total} jobs ({} queued), {elapsed:.1}s elapsed, ETA {eta:.1}s",
                    total - d
                );
            }
            t
        });
        for (&slot, &t) in misses.iter().zip(&times) {
            results[slot] = t;
            if let (Some(cache), Some(keys)) = (&self.cache, &keys) {
                cache.put(keys[slot], t);
            }
        }

        self.counters.batches.fetch_add(1, Ordering::Relaxed);
        self.counters.jobs.fetch_add(n as u64, Ordering::Relaxed);
        self.counters
            .sim_ns
            .fetch_add(sim_ns.load(Ordering::Relaxed), Ordering::Relaxed);
        self.counters
            .wall_ns
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmm_sim::arch::armv8_xgene1;
    use wmm_sim::isa::Instr;
    use wmm_sim::machine::{Program, WorkloadCtx};
    use wmm_sim::Machine;
    use wmmbench::exec::SerialExecutor;

    fn jobs(machine: &Machine, n: usize) -> Vec<SimJob<'_>> {
        (0..n)
            .map(|i| SimJob {
                machine,
                program: Program::new(vec![vec![Instr::Compute {
                    cycles: 100 + (i as u32 % 7) * 900,
                }]]),
                ctx: WorkloadCtx::default(),
                seed: i as u64,
            })
            .collect()
    }

    #[test]
    fn run_keyed_preserves_order() {
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 5, 16] {
            assert_eq!(run_keyed(&items, threads, |x| x * x), serial);
        }
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        let machine = Machine::new(armv8_xgene1());
        let serial = SerialExecutor.run_batch(jobs(&machine, 37));
        for threads in [1, 3, 8] {
            let par = ParallelExecutor::new(Some(threads)).run_batch(jobs(&machine, 37));
            assert_eq!(par, serial, "threads = {threads}");
        }
    }

    #[test]
    fn cached_executor_matches_and_hits() {
        let machine = Machine::new(armv8_xgene1());
        let exec = ParallelExecutor::new(Some(4)).with_cache(SimCache::in_memory());
        let first = exec.run_batch(jobs(&machine, 20));
        let second = exec.run_batch(jobs(&machine, 20));
        assert_eq!(first, second);
        let t = exec.telemetry();
        assert_eq!(t.cache_hits, 20);
        assert_eq!(t.cache_misses, 20);
        assert_eq!(t.jobs, 40);
        assert_eq!(t.batches, 2);
    }

    #[test]
    fn thread_resolution_prefers_explicit() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert_eq!(resolve_threads(Some(0)), 1);
        assert!(resolve_threads(None) >= 1);
    }
}
