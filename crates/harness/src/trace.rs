//! Chrome-trace export of a campaign's scheduler timeline.
//!
//! [`ParallelExecutor`](crate::ParallelExecutor) can record one
//! [`TraceEvent`] per batch and per freshly simulated job; this module
//! serialises those events to the Trace Event Format JSON that
//! `chrome://tracing` and <https://ui.perfetto.dev> load directly. Each
//! event is a complete ("ph": "X") slice: batches on track 0, jobs on one
//! track per worker thread, timestamps in microseconds since the executor
//! was created.
//!
//! Trace files are observational by construction — timings vary run to
//! run — so they live outside the manifest/gate path entirely: a campaign
//! only writes one when asked to via `--trace <path>`.

use std::io;
use std::path::Path;

use wmmbench::json::{Json, ToJson};

/// One complete slice on the trace timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Slice label, e.g. `"batch 3"` or `"job 17"`.
    pub name: String,
    /// Event category (`"batch"` or `"job"`), filterable in the viewer.
    pub cat: &'static str,
    /// Start, microseconds since the executor epoch.
    pub ts_us: f64,
    /// Duration, microseconds.
    pub dur_us: f64,
    /// Track: 0 for batch-level slices, `worker + 1` for job slices.
    pub tid: u64,
}

impl ToJson for TraceEvent {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", self.name.to_json()),
            ("cat", self.cat.to_json()),
            ("ph", "X".to_json()),
            ("ts", Json::Num(self.ts_us)),
            ("dur", Json::Num(self.dur_us)),
            ("pid", 1u64.to_json()),
            ("tid", self.tid.to_json()),
        ])
    }
}

/// Serialise events to a Trace Event Format JSON document.
pub fn to_chrome_json(events: &[TraceEvent]) -> String {
    let json = Json::obj(vec![
        (
            "traceEvents",
            Json::Arr(events.iter().map(ToJson::to_json).collect()),
        ),
        ("displayTimeUnit", "ms".to_json()),
    ]);
    let mut text = json.to_string_pretty();
    text.push('\n');
    text
}

/// Write events to `path` in Trace Event Format, creating parent
/// directories as needed.
pub fn write_chrome_trace(path: impl AsRef<Path>, events: &[TraceEvent]) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, to_chrome_json(events))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chrome_json_has_required_fields() {
        let events = vec![
            TraceEvent {
                name: "batch 0".into(),
                cat: "batch",
                ts_us: 0.0,
                dur_us: 1500.25,
                tid: 0,
            },
            TraceEvent {
                name: "job 4".into(),
                cat: "job",
                ts_us: 12.5,
                dur_us: 300.0,
                tid: 2,
            },
        ];
        let text = to_chrome_json(&events);
        let json = Json::parse(&text).expect("trace output parses as JSON");
        let arr = json
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        assert_eq!(arr.len(), 2);
        let first = &arr[0];
        assert_eq!(first.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(first.get("pid").and_then(Json::as_f64), Some(1.0));
        assert_eq!(first.get("dur").and_then(Json::as_f64), Some(1500.25));
        assert_eq!(arr[1].get("tid").and_then(Json::as_f64), Some(2.0));
    }

    #[test]
    fn write_creates_parent_dirs() {
        let dir = std::env::temp_dir().join("wmm-harness-trace-test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested").join("trace.json");
        write_chrome_trace(&path, &[]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("traceEvents"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
