//! Chrome-trace export of a campaign's scheduler timeline.
//!
//! [`ParallelExecutor`](crate::ParallelExecutor) can record one
//! [`TraceEvent`] per batch and per freshly simulated job; this module
//! serialises those events to the Trace Event Format JSON that
//! `chrome://tracing` and <https://ui.perfetto.dev> load directly. Each
//! event is a complete ("ph": "X") slice: batches on track 0, jobs on one
//! track per worker thread, timestamps in microseconds since the executor
//! was created.
//!
//! Trace files are observational by construction — timings vary run to
//! run — so they live outside the manifest/gate path entirely: a campaign
//! only writes one when asked to via `--trace <path>`.

use std::collections::HashMap;
use std::io;
use std::path::Path;

use wmm_obs::SpanRecord;
use wmm_sim::stats::SiteStall;
use wmmbench::json::{Json, ToJson};

/// One complete slice on the trace timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Slice label, e.g. `"batch 3"` or `"job 17"`.
    pub name: String,
    /// Event category (`"batch"` or `"job"`), filterable in the viewer.
    pub cat: &'static str,
    /// Start, microseconds since the executor epoch.
    pub ts_us: f64,
    /// Duration, microseconds.
    pub dur_us: f64,
    /// Track: 0 for batch-level slices, `worker + 1` for job slices.
    pub tid: u64,
}

impl ToJson for TraceEvent {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", self.name.to_json()),
            ("cat", self.cat.to_json()),
            ("ph", "X".to_json()),
            ("ts", Json::Num(self.ts_us)),
            ("dur", Json::Num(self.dur_us)),
            ("pid", 1u64.to_json()),
            ("tid", self.tid.to_json()),
        ])
    }
}

/// Convert one sited run's per-site stall records into an
/// instruction-granular timeline: one complete slice per executed
/// instruction, on one track per simulated thread (`tid = thread`).
///
/// A [`SiteStall`] carries no timestamps, but a thread executes its
/// instructions strictly in stream order and each advances the core's
/// clock by exactly `total_cycles`, so slice starts are the per-thread
/// cumulative sums — an exact reconstruction of the simulated timeline.
/// `label` renders each `(thread, index)` site's name (e.g. through a
/// `SiteMap`); `ns_per_cycle` converts the architecture's clock to trace
/// time. The records must be sorted by `(thread, index)`, which is how
/// `Machine::run_sited` returns them.
pub fn instruction_trace_events(
    sites: &[SiteStall],
    ns_per_cycle: f64,
    mut label: impl FnMut(u32, u32) -> String,
) -> Vec<TraceEvent> {
    let mut cursor: HashMap<u32, f64> = HashMap::new();
    sites
        .iter()
        .map(|s| {
            let start = cursor.entry(s.thread).or_insert(0.0);
            let ts_us = *start * ns_per_cycle / 1e3;
            *start += s.total_cycles;
            TraceEvent {
                name: label(s.thread, s.index),
                cat: "instr",
                ts_us,
                dur_us: s.total_cycles * ns_per_cycle / 1e3,
                tid: s.thread as u64,
            }
        })
        .collect()
}

/// Convert completed [`SpanRecord`]s into trace slices, so phase-level
/// spans (a [`wmm_obs::SpanLog`] sharing the executor's epoch convention)
/// render on the same timeline as batch and job slices. The span's own
/// category string is carried through a small static table — the trace
/// layer keeps `cat` a `&'static str` — with unrecognised categories
/// rendered as `"span"`.
pub fn span_trace_events(spans: &[SpanRecord]) -> Vec<TraceEvent> {
    fn static_cat(cat: &str) -> &'static str {
        match cat {
            "report" => "report",
            "campaign" => "campaign",
            "phase" => "phase",
            "batch" => "batch",
            "job" => "job",
            _ => "span",
        }
    }
    spans
        .iter()
        .map(|s| TraceEvent {
            name: s.name.clone(),
            cat: static_cat(s.cat),
            ts_us: s.ts_us,
            dur_us: s.dur_us,
            tid: s.tid,
        })
        .collect()
}

/// Merge several event streams into one chronologically sorted timeline.
///
/// The sort is *stable* on the start timestamp (`f64::total_cmp`), so
/// events that start at the same instant — including zero-duration spans —
/// keep their relative input order, and the merged order is a pure
/// function of the inputs.
pub fn merge_chronological(streams: &[&[TraceEvent]]) -> Vec<TraceEvent> {
    let mut merged: Vec<TraceEvent> = streams.iter().flat_map(|s| s.iter().cloned()).collect();
    merged.sort_by(|a, b| a.ts_us.total_cmp(&b.ts_us));
    merged
}

/// Serialise events to a Trace Event Format JSON document.
pub fn to_chrome_json(events: &[TraceEvent]) -> String {
    let json = Json::obj(vec![
        (
            "traceEvents",
            Json::Arr(events.iter().map(ToJson::to_json).collect()),
        ),
        ("displayTimeUnit", "ms".to_json()),
    ]);
    let mut text = json.to_string_pretty();
    text.push('\n');
    text
}

/// Write events to `path` in Trace Event Format, creating parent
/// directories as needed.
pub fn write_chrome_trace(path: impl AsRef<Path>, events: &[TraceEvent]) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, to_chrome_json(events))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chrome_json_has_required_fields() {
        let events = vec![
            TraceEvent {
                name: "batch 0".into(),
                cat: "batch",
                ts_us: 0.0,
                dur_us: 1500.25,
                tid: 0,
            },
            TraceEvent {
                name: "job 4".into(),
                cat: "job",
                ts_us: 12.5,
                dur_us: 300.0,
                tid: 2,
            },
        ];
        let text = to_chrome_json(&events);
        let json = Json::parse(&text).expect("trace output parses as JSON");
        let arr = json
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        assert_eq!(arr.len(), 2);
        let first = &arr[0];
        assert_eq!(first.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(first.get("pid").and_then(Json::as_f64), Some(1.0));
        assert_eq!(first.get("dur").and_then(Json::as_f64), Some(1500.25));
        assert_eq!(arr[1].get("tid").and_then(Json::as_f64), Some(2.0));
    }

    #[test]
    fn names_with_quotes_and_backslashes_stay_valid_json() {
        // Regression guard: labels flow from user-visible site names, which
        // can contain characters JSON must escape. The export routes every
        // string through the `Json` layer, so the document stays parseable
        // and the name round-trips exactly.
        let hostile = "site \"q\" \\ back\nline\ttab";
        let events = vec![TraceEvent {
            name: hostile.to_string(),
            cat: "job",
            ts_us: 0.0,
            dur_us: 1.0,
            tid: 1,
        }];
        let text = to_chrome_json(&events);
        let json = Json::parse(&text).expect("escaped output parses");
        let arr = json.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].get("name").and_then(Json::as_str), Some(hostile));
    }

    #[test]
    fn instruction_trace_reconstructs_per_thread_timeline() {
        let site = |thread: u32, index: u32, total: f64| SiteStall {
            thread,
            index,
            fence: None,
            fences: 0,
            fence_cycles: 0.0,
            sb_stall_cycles: 0.0,
            mem_cycles: 0.0,
            total_cycles: total,
        };
        let sites = vec![
            site(0, 0, 10.0),
            site(0, 1, 4.0),
            site(1, 0, 2.5),
            site(1, 1, 1.5),
        ];
        // 0.5 ns/cycle: slice starts are per-thread cumulative cycles.
        let events = instruction_trace_events(&sites, 0.5, |t, i| format!("t{t}:i{i}"));
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].ts_us, 0.0);
        assert_eq!(events[1].ts_us, 10.0 * 0.5 / 1e3);
        assert_eq!(events[1].dur_us, 4.0 * 0.5 / 1e3);
        // Thread 1 starts its own track at zero.
        assert_eq!(events[2].ts_us, 0.0);
        assert_eq!(events[3].ts_us, 2.5 * 0.5 / 1e3);
        assert_eq!(events[2].tid, 1);
        assert_eq!(events[0].name, "t0:i0");
        assert!(events.iter().all(|e| e.cat == "instr"));
    }

    #[test]
    fn empty_campaign_exports_a_valid_empty_trace() {
        // An executor that never ran a batch still produces a loadable
        // document: an empty traceEvents array, not malformed JSON.
        let text = to_chrome_json(&[]);
        let json = Json::parse(&text).expect("empty trace parses");
        let arr = json
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents present");
        assert!(arr.is_empty());
        assert!(merge_chronological(&[&[], &[]]).is_empty());
        assert!(span_trace_events(&[]).is_empty());
    }

    #[test]
    fn zero_duration_spans_survive_export() {
        let spans = vec![
            SpanRecord {
                name: "instant".into(),
                cat: "report",
                ts_us: 5.0,
                dur_us: 0.0,
                tid: 0,
            },
            SpanRecord {
                name: "weird cat".into(),
                cat: "test",
                ts_us: 5.0,
                dur_us: 1.0,
                tid: 2,
            },
        ];
        let events = span_trace_events(&spans);
        assert_eq!(
            events[0].dur_us, 0.0,
            "zero-duration slice kept, not dropped"
        );
        assert_eq!(events[0].cat, "report");
        assert_eq!(events[1].cat, "span", "unknown categories render as span");
        let text = to_chrome_json(&events);
        let json = Json::parse(&text).expect("parses");
        let arr = json.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].get("dur").and_then(Json::as_f64), Some(0.0));
        // Equal timestamps: stable merge keeps input order.
        let merged = merge_chronological(&[&events]);
        assert_eq!(merged[0].name, "instant");
        assert_eq!(merged[1].name, "weird cat");
    }

    #[test]
    fn merged_span_and_instruction_streams_stay_sorted() {
        let site = |thread: u32, index: u32, total: f64| SiteStall {
            thread,
            index,
            fence: None,
            fences: 0,
            fence_cycles: 0.0,
            sb_stall_cycles: 0.0,
            mem_cycles: 0.0,
            total_cycles: total,
        };
        let instr =
            instruction_trace_events(&[site(0, 0, 4000.0), site(0, 1, 4000.0)], 1.0, |t, i| {
                format!("t{t}:i{i}")
            });
        let spans = span_trace_events(&[SpanRecord {
            name: "phase".into(),
            cat: "report",
            ts_us: 1.0,
            dur_us: 10.0,
            tid: 9,
        }]);
        let merged = merge_chronological(&[&instr, &spans]);
        assert_eq!(merged.len(), 3);
        assert!(
            merged.windows(2).all(|w| w[0].ts_us <= w[1].ts_us),
            "merged timeline is chronologically sorted"
        );
        // The span (ts 1.0) lands between instruction starts 0.0 and 4.0.
        assert_eq!(merged[1].name, "phase");
        let text = to_chrome_json(&merged);
        assert!(Json::parse(&text).is_ok());
    }

    #[test]
    fn write_creates_parent_dirs() {
        let dir = std::env::temp_dir().join("wmm-harness-trace-test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested").join("trace.json");
        write_chrome_trace(&path, &[]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("traceEvents"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
