//! Executor determinism over *generated* programs, as a property test: a
//! batch of random jobs must produce bit-identical outcomes — wall times,
//! statistics, and the aggregated telemetry manifest — no matter how many
//! workers drain it, whether a cache is attached, and despite every worker
//! thread reusing its `MachineScratch` arena across jobs. Scratch reuse is
//! exactly the seam where stale per-run state (core clocks, store buffers,
//! directory warmth) would leak between jobs if a `reset` missed a field.

use proptest::prelude::*;
use wmm_harness::{ParallelExecutor, SimCache};
use wmm_sim::arch::{armv8_xgene1, power7};
use wmm_sim::isa::{AccessOrd, FenceKind, Instr, Loc, Mispredict};
use wmm_sim::machine::{Program, WorkloadCtx};
use wmm_sim::Machine;
use wmmbench::exec::{Executor, SerialExecutor, SimJob};
use wmmbench::json::ToJson;

fn loc() -> impl Strategy<Value = Loc> {
    // Small line ids force real sharing and coherence traffic.
    prop_oneof![
        (0u64..4).prop_map(Loc::Private),
        (0u64..4).prop_map(Loc::SharedRo),
        (0u64..4).prop_map(Loc::SharedRw),
    ]
}

fn ord() -> impl Strategy<Value = AccessOrd> {
    prop_oneof![
        Just(AccessOrd::Plain),
        Just(AccessOrd::Acquire),
        Just(AccessOrd::Release),
    ]
}

fn instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        Just(Instr::Nop),
        Just(Instr::MovImm),
        Just(Instr::Alu),
        Just(Instr::CmpImm),
        Just(Instr::StackPush),
        Just(Instr::StackPop),
        prop_oneof![
            Just(Mispredict::Never),
            Just(Mispredict::Workload),
            (0.0f64..0.5).prop_map(Mispredict::Rate),
        ]
        .prop_map(Instr::CondBranch),
        (loc(), ord()).prop_map(|(loc, ord)| Instr::Load { loc, ord }),
        (loc(), ord()).prop_map(|(loc, ord)| Instr::Store { loc, ord }),
        (loc(), 0.3f64..1.0).prop_map(|(loc, success_prob)| Instr::Cas { loc, success_prob }),
        (0usize..FenceKind::ALL.len()).prop_map(|i| Instr::Fence(FenceKind::ALL[i])),
        (1u64..64, 0u32..2).prop_map(|(iters, spill)| Instr::CostLoop {
            iters,
            stack_spill: spill == 1
        }),
        (1u32..200).prop_map(|cycles| Instr::Compute { cycles }),
    ]
}

fn program() -> impl Strategy<Value = Program> {
    prop::collection::vec(prop::collection::vec(instr(), 0..24), 1..4).prop_map(Program::new)
}

fn ctx() -> impl Strategy<Value = WorkloadCtx> {
    (
        (0.0f64..0.3, 0.0f64..1.0),
        (0.0f64..0.2, 0.0f64..1.0),
        0.0f64..0.05,
    )
        .prop_map(
            |((bp_pressure, load_pressure), (l1_miss_rate, dram_frac), noise_amp)| WorkloadCtx {
                name: "prop".to_string(),
                bp_pressure,
                load_pressure,
                l1_miss_rate,
                dram_frac,
                noise_amp,
            },
        )
}

fn batch() -> impl Strategy<Value = Vec<(Program, WorkloadCtx, u64)>> {
    prop::collection::vec((program(), ctx(), 0u64..u64::MAX), 1..12)
}

fn jobs<'m>(machine: &'m Machine, batch: &[(Program, WorkloadCtx, u64)]) -> Vec<SimJob<'m>> {
    batch
        .iter()
        .map(|(program, ctx, seed)| SimJob {
            machine,
            program: program.clone(),
            ctx: ctx.clone(),
            seed: *seed,
            sited: false,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn parallel_executor_is_worker_count_invariant(batch in batch(), power in 0u32..2) {
        let machine = Machine::new(if power == 1 { power7() } else { armv8_xgene1() });
        let serial = SerialExecutor.run_batch_stats(jobs(&machine, &batch));
        let mut manifest: Option<String> = None;
        for threads in [1usize, 2, 4] {
            for cached in [false, true] {
                let mut exec = ParallelExecutor::new(Some(threads));
                if cached {
                    exec = exec.with_cache(SimCache::in_memory());
                }
                let first = exec.run_batch_stats(jobs(&machine, &batch));
                // The aggregated simulator totals (float sums folded in job
                // order) are part of the run manifest: identical across
                // every executor configuration after one batch.
                let t = exec.telemetry();
                prop_assert_eq!(t.sim.jobs_observed, batch.len() as u64);
                let rendered = t.sim.to_json().to_string();
                match &manifest {
                    None => manifest = Some(rendered),
                    Some(m) => prop_assert!(m == &rendered,
                        "totals drifted: threads {threads} cached {cached}"),
                }
                // A second identical batch exercises the warm-hit path when
                // a cache is attached and plain re-simulation (with reused
                // worker scratch) when not.
                let second = exec.run_batch_stats(jobs(&machine, &batch));
                for ((s, f), snd) in serial.iter().zip(&first).zip(&second) {
                    // Bit-exact wall times, not approximate agreement.
                    prop_assert!(s.wall_ns.to_bits() == f.wall_ns.to_bits(),
                        "threads {threads} cached {cached}");
                    prop_assert!(f.wall_ns.to_bits() == snd.wall_ns.to_bits(),
                        "repeat batch drifted: threads {threads} cached {cached}");
                    prop_assert_eq!(s.stats.as_ref(), f.stats.as_ref());
                }
            }
        }
    }
}
