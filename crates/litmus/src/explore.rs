//! Exhaustive state-space exploration.
//!
//! The executor enumerates every interleaving of *eligible* operations (an
//! operation is eligible when every earlier same-thread operation that the
//! model orders before it has executed) and, on non-multi-copy-atomic
//! models, every store-propagation schedule. Depth-first search with
//! memoisation keeps the search finite and fast — litmus tests have a
//! handful of operations, so state counts stay in the low thousands.

use std::collections::HashSet;

use crate::ops::{FClass, LOp, LitmusTest, ModelKind, Outcome};

/// A committed store in coherence order.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct StoreRec {
    var: usize,
    val: u32,
    owner: usize,
    /// Bitmask of threads this store has propagated to.
    mask: u32,
    /// Stores (by id) that must be visible to a thread before this one may
    /// propagate to it — `lwsync`/`sync` cumulativity on POWER.
    prereqs: Vec<usize>,
}

/// Search state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct State {
    /// Bitmask of executed ops per thread.
    executed: Vec<u32>,
    /// Register files, one per thread.
    regs: Vec<Vec<u32>>,
    /// Committed stores in coherence (commit) order.
    stores: Vec<StoreRec>,
    /// For each thread/op: the store id it read or wrote (for group-A sets).
    touched: Vec<Vec<Option<usize>>>,
}

/// The set of reachable final states of a litmus test: register files plus
/// the final memory value of every variable (the last store in coherence
/// order; variables never stored keep their initial 0).
#[derive(Debug, Clone)]
pub struct OutcomeSet {
    /// Final `(registers, memory)` pairs: registers are one inner vec per
    /// thread indexed by register; memory is indexed by variable.
    pub finals: HashSet<(Vec<Vec<u32>>, Vec<u32>)>,
    /// Number of distinct states visited (for curiosity/diagnostics).
    pub states_visited: usize,
}

impl OutcomeSet {
    /// Is the conjunctive register assertion reachable?
    #[must_use]
    pub fn allows(&self, outcome: &Outcome) -> bool {
        self.finals
            .iter()
            .any(|(f, _)| outcome.iter().all(|&(t, r, v)| f[t][r] == v))
    }

    /// Iterate over the final `(registers, memory)` states in unspecified
    /// order. For deterministic consumption use [`OutcomeSet::sorted`].
    pub fn iter(&self) -> impl Iterator<Item = &(Vec<Vec<u32>>, Vec<u32>)> {
        self.finals.iter()
    }

    /// The final states in a canonical (lexicographic) order — the stable
    /// view used for manifests, witness extraction and cross-oracle
    /// comparison, so no caller needs to re-run `explore` just to walk the
    /// same outcome set deterministically.
    #[must_use]
    pub fn sorted(&self) -> Vec<&(Vec<Vec<u32>>, Vec<u32>)> {
        let mut v: Vec<_> = self.finals.iter().collect();
        v.sort();
        v
    }

    /// The final states as an owned ordered set, for set-algebra against
    /// another oracle (equality, inclusion).
    #[must_use]
    pub fn canonical(&self) -> std::collections::BTreeSet<(Vec<Vec<u32>>, Vec<u32>)> {
        self.finals.iter().cloned().collect()
    }

    /// Is the combined register + final-memory assertion reachable?
    /// `memory` entries are `(var, value)` conjuncts — the classic
    /// final-state conditions of the S, R and 2+2W shapes.
    #[must_use]
    pub fn allows_with_memory(&self, outcome: &Outcome, memory: &[(usize, u32)]) -> bool {
        self.finals.iter().any(|(regs, mem)| {
            outcome.iter().all(|&(t, r, v)| regs[t][r] == v)
                && memory
                    .iter()
                    .all(|&(var, v)| mem.get(var).copied().unwrap_or(0) == v)
        })
    }

    /// Number of distinct final states.
    #[must_use]
    pub fn len(&self) -> usize {
        self.finals.len()
    }

    /// True if no execution completed (cannot happen for well-formed tests).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.finals.is_empty()
    }
}

/// Memoising front-end for [`explore`]: callers that query the same test
/// under the same model repeatedly (suite sweeps, differential audits, the
/// `allows`-per-question pattern in `crates/bench`) share one exploration
/// instead of re-running the state-space search per query.
///
/// Keys are *structural* — two tests with identical threads, dependencies
/// and memory conjuncts share an entry even if their names differ — and
/// results are handed out as [`std::sync::Arc`] clones, so a cached outcome
/// set can be kept across further cache use or shipped to another thread.
#[derive(Default)]
pub struct ExploreCache {
    map: std::collections::HashMap<(String, ModelKind), std::sync::Arc<OutcomeSet>>,
    hits: usize,
    misses: usize,
}

impl ExploreCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Structural identity of a test: everything that determines the
    /// outcome set (name excluded on purpose).
    fn key(test: &LitmusTest, model: ModelKind) -> (String, ModelKind) {
        (
            format!("{:?}|{:?}|{:?}", test.threads, test.store_deps, test.memory),
            model,
        )
    }

    /// The outcome set of `test` under `model`, exploring at most once per
    /// structural key.
    pub fn outcomes(&mut self, test: &LitmusTest, model: ModelKind) -> std::sync::Arc<OutcomeSet> {
        let key = Self::key(test, model);
        if let Some(hit) = self.map.get(&key) {
            self.hits += 1;
            return std::sync::Arc::clone(hit);
        }
        self.misses += 1;
        let out = std::sync::Arc::new(explore(test, model));
        self.map.insert(key, std::sync::Arc::clone(&out));
        out
    }

    /// Cache hits served so far.
    #[must_use]
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Explorations actually run (cache misses).
    #[must_use]
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Number of cached outcome sets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing has been cached yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

struct Explorer<'t> {
    test: &'t LitmusTest,
    model: ModelKind,
    all_mask: u32,
    num_vars: usize,
    seen: HashSet<State>,
    finals: HashSet<(Vec<Vec<u32>>, Vec<u32>)>,
}

impl Explorer<'_> {
    /// Latest visible store id for `var` as seen by `thread`, if any.
    fn latest_visible(st: &State, thread: usize, var: usize) -> Option<usize> {
        st.stores
            .iter()
            .enumerate()
            .rev()
            .find(|(_, s)| s.var == var && s.mask & (1 << thread) != 0)
            .map(|(i, _)| i)
    }

    /// Is op `(t, j)` eligible to execute?
    fn eligible(&self, st: &State, t: usize, j: usize) -> bool {
        if st.executed[t] & (1 << j) != 0 {
            return false;
        }
        for i in 0..j {
            if st.executed[t] & (1 << i) == 0 && self.test.ordered(self.model, t, i, j) {
                return false;
            }
        }
        true
    }

    /// Group-A store set for an op at index `j` of thread `t`: everything the
    /// thread has read or written at earlier (executed) ops. Used by `Full`
    /// fences (wait for global propagation) and, restricted to ops before
    /// the latest cumulative fence, as store prerequisites.
    fn group_a(st: &State, t: usize, upto: usize) -> Vec<usize> {
        (0..upto)
            .filter(|&i| st.executed[t] & (1 << i) != 0)
            .filter_map(|i| st.touched[t][i])
            .collect()
    }

    // One arm per op shape; splitting the match would scatter the model
    // semantics across helpers.
    #[allow(clippy::too_many_lines)]
    fn step(&mut self, st: &State) {
        if !self.seen.insert(st.clone()) {
            return;
        }
        let done = (0..self.test.threads.len())
            .all(|t| st.executed[t].count_ones() as usize == self.test.threads[t].len());
        if done {
            // Final memory: the last store per variable in coherence order.
            let mut mem = vec![0u32; self.num_vars];
            for s in &st.stores {
                mem[s.var] = s.val;
            }
            self.finals.insert((st.regs.clone(), mem));
            return;
        }

        // 1. Execute any eligible op of any thread.
        for t in 0..self.test.threads.len() {
            for j in 0..self.test.threads[t].len() {
                if !self.eligible(st, t, j) {
                    continue;
                }
                match self.test.threads[t][j] {
                    LOp::Fence(FClass::Full) => {
                        // On POWER a sync waits until its group-A stores have
                        // propagated everywhere (cumulativity). Elsewhere the
                        // condition is vacuous.
                        let ready = Self::group_a(st, t, j)
                            .into_iter()
                            .all(|sid| st.stores[sid].mask == self.all_mask);
                        if !ready {
                            continue;
                        }
                        let mut next = st.clone();
                        next.executed[t] |= 1 << j;
                        self.step(&next);
                    }
                    LOp::Fence(_) => {
                        // Weak markers are ordering annotations only.
                        let mut next = st.clone();
                        next.executed[t] |= 1 << j;
                        self.step(&next);
                    }
                    LOp::Load { var, reg, .. } => {
                        let mut next = st.clone();
                        next.executed[t] |= 1 << j;
                        let sid = Self::latest_visible(st, t, var);
                        next.regs[t][reg] = sid.map_or(0, |i| st.stores[i].val);
                        next.touched[t][j] = sid;
                        self.step(&next);
                    }
                    LOp::Store { var, val, release } => {
                        let mut next = st.clone();
                        next.executed[t] |= 1 << j;
                        // Cumulative barriers: a store after an lwsync/sync
                        // may propagate to a thread only after everything its
                        // thread knew before the barrier has. A release store
                        // (lowered as `lwsync; st` on POWER) is cumulative
                        // over everything program-before itself.
                        let prereqs = if self.model.multi_copy_atomic() {
                            vec![]
                        } else if release {
                            Self::group_a(st, t, j)
                        } else {
                            let barrier = (0..j).rev().find(|&i| {
                                matches!(
                                    self.test.threads[t][i],
                                    LOp::Fence(FClass::Full | FClass::LwSync)
                                )
                            });
                            match barrier {
                                Some(b) => Self::group_a(st, t, b),
                                None => vec![],
                            }
                        };
                        let mask = if self.model.multi_copy_atomic() {
                            self.all_mask
                        } else {
                            1 << t
                        };
                        let sid = next.stores.len();
                        next.stores.push(StoreRec {
                            var,
                            val,
                            owner: t,
                            mask,
                            prereqs,
                        });
                        next.touched[t][j] = Some(sid);
                        self.step(&next);
                    }
                }
            }
        }

        // 2. Propagate a store to one more thread (non-MCA models only).
        if !self.model.multi_copy_atomic() {
            for sid in 0..st.stores.len() {
                let s = &st.stores[sid];
                if s.mask == self.all_mask {
                    continue;
                }
                for u in 0..self.test.threads.len() {
                    if s.mask & (1 << u) != 0 {
                        continue;
                    }
                    let ok = s.prereqs.iter().all(|&p| st.stores[p].mask & (1 << u) != 0);
                    if !ok {
                        continue;
                    }
                    let mut next = st.clone();
                    next.stores[sid].mask |= 1 << u;
                    self.step(&next);
                }
            }
        }
    }
}

/// Enumerate all final register states of `test` under `model`.
///
/// # Panics
///
/// Panics if the test has more than 32 threads or more than 32 ops on any
/// thread — both are bitmask-width limits of the state encoding.
#[must_use]
pub fn explore(test: &LitmusTest, model: ModelKind) -> OutcomeSet {
    let nthreads = test.threads.len();
    assert!(nthreads <= 32, "thread count limited by bitmask width");
    for t in &test.threads {
        assert!(
            t.len() <= 32,
            "per-thread op count limited by bitmask width"
        );
    }
    let regs: Vec<Vec<u32>> = test
        .threads
        .iter()
        .map(|ops| {
            let n = ops
                .iter()
                .filter_map(|o| match o {
                    LOp::Load { reg, .. } => Some(*reg + 1),
                    _ => None,
                })
                .max()
                .unwrap_or(0);
            vec![0; n]
        })
        .collect();
    let init = State {
        executed: vec![0; nthreads],
        regs,
        stores: vec![],
        touched: test
            .threads
            .iter()
            .map(|ops| vec![None; ops.len()])
            .collect(),
    };
    let mut ex = Explorer {
        test,
        model,
        all_mask: (1u32 << nthreads) - 1,
        num_vars: test.num_vars(),
        seen: HashSet::new(),
        finals: HashSet::new(),
    };
    ex.step(&init);
    OutcomeSet {
        states_visited: ex.seen.len(),
        finals: ex.finals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::DepKind;

    fn st(var: usize, val: u32) -> LOp {
        LOp::Store {
            var,
            val,
            release: false,
        }
    }

    fn ld(var: usize, reg: usize) -> LOp {
        LOp::Load {
            var,
            reg,
            acquire: false,
            dep: None,
        }
    }

    #[test]
    fn single_thread_reads_own_store() {
        let t = LitmusTest {
            name: "self".into(),
            threads: vec![vec![st(0, 1), ld(0, 0)]],
            interesting: vec![(0, 0, 1)],
            store_deps: vec![],
            memory: vec![],
        };
        for model in [
            ModelKind::Sc,
            ModelKind::Tso,
            ModelKind::ArmV8,
            ModelKind::Power,
        ] {
            let out = explore(&t, model);
            assert_eq!(out.len(), 1, "{model:?}");
            assert!(out.allows(&t.interesting), "{model:?}");
        }
    }

    #[test]
    fn sb_weak_outcome_per_model() {
        // SB: both threads store then read the other's variable.
        let t = LitmusTest {
            name: "SB".into(),
            threads: vec![vec![st(0, 1), ld(1, 0)], vec![st(1, 1), ld(0, 0)]],
            interesting: vec![(0, 0, 0), (1, 0, 0)],
            store_deps: vec![],
            memory: vec![],
        };
        assert!(
            !explore(&t, ModelKind::Sc).allows(&t.interesting),
            "SC forbids SB"
        );
        assert!(
            explore(&t, ModelKind::Tso).allows(&t.interesting),
            "TSO allows SB"
        );
        assert!(explore(&t, ModelKind::ArmV8).allows(&t.interesting));
        assert!(explore(&t, ModelKind::Power).allows(&t.interesting));
    }

    #[test]
    fn sb_with_full_fences_forbidden_everywhere() {
        let t = LitmusTest {
            name: "SB+fences".into(),
            threads: vec![
                vec![st(0, 1), LOp::Fence(FClass::Full), ld(1, 0)],
                vec![st(1, 1), LOp::Fence(FClass::Full), ld(0, 0)],
            ],
            interesting: vec![(0, 0, 0), (1, 0, 0)],
            store_deps: vec![],
            memory: vec![],
        };
        for model in [
            ModelKind::Sc,
            ModelKind::Tso,
            ModelKind::ArmV8,
            ModelKind::Power,
        ] {
            assert!(
                !explore(&t, model).allows(&t.interesting),
                "{model:?} must forbid SB+fences"
            );
        }
    }

    #[test]
    fn mp_weak_outcome_needs_relaxed_model() {
        let t = LitmusTest {
            name: "MP".into(),
            threads: vec![vec![st(0, 1), st(1, 1)], vec![ld(1, 0), ld(0, 1)]],
            // Observer sees the flag but not the data.
            interesting: vec![(1, 0, 1), (1, 1, 0)],
            store_deps: vec![],
            memory: vec![],
        };
        assert!(!explore(&t, ModelKind::Sc).allows(&t.interesting));
        assert!(!explore(&t, ModelKind::Tso).allows(&t.interesting));
        assert!(explore(&t, ModelKind::ArmV8).allows(&t.interesting));
        assert!(explore(&t, ModelKind::Power).allows(&t.interesting));
    }

    #[test]
    fn mp_with_lwsync_and_addr_dep_forbidden_on_power() {
        let t = LitmusTest {
            name: "MP+lwsync+addr".into(),
            threads: vec![
                vec![st(0, 1), LOp::Fence(FClass::LwSync), st(1, 1)],
                vec![
                    ld(1, 0),
                    LOp::Load {
                        var: 0,
                        reg: 1,
                        acquire: false,
                        dep: Some((0, DepKind::Addr)),
                    },
                ],
            ],
            interesting: vec![(1, 0, 1), (1, 1, 0)],
            store_deps: vec![],
            memory: vec![],
        };
        assert!(!explore(&t, ModelKind::Power).allows(&t.interesting));
        assert!(!explore(&t, ModelKind::ArmV8).allows(&t.interesting));
    }

    #[test]
    fn lwsync_does_not_forbid_sb() {
        let t = LitmusTest {
            name: "SB+lwsyncs".into(),
            threads: vec![
                vec![st(0, 1), LOp::Fence(FClass::LwSync), ld(1, 0)],
                vec![st(1, 1), LOp::Fence(FClass::LwSync), ld(0, 0)],
            ],
            interesting: vec![(0, 0, 0), (1, 0, 0)],
            store_deps: vec![],
            memory: vec![],
        };
        assert!(
            explore(&t, ModelKind::Power).allows(&t.interesting),
            "lwsync leaves store->load unordered"
        );
    }

    #[test]
    fn iriw_with_addr_deps_power_only() {
        // Two writers, two readers that disagree about the order of the
        // writes — the canonical non-multi-copy-atomicity witness.
        let reader = |first: usize, second: usize| {
            vec![
                ld(first, 0),
                LOp::Load {
                    var: second,
                    reg: 1,
                    acquire: false,
                    dep: Some((0, DepKind::Addr)),
                },
            ]
        };
        let t = LitmusTest {
            name: "IRIW+addrs".into(),
            threads: vec![vec![st(0, 1)], vec![st(1, 1)], reader(0, 1), reader(1, 0)],
            interesting: vec![(2, 0, 1), (2, 1, 0), (3, 0, 1), (3, 1, 0)],
            store_deps: vec![],
            memory: vec![],
        };
        assert!(
            explore(&t, ModelKind::Power).allows(&t.interesting),
            "POWER is non-MCA: IRIW+addrs observable"
        );
        assert!(
            !explore(&t, ModelKind::ArmV8).allows(&t.interesting),
            "ARMv8 is MCA: IRIW+addrs forbidden"
        );
        assert!(!explore(&t, ModelKind::Tso).allows(&t.interesting));
    }

    #[test]
    fn iriw_with_syncs_forbidden_on_power() {
        let reader = |first: usize, second: usize| {
            vec![ld(first, 0), LOp::Fence(FClass::Full), ld(second, 1)]
        };
        let t = LitmusTest {
            name: "IRIW+syncs".into(),
            threads: vec![vec![st(0, 1)], vec![st(1, 1)], reader(0, 1), reader(1, 0)],
            interesting: vec![(2, 0, 1), (2, 1, 0), (3, 0, 1), (3, 1, 0)],
            store_deps: vec![],
            memory: vec![],
        };
        assert!(
            !explore(&t, ModelKind::Power).allows(&t.interesting),
            "sync restores IRIW order on POWER"
        );
    }

    #[test]
    fn coherence_corr() {
        // CoRR: reads of the same variable by one thread may not go backwards.
        let t = LitmusTest {
            name: "CoRR".into(),
            threads: vec![vec![st(0, 1)], vec![ld(0, 0), ld(0, 1)]],
            interesting: vec![(1, 0, 1), (1, 1, 0)],
            store_deps: vec![],
            memory: vec![],
        };
        for model in [
            ModelKind::Sc,
            ModelKind::Tso,
            ModelKind::ArmV8,
            ModelKind::Power,
        ] {
            assert!(
                !explore(&t, model).allows(&t.interesting),
                "{model:?} must preserve per-location coherence"
            );
        }
    }
}
