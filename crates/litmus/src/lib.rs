//! # wmm-litmus
//!
//! An operational weak-memory **semantics** explorer used to validate that
//! the fence kinds of [`wmm_sim`] mean what the timing model assumes.
//!
//! The paper's methodology leans on the operational models of Sarkar et al.
//! (POWER, PLDI 2011) and Flur et al. (`ARMv8`, POPL 2016) for what fences
//! *do*; a reproduction needs an in-repo ground truth. This crate implements
//! a simplified but exhaustive operational model:
//!
//! * per-thread **out-of-order execution**: an instruction may execute before
//!   an earlier one unless an ordering rule applies (program order on the
//!   same location, fences, acquire/release attributes, address/data/control
//!   dependencies, or the model's baseline strength);
//! * a **store propagation** subsystem: on POWER, committed stores become
//!   visible to other threads one at a time (non-multi-copy-atomicity), with
//!   `lwsync`/`sync` cumulativity enforced through per-store prerequisite
//!   sets; on SC/TSO/ARMv8 propagation is instantaneous (multi-copy atomic);
//! * exhaustive **DFS with memoisation** over all scheduling and propagation
//!   choices, collecting the set of reachable final register states.
//!
//! Classic litmus tests (SB, MP, LB, WRC, IRIW, `CoRR`, S, R, 2+2W and fenced
//! variants) with per-model allow/forbid expectations live in [`suite`].
//!
//! ## Known approximations
//!
//! Store-to-load forwarding is modelled as program order on the same
//! location, so outcomes that require reading one's own store *before* it is
//! globally visible (e.g. SB+rfi variants such as `n6`) are not produced.
//! None of the paper's conclusions depend on those shapes.
//!
//! ```
//! use wmm_litmus::{explore, ModelKind, suite};
//!
//! let sb = suite::store_buffering();
//! // The weak outcome of SB is forbidden under SC but observable on ARMv8.
//! assert!(!explore(&sb.test, ModelKind::Sc).allows(&sb.test.interesting));
//! assert!(explore(&sb.test, ModelKind::ArmV8).allows(&sb.test.interesting));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod explore;
#[warn(clippy::pedantic)]
pub mod lint;
pub mod ops;
#[warn(clippy::pedantic)]
pub mod rewrite;
pub mod suite;

pub use explore::{explore, ExploreCache, OutcomeSet};
pub use lint::{lint_corpus, lint_test, LintIssue};
pub use ops::{DepKind, FClass, LOp, LitmusTest, ModelKind, Outcome};
pub use rewrite::Reinforce;
