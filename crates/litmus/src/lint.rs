//! Well-formedness lint for [`LitmusTest`] programs.
//!
//! Both the hand-written suite and the generated corpus flow through this
//! lint before any oracle sees them. The checks are *value-level static*
//! checks on purpose: an explorer-reachability check for "unreachable
//! interesting outcome" would flag the coherence shapes (`CoRR`, `CoWW`)
//! whose entire point is that the outcome is forbidden everywhere. Instead
//! the lint asks whether each asserted value could ever *syntactically*
//! arise — a register can only hold 0 or a value some store writes to a
//! variable that register loads; a memory conjunct can only name a value
//! some store writes to that variable.

use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::ops::{LOp, LitmusTest};

/// One well-formedness finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LintIssue {
    /// Two tests in the linted set share a name.
    DuplicateName {
        /// The colliding name.
        name: String,
    },
    /// An outcome conjunct names a thread the test does not have.
    OutcomeThreadOutOfRange {
        /// Thread index in the conjunct.
        thread: usize,
    },
    /// An outcome conjunct names a register no load in that thread writes.
    OutcomeRegisterUndefined {
        /// Thread index.
        thread: usize,
        /// Register index.
        reg: usize,
    },
    /// An outcome conjunct asserts a value that is neither the initial 0
    /// nor stored to any variable the register loads from — the conjunct
    /// can never hold, so the `interesting` outcome is unreachable.
    OutcomeValueUnreachable {
        /// Thread index.
        thread: usize,
        /// Register index.
        reg: usize,
        /// The impossible value.
        value: u32,
    },
    /// Two conjuncts constrain the same register to different values.
    OutcomeContradiction {
        /// Thread index.
        thread: usize,
        /// Register index.
        reg: usize,
    },
    /// A memory conjunct names a variable no operation accesses.
    MemoryVarUndefined {
        /// Variable index.
        var: usize,
    },
    /// A memory conjunct asserts a final value no store writes to that
    /// variable (and which is not the initial 0).
    MemoryValueUnreachable {
        /// Variable index.
        var: usize,
        /// The impossible value.
        value: u32,
    },
    /// Two memory conjuncts constrain the same variable differently.
    MemoryContradiction {
        /// Variable index.
        var: usize,
    },
    /// A store writes the value 0, which is indistinguishable from the
    /// initial state — outcomes lose their meaning.
    StoreWritesZero {
        /// Thread index.
        thread: usize,
        /// Op index.
        op: usize,
    },
    /// Two loads in one thread target the same destination register, so
    /// the final register file cannot witness both.
    DuplicateLoadRegister {
        /// Thread index.
        thread: usize,
        /// Register index.
        reg: usize,
    },
    /// A dependency annotation points at an op that is not an earlier load
    /// in the same thread.
    BadDependency {
        /// Thread index.
        thread: usize,
        /// Op index carrying the annotation.
        op: usize,
    },
    /// A `store_deps` entry names a thread/op pair that is out of range or
    /// not a store.
    BadStoreDep {
        /// Thread index in the entry.
        thread: usize,
        /// Op index in the entry.
        op: usize,
    },
    /// The test asserts nothing at all (no register conjuncts, no memory
    /// conjuncts): every run trivially satisfies it.
    VacuousOutcome,
}

impl fmt::Display for LintIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintIssue::DuplicateName { name } => write!(f, "duplicate test name {name:?}"),
            LintIssue::OutcomeThreadOutOfRange { thread } => {
                write!(f, "outcome names nonexistent thread {thread}")
            }
            LintIssue::OutcomeRegisterUndefined { thread, reg } => {
                write!(
                    f,
                    "outcome names register r{reg} no load in t{thread} writes"
                )
            }
            LintIssue::OutcomeValueUnreachable { thread, reg, value } => write!(
                f,
                "outcome asserts t{thread}:r{reg}={value}, but no store writes {value} \
                 to a variable that register loads"
            ),
            LintIssue::OutcomeContradiction { thread, reg } => {
                write!(
                    f,
                    "outcome constrains t{thread}:r{reg} to two different values"
                )
            }
            LintIssue::MemoryVarUndefined { var } => {
                write!(f, "memory conjunct names unaccessed variable {var}")
            }
            LintIssue::MemoryValueUnreachable { var, value } => {
                write!(f, "memory conjunct asserts var{var}={value}, never stored")
            }
            LintIssue::MemoryContradiction { var } => {
                write!(
                    f,
                    "memory conjuncts constrain var{var} to two different values"
                )
            }
            LintIssue::StoreWritesZero { thread, op } => write!(
                f,
                "store at t{thread} op {op} writes 0, indistinguishable from init"
            ),
            LintIssue::DuplicateLoadRegister { thread, reg } => {
                write!(f, "two loads in t{thread} write the same register r{reg}")
            }
            LintIssue::BadDependency { thread, op } => write!(
                f,
                "dependency at t{thread} op {op} does not point at an earlier load"
            ),
            LintIssue::BadStoreDep { thread, op } => {
                write!(f, "store_deps entry (t{thread}, op {op}) is not a store")
            }
            LintIssue::VacuousOutcome => {
                write!(f, "test asserts nothing (empty outcome and memory)")
            }
        }
    }
}

/// Values each `(thread, reg)` could syntactically hold: 0 plus every value
/// stored (by any thread) to any variable the register loads from.
fn possible_reg_values(test: &LitmusTest) -> HashMap<(usize, usize), HashSet<u32>> {
    let mut stored: HashMap<usize, HashSet<u32>> = HashMap::new();
    for ops in &test.threads {
        for op in ops {
            if let LOp::Store { var, val, .. } = op {
                stored.entry(*var).or_default().insert(*val);
            }
        }
    }
    let mut possible: HashMap<(usize, usize), HashSet<u32>> = HashMap::new();
    for (t, ops) in test.threads.iter().enumerate() {
        for op in ops {
            if let LOp::Load { var, reg, .. } = op {
                let entry = possible.entry((t, *reg)).or_default();
                entry.insert(0);
                if let Some(vals) = stored.get(var) {
                    entry.extend(vals.iter().copied());
                }
            }
        }
    }
    possible
}

/// Lint a single test. Returns every issue found (empty = well-formed).
#[must_use]
#[allow(clippy::too_many_lines)] // one arm per check; splitting hides the checklist
pub fn lint_test(test: &LitmusTest) -> Vec<LintIssue> {
    let mut issues = vec![];
    let nthreads = test.threads.len();

    // Per-thread structural checks: zero stores, duplicate load registers,
    // malformed load-side dependencies.
    for (t, ops) in test.threads.iter().enumerate() {
        let mut seen_regs: HashSet<usize> = HashSet::new();
        for (j, op) in ops.iter().enumerate() {
            match op {
                LOp::Store { val: 0, .. } => {
                    issues.push(LintIssue::StoreWritesZero { thread: t, op: j });
                }
                LOp::Load { reg, dep, .. } => {
                    if !seen_regs.insert(*reg) {
                        issues.push(LintIssue::DuplicateLoadRegister {
                            thread: t,
                            reg: *reg,
                        });
                    }
                    if let Some((src, _)) = dep {
                        let ok = *src < j && matches!(ops.get(*src), Some(LOp::Load { .. }));
                        if !ok {
                            issues.push(LintIssue::BadDependency { thread: t, op: j });
                        }
                    }
                }
                _ => {}
            }
        }
    }

    // Store-side dependency table.
    for &(t, j, src, _) in &test.store_deps {
        let is_store = test
            .threads
            .get(t)
            .and_then(|ops| ops.get(j))
            .is_some_and(LOp::is_store);
        if !is_store {
            issues.push(LintIssue::BadStoreDep { thread: t, op: j });
            continue;
        }
        let src_is_earlier_load =
            src < j && matches!(test.threads[t].get(src), Some(LOp::Load { .. }));
        if !src_is_earlier_load {
            issues.push(LintIssue::BadDependency { thread: t, op: j });
        }
    }

    // Register conjuncts.
    let possible = possible_reg_values(test);
    let mut pinned_regs: HashMap<(usize, usize), u32> = HashMap::new();
    for &(t, r, v) in &test.interesting {
        if t >= nthreads {
            issues.push(LintIssue::OutcomeThreadOutOfRange { thread: t });
            continue;
        }
        let Some(vals) = possible.get(&(t, r)) else {
            issues.push(LintIssue::OutcomeRegisterUndefined { thread: t, reg: r });
            continue;
        };
        if !vals.contains(&v) {
            issues.push(LintIssue::OutcomeValueUnreachable {
                thread: t,
                reg: r,
                value: v,
            });
        }
        if let Some(&prev) = pinned_regs.get(&(t, r)) {
            if prev != v {
                issues.push(LintIssue::OutcomeContradiction { thread: t, reg: r });
            }
        }
        pinned_regs.insert((t, r), v);
    }

    // Memory conjuncts.
    let num_vars = test.num_vars();
    let mut stored_to: HashMap<usize, HashSet<u32>> = HashMap::new();
    for ops in &test.threads {
        for op in ops {
            if let LOp::Store { var, val, .. } = op {
                stored_to.entry(*var).or_default().insert(*val);
            }
        }
    }
    let mut pinned_mem: HashMap<usize, u32> = HashMap::new();
    for &(var, v) in &test.memory {
        if var >= num_vars {
            issues.push(LintIssue::MemoryVarUndefined { var });
            continue;
        }
        let reachable = v == 0 || stored_to.get(&var).is_some_and(|s| s.contains(&v));
        if !reachable {
            issues.push(LintIssue::MemoryValueUnreachable { var, value: v });
        }
        if let Some(&prev) = pinned_mem.get(&var) {
            if prev != v {
                issues.push(LintIssue::MemoryContradiction { var });
            }
        }
        pinned_mem.insert(var, v);
    }

    if test.interesting.is_empty() && test.memory.is_empty() {
        issues.push(LintIssue::VacuousOutcome);
    }

    issues
}

/// Lint a whole corpus: per-test checks plus cross-test duplicate-name
/// detection. Returns `(test name, issue)` pairs.
pub fn lint_corpus<'a, I>(tests: I) -> Vec<(String, LintIssue)>
where
    I: IntoIterator<Item = &'a LitmusTest>,
{
    let mut findings = vec![];
    let mut names: HashSet<&str> = HashSet::new();
    for test in tests {
        if !names.insert(&test.name) {
            findings.push((
                test.name.clone(),
                LintIssue::DuplicateName {
                    name: test.name.clone(),
                },
            ));
        }
        for issue in lint_test(test) {
            findings.push((test.name.clone(), issue));
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::DepKind;
    use crate::suite::full_suite;

    fn st(var: usize, val: u32) -> LOp {
        LOp::Store {
            var,
            val,
            release: false,
        }
    }

    fn ld(var: usize, reg: usize) -> LOp {
        LOp::Load {
            var,
            reg,
            acquire: false,
            dep: None,
        }
    }

    #[test]
    fn hand_suite_is_lint_clean() {
        let tests: Vec<_> = full_suite().into_iter().map(|e| e.test).collect();
        let findings = lint_corpus(tests.iter());
        assert!(findings.is_empty(), "suite lint findings: {findings:?}");
    }

    #[test]
    fn catches_undefined_register_and_unreachable_value() {
        let t = LitmusTest {
            name: "bad".into(),
            threads: vec![vec![st(0, 1), ld(1, 0)]],
            interesting: vec![(0, 5, 1), (0, 0, 9)],
            store_deps: vec![],
            memory: vec![],
        };
        let issues = lint_test(&t);
        assert!(issues.contains(&LintIssue::OutcomeRegisterUndefined { thread: 0, reg: 5 }));
        assert!(issues.contains(&LintIssue::OutcomeValueUnreachable {
            thread: 0,
            reg: 0,
            value: 9
        }));
    }

    #[test]
    fn catches_zero_store_bad_deps_and_duplicates() {
        let t = LitmusTest {
            name: "bad2".into(),
            threads: vec![vec![st(0, 0), ld(1, 0), ld(2, 0)]],
            interesting: vec![(0, 0, 0)],
            store_deps: vec![(0, 0, 2, DepKind::Data), (0, 1, 0, DepKind::Data)],
            memory: vec![(7, 1)],
        };
        let issues = lint_test(&t);
        assert!(issues.contains(&LintIssue::StoreWritesZero { thread: 0, op: 0 }));
        assert!(issues.contains(&LintIssue::DuplicateLoadRegister { thread: 0, reg: 0 }));
        // store_deps (0,0,2): src=2 is not earlier than op 0.
        assert!(issues.contains(&LintIssue::BadDependency { thread: 0, op: 0 }));
        // store_deps (0,1): op 1 is a load, not a store.
        assert!(issues.contains(&LintIssue::BadStoreDep { thread: 0, op: 1 }));
        assert!(issues.contains(&LintIssue::MemoryVarUndefined { var: 7 }));
    }

    #[test]
    fn catches_duplicate_names_and_vacuous_tests() {
        let a = LitmusTest {
            name: "same".into(),
            threads: vec![vec![st(0, 1)]],
            interesting: vec![],
            store_deps: vec![],
            memory: vec![(0, 1)],
        };
        let b = LitmusTest {
            name: "same".into(),
            threads: vec![vec![st(0, 1)]],
            interesting: vec![],
            store_deps: vec![],
            memory: vec![],
        };
        let findings = lint_corpus([&a, &b]);
        assert!(findings
            .iter()
            .any(|(_, i)| matches!(i, LintIssue::DuplicateName { .. })));
        assert!(findings
            .iter()
            .any(|(n, i)| n == "same" && *i == LintIssue::VacuousOutcome));
    }

    #[test]
    fn catches_contradictions() {
        let t = LitmusTest {
            name: "contra".into(),
            threads: vec![vec![st(0, 1), st(0, 2)], vec![ld(0, 0)]],
            interesting: vec![(1, 0, 1), (1, 0, 2)],
            store_deps: vec![],
            memory: vec![(0, 1), (0, 2)],
        };
        let issues = lint_test(&t);
        assert!(issues.contains(&LintIssue::OutcomeContradiction { thread: 1, reg: 0 }));
        assert!(issues.contains(&LintIssue::MemoryContradiction { var: 0 }));
    }
}
