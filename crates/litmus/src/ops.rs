//! Litmus-test vocabulary: operations, fence classes, dependency kinds,
//! memory models and the per-thread ordering relation.

use wmm_sim::isa::FenceKind;

/// Memory models the explorer understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Sequential consistency: program order is execution order.
    Sc,
    /// Total store order (x86-class): only store→load may reorder.
    Tso,
    /// ARMv8-class: relaxed ordering, but multi-copy atomic.
    ArmV8,
    /// POWER-class: relaxed ordering and non-multi-copy-atomic stores with
    /// cumulative barriers.
    Power,
}

impl ModelKind {
    /// Whether committed stores become visible to all threads at once.
    #[must_use]
    pub fn multi_copy_atomic(self) -> bool {
        !matches!(self, ModelKind::Power)
    }

    /// Short label for reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ModelKind::Sc => "SC",
            ModelKind::Tso => "TSO",
            ModelKind::ArmV8 => "ARMv8",
            ModelKind::Power => "POWER",
        }
    }
}

/// Fence classes as the *semantics* sees them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FClass {
    /// Full barrier: `dmb ish` / `sync`. Orders all pairs, and on POWER
    /// waits until its group-A stores have propagated everywhere.
    Full,
    /// POWER `lwsync`: orders all pairs except store→load; cumulative.
    LwSync,
    /// `ARMv8` `dmb ishst`: orders store→store only.
    StSt,
    /// `ARMv8` `dmb ishld`: orders load→load and load→store.
    LdLdSt,
}

impl FClass {
    /// Whether the class orders the pair (`a_is_store`, `b_is_store`).
    #[must_use]
    pub fn covers(self, a_is_store: bool, b_is_store: bool) -> bool {
        match self {
            FClass::Full => true,
            // Everything except store->load.
            FClass::LwSync => !a_is_store || b_is_store,
            FClass::StSt => a_is_store && b_is_store,
            FClass::LdLdSt => !a_is_store,
        }
    }

    /// Map a simulator fence instruction to its semantic class, if it has
    /// one (`Compiler` has none; `Isb` only matters inside a `ctrl+isb`
    /// dependency, expressed via [`DepKind::CtrlIsb`]).
    #[must_use]
    pub fn of_fence(kind: FenceKind) -> Option<FClass> {
        match kind {
            FenceKind::DmbIsh | FenceKind::HwSync => Some(FClass::Full),
            FenceKind::LwSync => Some(FClass::LwSync),
            FenceKind::DmbIshSt => Some(FClass::StSt),
            FenceKind::DmbIshLd => Some(FClass::LdLdSt),
            FenceKind::Isb | FenceKind::Compiler => None,
        }
    }
}

/// Kinds of syntactic dependency from a load to a later operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// The loaded value feeds the address of the later access: orders the
    /// load before any dependent access.
    Addr,
    /// The loaded value feeds the stored data: orders load before the store.
    Data,
    /// The loaded value controls a branch guarding the access: orders the
    /// load before dependent *stores* only — dependent loads may still be
    /// speculated past the branch. This is exactly why the kernel's
    /// `read_barrier_depends` / `ctrl` strategy discussion (§4.3) exists.
    Ctrl,
    /// Control dependency plus `isb`: orders the load before dependent loads
    /// as well (the kernel's `ctrl+isb` strategy of Fig. 10).
    CtrlIsb,
}

impl DepKind {
    /// Does this dependency order the source load before an op where
    /// `b_is_store` says whether the dependent op is a store?
    #[must_use]
    pub fn orders(self, b_is_store: bool) -> bool {
        match self {
            DepKind::Addr | DepKind::Data | DepKind::CtrlIsb => true,
            DepKind::Ctrl => b_is_store,
        }
    }
}

/// One litmus operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LOp {
    /// Store `val` to `var`.
    Store {
        /// Variable index.
        var: usize,
        /// Value written (non-zero by convention; init is 0).
        val: u32,
        /// Release attribute (`stlr`).
        release: bool,
    },
    /// Load `var` into register `reg`.
    Load {
        /// Variable index.
        var: usize,
        /// Destination register index (unique within the thread).
        reg: usize,
        /// Acquire attribute (`ldar`).
        acquire: bool,
        /// Dependency on an earlier load in the same thread, by op index.
        dep: Option<(usize, DepKind)>,
    },
    /// A fence of the given class. `Full` fences execute as blocking
    /// operations (they wait for propagation on POWER); the weaker classes
    /// are ordering markers only.
    Fence(FClass),
}

impl LOp {
    /// Is this a memory access (load or store)?
    #[must_use]
    pub fn is_access(&self) -> bool {
        !matches!(self, LOp::Fence(_))
    }

    /// Is this a store?
    #[must_use]
    pub fn is_store(&self) -> bool {
        matches!(self, LOp::Store { .. })
    }

    /// Variable accessed, if any.
    #[must_use]
    pub fn var(&self) -> Option<usize> {
        match self {
            LOp::Store { var, .. } | LOp::Load { var, .. } => Some(*var),
            LOp::Fence(_) => None,
        }
    }

    /// Dependency annotation, if this is a dependent op. Stores may carry a
    /// dependency too (data/ctrl); encode those in [`LitmusTest::store_deps`].
    #[must_use]
    pub fn dep(&self) -> Option<(usize, DepKind)> {
        match self {
            LOp::Load { dep, .. } => *dep,
            _ => None,
        }
    }
}

/// A register-value assertion: `(thread, reg) = value` conjuncts. The
/// "interesting" (usually weak) outcome of a litmus test.
pub type Outcome = Vec<(usize, usize, u32)>;

/// A complete litmus test.
#[derive(Debug, Clone)]
pub struct LitmusTest {
    /// Name in the standard litmus naming convention (SB, MP+dmbs, …).
    pub name: String,
    /// Per-thread operation lists.
    pub threads: Vec<Vec<LOp>>,
    /// The outcome whose reachability the test is about.
    pub interesting: Outcome,
    /// Store-side dependencies: `(thread, store_op_idx) -> (load_op_idx, kind)`.
    /// Kept out of `LOp::Store` to keep construction terse.
    pub store_deps: Vec<(usize, usize, usize, DepKind)>,
    /// Final-memory conjuncts of the interesting outcome: `(var, value)`.
    /// Empty for register-only tests; used by the S/R/2+2W/CoWW shapes
    /// whose conditions constrain the coherence-final value.
    pub memory: Vec<(usize, u32)>,
}

impl LitmusTest {
    /// Number of variables mentioned.
    pub fn num_vars(&self) -> usize {
        self.threads
            .iter()
            .flatten()
            .filter_map(LOp::var)
            .max()
            .map_or(0, |v| v + 1)
    }

    /// Dependency attached to op `(t, j)`, whether load- or store-side.
    #[must_use]
    pub fn dep_of(&self, t: usize, j: usize) -> Option<(usize, DepKind)> {
        if let Some(d) = self.threads[t][j].dep() {
            return Some(d);
        }
        self.store_deps
            .iter()
            .find(|&&(dt, dj, _, _)| dt == t && dj == j)
            .map(|&(_, _, src, kind)| (src, kind))
    }

    /// The per-thread *ordering relation*: must op `i` execute before op `j`
    /// (both indices into thread `t`, `i < j`) under `model`?
    ///
    /// This is where each model's strength is defined:
    /// * SC orders everything;
    /// * TSO orders everything except store→load on different variables;
    /// * ARMv8/POWER order only same-location pairs, fenced pairs,
    ///   acquire/release pairs, and dependency pairs.
    #[must_use]
    #[allow(clippy::many_single_char_names)] // t/i/j are positions, a/b the ops
    pub fn ordered(&self, model: ModelKind, t: usize, i: usize, j: usize) -> bool {
        debug_assert!(i < j);
        let a = &self.threads[t][i];
        let b = &self.threads[t][j];

        // Full fences execute in program order against everything.
        if matches!(a, LOp::Fence(FClass::Full)) || matches!(b, LOp::Fence(FClass::Full)) {
            return true;
        }
        // Weak fence markers do not themselves execute; they order access
        // pairs via `fence_between` below. Two markers never block.
        if !a.is_access() || !b.is_access() {
            return false;
        }

        match model {
            ModelKind::Sc => return true,
            ModelKind::Tso => {
                // Only store->load (different location) may reorder.
                if !(a.is_store() && !b.is_store() && a.var() != b.var()) {
                    return true;
                }
            }
            ModelKind::ArmV8 | ModelKind::Power => {}
        }

        // Coherence / program order per location.
        if a.var() == b.var() {
            return true;
        }
        // Acquire loads order against all later accesses.
        if let LOp::Load { acquire: true, .. } = a {
            return true;
        }
        // Release stores order after all earlier accesses.
        if let LOp::Store { release: true, .. } = b {
            return true;
        }
        // ARMv8 release/acquire is RCsc: an acquire load stays ordered
        // after an earlier release store (`stlr; ldar` do not reorder).
        // POWER's release is lwsync-flavoured (RCpc): store->load escapes.
        if model == ModelKind::ArmV8 {
            if let (LOp::Store { release: true, .. }, LOp::Load { acquire: true, .. }) = (a, b) {
                return true;
            }
        }
        // Dependencies.
        if let Some((src, kind)) = self.dep_of(t, j) {
            if src == i && kind.orders(b.is_store()) {
                return true;
            }
        }
        // A fence marker between them that covers the pair.
        for k in (i + 1)..j {
            if let LOp::Fence(class) = self.threads[t][k] {
                if class.covers(a.is_store(), b.is_store()) {
                    return true;
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn st(var: usize, val: u32) -> LOp {
        LOp::Store {
            var,
            val,
            release: false,
        }
    }

    fn ld(var: usize, reg: usize) -> LOp {
        LOp::Load {
            var,
            reg,
            acquire: false,
            dep: None,
        }
    }

    fn two_op_test(a: LOp, b: LOp) -> LitmusTest {
        LitmusTest {
            name: "pair".into(),
            threads: vec![vec![a, b]],
            interesting: vec![],
            store_deps: vec![],
            memory: vec![],
        }
    }

    #[test]
    fn sc_orders_everything() {
        let t = two_op_test(st(0, 1), ld(1, 0));
        assert!(t.ordered(ModelKind::Sc, 0, 0, 1));
    }

    #[test]
    fn tso_relaxes_only_store_load() {
        let wr = two_op_test(st(0, 1), ld(1, 0));
        assert!(!wr.ordered(ModelKind::Tso, 0, 0, 1), "W->R may reorder");
        let ww = two_op_test(st(0, 1), st(1, 1));
        assert!(ww.ordered(ModelKind::Tso, 0, 0, 1), "W->W stays ordered");
        let rw = two_op_test(ld(0, 0), st(1, 1));
        assert!(rw.ordered(ModelKind::Tso, 0, 0, 1), "R->W stays ordered");
        let rr = two_op_test(ld(0, 0), ld(1, 1));
        assert!(rr.ordered(ModelKind::Tso, 0, 0, 1), "R->R stays ordered");
    }

    #[test]
    fn relaxed_orders_same_location_only() {
        let same = two_op_test(st(0, 1), ld(0, 0));
        assert!(same.ordered(ModelKind::ArmV8, 0, 0, 1));
        for (a, b) in [
            (st(0, 1), ld(1, 0)),
            (st(0, 1), st(1, 1)),
            (ld(0, 0), st(1, 1)),
            (ld(0, 0), ld(1, 1)),
        ] {
            let t = two_op_test(a, b);
            assert!(!t.ordered(ModelKind::ArmV8, 0, 0, 1), "{a:?} -> {b:?}");
        }
    }

    #[test]
    fn fence_classes_cover_expected_pairs() {
        // (a_is_store, b_is_store)
        assert!(FClass::Full.covers(true, false));
        assert!(
            !FClass::LwSync.covers(true, false),
            "lwsync leaves W->R open"
        );
        assert!(FClass::LwSync.covers(true, true));
        assert!(FClass::LwSync.covers(false, true));
        assert!(FClass::StSt.covers(true, true));
        assert!(!FClass::StSt.covers(false, true));
        assert!(FClass::LdLdSt.covers(false, true));
        assert!(FClass::LdLdSt.covers(false, false));
        assert!(!FClass::LdLdSt.covers(true, true));
    }

    #[test]
    fn marker_fence_orders_covered_pair() {
        let t = LitmusTest {
            name: "w-wmb-w".into(),
            threads: vec![vec![st(0, 1), LOp::Fence(FClass::StSt), st(1, 1)]],
            interesting: vec![],
            store_deps: vec![],
            memory: vec![],
        };
        assert!(t.ordered(ModelKind::ArmV8, 0, 0, 2));
        // But it does not order loads.
        let t2 = LitmusTest {
            name: "r-wmb-r".into(),
            threads: vec![vec![ld(0, 0), LOp::Fence(FClass::StSt), ld(1, 1)]],
            interesting: vec![],
            store_deps: vec![],
            memory: vec![],
        };
        assert!(!t2.ordered(ModelKind::ArmV8, 0, 0, 2));
    }

    #[test]
    fn ctrl_dep_orders_stores_not_loads() {
        let dep_store = LitmusTest {
            name: "ctrl-store".into(),
            threads: vec![vec![ld(0, 0), st(1, 1)]],
            interesting: vec![],
            store_deps: vec![(0, 1, 0, DepKind::Ctrl)],
            memory: vec![],
        };
        assert!(dep_store.ordered(ModelKind::ArmV8, 0, 0, 1));
        let dep_load = LitmusTest {
            name: "ctrl-load".into(),
            threads: vec![vec![
                ld(0, 0),
                LOp::Load {
                    var: 1,
                    reg: 1,
                    acquire: false,
                    dep: Some((0, DepKind::Ctrl)),
                },
            ]],
            interesting: vec![],
            store_deps: vec![],
            memory: vec![],
        };
        assert!(
            !dep_load.ordered(ModelKind::ArmV8, 0, 0, 1),
            "ctrl does not order dependent loads (speculation)"
        );
        // ...but ctrl+isb does.
        let dep_load_isb = LitmusTest {
            name: "ctrl-isb-load".into(),
            threads: vec![vec![
                ld(0, 0),
                LOp::Load {
                    var: 1,
                    reg: 1,
                    acquire: false,
                    dep: Some((0, DepKind::CtrlIsb)),
                },
            ]],
            interesting: vec![],
            store_deps: vec![],
            memory: vec![],
        };
        assert!(dep_load_isb.ordered(ModelKind::ArmV8, 0, 0, 1));
    }

    #[test]
    fn acquire_release_attributes_order() {
        let acq = LitmusTest {
            name: "acq".into(),
            threads: vec![vec![
                LOp::Load {
                    var: 0,
                    reg: 0,
                    acquire: true,
                    dep: None,
                },
                ld(1, 1),
            ]],
            interesting: vec![],
            store_deps: vec![],
            memory: vec![],
        };
        assert!(acq.ordered(ModelKind::ArmV8, 0, 0, 1));
        let rel = LitmusTest {
            name: "rel".into(),
            threads: vec![vec![
                st(0, 1),
                LOp::Store {
                    var: 1,
                    val: 1,
                    release: true,
                },
            ]],
            interesting: vec![],
            store_deps: vec![],
            memory: vec![],
        };
        assert!(rel.ordered(ModelKind::ArmV8, 0, 0, 1));
    }

    #[test]
    fn fence_kind_mapping() {
        assert_eq!(FClass::of_fence(FenceKind::DmbIsh), Some(FClass::Full));
        assert_eq!(FClass::of_fence(FenceKind::HwSync), Some(FClass::Full));
        assert_eq!(FClass::of_fence(FenceKind::LwSync), Some(FClass::LwSync));
        assert_eq!(FClass::of_fence(FenceKind::DmbIshSt), Some(FClass::StSt));
        assert_eq!(FClass::of_fence(FenceKind::DmbIshLd), Some(FClass::LdLdSt));
        assert_eq!(FClass::of_fence(FenceKind::Compiler), None);
        assert_eq!(FClass::of_fence(FenceKind::Isb), None);
    }
}
