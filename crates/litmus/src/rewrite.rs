//! Reinforcing a litmus test with synthesized ordering instruments.
//!
//! The fence-synthesis layer (`wmm-analyze`) produces placements addressed
//! by *access position* — "a fence of class `C` before access `k` of
//! thread `t`", "upgrade access `k` to acquire". This module applies such
//! a placement back onto a [`LitmusTest`] so the dynamic explorer can
//! validate a synthesized program: after reinforcement the weak outcome
//! must be unreachable.
//!
//! Access positions count only memory accesses (loads and stores), not
//! fences — the coordinate system `wmm_analyze::graph::ProgramGraph` uses,
//! so a placement maps over without translation. Fence insertion keeps
//! every existing dependency annotation pointing at the op it pointed at
//! before (op indices shift; dependency references are fixed up).

use crate::ops::{DepKind, FClass, LOp, LitmusTest};

/// One ordering instrument addressed by access position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reinforce {
    /// Insert a fence of `class` between access `before - 1` and access
    /// `before` of `thread` (`before` equal to the thread's access count
    /// appends after the last access).
    Fence {
        /// Thread index.
        thread: usize,
        /// Access position the fence precedes.
        before: usize,
        /// Semantic fence class.
        class: FClass,
    },
    /// Upgrade the load at access position `pos` to acquire (`ldar`).
    Acquire {
        /// Thread index.
        thread: usize,
        /// Access position of the load.
        pos: usize,
    },
    /// Upgrade the store at access position `pos` to release (`stlr`).
    Release {
        /// Thread index.
        thread: usize,
        /// Access position of the store.
        pos: usize,
    },
    /// Add a syntactic dependency from the load at access position `from`
    /// to the access at position `to` of the same thread.
    Dep {
        /// Thread index.
        thread: usize,
        /// Access position of the source load.
        from: usize,
        /// Access position of the dependent access.
        to: usize,
        /// Dependency kind.
        kind: DepKind,
    },
}

/// Op index of the `pos`-th access of `ops` (`ops.len()` when `pos` is one
/// past the last access, the append slot).
fn op_of_access(ops: &[LOp], pos: usize) -> usize {
    let mut seen = 0;
    for (j, op) in ops.iter().enumerate() {
        if op.is_access() {
            if seen == pos {
                return j;
            }
            seen += 1;
        }
    }
    assert!(
        pos == seen,
        "access position {pos} out of range (thread has {seen} accesses)"
    );
    ops.len()
}

impl LitmusTest {
    /// Apply `items` to a copy of this test: fences insert between the
    /// named accesses, acquire/release upgrades set the access attribute,
    /// and dependencies attach to the dependent op (load-side) or to
    /// [`LitmusTest::store_deps`] (store-side). Existing dependency
    /// annotations survive fence insertion. An existing dependency on the
    /// target access is left untouched.
    ///
    /// # Panics
    ///
    /// Panics when an access position is out of range, when an upgrade
    /// names an access of the wrong role, or when a dependency source is
    /// not a load — a synthesized placement never does any of these.
    #[must_use]
    pub fn reinforced(&self, items: &[Reinforce]) -> LitmusTest {
        let mut test = self.clone();

        // Fences first: they shift op indices, so every existing dependency
        // reference at or past the insertion point moves with its op.
        for item in items {
            if let Reinforce::Fence {
                thread,
                before,
                class,
            } = *item
            {
                let at = op_of_access(&test.threads[thread], before);
                test.threads[thread].insert(at, LOp::Fence(class));
                for op in &mut test.threads[thread][at + 1..] {
                    if let LOp::Load {
                        dep: Some((src, _)),
                        ..
                    } = op
                    {
                        if *src >= at {
                            *src += 1;
                        }
                    }
                }
                for (dt, dj, src, _) in &mut test.store_deps {
                    if *dt == thread {
                        if *dj >= at {
                            *dj += 1;
                        }
                        if *src >= at {
                            *src += 1;
                        }
                    }
                }
            }
        }

        // Attribute upgrades and new dependencies, against post-insertion
        // op indices.
        for item in items {
            match *item {
                Reinforce::Fence { .. } => {}
                Reinforce::Acquire { thread, pos } => {
                    let at = op_of_access(&test.threads[thread], pos);
                    match &mut test.threads[thread][at] {
                        LOp::Load { acquire, .. } => *acquire = true,
                        other => panic!("acquire upgrade on a non-load: {other:?}"),
                    }
                }
                Reinforce::Release { thread, pos } => {
                    let at = op_of_access(&test.threads[thread], pos);
                    match &mut test.threads[thread][at] {
                        LOp::Store { release, .. } => *release = true,
                        other => panic!("release upgrade on a non-store: {other:?}"),
                    }
                }
                Reinforce::Dep {
                    thread,
                    from,
                    to,
                    kind,
                } => {
                    let src = op_of_access(&test.threads[thread], from);
                    let dst = op_of_access(&test.threads[thread], to);
                    assert!(
                        matches!(test.threads[thread][src], LOp::Load { .. }),
                        "dependency source must be a load"
                    );
                    if test.dep_of(thread, dst).is_some() {
                        continue;
                    }
                    match &mut test.threads[thread][dst] {
                        LOp::Load { dep, .. } => *dep = Some((src, kind)),
                        LOp::Store { .. } => test.store_deps.push((thread, dst, src, kind)),
                        LOp::Fence(_) => panic!("dependency target must be an access"),
                    }
                }
            }
        }
        test
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::explore;
    use crate::ops::ModelKind;
    use crate::suite;

    fn weak_reachable(test: &LitmusTest, model: ModelKind) -> bool {
        explore(test, model).allows_with_memory(&test.interesting, &test.memory)
    }

    #[test]
    fn full_fences_reinforce_sb_like_the_hand_variant() {
        let sb = suite::store_buffering();
        let fenced = sb.test.reinforced(&[
            Reinforce::Fence {
                thread: 0,
                before: 1,
                class: FClass::Full,
            },
            Reinforce::Fence {
                thread: 1,
                before: 1,
                class: FClass::Full,
            },
        ]);
        for model in [
            ModelKind::Sc,
            ModelKind::Tso,
            ModelKind::ArmV8,
            ModelKind::Power,
        ] {
            assert!(!weak_reachable(&fenced, model), "{model:?}");
        }
        // The bare test is untouched: still observable on TSO.
        assert!(weak_reachable(&sb.test, ModelKind::Tso));
    }

    #[test]
    fn rel_acq_upgrades_match_the_hand_mp_variant() {
        let mp = suite::message_passing();
        let upgraded = mp.test.reinforced(&[
            Reinforce::Release { thread: 0, pos: 1 },
            Reinforce::Acquire { thread: 1, pos: 0 },
        ]);
        // Same split as suite::mp_rel_acq: forbidden on ARMv8 and POWER.
        assert!(!weak_reachable(&upgraded, ModelKind::ArmV8));
        assert!(!weak_reachable(&upgraded, ModelKind::Power));
    }

    #[test]
    fn synthesized_dep_matches_the_hand_dmbst_addr_variant() {
        let mp = suite::message_passing();
        let reinforced = mp.test.reinforced(&[
            Reinforce::Fence {
                thread: 0,
                before: 1,
                class: FClass::StSt,
            },
            Reinforce::Dep {
                thread: 1,
                from: 0,
                to: 1,
                kind: DepKind::Addr,
            },
        ]);
        // Same split as suite::mp_dmbst_addr: ARMv8 forbidden, POWER not.
        assert!(!weak_reachable(&reinforced, ModelKind::ArmV8));
        assert!(weak_reachable(&reinforced, ModelKind::Power));
    }

    #[test]
    fn fence_insertion_preserves_existing_dep_references() {
        let base = suite::mp_dmbst_addr().test;
        // Insert a fence before the reader's first access: the reader's
        // address dependency (op 1 -> op 0 before insertion) must follow
        // its ops to (2 -> 1).
        let t = base.reinforced(&[Reinforce::Fence {
            thread: 1,
            before: 0,
            class: FClass::Full,
        }]);
        assert_eq!(t.dep_of(1, 2), Some((1, DepKind::Addr)));
        assert!(!weak_reachable(&t, ModelKind::ArmV8));
    }

    #[test]
    fn trailing_fence_appends_after_the_last_access() {
        let sb = suite::store_buffering().test;
        let t = sb.reinforced(&[Reinforce::Fence {
            thread: 0,
            before: 2,
            class: FClass::Full,
        }]);
        assert!(matches!(t.threads[0][2], LOp::Fence(FClass::Full)));
        // A trailing fence cuts nothing: still observable on ARMv8.
        assert!(weak_reachable(&t, ModelKind::ArmV8));
    }

    #[test]
    fn existing_dep_on_target_is_not_overwritten() {
        let base = suite::mp_dmbst_addr().test;
        let t = base.reinforced(&[Reinforce::Dep {
            thread: 1,
            from: 0,
            to: 1,
            kind: DepKind::Ctrl,
        }]);
        // The original (stronger) Addr dependency survives.
        assert_eq!(t.dep_of(1, 1), Some((0, DepKind::Addr)));
    }
}
