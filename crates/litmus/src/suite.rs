//! The litmus-test suite with per-model allow/forbid expectations.
//!
//! Shapes follow the standard naming convention of the Herd/litmus
//! literature (Alglave et al., "Herding cats"): SB, MP, LB, WRC, IRIW, `CoRR`,
//! plus fenced and dependency-carrying variants. Each entry records, for
//! every model, whether the *interesting* (weak) outcome must be observable.
//!
//! These expectations are the semantic contract that `wmm-sim`'s fence
//! kinds are priced against: e.g. if `dmb ishst` + an address dependency is
//! enough to forbid message passing on `ARMv8`, then a fencing strategy that
//! replaces a full `dmb ish` with `dmb ishst` at a store-store code path is
//! *correct*, and the paper's question — is it *faster*? — becomes the
//! interesting one.

use crate::explore::ExploreCache;
use crate::ops::{DepKind, FClass, LOp, LitmusTest, ModelKind, Outcome};

/// A suite entry: a test plus its expected verdict per model.
#[derive(Debug, Clone)]
pub struct SuiteEntry {
    /// The litmus test.
    pub test: LitmusTest,
    /// `(model, weak outcome observable?)` for each model with a known verdict.
    pub expect: Vec<(ModelKind, bool)>,
}

impl SuiteEntry {
    /// Run the test under `model` and return `(expected, observed)` if the
    /// suite records an expectation for that model.
    #[must_use]
    pub fn check(&self, model: ModelKind) -> Option<(bool, bool)> {
        let mut cache = ExploreCache::new();
        self.check_cached(model, &mut cache)
    }

    /// Like [`SuiteEntry::check`], but sourcing outcome sets from `cache`
    /// so repeated queries of the same test/model pair explore only once.
    #[must_use]
    pub fn check_cached(&self, model: ModelKind, cache: &mut ExploreCache) -> Option<(bool, bool)> {
        let expected = self
            .expect
            .iter()
            .find(|(m, _)| *m == model)
            .map(|&(_, e)| e)?;
        let observed = cache
            .outcomes(&self.test, model)
            .allows_with_memory(&self.test.interesting, &self.test.memory);
        Some((expected, observed))
    }
}

// --- construction helpers -------------------------------------------------

fn st(var: usize, val: u32) -> LOp {
    LOp::Store {
        var,
        val,
        release: false,
    }
}

fn strel(var: usize, val: u32) -> LOp {
    LOp::Store {
        var,
        val,
        release: true,
    }
}

fn ld(var: usize, reg: usize) -> LOp {
    LOp::Load {
        var,
        reg,
        acquire: false,
        dep: None,
    }
}

fn ldacq(var: usize, reg: usize) -> LOp {
    LOp::Load {
        var,
        reg,
        acquire: true,
        dep: None,
    }
}

fn lddep(var: usize, reg: usize, src: usize, kind: DepKind) -> LOp {
    LOp::Load {
        var,
        reg,
        acquire: false,
        dep: Some((src, kind)),
    }
}

fn test(
    name: &str,
    threads: Vec<Vec<LOp>>,
    interesting: Outcome,
    store_deps: Vec<(usize, usize, usize, DepKind)>,
) -> LitmusTest {
    LitmusTest {
        name: name.to_string(),
        threads,
        interesting,
        store_deps,
        memory: vec![],
    }
}

use ModelKind::{ArmV8, Power, Sc, Tso};

// --- the suite ------------------------------------------------------------

/// SB: Dekker's store buffering. Weak outcome observable everywhere but SC.
#[must_use]
pub fn store_buffering() -> SuiteEntry {
    SuiteEntry {
        test: test(
            "SB",
            vec![vec![st(0, 1), ld(1, 0)], vec![st(1, 1), ld(0, 0)]],
            vec![(0, 0, 0), (1, 0, 0)],
            vec![],
        ),
        expect: vec![(Sc, false), (Tso, true), (ArmV8, true), (Power, true)],
    }
}

/// SB with full fences (`dmb ish` / `sync`): forbidden everywhere.
#[must_use]
pub fn sb_fences() -> SuiteEntry {
    SuiteEntry {
        test: test(
            "SB+dmbs",
            vec![
                vec![st(0, 1), LOp::Fence(FClass::Full), ld(1, 0)],
                vec![st(1, 1), LOp::Fence(FClass::Full), ld(0, 0)],
            ],
            vec![(0, 0, 0), (1, 0, 0)],
            vec![],
        ),
        expect: vec![(Sc, false), (Tso, false), (ArmV8, false), (Power, false)],
    }
}

/// SB with `lwsync`s: still observable on POWER — `lwsync` does not order
/// store→load, the whole reason `sync` exists (and costs 18.9 ns).
#[must_use]
pub fn sb_lwsyncs() -> SuiteEntry {
    SuiteEntry {
        test: test(
            "SB+lwsyncs",
            vec![
                vec![st(0, 1), LOp::Fence(FClass::LwSync), ld(1, 0)],
                vec![st(1, 1), LOp::Fence(FClass::LwSync), ld(0, 0)],
            ],
            vec![(0, 0, 0), (1, 0, 0)],
            vec![],
        ),
        expect: vec![(Sc, false), (Power, true)],
    }
}

/// MP: message passing with no ordering. Observable on ARM/POWER.
#[must_use]
pub fn message_passing() -> SuiteEntry {
    SuiteEntry {
        test: test(
            "MP",
            vec![vec![st(0, 1), st(1, 1)], vec![ld(1, 0), ld(0, 1)]],
            vec![(1, 0, 1), (1, 1, 0)],
            vec![],
        ),
        expect: vec![(Sc, false), (Tso, false), (ArmV8, true), (Power, true)],
    }
}

/// MP with full fences on both sides: forbidden everywhere.
#[must_use]
pub fn mp_fences() -> SuiteEntry {
    SuiteEntry {
        test: test(
            "MP+dmbs",
            vec![
                vec![st(0, 1), LOp::Fence(FClass::Full), st(1, 1)],
                vec![ld(1, 0), LOp::Fence(FClass::Full), ld(0, 1)],
            ],
            vec![(1, 0, 1), (1, 1, 0)],
            vec![],
        ),
        expect: vec![(Sc, false), (Tso, false), (ArmV8, false), (Power, false)],
    }
}

/// MP with `dmb ishst` on the writer and an address dependency on the
/// reader: forbidden on (multi-copy-atomic) `ARMv8` — the cheap fencing
/// strategy is sound there. Observable on POWER, where `ishst`-class
/// ordering is not cumulative.
#[must_use]
pub fn mp_dmbst_addr() -> SuiteEntry {
    SuiteEntry {
        test: test(
            "MP+dmb.st+addr",
            vec![
                vec![st(0, 1), LOp::Fence(FClass::StSt), st(1, 1)],
                vec![ld(1, 0), lddep(0, 1, 0, DepKind::Addr)],
            ],
            vec![(1, 0, 1), (1, 1, 0)],
            vec![],
        ),
        expect: vec![(Sc, false), (ArmV8, false), (Power, true)],
    }
}

/// MP with `lwsync` on the writer and an address dependency on the reader:
/// forbidden on POWER thanks to `lwsync` cumulativity — the reason `lwsync`
/// (6.1 ns) suffices where `sync` (18.9 ns) is not needed.
#[must_use]
pub fn mp_lwsync_addr() -> SuiteEntry {
    SuiteEntry {
        test: test(
            "MP+lwsync+addr",
            vec![
                vec![st(0, 1), LOp::Fence(FClass::LwSync), st(1, 1)],
                vec![ld(1, 0), lddep(0, 1, 0, DepKind::Addr)],
            ],
            vec![(1, 0, 1), (1, 1, 0)],
            vec![],
        ),
        expect: vec![(Sc, false), (ArmV8, false), (Power, false)],
    }
}

/// MP with release store / acquire load (JDK9's `ARMv8` volatile strategy):
/// forbidden on both weak models.
#[must_use]
pub fn mp_rel_acq() -> SuiteEntry {
    SuiteEntry {
        test: test(
            "MP+rel+acq",
            vec![vec![st(0, 1), strel(1, 1)], vec![ldacq(1, 0), ld(0, 1)]],
            vec![(1, 0, 1), (1, 1, 0)],
            vec![],
        ),
        expect: vec![(Sc, false), (Tso, false), (ArmV8, false), (Power, false)],
    }
}

/// MP with a *control* dependency on the reader's second load: still
/// observable — control dependencies do not order load→load (loads are
/// speculated past branches). This is the semantic core of the
/// `read_barrier_depends` investigation in §4.3.
#[must_use]
pub fn mp_dmbst_ctrl() -> SuiteEntry {
    SuiteEntry {
        test: test(
            "MP+dmb.st+ctrl",
            vec![
                vec![st(0, 1), LOp::Fence(FClass::StSt), st(1, 1)],
                vec![ld(1, 0), lddep(0, 1, 0, DepKind::Ctrl)],
            ],
            vec![(1, 0, 1), (1, 1, 0)],
            vec![],
        ),
        expect: vec![(ArmV8, true)],
    }
}

/// MP with `ctrl+isb` on the reader: forbidden on `ARMv8` — the `ctrl+isb`
/// strategy of Fig. 10 is sound, at the cost of the pipeline flush the
/// paper measures at ~24.5 ns.
#[must_use]
pub fn mp_dmbst_ctrlisb() -> SuiteEntry {
    SuiteEntry {
        test: test(
            "MP+dmb.st+ctrlisb",
            vec![
                vec![st(0, 1), LOp::Fence(FClass::StSt), st(1, 1)],
                vec![ld(1, 0), lddep(0, 1, 0, DepKind::CtrlIsb)],
            ],
            vec![(1, 0, 1), (1, 1, 0)],
            vec![],
        ),
        expect: vec![(ArmV8, false)],
    }
}

/// MP with `dmb ishld` on the reader (and `ishst` on the writer): forbidden
/// on `ARMv8` — `dmb ishld` is a sound `read_barrier_depends`, the paper's
/// "particularly positive result" (§4.3.1).
#[must_use]
pub fn mp_dmbst_dmbld() -> SuiteEntry {
    SuiteEntry {
        test: test(
            "MP+dmb.st+dmb.ld",
            vec![
                vec![st(0, 1), LOp::Fence(FClass::StSt), st(1, 1)],
                vec![ld(1, 0), LOp::Fence(FClass::LdLdSt), ld(0, 1)],
            ],
            vec![(1, 0, 1), (1, 1, 0)],
            vec![],
        ),
        expect: vec![(Sc, false), (ArmV8, false)],
    }
}

/// LB: load buffering. Observable on relaxed models, forbidden on TSO.
#[must_use]
pub fn load_buffering() -> SuiteEntry {
    SuiteEntry {
        test: test(
            "LB",
            vec![vec![ld(0, 0), st(1, 1)], vec![ld(1, 0), st(0, 1)]],
            vec![(0, 0, 1), (1, 0, 1)],
            vec![],
        ),
        expect: vec![(Sc, false), (Tso, false), (ArmV8, true), (Power, true)],
    }
}

/// LB with data dependencies: forbidden everywhere (no out-of-thin-air).
#[must_use]
pub fn lb_deps() -> SuiteEntry {
    SuiteEntry {
        test: test(
            "LB+datas",
            vec![vec![ld(0, 0), st(1, 1)], vec![ld(1, 0), st(0, 1)]],
            vec![(0, 0, 1), (1, 0, 1)],
            vec![(0, 1, 0, DepKind::Data), (1, 1, 0, DepKind::Data)],
        ),
        expect: vec![(Sc, false), (Tso, false), (ArmV8, false), (Power, false)],
    }
}

/// WRC with dependencies: forbidden on multi-copy-atomic `ARMv8`, observable
/// on POWER — the cleanest register-observable MCA/non-MCA split.
#[must_use]
pub fn wrc_deps() -> SuiteEntry {
    SuiteEntry {
        test: test(
            "WRC+data+addr",
            vec![
                vec![st(0, 1)],
                vec![ld(0, 0), st(1, 1)],
                vec![ld(1, 0), lddep(0, 1, 0, DepKind::Addr)],
            ],
            vec![(1, 0, 1), (2, 0, 1), (2, 1, 0)],
            vec![(1, 1, 0, DepKind::Data)],
        ),
        expect: vec![(Sc, false), (Tso, false), (ArmV8, false), (Power, true)],
    }
}

/// WRC with a `sync` in the middle thread: cumulativity restores order on
/// POWER.
#[must_use]
pub fn wrc_sync_addr() -> SuiteEntry {
    SuiteEntry {
        test: test(
            "WRC+sync+addr",
            vec![
                vec![st(0, 1)],
                vec![ld(0, 0), LOp::Fence(FClass::Full), st(1, 1)],
                vec![ld(1, 0), lddep(0, 1, 0, DepKind::Addr)],
            ],
            vec![(1, 0, 1), (2, 0, 1), (2, 1, 0)],
            vec![],
        ),
        expect: vec![(Power, false), (ArmV8, false)],
    }
}

/// IRIW with address dependencies: the canonical non-MCA witness —
/// observable on POWER only.
#[must_use]
pub fn iriw_addrs() -> SuiteEntry {
    let reader =
        |first: usize, second: usize| vec![ld(first, 0), lddep(second, 1, 0, DepKind::Addr)];
    SuiteEntry {
        test: test(
            "IRIW+addrs",
            vec![vec![st(0, 1)], vec![st(1, 1)], reader(0, 1), reader(1, 0)],
            vec![(2, 0, 1), (2, 1, 0), (3, 0, 1), (3, 1, 0)],
            vec![],
        ),
        expect: vec![(Sc, false), (Tso, false), (ArmV8, false), (Power, true)],
    }
}

/// IRIW with `sync`s between the reads: forbidden even on POWER. This is
/// what a heavyweight `sync` buys over `lwsync` — at 3x the cost (§4.4).
#[must_use]
pub fn iriw_syncs() -> SuiteEntry {
    let reader =
        |first: usize, second: usize| vec![ld(first, 0), LOp::Fence(FClass::Full), ld(second, 1)];
    SuiteEntry {
        test: test(
            "IRIW+syncs",
            vec![vec![st(0, 1)], vec![st(1, 1)], reader(0, 1), reader(1, 0)],
            vec![(2, 0, 1), (2, 1, 0), (3, 0, 1), (3, 1, 0)],
            vec![],
        ),
        expect: vec![(Sc, false), (Tso, false), (ArmV8, false), (Power, false)],
    }
}

/// IRIW with `lwsync`s: still observable on POWER — `lwsync` is not
/// strong enough to restore write atomicity.
#[must_use]
pub fn iriw_lwsyncs() -> SuiteEntry {
    let reader =
        |first: usize, second: usize| vec![ld(first, 0), LOp::Fence(FClass::LwSync), ld(second, 1)];
    SuiteEntry {
        test: test(
            "IRIW+lwsyncs",
            vec![vec![st(0, 1)], vec![st(1, 1)], reader(0, 1), reader(1, 0)],
            vec![(2, 0, 1), (2, 1, 0), (3, 0, 1), (3, 1, 0)],
            vec![],
        ),
        expect: vec![(Power, true)],
    }
}

/// `CoRR`: per-location coherence of reads. Forbidden on every model.
#[must_use]
pub fn corr() -> SuiteEntry {
    SuiteEntry {
        test: test(
            "CoRR",
            vec![vec![st(0, 1)], vec![ld(0, 0), ld(0, 1)]],
            vec![(1, 0, 1), (1, 1, 0)],
            vec![],
        ),
        expect: vec![(Sc, false), (Tso, false), (ArmV8, false), (Power, false)],
    }
}

/// S: `Wx=2; Wy=1 || Ry=1; Wx=1` with the final condition `x=2 ∧ r=1` —
/// requires the second thread's store to be coherence-ordered *before* the
/// first thread's, against both program orders. With a full fence on the
/// writer and a data dependency on the reader it is forbidden everywhere.
#[must_use]
pub fn s_shape() -> SuiteEntry {
    SuiteEntry {
        test: LitmusTest {
            name: "S".into(),
            threads: vec![vec![st(0, 2), st(1, 1)], vec![ld(1, 0), st(0, 1)]],
            interesting: vec![(1, 0, 1)],
            store_deps: vec![],
            memory: vec![(0, 2)],
        },
        expect: vec![(Sc, false), (Tso, false), (ArmV8, true), (Power, true)],
    }
}

/// S with a full fence and a data dependency: forbidden everywhere.
#[must_use]
pub fn s_fenced() -> SuiteEntry {
    SuiteEntry {
        test: LitmusTest {
            name: "S+dmb+data".into(),
            threads: vec![
                vec![st(0, 2), LOp::Fence(FClass::Full), st(1, 1)],
                vec![ld(1, 0), st(0, 1)],
            ],
            interesting: vec![(1, 0, 1)],
            store_deps: vec![(1, 1, 0, DepKind::Data)],
            memory: vec![(0, 2)],
        },
        expect: vec![(Sc, false), (Tso, false), (ArmV8, false), (Power, false)],
    }
}

/// 2+2W: both threads write both variables in opposite orders; the weak
/// final state has each thread's *first* write surviving. Observable on the
/// relaxed models, forbidden with store-store fences.
#[must_use]
pub fn two_plus_two_w() -> SuiteEntry {
    SuiteEntry {
        test: LitmusTest {
            name: "2+2W".into(),
            threads: vec![vec![st(0, 2), st(1, 1)], vec![st(1, 2), st(0, 1)]],
            interesting: vec![],
            store_deps: vec![],
            memory: vec![(0, 2), (1, 2)],
        },
        expect: vec![(Sc, false), (Tso, false), (ArmV8, true), (Power, true)],
    }
}

/// 2+2W with `dmb ishst` on both threads: forbidden on `ARMv8` — the cheapest
/// fence suffices for pure write-write shapes.
#[must_use]
pub fn two_plus_two_w_ishst() -> SuiteEntry {
    SuiteEntry {
        test: LitmusTest {
            name: "2+2W+dmb.sts".into(),
            threads: vec![
                vec![st(0, 2), LOp::Fence(FClass::StSt), st(1, 1)],
                vec![st(1, 2), LOp::Fence(FClass::StSt), st(0, 1)],
            ],
            interesting: vec![],
            store_deps: vec![],
            memory: vec![(0, 2), (1, 2)],
        },
        expect: vec![(Sc, false), (ArmV8, false)],
    }
}

/// R: `Wx=1; Wy=1 || Wy=2; Rx` with final `y=2 ∧ r=0` — one coherence
/// edge and one from-read edge against both program orders. Forbidden
/// only under SC: even TSO lets the second thread's load overtake its
/// store.
#[must_use]
pub fn r_shape() -> SuiteEntry {
    SuiteEntry {
        test: LitmusTest {
            name: "R".into(),
            threads: vec![vec![st(0, 1), st(1, 1)], vec![st(1, 2), ld(0, 0)]],
            interesting: vec![(1, 0, 0)],
            store_deps: vec![],
            memory: vec![(1, 2)],
        },
        expect: vec![(Sc, false), (Tso, true), (ArmV8, true), (Power, true)],
    }
}

/// R with full fences on both threads: forbidden everywhere — like SB,
/// the store→load leg needs full-fence strength.
#[must_use]
pub fn r_fences() -> SuiteEntry {
    SuiteEntry {
        test: LitmusTest {
            name: "R+dmbs".into(),
            threads: vec![
                vec![st(0, 1), LOp::Fence(FClass::Full), st(1, 1)],
                vec![st(1, 2), LOp::Fence(FClass::Full), ld(0, 0)],
            ],
            interesting: vec![(1, 0, 0)],
            store_deps: vec![],
            memory: vec![(1, 2)],
        },
        expect: vec![(Sc, false), (Tso, false), (ArmV8, false), (Power, false)],
    }
}

/// ISA2: a three-thread MP chain — writer, forwarder, reader. Bare, the
/// weak outcome shows on both relaxed models.
#[must_use]
pub fn isa2() -> SuiteEntry {
    SuiteEntry {
        test: test(
            "ISA2",
            vec![
                vec![st(0, 1), st(2, 1)],
                vec![ld(2, 0), st(1, 1)],
                vec![ld(1, 0), ld(0, 1)],
            ],
            vec![(1, 0, 1), (2, 0, 1), (2, 1, 0)],
            vec![],
        ),
        expect: vec![(Sc, false), (Tso, false), (ArmV8, true), (Power, true)],
    }
}

/// ISA2 with full fences in all three threads: forbidden everywhere.
#[must_use]
pub fn isa2_fences() -> SuiteEntry {
    SuiteEntry {
        test: test(
            "ISA2+dmbs",
            vec![
                vec![st(0, 1), LOp::Fence(FClass::Full), st(2, 1)],
                vec![ld(2, 0), LOp::Fence(FClass::Full), st(1, 1)],
                vec![ld(1, 0), LOp::Fence(FClass::Full), ld(0, 1)],
            ],
            vec![(1, 0, 1), (2, 0, 1), (2, 1, 0)],
            vec![],
        ),
        expect: vec![(Sc, false), (Tso, false), (ArmV8, false), (Power, false)],
    }
}

/// ISA2 with `sync` at the writer and dependencies downstream: the
/// `sync`'s A-cumulativity carries the first store through the chain, so
/// the outcome is forbidden even on POWER.
#[must_use]
pub fn isa2_sync_deps() -> SuiteEntry {
    SuiteEntry {
        test: test(
            "ISA2+sync+data+addr",
            vec![
                vec![st(0, 1), LOp::Fence(FClass::Full), st(2, 1)],
                vec![ld(2, 0), st(1, 1)],
                vec![ld(1, 0), lddep(0, 1, 0, DepKind::Addr)],
            ],
            vec![(1, 0, 1), (2, 0, 1), (2, 1, 0)],
            vec![(1, 1, 0, DepKind::Data)],
        ),
        expect: vec![(Sc, false), (ArmV8, false), (Power, false)],
    }
}

/// SB with release stores and acquire loads: forbidden on `ARMv8`, whose
/// release/acquire is `RCsc` (`stlr; ldar` stay ordered — what lets JDK9
/// drop the trailing `dmb` from volatile stores). Still observable on
/// POWER, whose release is `lwsync`-flavoured, and on TSO, where the
/// markers add nothing.
#[must_use]
pub fn sb_rel_acq() -> SuiteEntry {
    SuiteEntry {
        test: test(
            "SB+rel+acq",
            vec![
                vec![strel(0, 1), ldacq(1, 0)],
                vec![strel(1, 1), ldacq(0, 0)],
            ],
            vec![(0, 0, 0), (1, 0, 0)],
            vec![],
        ),
        expect: vec![(Sc, false), (Tso, true), (ArmV8, false), (Power, true)],
    }
}

/// `CoWW`: two stores by one thread to the same location must commit in
/// program order on every model — the final value is always the second.
#[must_use]
pub fn coww() -> SuiteEntry {
    SuiteEntry {
        test: LitmusTest {
            name: "CoWW".into(),
            threads: vec![vec![st(0, 1), st(0, 2)]],
            interesting: vec![],
            store_deps: vec![],
            memory: vec![(0, 1)],
        },
        expect: vec![(Sc, false), (Tso, false), (ArmV8, false), (Power, false)],
    }
}

/// The complete suite.
#[must_use]
pub fn full_suite() -> Vec<SuiteEntry> {
    vec![
        store_buffering(),
        sb_fences(),
        sb_lwsyncs(),
        message_passing(),
        mp_fences(),
        mp_dmbst_addr(),
        mp_lwsync_addr(),
        mp_rel_acq(),
        mp_dmbst_ctrl(),
        mp_dmbst_ctrlisb(),
        mp_dmbst_dmbld(),
        load_buffering(),
        lb_deps(),
        wrc_deps(),
        wrc_sync_addr(),
        iriw_addrs(),
        iriw_syncs(),
        iriw_lwsyncs(),
        corr(),
        s_shape(),
        s_fenced(),
        two_plus_two_w(),
        two_plus_two_w_ishst(),
        r_shape(),
        r_fences(),
        isa2(),
        isa2_fences(),
        isa2_sync_deps(),
        sb_rel_acq(),
        coww(),
    ]
}

/// Run the whole suite under every model with expectations; returns
/// `(test name, model, expected, observed)` rows.
#[must_use]
pub fn run_full_suite() -> Vec<(String, ModelKind, bool, bool)> {
    run_full_suite_cached(&mut ExploreCache::new())
}

/// [`run_full_suite`] with a caller-provided [`ExploreCache`], so a binary
/// that also needs the raw outcome sets (e.g. for witness comparison) does
/// not pay for a second exploration of each test.
#[must_use]
pub fn run_full_suite_cached(cache: &mut ExploreCache) -> Vec<(String, ModelKind, bool, bool)> {
    let mut rows = vec![];
    for entry in full_suite() {
        for &(model, expected) in &entry.expect {
            let observed = cache
                .outcomes(&entry.test, model)
                .allows_with_memory(&entry.test.interesting, &entry.test.memory);
            rows.push((entry.test.name.clone(), model, expected, observed));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_expectation_holds() {
        let rows = run_full_suite();
        assert!(
            rows.len() >= 50,
            "suite should be substantial: {}",
            rows.len()
        );
        let failures: Vec<_> = rows.iter().filter(|(_, _, exp, obs)| exp != obs).collect();
        assert!(
            failures.is_empty(),
            "litmus expectations violated: {failures:?}"
        );
    }

    #[test]
    fn suite_covers_all_models() {
        let rows = run_full_suite();
        for model in [Sc, Tso, ArmV8, Power] {
            assert!(
                rows.iter().any(|(_, m, _, _)| *m == model),
                "{model:?} uncovered"
            );
        }
    }
}
