//! Raw typed event capture: a deterministic bounded ring buffer.

use std::collections::VecDeque;

use wmm_sim::isa::Instr;
use wmm_sim::mem::AccessOutcome;
use wmm_sim::{FenceKind, Probe};

/// One structured execution event, as emitted through the simulator's
/// [`Probe`] seam. Values are exactly what the executor computed — the
/// event stream is a faithful transcript of a run, in the machine's
/// deterministic interleave order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// An instruction at site `(thread, index)` began executing.
    Begin {
        /// Thread (core) index.
        thread: u32,
        /// Instruction index within the thread's stream.
        index: u32,
    },
    /// A fence retired after stalling `cycles` (0 for compiler barriers).
    FenceRetired {
        /// The fence kind.
        kind: FenceKind,
        /// Stall cycles paid.
        cycles: f64,
    },
    /// The store buffer was at capacity and stalled the core.
    SbStall {
        /// Stall cycles paid.
        cycles: f64,
    },
    /// A memory access resolved, exposing `cycles` on the critical path.
    Access {
        /// Where in the hierarchy the access was served.
        outcome: AccessOutcome,
        /// Exposed (post-overlap) cycles.
        cycles: f64,
    },
    /// The instruction at `(thread, index)` retired.
    Retire {
        /// Thread (core) index.
        thread: u32,
        /// Instruction index within the thread's stream.
        index: u32,
        /// Cycles the instruction advanced the core's clock by.
        cycles: f64,
        /// The core's clock after retirement.
        now: f64,
    },
}

/// A bounded, deterministic ring of [`Event`]s.
///
/// **Overflow contract.** The ring retains exactly the `capacity` *newest*
/// events: when a push finds the ring full, the single oldest event is
/// evicted and counted in [`EventBuffer::dropped`] — overflow is reported,
/// never silent. Equivalently, after `n` pushes the buffer holds the last
/// `min(n, capacity)` events in arrival order and
/// `dropped() == n - len()` (see [`EventBuffer::total_seen`]). Because the
/// event stream itself is deterministic, the retained window and the drop
/// count are bit-identical across repeated runs. Implements [`Probe`], so
/// it can be passed straight to `Machine::run_probed`.
#[derive(Debug)]
pub struct EventBuffer {
    capacity: usize,
    events: VecDeque<Event>,
    dropped: u64,
}

impl EventBuffer {
    /// A ring holding at most `capacity` events (clamped up to 1: a
    /// zero-capacity ring would drop everything silently, which the
    /// overflow contract forbids).
    pub fn new(capacity: usize) -> Self {
        EventBuffer {
            capacity: capacity.max(1),
            events: VecDeque::with_capacity(capacity.clamp(1, 4096)),
            dropped: 0,
        }
    }

    /// The configured capacity (post-clamp).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Every event ever pushed: retained plus dropped. The conservation
    /// invariant `total_seen() == len() + dropped()` holds at all times.
    pub fn total_seen(&self) -> u64 {
        self.events.len() as u64 + self.dropped
    }

    /// Empty the ring and reset the drop count, keeping the capacity.
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }

    fn push(&mut self, event: Event) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }
}

impl Probe for EventBuffer {
    fn begin(&mut self, thread: usize, index: usize, _instr: &Instr) {
        self.push(Event::Begin {
            thread: thread as u32,
            index: index as u32,
        });
    }

    fn fence_retired(&mut self, kind: FenceKind, cycles: f64) {
        self.push(Event::FenceRetired { kind, cycles });
    }

    fn sb_stall(&mut self, cycles: f64) {
        self.push(Event::SbStall { cycles });
    }

    fn access(&mut self, outcome: AccessOutcome, cycles: f64) {
        self.push(Event::Access { outcome, cycles });
    }

    fn retire(&mut self, thread: usize, index: usize, cycles: f64, now: f64) {
        self.push(Event::Retire {
            thread: thread as u32,
            index: index as u32,
            cycles,
            now,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmm_sim::arch::armv8_xgene1;
    use wmm_sim::isa::{AccessOrd, Loc};
    use wmm_sim::{Machine, Program, WorkloadCtx};

    fn program() -> Program {
        let thread = vec![
            Instr::Store {
                loc: Loc::SharedRw(1),
                ord: AccessOrd::Plain,
            },
            Instr::Fence(FenceKind::DmbIsh),
            Instr::Load {
                loc: Loc::SharedRw(2),
                ord: AccessOrd::Plain,
            },
        ];
        Program::new(vec![thread.clone(), thread])
    }

    #[test]
    fn buffer_captures_a_faithful_transcript() {
        let machine = Machine::new(armv8_xgene1());
        let mut buf = EventBuffer::new(1 << 16);
        machine.run_probed(&program(), &WorkloadCtx::default(), 7, &mut buf);
        assert_eq!(buf.dropped(), 0);
        let begins = buf
            .events()
            .filter(|e| matches!(e, Event::Begin { .. }))
            .count();
        let retires = buf
            .events()
            .filter(|e| matches!(e, Event::Retire { .. }))
            .count();
        // 3 instructions on each of 2 threads.
        assert_eq!(begins, 6);
        assert_eq!(retires, 6);
        assert_eq!(
            buf.events()
                .filter(|e| matches!(e, Event::FenceRetired { .. }))
                .count(),
            2
        );
    }

    #[test]
    fn event_stream_is_deterministic() {
        let machine = Machine::new(armv8_xgene1());
        let capture = || {
            let mut buf = EventBuffer::new(1 << 16);
            machine.run_probed(&program(), &WorkloadCtx::default(), 42, &mut buf);
            buf.events().copied().collect::<Vec<_>>()
        };
        assert_eq!(capture(), capture());
    }

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let mut buf = EventBuffer::new(2);
        for cycles in [1.0, 2.0, 3.0] {
            buf.sb_stall(cycles);
        }
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.dropped(), 1);
        let kept: Vec<Event> = buf.events().copied().collect();
        assert_eq!(
            kept,
            vec![
                Event::SbStall { cycles: 2.0 },
                Event::SbStall { cycles: 3.0 }
            ]
        );
    }

    #[test]
    fn overflow_conserves_events_and_retains_the_newest_window() {
        // Push far past capacity: the ring must hold exactly the last
        // `capacity` events in arrival order, and every evicted event must
        // be accounted for in `dropped` — the conservation invariant.
        let mut buf = EventBuffer::new(8);
        assert_eq!(buf.capacity(), 8);
        for i in 0..100 {
            buf.sb_stall(i as f64);
        }
        assert_eq!(buf.len(), 8);
        assert_eq!(buf.dropped(), 92);
        assert_eq!(buf.total_seen(), 100);
        let kept: Vec<f64> = buf
            .events()
            .map(|e| match e {
                Event::SbStall { cycles } => *cycles,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(kept, (92..100).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn zero_capacity_clamps_instead_of_dropping_silently() {
        let mut buf = EventBuffer::new(0);
        assert_eq!(buf.capacity(), 1);
        buf.sb_stall(1.0);
        buf.sb_stall(2.0);
        assert_eq!(buf.len(), 1);
        assert_eq!(buf.dropped(), 1);
        assert_eq!(
            buf.events().copied().collect::<Vec<_>>(),
            vec![Event::SbStall { cycles: 2.0 }]
        );
    }

    #[test]
    fn undersized_ring_reports_run_overflow_deterministically() {
        // A real probed run into a too-small ring: the drop count and the
        // retained suffix are part of the deterministic transcript, and the
        // conservation invariant ties them to the full event count.
        let machine = Machine::new(armv8_xgene1());
        let mut full = EventBuffer::new(1 << 16);
        machine.run_probed(&program(), &WorkloadCtx::default(), 7, &mut full);
        assert_eq!(full.dropped(), 0);
        let total = full.len() as u64;
        assert!(total > 4, "program must emit more events than the ring");

        let mut small = EventBuffer::new(4);
        machine.run_probed(&program(), &WorkloadCtx::default(), 7, &mut small);
        assert_eq!(small.len(), 4);
        assert_eq!(small.dropped(), total - 4);
        assert_eq!(small.total_seen(), total);
        // The retained window is exactly the transcript's suffix.
        let tail: Vec<Event> = full.events().copied().skip(full.len() - 4).collect();
        assert_eq!(small.events().copied().collect::<Vec<_>>(), tail);
        // clear() resets contents and the drop count, not the capacity.
        small.clear();
        assert!(small.is_empty());
        assert_eq!((small.dropped(), small.capacity()), (0, 4));
    }
}
