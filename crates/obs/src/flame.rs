//! Collapsed-stack (flamegraph) export of a [`Profile`].
//!
//! Emits the classic two-level `folded` format — one `stack count` line
//! per (site, cause) pair — that `flamegraph.pl` and every compatible
//! viewer consume directly:
//!
//! ```text
//! t0:VolatileStore#0;fence:dmb ish 227
//! t0:VolatileStore#0;mem 30
//! t0:code;compute 891
//! ```
//!
//! Counts are cycles rounded to integers (the folded format is integral);
//! zero-cycle causes are omitted. Lines are in deterministic (site, cause)
//! order because [`Profile`] iterates name-ordered.

use crate::profile::Profile;

/// The fixed cause order within a site's lines.
const CAUSES: [&str; 4] = ["fence", "sb", "mem", "compute"];

/// Render `profile` as collapsed-stack lines (`site;cause cycles`).
pub fn collapsed_stacks(profile: &Profile) -> String {
    let mut out = String::new();
    for (name, sp) in &profile.sites {
        let fence_label = sp
            .fence
            .map(|k| format!("fence:{}", k.mnemonic()))
            .unwrap_or_else(|| "fence".to_string());
        for cause in CAUSES {
            let (label, cycles) = match cause {
                "fence" => (fence_label.clone(), sp.fence_cycles),
                "sb" => ("sb".to_string(), sp.sb_stall_cycles),
                "mem" => ("mem".to_string(), sp.mem_cycles),
                _ => ("compute".to_string(), sp.compute_cycles()),
            };
            let count = cycles.round() as u64;
            if count > 0 {
                out.push_str(&format!("{name};{label} {count}\n"));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmm_sim::stats::SiteStall;
    use wmm_sim::FenceKind;

    #[test]
    fn folded_lines_cover_causes_and_skip_zeros() {
        let mut p = Profile::new();
        p.sites
            .entry("t0:Enter#0".to_string())
            .or_default()
            .add(&SiteStall {
                thread: 0,
                index: 2,
                fence: Some(FenceKind::DmbIsh),
                fences: 1,
                fence_cycles: 12.4,
                sb_stall_cycles: 0.0,
                mem_cycles: 3.0,
                total_cycles: 20.0,
            });
        let text = collapsed_stacks(&p);
        assert!(text.contains("t0:Enter#0;fence:dmb ish 12\n"), "{text}");
        assert!(text.contains("t0:Enter#0;mem 3\n"));
        assert!(text.contains("t0:Enter#0;compute 5\n"));
        assert!(!text.contains(";sb "), "zero causes omitted: {text}");
        // Every line is `stack count` with an integral count.
        for line in text.lines() {
            let (stack, count) = line.rsplit_once(' ').expect("folded line shape");
            assert!(stack.contains(';'));
            count.parse::<u64>().expect("integral count");
        }
    }

    #[test]
    fn empty_profile_renders_nothing() {
        assert!(collapsed_stacks(&Profile::new()).is_empty());
    }
}
