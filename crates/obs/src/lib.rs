//! # wmm-obs
//!
//! Structured observability for the `wmm-sim` execution engine.
//!
//! The simulator's [`Probe`](wmm_sim::Probe) seam emits typed events —
//! instruction begin/retire, fence stalls, store-buffer capacity stalls,
//! memory-access outcomes — tagged with the stable site id `(thread,
//! stream index)` of the instruction that caused them, at zero cost when
//! disabled (the default `NullProbe` path is the same code path, observing
//! already-computed values). This crate is everything built *on top of*
//! that seam:
//!
//! * [`EventBuffer`](event::EventBuffer): a deterministic bounded ring of
//!   raw [`Event`](event::Event)s, for fine-grained inspection and
//!   instruction-granular trace export.
//! * [`SiteProfile`](profile::SiteProfile) / [`Profile`](profile::Profile):
//!   per-site cycles split by cause — fence-kind stall, store-buffer
//!   stall, exposed memory time, residual compute — folded across the
//!   samples of a campaign and keyed by the stable site *names* a
//!   [`SiteMap`](wmmbench::image::SiteMap) assigns (images vary with the
//!   sample seed, so names, not raw indices, are the join key).
//! * [`flame`]: collapsed-stack (`site;cause cycles`) export compatible
//!   with the standard flamegraph toolchain.
//! * [`ProfileDiff`](profile::ProfileDiff): site-by-site comparison of two
//!   profiles, attributing a campaign-level time delta (e.g. a fencing
//!   strategy change) to the sites whose stall profile moved.
//! * [`metrics`]: the harness-wide metrics layer — a
//!   [`MetricsRegistry`](metrics::MetricsRegistry) of counters, gauges and
//!   fixed-bucket histograms with deterministic (name-sorted) snapshots,
//!   split into structural (gateable, byte-identical across worker counts)
//!   and observational (timing) classes, with JSON and Prometheus
//!   exporters.
//! * [`span`]: wall-clock [`SpanLog`](span::SpanLog) intervals that merge
//!   into the harness's Chrome-trace timeline.
//!
//! The determinism contract mirrors the rest of the workspace: folding the
//! same runs in the same order produces bit-identical profiles regardless
//! of worker count, and every export is a pure function of the profile.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod flame;
pub mod metrics;
pub mod profile;
pub mod span;

pub use event::{Event, EventBuffer};
pub use flame::collapsed_stacks;
pub use metrics::{
    Class, Counter, Gauge, Histogram, MetricEntry, MetricValue, MetricsProbe, MetricsRegistry,
    MetricsSnapshot,
};
pub use profile::{Profile, ProfileDiff, SiteDelta, SiteProfile};
pub use span::{SpanGuard, SpanLog, SpanRecord};
