//! Harness-wide metrics: a zero-cost-when-disabled registry of counters,
//! gauges and fixed-bucket histograms.
//!
//! Every metric is registered by name in a [`MetricsRegistry`] and carries
//! a [`Class`]:
//!
//! * [`Class::Structural`] metrics are updated only from deterministic
//!   call sites (the executor's calling thread, the solver's merge path),
//!   with values derived from counts, never from clocks. A structural
//!   snapshot ([`MetricsSnapshot::structural`]) is therefore byte-identical
//!   across worker counts — the same contract every manifest section obeys
//!   — and can be gated.
//! * [`Class::Observational`] metrics may be updated from worker threads
//!   and may carry timings (busy nanoseconds, latency histograms). They
//!   vary run to run and are excluded from every determinism comparison.
//!
//! Handles returned by the registry are `Arc`s over lock-free atomics, so
//! hot paths pay one relaxed atomic op per update and nothing at all when
//! no registry is attached (the disabled path is an `Option` check).
//!
//! Snapshots are name-sorted (the registry is a `BTreeMap`), serialise to
//! JSON through the workspace [`Json`] layer, and export to the Prometheus
//! text format for scrape endpoints — the surface ROADMAP item 4's
//! harness-as-a-service needs.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use wmm_sim::isa::Instr;
use wmm_sim::mem::AccessOutcome;
use wmm_sim::Probe;
use wmmbench::json::{Json, ToJson};

/// Determinism class of a metric (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Deterministic across worker counts; gated like manifest content.
    Structural,
    /// Timing- or scheduling-dependent; excluded from determinism checks.
    Observational,
}

impl Class {
    /// Stable label for snapshots (`"structural"` / `"observational"`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Class::Structural => "structural",
            Class::Observational => "observational",
        }
    }

    fn from_label(s: &str) -> Option<Class> {
        match s {
            "structural" => Some(Class::Structural),
            "observational" => Some(Class::Observational),
            _ => None,
        }
    }
}

/// A monotonically increasing `u64` counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Add `n` to the counter.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Add 1 to the counter.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A settable `f64` gauge (stored as bits, so any finite value including
/// `-0.0` round-trips exactly).
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Add `v` to the gauge (compare-and-swap loop; bit-exact only when
    /// updates never race, which structural call sites guarantee).
    pub fn add(&self, v: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A fixed-bound histogram: one atomic bucket per upper bound plus an
/// overflow bucket, a total count and a running sum.
///
/// Bounds are set at registration and never change — snapshots of the same
/// registry always agree on layout, which is what makes structural
/// histogram snapshots comparable byte-for-byte.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        let mut sorted = bounds.to_vec();
        sorted.sort_by(f64::total_cmp);
        Histogram {
            buckets: (0..=sorted.len()).map(|_| AtomicU64::new(0)).collect(),
            bounds: sorted,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Record one observation: bumps the first bucket whose upper bound is
    /// `>= v` (the last bucket is unbounded), the count, and the sum.
    pub fn observe(&self, v: f64) {
        let slot = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[slot].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// The configured (ascending) bucket upper bounds.
    #[must_use]
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (`bounds.len() + 1` entries; last is overflow).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }
}

/// The shared handle a registry stores per name.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
struct Entry {
    class: Class,
    metric: Metric,
}

/// A named collection of metrics with deterministic (name-sorted) snapshot
/// order.
///
/// Registration is idempotent: asking for an existing name with the same
/// kind and class returns the existing handle, so independent layers
/// (executor, cache sync, solver) can share metrics without coordination.
///
/// # Panics
///
/// Re-registering a name with a different kind or class panics — that is a
/// programming error, not a runtime condition.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<String, Entry>>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn register(&self, name: &str, class: Class, make: impl FnOnce() -> Metric) -> Metric {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        if let Some(e) = inner.get(name) {
            let fresh = make();
            assert!(
                e.class == class && e.metric.kind() == fresh.kind(),
                "metric `{name}` re-registered as {} {} (was {} {})",
                class.label(),
                fresh.kind(),
                e.class.label(),
                e.metric.kind(),
            );
            return e.metric.clone();
        }
        let metric = make();
        inner.insert(
            name.to_string(),
            Entry {
                class,
                metric: metric.clone(),
            },
        );
        metric
    }

    /// Register (or fetch) a counter.
    pub fn counter(&self, name: &str, class: Class) -> Arc<Counter> {
        match self.register(name, class, || {
            Metric::Counter(Arc::new(Counter::default()))
        }) {
            Metric::Counter(c) => c,
            _ => unreachable!("register checked the kind"),
        }
    }

    /// Register (or fetch) a gauge.
    pub fn gauge(&self, name: &str, class: Class) -> Arc<Gauge> {
        match self.register(name, class, || Metric::Gauge(Arc::new(Gauge::default()))) {
            Metric::Gauge(g) => g,
            _ => unreachable!("register checked the kind"),
        }
    }

    /// Register (or fetch) a histogram with the given bucket upper bounds
    /// (an overflow bucket is always appended).
    pub fn histogram(&self, name: &str, class: Class, bounds: &[f64]) -> Arc<Histogram> {
        match self.register(name, class, || {
            Metric::Histogram(Arc::new(Histogram::new(bounds)))
        }) {
            Metric::Histogram(h) => h,
            _ => unreachable!("register checked the kind"),
        }
    }

    /// Number of registered metrics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("metrics registry poisoned").len()
    }

    /// Whether no metric is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A point-in-time snapshot, entries in name order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        MetricsSnapshot {
            entries: inner
                .iter()
                .map(|(name, e)| MetricEntry {
                    name: name.clone(),
                    class: e.class,
                    value: match &e.metric {
                        Metric::Counter(c) => MetricValue::Counter(c.get()),
                        Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                        Metric::Histogram(h) => MetricValue::Histogram {
                            bounds: h.bounds().to_vec(),
                            buckets: h.bucket_counts(),
                            sum: h.sum(),
                            count: h.count(),
                        },
                    },
                })
                .collect(),
        }
    }
}

/// One snapshotted metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram layout and contents.
    Histogram {
        /// Ascending bucket upper bounds.
        bounds: Vec<f64>,
        /// Per-bucket counts (`bounds.len() + 1`; last is overflow).
        buckets: Vec<u64>,
        /// Sum of observations.
        sum: f64,
        /// Total observations.
        count: u64,
    },
}

impl MetricValue {
    fn kind(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram { .. } => "histogram",
        }
    }
}

/// One snapshotted metric.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricEntry {
    /// Registered name (dotted, e.g. `harness.exec.jobs`).
    pub name: String,
    /// Determinism class.
    pub class: Class,
    /// The value at snapshot time.
    pub value: MetricValue,
}

/// A point-in-time view of a registry: entries sorted by name, so two
/// snapshots of registries holding the same values serialise identically.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Snapshot entries in name order.
    pub entries: Vec<MetricEntry>,
}

impl MetricsSnapshot {
    /// The structural projection: only [`Class::Structural`] entries.
    /// Byte-identical across worker counts by the registry contract.
    #[must_use]
    pub fn structural(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            entries: self
                .entries
                .iter()
                .filter(|e| e.class == Class::Structural)
                .cloned()
                .collect(),
        }
    }

    /// Look up an entry by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&MetricEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// A counter's value by name, if the entry exists and is a counter.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)?.value {
            MetricValue::Counter(v) => Some(v),
            _ => None,
        }
    }

    /// A gauge's value by name, if the entry exists and is a gauge.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.get(name)?.value {
            MetricValue::Gauge(v) => Some(v),
            _ => None,
        }
    }

    /// Render the snapshot in the Prometheus text exposition format.
    /// Metric names are sanitised (every non-`[a-zA-Z0-9_:]` byte becomes
    /// `_`); histograms emit cumulative `_bucket{le=...}` series plus
    /// `_sum` and `_count`.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        fn sanitise(name: &str) -> String {
            name.chars()
                .map(|c| {
                    if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                        c
                    } else {
                        '_'
                    }
                })
                .collect()
        }
        fn num(v: f64) -> String {
            if v == f64::INFINITY {
                "+Inf".to_string()
            } else {
                format!("{v}")
            }
        }
        let mut out = String::new();
        for e in &self.entries {
            let name = sanitise(&e.name);
            match &e.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", num(*v)));
                }
                MetricValue::Histogram {
                    bounds,
                    buckets,
                    sum,
                    count,
                } => {
                    out.push_str(&format!("# TYPE {name} histogram\n"));
                    let mut cumulative = 0u64;
                    for (i, n) in buckets.iter().enumerate() {
                        cumulative += n;
                        let le = bounds.get(i).copied().unwrap_or(f64::INFINITY);
                        out.push_str(&format!(
                            "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                            num(le)
                        ));
                    }
                    out.push_str(&format!("{name}_sum {}\n{name}_count {count}\n", num(*sum)));
                }
            }
        }
        out
    }

    /// Parse a snapshot back from its [`ToJson`] form.
    ///
    /// # Errors
    ///
    /// Describes the first malformed entry.
    pub fn from_json(json: &Json) -> Result<MetricsSnapshot, String> {
        let mut entries = vec![];
        for e in json
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or("metrics snapshot missing entries")?
        {
            let name = e
                .get("name")
                .and_then(Json::as_str)
                .ok_or("metric entry missing name")?
                .to_string();
            let class = e
                .get("class")
                .and_then(Json::as_str)
                .and_then(Class::from_label)
                .ok_or_else(|| format!("metric `{name}`: bad class"))?;
            let kind = e
                .get("kind")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("metric `{name}`: missing kind"))?;
            let value = match kind {
                "counter" => MetricValue::Counter(
                    e.get("value")
                        .and_then(Json::as_f64)
                        .ok_or_else(|| format!("metric `{name}`: missing value"))?
                        as u64,
                ),
                "gauge" => MetricValue::Gauge(
                    e.get("value")
                        .and_then(Json::as_f64)
                        .ok_or_else(|| format!("metric `{name}`: missing value"))?,
                ),
                "histogram" => {
                    let floats = |k: &str| -> Result<Vec<f64>, String> {
                        e.get(k)
                            .and_then(Json::as_arr)
                            .ok_or_else(|| format!("metric `{name}`: missing {k}"))?
                            .iter()
                            .map(|v| {
                                v.as_f64()
                                    .ok_or_else(|| format!("metric `{name}`: bad {k}"))
                            })
                            .collect()
                    };
                    MetricValue::Histogram {
                        bounds: floats("bounds")?,
                        buckets: floats("buckets")?.into_iter().map(|v| v as u64).collect(),
                        sum: e
                            .get("sum")
                            .and_then(Json::as_f64)
                            .ok_or_else(|| format!("metric `{name}`: missing sum"))?,
                        count: e.get("count").and_then(Json::as_f64).unwrap_or(0.0) as u64,
                    }
                }
                other => return Err(format!("metric `{name}`: unknown kind `{other}`")),
            };
            entries.push(MetricEntry { name, class, value });
        }
        Ok(MetricsSnapshot { entries })
    }
}

impl ToJson for MetricsSnapshot {
    fn to_json(&self) -> Json {
        Json::obj(vec![(
            "entries",
            Json::Arr(
                self.entries
                    .iter()
                    .map(|e| {
                        let mut pairs = vec![
                            ("name", e.name.to_json()),
                            ("class", e.class.label().to_json()),
                            ("kind", e.value.kind().to_json()),
                        ];
                        match &e.value {
                            MetricValue::Counter(v) => pairs.push(("value", v.to_json())),
                            MetricValue::Gauge(v) => pairs.push(("value", Json::Num(*v))),
                            MetricValue::Histogram {
                                bounds,
                                buckets,
                                sum,
                                count,
                            } => {
                                pairs.push((
                                    "bounds",
                                    Json::Arr(bounds.iter().map(|&b| Json::Num(b)).collect()),
                                ));
                                pairs.push((
                                    "buckets",
                                    Json::Arr(buckets.iter().map(|&b| b.to_json()).collect()),
                                ));
                                pairs.push(("sum", Json::Num(*sum)));
                                pairs.push(("count", count.to_json()));
                            }
                        }
                        Json::obj(pairs)
                    })
                    .collect(),
            ),
        )])
    }
}

/// A [`Probe`] that counts simulator events into registry counters — the
/// metrics layer's use of the existing observation seam. The default
/// simulation path is untouched: a job only pays for these counters when
/// explicitly driven through the probe.
///
/// All four counters are event *counts* (never cycle sums read off a
/// clock), updated once per event in the machine's deterministic
/// interleave order, so they are [`Class::Structural`].
#[derive(Debug)]
pub struct MetricsProbe {
    instructions: Arc<Counter>,
    fences: Arc<Counter>,
    sb_stalls: Arc<Counter>,
    accesses: Arc<Counter>,
}

impl MetricsProbe {
    /// Register the simulator counters (`sim.instructions`, `sim.fences`,
    /// `sim.sb_stalls`, `sim.accesses`) in `registry` and return a probe
    /// feeding them.
    pub fn new(registry: &MetricsRegistry) -> Self {
        MetricsProbe {
            instructions: registry.counter("sim.instructions", Class::Structural),
            fences: registry.counter("sim.fences", Class::Structural),
            sb_stalls: registry.counter("sim.sb_stalls", Class::Structural),
            accesses: registry.counter("sim.accesses", Class::Structural),
        }
    }
}

impl Probe for MetricsProbe {
    fn begin(&mut self, _thread: usize, _index: usize, _instr: &Instr) {
        self.instructions.inc();
    }

    fn fence_retired(&mut self, _kind: wmm_sim::isa::FenceKind, _cycles: f64) {
        self.fences.inc();
    }

    fn sb_stall(&mut self, _cycles: f64) {
        self.sb_stalls.inc();
    }

    fn access(&mut self, _outcome: AccessOutcome, _cycles: f64) {
        self.accesses.inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_register_and_update() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("a.jobs", Class::Structural);
        c.add(3);
        c.inc();
        assert_eq!(c.get(), 4);
        // Idempotent re-registration shares the handle.
        reg.counter("a.jobs", Class::Structural).add(1);
        assert_eq!(c.get(), 5);

        let g = reg.gauge("a.depth", Class::Structural);
        g.set(2.5);
        g.add(-0.5);
        assert_eq!(g.get(), 2.0);

        let h = reg.histogram("a.lat", Class::Observational, &[1.0, 10.0]);
        for v in [0.5, 5.0, 50.0, 10.0] {
            h.observe(v);
        }
        assert_eq!(h.bucket_counts(), vec![1, 2, 1]);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 65.5);
        assert_eq!(reg.len(), 3);
    }

    #[test]
    #[should_panic(expected = "re-registered")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x", Class::Structural);
        let _ = reg.gauge("x", Class::Structural);
    }

    #[test]
    fn snapshot_is_name_sorted_and_structural_filters() {
        let reg = MetricsRegistry::new();
        reg.counter("z.last", Class::Observational).add(9);
        reg.counter("a.first", Class::Structural).add(1);
        reg.gauge("m.mid", Class::Structural).set(1.5);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.entries.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["a.first", "m.mid", "z.last"]);
        let stru = snap.structural();
        assert_eq!(stru.entries.len(), 2);
        assert!(stru.get("z.last").is_none());
        assert_eq!(snap.counter("a.first"), Some(1));
        assert_eq!(snap.gauge("m.mid"), Some(1.5));
        assert_eq!(snap.counter("m.mid"), None, "kind-checked accessor");
    }

    #[test]
    fn snapshot_json_round_trips() {
        let reg = MetricsRegistry::new();
        reg.counter("c", Class::Structural).add(7);
        reg.gauge("g", Class::Observational).set(-2.25);
        reg.histogram("h", Class::Structural, &[10.0, 100.0])
            .observe(42.0);
        let snap = reg.snapshot();
        let text = snap.to_json().to_string_pretty();
        let back = MetricsSnapshot::from_json(&Json::parse(&text).expect("parse")).expect("decode");
        assert_eq!(back, snap);
        // Serialisation is a pure function of the snapshot.
        assert_eq!(back.to_json().to_string_pretty(), text);
    }

    #[test]
    fn prometheus_export_is_well_formed() {
        let reg = MetricsRegistry::new();
        reg.counter("harness.exec.jobs", Class::Structural).add(12);
        reg.gauge("harness.exec.queue_depth", Class::Structural)
            .set(4.0);
        let h = reg.histogram("wps.gap", Class::Structural, &[1.0, 2.0]);
        h.observe(1.5);
        h.observe(0.5);
        let text = reg.snapshot().to_prometheus();
        assert!(text.contains("# TYPE harness_exec_jobs counter"));
        assert!(text.contains("harness_exec_jobs 12"));
        assert!(text.contains("harness_exec_queue_depth 4"));
        // Cumulative buckets with an +Inf overflow.
        assert!(text.contains("wps_gap_bucket{le=\"1\"} 1"));
        assert!(text.contains("wps_gap_bucket{le=\"2\"} 2"));
        assert!(text.contains("wps_gap_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("wps_gap_count 2"));
    }

    #[test]
    fn metrics_probe_counts_events() {
        use wmm_sim::arch::armv8_xgene1;
        use wmm_sim::isa::FenceKind;
        use wmm_sim::machine::{Program, WorkloadCtx};
        use wmm_sim::Machine;

        let reg = MetricsRegistry::new();
        let mut probe = MetricsProbe::new(&reg);
        let machine = Machine::new(armv8_xgene1());
        let program = Program::new(vec![vec![
            Instr::Compute { cycles: 100 },
            Instr::Fence(FenceKind::DmbIsh),
        ]]);
        machine.run_probed(&program, &WorkloadCtx::default(), 7, &mut probe);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("sim.instructions"), Some(2));
        assert_eq!(snap.counter("sim.fences"), Some(1));
    }
}
